#!/usr/bin/env bash
# Opt-in perf-regression guard (check.sh runs it when OTAE_BENCH_GUARD=1).
#
# Re-runs the store throughput experiment in smoke mode (so no committed
# results/*.csv is touched) with the BENCH_*.json output redirected into
# a temp dir via OTAE_BENCH_OUT_DIR, then compares the fresh numbers
# against the committed trajectory at the repo root. Any key throughput
# metric regressing by more than OTAE_BENCH_GUARD_PCT percent (default
# 25) fails the script.
#
# Knobs:
#   OTAE_BENCH_GUARD_PCT  regression threshold in percent   (default 25)
#   OTAE_BENCH_GUARD_OPS  store ops per stage for the run   (default 100000)
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${OTAE_BENCH_GUARD_PCT:-25}"
ops="${OTAE_BENCH_GUARD_OPS:-100000}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> bench guard: fresh store run (${ops} ops) -> ${tmp}"
OTAE_BENCH_SMOKE=1 OTAE_STORE_OPS="$ops" OTAE_BENCH_OUT_DIR="$tmp" \
  cargo run --release -q -p otae-bench --bin store_throughput

# Guarded metrics: name, committed artifact, direction of goodness.
guards='
store_append_ops BENCH_serve.json higher
store_read_ops BENCH_serve.json higher
store_recovery_ms BENCH_serve.json lower
'

# Extract a metric value from a BenchJson artifact ("name": 123.456,).
metric_of() {
  awk -v key="\"$2\":" '$1 == key { v = $2; gsub(/[",]/, "", v); print v; exit }' "$1"
}

fail=0
while read -r name file dir; do
  [[ -z "${name}" ]] && continue
  committed="$(metric_of "$file" "$name" 2>/dev/null || true)"
  fresh="$(metric_of "$tmp/$file" "$name" 2>/dev/null || true)"
  if [[ -z "$committed" || -z "$fresh" || "$committed" == "null" || "$fresh" == "null" ]]; then
    echo "bench guard: $name: missing (committed='${committed:-?}' fresh='${fresh:-?}'), skipping"
    continue
  fi
  verdict="$(awk -v c="$committed" -v f="$fresh" -v dir="$dir" -v pct="$threshold" 'BEGIN {
    if (c <= 0) { print "skip"; exit }
    delta = (dir == "higher") ? (c - f) / c * 100 : (f - c) / c * 100
    printf "%s %.1f", (delta > pct) ? "FAIL" : "ok", delta
  }')"
  state="${verdict%% *}"
  delta="${verdict##* }"
  if [[ "$state" == "FAIL" ]]; then
    echo "bench guard: $name: FAIL — ${delta}% worse than committed ($dir is better: committed=$committed fresh=$fresh)"
    fail=1
  else
    echo "bench guard: $name: ok (regression ${delta}%, committed=$committed fresh=$fresh)"
  fi
done <<<"$guards"

if [[ "$fail" -ne 0 ]]; then
  echo "bench guard: FAILED — a key metric regressed by more than ${threshold}%"
  exit 1
fi
echo "bench guard: all guarded metrics within ${threshold}% of the committed trajectory"

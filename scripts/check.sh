#!/usr/bin/env bash
# Repo quality gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> otae-lint (workspace invariants: determinism, hash, clock, panic-freedom, lock order)"
OTAE_LINT_STRICT="${OTAE_LINT_STRICT:-0}" cargo run -q -p otae-lint
# Machine-readable mirror of the same diagnostics for CI consumers.
mkdir -p target
cargo run -q -p otae-lint -- --json > target/otae-lint.json

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> bench smoke (tiny binned-training run + 1x1 serve tick)"
OTAE_BENCH_SMOKE=1 cargo run --release -q -p otae-bench --bin train_throughput
OTAE_BENCH_SMOKE=1 OTAE_OBJECTS=2000 cargo run --release -q -p otae-bench --bin serve_throughput
OTAE_BENCH_SMOKE=1 cargo bench -q -p otae-bench --bench admission_hot_path -- --test
OTAE_BENCH_SMOKE=1 cargo bench -q -p otae-bench --bench compiled_inference -- --test

if [[ "${OTAE_HARNESS_SMOKE:-0}" == "1" ]]; then
  echo "==> harness smoke (differential oracle + 3 fault plans)"
  cargo run --release -q -p otae-harness -- --smoke
fi

if [[ "${OTAE_POLICY_SMOKE:-0}" == "1" ]]; then
  echo "==> policy smoke (admission zoo x eviction x capacity mini-grid)"
  OTAE_BENCH_SMOKE=1 OTAE_OBJECTS=3000 cargo run --release -q -p otae-bench --bin policy_sweep
fi

if [[ "${OTAE_STORE_SMOKE:-0}" == "1" ]]; then
  echo "==> store smoke (segment-store throughput, recovery, measured WA)"
  OTAE_BENCH_SMOKE=1 cargo run --release -q -p otae-bench --bin store_throughput
  OTAE_BENCH_SMOKE=1 cargo bench -q -p otae-bench --bench store_ops -- --test
fi

if [[ "${OTAE_BENCH_GUARD:-0}" == "1" ]]; then
  echo "==> bench guard (fresh run vs committed BENCH_*.json; >25% regression fails)"
  scripts/bench_guard.sh
fi

echo "OK: fmt, otae-lint, clippy, tests and bench smoke all clean"

//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST '03), adapted to
//! byte-granular object sizes.
//!
//! Resident objects live in `T1` (seen once recently) or `T2` (seen at least
//! twice); evicted objects leave a ghost entry in `B1`/`B2`. Ghost hits move
//! the adaptive target `p` (bytes the policy would like `T1` to occupy):
//! a `B1` hit grows `p` (recency is winning), a `B2` hit shrinks it. The
//! byte-size adaptation scales each nudge by the object size and the relative
//! ghost-list weights, degenerating to the classic unit-size rule when all
//! objects have equal size.

use crate::list::{DList, NodeId};
use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    T1,
    T2,
    B1,
    B2,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    loc: Loc,
    node: NodeId,
    size: u64,
}

/// Byte-capacity ARC cache.
#[derive(Debug, Clone)]
pub struct ArcCache<K> {
    capacity: u64,
    /// Adaptive target size of T1 in bytes.
    p: u64,
    t1: DList<K>,
    t2: DList<K>,
    b1: DList<K>,
    b2: DList<K>,
    t1_bytes: u64,
    t2_bytes: u64,
    b1_bytes: u64,
    b2_bytes: u64,
    map: FxHashMap<K, Slot>,
}

impl<K: Key> ArcCache<K> {
    /// New ARC cache holding at most `capacity` bytes of resident objects.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            p: 0,
            t1: DList::new(),
            t2: DList::new(),
            b1: DList::new(),
            b2: DList::new(),
            t1_bytes: 0,
            t2_bytes: 0,
            b1_bytes: 0,
            b2_bytes: 0,
            map: FxHashMap::default(),
        }
    }

    /// Current adaptive target for T1 bytes (exposed for tests/diagnostics).
    pub fn target_p(&self) -> u64 {
        self.p
    }

    fn resident_bytes(&self) -> u64 {
        self.t1_bytes + self.t2_bytes
    }

    /// Evict resident LRU entries until `extra` more bytes fit, moving the
    /// victims into the appropriate ghost list. `from_b2` biases the tie rule
    /// as in the original REPLACE subroutine.
    fn replace(&mut self, extra: u64, from_b2: bool, evicted: &mut Vec<Evicted<K>>) {
        while self.resident_bytes() + extra > self.capacity {
            let take_t1 = if self.t1.is_empty() {
                false
            } else if self.t2.is_empty() {
                true
            } else if from_b2 {
                self.t1_bytes >= self.p.max(1)
            } else {
                self.t1_bytes > self.p
            };
            if take_t1 {
                let key = self.t1.pop_back().expect("checked non-empty");
                let slot = self.map.get_mut(&key).expect("map in sync");
                self.t1_bytes -= slot.size;
                evicted.push(Evicted { key, size: slot.size });
                slot.loc = Loc::B1;
                slot.node = self.b1.push_front(key);
                self.b1_bytes += slot.size;
            } else {
                let key = self.t2.pop_back().expect("resident bytes > 0");
                let slot = self.map.get_mut(&key).expect("map in sync");
                self.t2_bytes -= slot.size;
                evicted.push(Evicted { key, size: slot.size });
                slot.loc = Loc::B2;
                slot.node = self.b2.push_front(key);
                self.b2_bytes += slot.size;
            }
        }
    }

    /// Directory maintenance for a brand-new key of `size` bytes, performed
    /// *before* REPLACE as in the original algorithm (Case IV): keeps
    /// `|T1| + |B1| <= c` and the whole directory `<= 2c` (in bytes).
    fn make_directory_room(&mut self, size: u64, evicted: &mut Vec<Evicted<K>>) {
        if self.t1_bytes + self.b1_bytes + size > self.capacity {
            // L1 full: recycle B1 history first.
            while self.b1_bytes > 0 && self.t1_bytes + self.b1_bytes + size > self.capacity {
                let key = self.b1.pop_back().expect("b1_bytes > 0");
                let slot = self.map.remove(&key).expect("map in sync");
                self.b1_bytes -= slot.size;
            }
            // T1 alone still overflows: evict its LRU without leaving a ghost.
            while self.t1_bytes + size > self.capacity && !self.t1.is_empty() {
                let key = self.t1.pop_back().expect("checked non-empty");
                let slot = self.map.remove(&key).expect("map in sync");
                self.t1_bytes -= slot.size;
                evicted.push(Evicted { key, size: slot.size });
            }
        }
        while self.resident_bytes() + self.b1_bytes + self.b2_bytes + size > 2 * self.capacity {
            let Some(key) = self.b2.pop_back() else { break };
            let slot = self.map.remove(&key).expect("map in sync");
            self.b2_bytes -= slot.size;
        }
    }
}

impl<K: Key> Cache<K> for ArcCache<K> {
    fn name(&self) -> &'static str {
        "ARC"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.resident_bytes()
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn contains(&self, key: &K) -> bool {
        matches!(self.map.get(key), Some(Slot { loc: Loc::T1 | Loc::T2, .. }))
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        let Some(&slot) = self.map.get(key) else { return };
        match slot.loc {
            Loc::T1 => {
                self.t1.remove(slot.node);
                self.t1_bytes -= slot.size;
                let node = self.t2.push_front(*key);
                self.t2_bytes += slot.size;
                self.map.insert(*key, Slot { loc: Loc::T2, node, size: slot.size });
            }
            Loc::T2 => self.t2.move_to_front(slot.node),
            Loc::B1 | Loc::B2 => unreachable!("on_hit requires residency"),
        }
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity {
            return;
        }
        match self.map.get(&key).copied() {
            Some(slot) if slot.loc == Loc::B1 => {
                // Ghost hit in B1: grow p (favor recency).
                let ratio = if self.b1_bytes > 0 {
                    (self.b2_bytes as f64 / self.b1_bytes as f64).max(1.0)
                } else {
                    1.0
                };
                let delta = (size as f64 * ratio) as u64;
                self.p = (self.p + delta).min(self.capacity);
                self.b1.remove(slot.node);
                self.b1_bytes -= slot.size;
                self.replace(size, false, evicted);
                let node = self.t2.push_front(key);
                self.t2_bytes += size;
                self.map.insert(key, Slot { loc: Loc::T2, node, size });
            }
            Some(slot) if slot.loc == Loc::B2 => {
                // Ghost hit in B2: shrink p (favor frequency).
                let ratio = if self.b2_bytes > 0 {
                    (self.b1_bytes as f64 / self.b2_bytes as f64).max(1.0)
                } else {
                    1.0
                };
                let delta = (size as f64 * ratio) as u64;
                self.p = self.p.saturating_sub(delta);
                self.b2.remove(slot.node);
                self.b2_bytes -= slot.size;
                self.replace(size, true, evicted);
                let node = self.t2.push_front(key);
                self.t2_bytes += size;
                self.map.insert(key, Slot { loc: Loc::T2, node, size });
            }
            Some(_) => {
                // Already resident: nothing to do.
            }
            None => {
                self.make_directory_room(size, evicted);
                self.replace(size, false, evicted);
                let node = self.t1.push_front(key);
                self.t1_bytes += size;
                self.map.insert(key, Slot { loc: Loc::T1, node, size });
            }
        }
    }

    /// A bypassed miss is equivalent to an instant admit-and-evict from T1:
    /// record a B1 ghost so the adaptive machinery still sees the object.
    /// Without this, admission control starves ARC of its history signal
    /// and a misprediction costs a full extra miss.
    fn on_bypass(&mut self, key: &K, size: u64, _now: u64) {
        if size > self.capacity {
            return;
        }
        match self.map.get(key).copied() {
            Some(slot) if slot.loc == Loc::B1 => self.b1.move_to_front(slot.node),
            Some(slot) if slot.loc == Loc::B2 => self.b2.move_to_front(slot.node),
            Some(_) => {} // resident: nothing to do (driver treats as miss only when absent)
            None => {
                // Keep the L1 directory within budget before adding history.
                while self.b1_bytes > 0 && self.t1_bytes + self.b1_bytes + size > self.capacity {
                    let victim = self.b1.pop_back().expect("b1_bytes > 0");
                    let vslot = self.map.remove(&victim).expect("map in sync");
                    self.b1_bytes -= vslot.size;
                }
                if self.t1_bytes + self.b1_bytes + size > self.capacity {
                    return; // no room for history without touching residents
                }
                let node = self.b1.push_front(*key);
                self.b1_bytes += size;
                self.map.insert(*key, Slot { loc: Loc::B1, node, size });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn hit_promotes_t1_to_t2() {
        let mut c = ArcCache::new(100);
        let mut ev = Vec::new();
        c.insert(1u64, 10, 0, &mut ev);
        assert_eq!(c.map[&1].loc, Loc::T1);
        c.on_hit(&1, 1);
        assert_eq!(c.map[&1].loc, Loc::T2);
        assert_eq!(c.t1_bytes, 0);
        assert_eq!(c.t2_bytes, 10);
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut c = ArcCache::new(30);
        let mut ev = Vec::new();
        // Put key 1 into T2 so REPLACE (not the T1-full fast path) handles
        // later overflow and leaves B1 ghosts.
        c.insert(1u64, 10, 0, &mut ev);
        c.on_hit(&1, 1);
        c.insert(2u64, 10, 2, &mut ev);
        c.insert(3u64, 10, 3, &mut ev);
        c.insert(4u64, 10, 4, &mut ev); // REPLACE evicts T1 LRU (2) into B1
        assert_eq!(c.map[&2].loc, Loc::B1);
        let p_before = c.target_p();
        c.insert(2u64, 10, 5, &mut ev);
        assert!(c.target_p() > p_before, "B1 ghost hit must grow p");
        assert_eq!(c.map[&2].loc, Loc::T2, "ghost hit re-admits into T2");
        check_capacity_invariant(&c);
    }

    #[test]
    fn t1_full_cache_evicts_without_ghost() {
        // Pure miss stream: T1 occupies the whole cache; per the original
        // Case IV, its LRU is dropped without history.
        let mut c = ArcCache::new(30);
        let mut ev = Vec::new();
        for k in 1..=4u64 {
            c.insert(k, 10, k, &mut ev);
        }
        assert!(!c.map.contains_key(&1), "no ghost when T1 spans the cache");
        assert!(c.contains(&4));
        check_capacity_invariant(&c);
    }

    #[test]
    fn ghost_hit_in_b2_shrinks_p() {
        let mut c = ArcCache::new(20);
        let mut ev = Vec::new();
        // 1 gets into T2, then is evicted into B2 by pressure.
        c.insert(1u64, 10, 0, &mut ev);
        c.on_hit(&1, 1);
        c.insert(2u64, 10, 2, &mut ev);
        c.insert(3u64, 10, 3, &mut ev); // evicts 1? depends on p=0 -> prefer t2? p=0 -> t1_bytes(10)>0 -> evict t1 (2)
                                        // Force 1 out of T2 by more pressure with hits.
        c.insert(4u64, 10, 4, &mut ev);
        c.insert(5u64, 10, 5, &mut ev);
        // Find whether 1 became a B2 ghost; if so re-access shrinks p.
        if c.map.get(&1).map(|s| s.loc) == Some(Loc::B2) {
            let p_before = c.target_p();
            c.insert(1u64, 10, 6, &mut ev);
            assert!(c.target_p() <= p_before);
        }
        check_capacity_invariant(&c);
    }

    #[test]
    fn scan_resistance_beats_lru() {
        // Hot set re-accessed around a long scan: ARC keeps more of it than LRU.
        let mut accesses: Vec<(u64, u64)> = Vec::new();
        for round in 0..20 {
            for k in 0..5u64 {
                accesses.push((k, 10));
            }
            for s in 0..10u64 {
                accesses.push((1000 + round * 10 + s, 10));
            }
        }
        let mut arc = ArcCache::new(100);
        let mut lru = crate::Lru::new(100);
        let ha = drive(&mut arc, &accesses).iter().filter(|&&h| h).count();
        let hl = drive(&mut lru, &accesses).iter().filter(|&&h| h).count();
        assert!(ha >= hl, "ARC ({ha}) must be at least as scan-resistant as LRU ({hl})");
        check_capacity_invariant(&arc);
    }

    #[test]
    fn directory_bounded_by_two_capacities() {
        let mut c = ArcCache::new(50);
        let accesses: Vec<(u64, u64)> = (0..500).map(|i| ((i * 13) % 97, 7)).collect();
        drive(&mut c, &accesses);
        let dir = c.t1_bytes + c.t2_bytes + c.b1_bytes + c.b2_bytes;
        assert!(dir <= 2 * c.capacity(), "directory {dir} > 2c");
        assert!(c.t1_bytes + c.b1_bytes <= c.capacity());
        check_capacity_invariant(&c);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = ArcCache::new(10);
        let mut ev = Vec::new();
        c.insert(1u64, 11, 0, &mut ev);
        assert!(c.is_empty());
        assert!(c.map.is_empty());
    }

    #[test]
    fn p_stays_within_capacity() {
        let mut c = ArcCache::new(40);
        let accesses: Vec<(u64, u64)> =
            (0..2000).map(|i| ((i * 7) % 31, 5 + (i % 3) * 5)).collect();
        drive(&mut c, &accesses);
        assert!(c.target_p() <= c.capacity());
        check_capacity_invariant(&c);
    }
}

//! LIRS — Low Inter-reference Recency Set replacement (Jiang & Zhang,
//! SIGMETRICS '02), adapted to byte-granular object sizes.
//!
//! Blocks with low inter-reference recency (LIR) occupy most of the cache
//! (stack `S`); high inter-reference recency (HIR) blocks share a small
//! resident queue `Q` and are the eviction victims. Non-resident HIR blocks
//! keep a ghost entry in `S` so a quick re-reference can promote them to LIR.
//!
//! The paper's one-time-access criteria for LIRS uses the stack share
//! `R_s = C_s / C` (§5.2); [`Lirs::lir_fraction`] exposes it.

use crate::list::{DList, NodeId};
use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Lir,
    HirResident,
    HirGhost,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: State,
    s_node: Option<NodeId>,
    q_node: Option<NodeId>,
    size: u64,
}

/// Byte-capacity LIRS cache.
#[derive(Debug, Clone)]
pub struct Lirs<K> {
    capacity: u64,
    /// Byte budget for the LIR set (`C_s`).
    lir_cap: u64,
    lir_bytes: u64,
    hir_bytes: u64,
    /// LIRS stack: front = most recent. Holds LIR, resident HIR and ghost
    /// entries.
    s: DList<K>,
    /// Resident-HIR queue: front = eviction victim.
    q: DList<K>,
    map: FxHashMap<K, Slot>,
    /// Ghost insertion order for bounding stack growth.
    ghost_fifo: VecDeque<K>,
    ghosts: usize,
}

impl<K: Key> Lirs<K> {
    /// New LIRS cache with the conventional 1 % HIR share.
    pub fn new(capacity: u64) -> Self {
        Self::with_hir_fraction(capacity, 0.01)
    }

    /// New LIRS cache reserving `hir_fraction` of the bytes for resident HIR
    /// blocks (`1 − R_s`).
    pub fn with_hir_fraction(capacity: u64, hir_fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&hir_fraction), "hir fraction in [0,1)");
        let hir_cap = ((capacity as f64 * hir_fraction) as u64).max(1).min(capacity);
        Self {
            capacity,
            lir_cap: capacity - hir_cap,
            lir_bytes: 0,
            hir_bytes: 0,
            s: DList::new(),
            q: DList::new(),
            map: FxHashMap::default(),
            ghost_fifo: VecDeque::new(),
            ghosts: 0,
        }
    }

    /// Stack share `R_s = C_s / C` used by the paper's `M_LIRS` criteria.
    pub fn lir_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.lir_cap as f64 / self.capacity as f64
        }
    }

    /// Remove non-LIR entries from the stack bottom (stack pruning).
    fn prune(&mut self) {
        while let Some(bottom) = self.s.back() {
            let key = *self.s.get(bottom);
            let slot = self.map.get_mut(&key).expect("stack entries are mapped");
            match slot.state {
                State::Lir => break,
                State::HirResident => {
                    self.s.remove(bottom);
                    slot.s_node = None;
                }
                State::HirGhost => {
                    self.s.remove(bottom);
                    self.map.remove(&key);
                    self.ghosts -= 1;
                }
            }
        }
    }

    /// Demote the LIR block at the stack bottom into the HIR queue.
    fn demote_bottom_lir(&mut self) {
        self.prune();
        let Some(bottom) = self.s.back() else { return };
        let key = self.s.remove(bottom);
        let slot = self.map.get_mut(&key).expect("stack entries are mapped");
        debug_assert_eq!(slot.state, State::Lir);
        slot.state = State::HirResident;
        slot.s_node = None;
        slot.q_node = Some(self.q.push_back(key));
        self.lir_bytes -= slot.size;
        self.hir_bytes += slot.size;
        self.prune();
    }

    /// Evict resident bytes until `extra` more bytes fit.
    fn make_room(&mut self, extra: u64, evicted: &mut Vec<Evicted<K>>) {
        while self.lir_bytes + self.hir_bytes + extra > self.capacity {
            if self.q.is_empty() {
                self.demote_bottom_lir();
                continue;
            }
            let front = self.q.front().expect("checked non-empty");
            let key = self.q.remove(front);
            let slot = self.map.get_mut(&key).expect("queue entries are mapped");
            debug_assert_eq!(slot.state, State::HirResident);
            self.hir_bytes -= slot.size;
            evicted.push(Evicted { key, size: slot.size });
            slot.q_node = None;
            if slot.s_node.is_some() {
                slot.state = State::HirGhost;
                self.ghosts += 1;
                self.ghost_fifo.push_back(key);
            } else {
                self.map.remove(&key);
            }
        }
    }

    /// Promote a stack entry to LIR, rebalancing the LIR byte budget.
    fn promote_to_lir(&mut self, key: K) {
        let slot = self.map.get_mut(&key).expect("promotion target mapped");
        slot.state = State::Lir;
        let size = slot.size;
        if let Some(q_node) = slot.q_node.take() {
            self.q.remove(q_node);
            self.hir_bytes -= size;
        }
        self.lir_bytes += size;
        let s_node = slot.s_node.expect("promotion requires stack presence");
        self.s.move_to_front(s_node);
        self.prune();
        while self.lir_bytes > self.lir_cap {
            self.demote_bottom_lir();
        }
    }

    /// Bound ghost entries: the stack may hold at most a few times the
    /// resident population; surplus ghosts are dropped oldest-first.
    fn trim_ghosts(&mut self) {
        let resident = self.map.len() - self.ghosts;
        let limit = 3 * resident + 100;
        while self.ghosts > limit {
            let Some(key) = self.ghost_fifo.pop_front() else { break };
            match self.map.get(&key) {
                Some(slot) if slot.state == State::HirGhost => {
                    let s_node = slot.s_node.expect("ghosts live in the stack");
                    self.s.remove(s_node);
                    self.map.remove(&key);
                    self.ghosts -= 1;
                }
                _ => {} // re-admitted since; stale fifo entry
            }
        }
        self.prune();
    }
}

impl<K: Key> Cache<K> for Lirs<K> {
    fn name(&self) -> &'static str {
        "LIRS"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.lir_bytes + self.hir_bytes
    }

    fn len(&self) -> usize {
        self.map.values().filter(|s| matches!(s.state, State::Lir | State::HirResident)).count()
    }

    fn contains(&self, key: &K) -> bool {
        matches!(self.map.get(key), Some(Slot { state: State::Lir | State::HirResident, .. }))
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        let Some(&slot) = self.map.get(key) else { return };
        match slot.state {
            State::Lir => {
                self.s.move_to_front(slot.s_node.expect("LIR blocks live in the stack"));
                self.prune();
            }
            State::HirResident => {
                if slot.s_node.is_some() {
                    // In the stack: low IRR confirmed — promote to LIR.
                    self.promote_to_lir(*key);
                } else {
                    // Only in Q: refresh both recencies.
                    let s_node = self.s.push_front(*key);
                    let q_node = slot.q_node.expect("resident HIR outside S is in Q");
                    self.q.move_to_back(q_node);
                    let slot = self.map.get_mut(key).expect("mapped");
                    slot.s_node = Some(s_node);
                }
            }
            State::HirGhost => unreachable!("on_hit requires residency"),
        }
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.contains(&key) {
            return;
        }
        self.make_room(size, evicted);
        let ghost = matches!(self.map.get(&key), Some(s) if s.state == State::HirGhost);
        if ghost {
            // Re-reference within stack depth: straight to LIR.
            self.ghosts -= 1;
            {
                let slot = self.map.get_mut(&key).expect("mapped ghost");
                slot.state = State::HirResident; // transient; promote handles budgets
                slot.q_node = None;
            }
            // Promote: ghost had no resident bytes, so add size as LIR.
            // The object may return with a different size (e.g. re-encoded
            // photo); the resident entry must carry the current one.
            let slot = self.map.get_mut(&key).expect("mapped ghost");
            slot.state = State::Lir;
            slot.size = size;
            self.lir_bytes += size;
            let s_node = slot.s_node.expect("ghosts live in the stack");
            self.s.move_to_front(s_node);
            self.prune();
            while self.lir_bytes > self.lir_cap {
                self.demote_bottom_lir();
            }
        } else if self.lir_bytes + size <= self.lir_cap {
            // Warm-up: the LIR set is not full yet.
            let s_node = self.s.push_front(key);
            self.map
                .insert(key, Slot { state: State::Lir, s_node: Some(s_node), q_node: None, size });
            self.lir_bytes += size;
        } else {
            // New block: resident HIR.
            let s_node = self.s.push_front(key);
            let q_node = self.q.push_back(key);
            self.map.insert(
                key,
                Slot {
                    state: State::HirResident,
                    s_node: Some(s_node),
                    q_node: Some(q_node),
                    size,
                },
            );
            self.hir_bytes += size;
        }
        self.trim_ghosts();
    }

    /// A bypassed miss still registers recency: leave a non-resident ghost
    /// at the stack top (as if admitted and instantly evicted from Q), so a
    /// quick return exhibits low IRR and is promoted to LIR on admission.
    fn on_bypass(&mut self, key: &K, size: u64, _now: u64) {
        if size > self.capacity || self.contains(key) {
            return;
        }
        match self.map.get(key).copied() {
            Some(slot) if slot.state == State::HirGhost => {
                self.s.move_to_front(slot.s_node.expect("ghosts live in the stack"));
            }
            _ => {
                let s_node = self.s.push_front(*key);
                self.map.insert(
                    *key,
                    Slot { state: State::HirGhost, s_node: Some(s_node), q_node: None, size },
                );
                self.ghosts += 1;
                self.ghost_fifo.push_back(*key);
                self.trim_ghosts();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn warmup_fills_lir_set() {
        let mut c = Lirs::with_hir_fraction(100, 0.2);
        let mut ev = Vec::new();
        c.insert(1u64, 40, 0, &mut ev);
        c.insert(2u64, 40, 1, &mut ev);
        assert_eq!(c.map[&1].state, State::Lir);
        assert_eq!(c.map[&2].state, State::Lir);
        // Third object exceeds the 80-byte LIR budget: resident HIR.
        c.insert(3u64, 15, 2, &mut ev);
        assert_eq!(c.map[&3].state, State::HirResident);
        check_capacity_invariant(&c);
    }

    #[test]
    fn hir_victim_leaves_ghost_and_fast_reaccess_promotes() {
        let mut c = Lirs::with_hir_fraction(100, 0.2);
        let mut ev = Vec::new();
        c.insert(1u64, 40, 0, &mut ev);
        c.insert(2u64, 40, 1, &mut ev);
        c.insert(3u64, 15, 2, &mut ev);
        c.insert(4u64, 15, 3, &mut ev); // evicts 3 (Q front), leaving a ghost
        assert_eq!(ev, vec![Evicted { key: 3, size: 15 }]);
        assert_eq!(c.map[&3].state, State::HirGhost);
        // Ghost re-reference: promoted to LIR (low IRR).
        c.insert(3u64, 15, 4, &mut ev);
        assert_eq!(c.map[&3].state, State::Lir);
        check_capacity_invariant(&c);
    }

    #[test]
    fn lir_blocks_resist_scans() {
        let mut c = Lirs::with_hir_fraction(100, 0.2);
        // Establish LIR working set.
        drive(&mut c, &[(1, 40), (2, 40), (1, 40), (2, 40)]);
        // Long one-time scan: only the HIR queue churns.
        let scan: Vec<(u64, u64)> = (100..150).map(|k| (k, 15)).collect();
        drive(&mut c, &scan);
        assert!(c.contains(&1), "LIR block must survive scan");
        assert!(c.contains(&2), "LIR block must survive scan");
        check_capacity_invariant(&c);
    }

    #[test]
    fn lirs_beats_lru_on_looping_pattern() {
        // Loop slightly larger than the cache: LRU gets 0 hits, LIRS keeps a
        // stable LIR subset.
        let loop_keys: Vec<(u64, u64)> = (0..12).map(|k| (k, 10)).collect();
        let mut accesses = Vec::new();
        for _ in 0..20 {
            accesses.extend(loop_keys.iter().copied());
        }
        let mut lirs = Lirs::new(100);
        let mut lru = crate::Lru::new(100);
        let h_lirs = drive(&mut lirs, &accesses).iter().filter(|&&h| h).count();
        let h_lru = drive(&mut lru, &accesses).iter().filter(|&&h| h).count();
        assert!(h_lirs > h_lru, "LIRS {h_lirs} vs LRU {h_lru}");
        check_capacity_invariant(&lirs);
    }

    #[test]
    fn byte_accounting_stays_consistent() {
        let mut c = Lirs::new(200);
        let accesses: Vec<(u64, u64)> =
            (0..3000).map(|i| ((i * 17) % 61, 5 + (i % 7) * 4)).collect();
        drive(&mut c, &accesses);
        let resident: u64 = c
            .map
            .values()
            .filter(|s| matches!(s.state, State::Lir | State::HirResident))
            .map(|s| s.size)
            .sum();
        assert_eq!(resident, c.used());
        check_capacity_invariant(&c);
    }

    #[test]
    fn lir_fraction_reflects_configuration() {
        let c: Lirs<u64> = Lirs::with_hir_fraction(1000, 0.25);
        assert!((c.lir_fraction() - 0.75).abs() < 1e-9);
        let d: Lirs<u64> = Lirs::new(1000);
        assert!((d.lir_fraction() - 0.99).abs() < 0.01);
    }

    #[test]
    fn ghost_population_is_bounded() {
        let mut c = Lirs::new(100);
        // Endless stream of one-time objects.
        let accesses: Vec<(u64, u64)> = (0..20_000).map(|k| (k, 10)).collect();
        drive(&mut c, &accesses);
        assert!(c.ghosts <= 3 * (c.len()) + 100 + 1, "ghosts {} unbounded", c.ghosts);
        check_capacity_invariant(&c);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = Lirs::new(10);
        let mut ev = Vec::new();
        c.insert(1u64, 11, 0, &mut ev);
        assert!(c.is_empty());
    }
}

//! 2Q replacement (Johnson & Shasha, VLDB '94), adapted to byte-granular
//! object sizes.
//!
//! New objects enter a small FIFO (`A1in`). Objects evicted from `A1in`
//! leave a ghost key in `A1out`; only a re-reference while in `A1out`
//! promotes an object into the main LRU (`Am`). One-time objects therefore
//! transit `A1in` without ever touching `Am` — 2Q is a *replacement-side*
//! answer to the same one-hit-wonder problem the paper attacks with
//! admission control, which makes it a natural extra baseline.

use crate::list::{DList, NodeId};
use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    A1In,
    Am,
    Ghost,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    loc: Loc,
    node: NodeId,
    size: u64,
}

/// Byte-capacity 2Q cache.
#[derive(Debug, Clone)]
pub struct TwoQ<K> {
    capacity: u64,
    /// Byte budget of `A1in` (classic Kin ≈ 25 % of capacity).
    kin: u64,
    /// Byte budget of the `A1out` ghost list. The classic paper sizes Kout
    /// at 50 % of the cache *in pages*; here it is byte-denominated, so
    /// workloads with deep reuse distances may want a larger share
    /// (ghosts cost metadata only) via [`TwoQ::with_shares`].
    kout: u64,
    a1in: DList<K>,
    a1out: DList<K>,
    am: DList<K>,
    a1in_bytes: u64,
    a1out_bytes: u64,
    am_bytes: u64,
    map: FxHashMap<K, Slot>,
}

impl<K: Key> TwoQ<K> {
    /// New 2Q cache with the classic 25 % / 50 % queue shares.
    pub fn new(capacity: u64) -> Self {
        Self::with_shares(capacity, 0.25, 0.5)
    }

    /// New 2Q cache with explicit `A1in` and `A1out` byte shares.
    pub fn with_shares(capacity: u64, kin_share: f64, kout_share: f64) -> Self {
        assert!((0.0..=1.0).contains(&kin_share) && kout_share >= 0.0);
        Self {
            capacity,
            kin: ((capacity as f64 * kin_share) as u64).max(1),
            kout: (capacity as f64 * kout_share) as u64,
            a1in: DList::new(),
            a1out: DList::new(),
            am: DList::new(),
            a1in_bytes: 0,
            a1out_bytes: 0,
            am_bytes: 0,
            map: FxHashMap::default(),
        }
    }

    fn trim_ghosts(&mut self) {
        while self.a1out_bytes > self.kout {
            let Some(key) = self.a1out.pop_back() else { break };
            let slot = self.map.remove(&key).expect("ghost mapped");
            self.a1out_bytes -= slot.size;
        }
    }

    /// Evict one resident object per the 2Q RECLAIM rule.
    fn reclaim(&mut self, evicted: &mut Vec<Evicted<K>>) {
        if self.a1in_bytes > self.kin || self.am.is_empty() {
            if let Some(key) = self.a1in.pop_back() {
                let slot = self.map.get_mut(&key).expect("a1in mapped");
                self.a1in_bytes -= slot.size;
                evicted.push(Evicted { key, size: slot.size });
                // Leave a ghost so a quick return promotes into Am.
                slot.loc = Loc::Ghost;
                slot.node = self.a1out.push_front(key);
                self.a1out_bytes += slot.size;
                self.trim_ghosts();
                return;
            }
        }
        if let Some(key) = self.am.pop_back() {
            let slot = self.map.remove(&key).expect("am mapped");
            self.am_bytes -= slot.size;
            evicted.push(Evicted { key, size: slot.size });
        }
    }
}

impl<K: Key> Cache<K> for TwoQ<K> {
    fn name(&self) -> &'static str {
        "2Q"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.a1in_bytes + self.am_bytes
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn contains(&self, key: &K) -> bool {
        matches!(self.map.get(key), Some(Slot { loc: Loc::A1In | Loc::Am, .. }))
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        let Some(&slot) = self.map.get(key) else { return };
        match slot.loc {
            Loc::Am => self.am.move_to_front(slot.node),
            Loc::A1In => {} // classic 2Q: A1in stays FIFO on hits
            Loc::Ghost => unreachable!("on_hit requires residency"),
        }
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.contains(&key) {
            return;
        }
        while self.used() + size > self.capacity {
            self.reclaim(evicted);
        }
        match self.map.get(&key).copied() {
            Some(slot) if slot.loc == Loc::Ghost => {
                // Re-reference within A1out depth: proven reuse, into Am.
                self.a1out.remove(slot.node);
                self.a1out_bytes -= slot.size;
                let node = self.am.push_front(key);
                self.am_bytes += size;
                self.map.insert(key, Slot { loc: Loc::Am, node, size });
            }
            _ => {
                let node = self.a1in.push_front(key);
                self.a1in_bytes += size;
                self.map.insert(key, Slot { loc: Loc::A1In, node, size });
            }
        }
    }

    /// A bypassed miss is equivalent to an instant pass through `A1in`:
    /// record the ghost so a quick return is promoted into `Am`.
    fn on_bypass(&mut self, key: &K, size: u64, _now: u64) {
        if size > self.capacity || self.contains(key) {
            return;
        }
        match self.map.get(key).copied() {
            Some(slot) if slot.loc == Loc::Ghost => self.a1out.move_to_front(slot.node),
            _ => {
                let node = self.a1out.push_front(*key);
                self.a1out_bytes += size;
                self.map.insert(*key, Slot { loc: Loc::Ghost, node, size });
                self.trim_ghosts();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn one_time_objects_never_reach_am() {
        let mut c = TwoQ::new(100);
        let scan: Vec<(u64, u64)> = (0..50).map(|k| (k, 10)).collect();
        drive(&mut c, &scan);
        assert!(c.am.is_empty(), "one-time stream must not populate Am");
        check_capacity_invariant(&c);
    }

    #[test]
    fn ghost_reference_promotes_to_am() {
        let mut c = TwoQ::new(40); // kin = 10
        let mut ev = Vec::new();
        c.insert(1u64, 10, 0, &mut ev);
        // Push 1 out of A1in into the ghost list.
        c.insert(2u64, 10, 1, &mut ev);
        c.insert(3u64, 10, 2, &mut ev);
        c.insert(4u64, 10, 3, &mut ev);
        c.insert(5u64, 10, 4, &mut ev);
        if c.map.get(&1).map(|s| s.loc) == Some(Loc::Ghost) {
            c.insert(1u64, 10, 5, &mut ev);
            assert_eq!(c.map[&1].loc, Loc::Am, "ghost hit promotes to Am");
        } else {
            // Under byte budgets 1 may still be resident; force more churn.
            for k in 6..12u64 {
                c.insert(k, 10, k, &mut ev);
            }
            assert!(c.map.get(&1).is_none_or(|s| s.loc != Loc::A1In));
        }
        check_capacity_invariant(&c);
    }

    #[test]
    fn am_retains_hot_objects_through_scans() {
        // Deep ghost list (kout = 2x capacity in bytes) so the promotion
        // round-trip survives the churn.
        let mut c = TwoQ::with_shares(60, 0.2, 2.0);
        let mut accesses: Vec<(u64, u64)> = vec![(1, 10)];
        accesses.extend((100..106).map(|k| (k, 10))); // pressure flushes 1 to ghost
        accesses.push((1, 10)); // ghost hit -> Am
        accesses.extend((200..220).map(|k| (k, 10))); // long scan hits A1in only
        drive(&mut c, &accesses);
        assert_eq!(c.map.get(&1).map(|s| s.loc), Some(Loc::Am));
        assert!(c.contains(&1), "Am object must survive the scan");
        check_capacity_invariant(&c);
    }

    #[test]
    fn twoq_beats_lru_on_scan_heavy_mix() {
        let mut accesses: Vec<(u64, u64)> = Vec::new();
        for round in 0..30u64 {
            for k in 0..4u64 {
                accesses.push((k, 10));
            }
            for s in 0..8u64 {
                accesses.push((1000 + round * 8 + s, 10));
            }
        }
        let mut q = TwoQ::with_shares(80, 0.25, 2.0);
        let mut l = crate::Lru::new(80);
        let hq = drive(&mut q, &accesses).iter().filter(|&&h| h).count();
        let hl = drive(&mut l, &accesses).iter().filter(|&&h| h).count();
        assert!(hq > hl, "2Q {hq} must beat LRU {hl} on scan-heavy mixes");
    }

    #[test]
    fn ghost_budget_is_bounded() {
        let mut c = TwoQ::new(100);
        let scan: Vec<(u64, u64)> = (0..10_000).map(|k| (k, 10)).collect();
        drive(&mut c, &scan);
        assert!(c.a1out_bytes <= c.kout, "ghost bytes {} > kout {}", c.a1out_bytes, c.kout);
        check_capacity_invariant(&c);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = TwoQ::new(10);
        let mut ev = Vec::new();
        c.insert(1u64, 11, 0, &mut ev);
        assert!(c.is_empty());
    }

    #[test]
    fn bypass_leaves_ghost_for_fast_promotion() {
        let mut c = TwoQ::new(100);
        c.on_bypass(&1u64, 10, 0);
        assert!(!c.contains(&1));
        let mut ev = Vec::new();
        c.insert(1u64, 10, 1, &mut ev);
        assert_eq!(c.map[&1].loc, Loc::Am, "bypassed-then-returned goes to Am");
        check_capacity_invariant(&c);
    }
}

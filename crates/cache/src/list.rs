//! Arena-backed intrusive doubly-linked list.
//!
//! Replacement policies (LRU, FIFO, S3LRU, LIRS, ARC) all need O(1)
//! move-to-front / pop-back over millions of entries. `std` collections
//! either lack stable handles (`VecDeque`) or cost an allocation per node
//! (`LinkedList`). This list stores nodes in a `Vec` arena with a free list,
//! hands out stable `u32` handles, and never allocates per operation after
//! warm-up — following the heap-allocation guidance of the Rust Performance
//! Book.

/// Stable handle to a list node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    prev: u32,
    next: u32,
}

/// Doubly-linked list over an internal arena. Front = most recently used by
/// convention of the callers.
#[derive(Debug, Clone)]
pub struct DList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for DList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DList<T> {
    /// Empty list.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), free: Vec::new(), head: NIL, tail: NIL, len: 0 }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, value: T) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node { value, prev: NIL, next: NIL };
            i
        } else {
            self.nodes.push(Node { value, prev: NIL, next: NIL });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Push to the front; returns a stable handle.
    pub fn push_front(&mut self, value: T) -> NodeId {
        let i = self.alloc(value);
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
        self.len += 1;
        NodeId(i)
    }

    /// Push to the back; returns a stable handle.
    pub fn push_back(&mut self, value: T) -> NodeId {
        let i = self.alloc(value);
        self.nodes[i as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = i;
        } else {
            self.head = i;
        }
        self.tail = i;
        self.len += 1;
        NodeId(i)
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = NIL;
    }

    /// Remove a node by handle, returning its value.
    ///
    /// The handle must be live (obtained from a push and not yet removed);
    /// using a stale handle is a logic error that may corrupt ordering.
    pub fn remove(&mut self, id: NodeId) -> T
    where
        T: Copy,
    {
        self.unlink(id.0);
        self.free.push(id.0);
        self.len -= 1;
        self.nodes[id.0 as usize].value
    }

    /// Move a node to the front (most-recent position).
    pub fn move_to_front(&mut self, id: NodeId) {
        if self.head == id.0 {
            return;
        }
        self.unlink(id.0);
        self.nodes[id.0 as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = id.0;
        } else {
            self.tail = id.0;
        }
        self.head = id.0;
    }

    /// Move a node to the back (least-recent position).
    pub fn move_to_back(&mut self, id: NodeId) {
        if self.tail == id.0 {
            return;
        }
        self.unlink(id.0);
        self.nodes[id.0 as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = id.0;
        } else {
            self.head = id.0;
        }
        self.tail = id.0;
    }

    /// Handle of the front node.
    pub fn front(&self) -> Option<NodeId> {
        (self.head != NIL).then_some(NodeId(self.head))
    }

    /// Handle of the back node.
    pub fn back(&self) -> Option<NodeId> {
        (self.tail != NIL).then_some(NodeId(self.tail))
    }

    /// Remove and return the back value.
    pub fn pop_back(&mut self) -> Option<T>
    where
        T: Copy,
    {
        self.back().map(|id| self.remove(id))
    }

    /// Remove and return the front value.
    pub fn pop_front(&mut self) -> Option<T>
    where
        T: Copy,
    {
        self.front().map(|id| self.remove(id))
    }

    /// Value behind a live handle.
    pub fn get(&self, id: NodeId) -> &T {
        &self.nodes[id.0 as usize].value
    }

    /// Mutable value behind a live handle.
    pub fn get_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.nodes[id.0 as usize].value
    }

    /// Iterate values front to back (O(n); for tests and debugging).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let n = &self.nodes[cur as usize];
            cur = n.next;
            Some(&n.value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contents(l: &DList<u32>) -> Vec<u32> {
        l.iter().copied().collect()
    }

    #[test]
    fn push_and_order() {
        let mut l = DList::new();
        l.push_front(2);
        l.push_front(1);
        l.push_back(3);
        assert_eq!(contents(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_middle_front_back() {
        let mut l = DList::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.remove(b), 2);
        assert_eq!(contents(&l), vec![1, 3]);
        assert_eq!(l.remove(a), 1);
        assert_eq!(contents(&l), vec![3]);
        assert_eq!(l.remove(c), 3);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_and_back() {
        let mut l = DList::new();
        let a = l.push_back(1);
        let _b = l.push_back(2);
        let c = l.push_back(3);
        l.move_to_front(c);
        assert_eq!(contents(&l), vec![3, 1, 2]);
        l.move_to_back(a);
        assert_eq!(contents(&l), vec![3, 2, 1]);
        // Moving the node already in place is a no-op.
        l.move_to_front(c);
        l.move_to_back(a);
        assert_eq!(contents(&l), vec![3, 2, 1]);
    }

    #[test]
    fn pop_back_front() {
        let mut l = DList::new();
        l.push_back(1);
        l.push_back(2);
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_front(), Some(1));
        assert_eq!(l.pop_back(), None);
        assert_eq!(l.pop_front(), None);
    }

    #[test]
    fn arena_reuses_freed_slots() {
        let mut l = DList::new();
        let a = l.push_back(1);
        l.remove(a);
        l.push_back(2);
        l.push_back(3);
        // One slot reused: arena holds exactly 2 nodes.
        assert_eq!(l.nodes.len(), 2);
        assert_eq!(contents(&l), vec![2, 3]);
    }

    #[test]
    fn stress_against_vecdeque_model() {
        use std::collections::VecDeque;
        let mut l: DList<u64> = DList::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut handles: otae_fxhash::FxHashMap<u64, NodeId> = otae_fxhash::FxHashMap::default();
        // Deterministic pseudo-random ops.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..5000u64 {
            match next() % 4 {
                0 => {
                    let v = step;
                    handles.insert(v, l.push_front(v));
                    model.push_front(v);
                }
                1 => {
                    let v = step;
                    handles.insert(v, l.push_back(v));
                    model.push_back(v);
                }
                2 => {
                    if let Some(&v) = model.back() {
                        l.pop_back();
                        model.pop_back();
                        handles.remove(&v);
                    }
                }
                _ => {
                    if !model.is_empty() {
                        let idx = (next() as usize) % model.len();
                        let v = model[idx];
                        l.move_to_front(handles[&v]);
                        model.remove(idx);
                        model.push_front(v);
                    }
                }
            }
            assert_eq!(l.len(), model.len());
        }
        assert_eq!(
            l.iter().copied().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
    }
}

//! Least-Recently-Used replacement — the paper's baseline policy.

use crate::list::{DList, NodeId};
use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;

/// Byte-capacity LRU cache.
#[derive(Debug, Clone)]
pub struct Lru<K> {
    capacity: u64,
    used: u64,
    /// Recency order, front = MRU.
    order: DList<K>,
    map: FxHashMap<K, (NodeId, u64)>,
}

impl<K: Key> Lru<K> {
    /// New LRU cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0, order: DList::new(), map: FxHashMap::default() }
    }

    fn evict_one(&mut self, evicted: &mut Vec<Evicted<K>>) {
        if let Some(key) = self.order.pop_back() {
            let (_, size) = self.map.remove(&key).expect("map/list in sync");
            self.used -= size;
            evicted.push(Evicted { key, size });
        }
    }
}

impl<K: Key> Cache<K> for Lru<K> {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        if let Some(&(node, _)) = self.map.get(key) {
            self.order.move_to_front(node);
        }
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.map.contains_key(&key) {
            return;
        }
        while self.used + size > self.capacity {
            self.evict_one(evicted);
        }
        let node = self.order.push_front(key);
        self.map.insert(key, (node, size));
        self.used += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru::new(30);
        let hits = drive(&mut c, &[(1, 10), (2, 10), (3, 10), (1, 10), (4, 10)]);
        // Access to 1 refreshed it; inserting 4 evicts 2 (the LRU).
        assert_eq!(hits, vec![false, false, false, true, false]);
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert!(c.contains(&4));
        check_capacity_invariant(&c);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = Lru::new(10);
        let mut ev = Vec::new();
        c.insert(1u64, 100, 0, &mut ev);
        assert!(!c.contains(&1));
        assert!(ev.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut c = Lru::new(100);
        let mut ev = Vec::new();
        c.insert(1u64, 10, 0, &mut ev);
        c.insert(1u64, 10, 1, &mut ev);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 10);
    }

    #[test]
    fn variable_sizes_evict_multiple() {
        let mut c = Lru::new(100);
        let mut ev = Vec::new();
        c.insert(1u64, 40, 0, &mut ev);
        c.insert(2u64, 40, 1, &mut ev);
        c.insert(3u64, 90, 2, &mut ev); // must evict both 1 and 2
        assert_eq!(ev.len(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&3));
        check_capacity_invariant(&c);
    }

    #[test]
    fn scan_destroys_lru_working_set() {
        // Classic LRU pathology: a one-time scan evicts the hot set. This is
        // exactly what the paper's admission policy prevents.
        let mut c = Lru::new(50);
        let mut accesses: Vec<(u64, u64)> = (0..5).map(|k| (k, 10)).collect();
        accesses.extend((100..105).map(|k| (k, 10))); // scan
        accesses.extend((0..5).map(|k| (k, 10))); // hot set again: all misses
        let hits = drive(&mut c, &accesses);
        assert!(hits[10..].iter().all(|h| !h), "scan must have flushed hot set");
    }
}

//! S3LRU — three-segment segmented LRU (Karedla et al., 1994).
//!
//! New objects enter the probationary segment (0); each hit promotes one
//! segment up (capped at the protected top segment 2). When a segment
//! overflows its byte share, its LRU tail is demoted one segment down;
//! evictions leave from the tail of segment 0. A single scan therefore
//! cannot displace objects that have proven reuse — the property the paper
//! credits "advanced algorithms" with (§5.2).

use crate::list::{DList, NodeId};
use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;

const SEGMENTS: usize = 3;

#[derive(Debug, Clone, Copy)]
struct Slot {
    seg: u8,
    node: NodeId,
    size: u64,
}

/// Byte-capacity three-segment segmented LRU.
#[derive(Debug, Clone)]
pub struct S3Lru<K> {
    capacity: u64,
    seg_cap: [u64; SEGMENTS],
    seg_used: [u64; SEGMENTS],
    used: u64,
    /// Per-segment recency lists, front = MRU.
    segs: [DList<K>; SEGMENTS],
    map: FxHashMap<K, Slot>,
}

impl<K: Key> S3Lru<K> {
    /// New S3LRU cache holding at most `capacity` bytes, split evenly across
    /// three segments.
    pub fn new(capacity: u64) -> Self {
        let third = capacity / 3;
        Self {
            capacity,
            seg_cap: [capacity - 2 * third, third, third],
            seg_used: [0; SEGMENTS],
            used: 0,
            segs: [DList::new(), DList::new(), DList::new()],
            map: FxHashMap::default(),
        }
    }

    /// Demote the LRU tail of segment `seg` to the front of `seg - 1`.
    fn demote_tail(&mut self, seg: usize) {
        debug_assert!(seg > 0);
        if let Some(key) = self.segs[seg].pop_back() {
            let slot = self.map.get_mut(&key).expect("map/segment in sync");
            self.seg_used[seg] -= slot.size;
            self.seg_used[seg - 1] += slot.size;
            slot.seg = (seg - 1) as u8;
            slot.node = self.segs[seg - 1].push_front(key);
        }
    }

    /// Push upper-segment overflow down, then evict from segment 0 until the
    /// total fits.
    fn rebalance(&mut self, evicted: &mut Vec<Evicted<K>>) {
        for seg in (1..SEGMENTS).rev() {
            while self.seg_used[seg] > self.seg_cap[seg] {
                self.demote_tail(seg);
            }
        }
        while self.used > self.capacity {
            if self.segs[0].is_empty() {
                // Capacity pressure with an empty probationary segment:
                // demote from the lowest non-empty segment first.
                let seg = (1..SEGMENTS)
                    .find(|&s| !self.segs[s].is_empty())
                    .expect("used > 0 implies a non-empty segment");
                self.demote_tail(seg);
                continue;
            }
            let key = self.segs[0].pop_back().expect("checked non-empty");
            let slot = self.map.remove(&key).expect("map/segment in sync");
            self.seg_used[0] -= slot.size;
            self.used -= slot.size;
            evicted.push(Evicted { key, size: slot.size });
        }
    }
}

impl<K: Key> Cache<K> for S3Lru<K> {
    fn name(&self) -> &'static str {
        "S3LRU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        let Some(&slot) = self.map.get(key) else { return };
        let from = slot.seg as usize;
        let to = (from + 1).min(SEGMENTS - 1);
        if to == from {
            self.segs[from].move_to_front(slot.node);
            return;
        }
        self.segs[from].remove(slot.node);
        self.seg_used[from] -= slot.size;
        self.seg_used[to] += slot.size;
        let node = self.segs[to].push_front(*key);
        self.map.insert(*key, Slot { seg: to as u8, node, size: slot.size });
        // Promotion may overflow the upper segment; total is unchanged so no
        // eviction can occur.
        let mut sink = Vec::new();
        self.rebalance(&mut sink);
        debug_assert!(sink.is_empty());
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.map.contains_key(&key) {
            return;
        }
        let node = self.segs[0].push_front(key);
        self.map.insert(key, Slot { seg: 0, node, size });
        self.seg_used[0] += size;
        self.used += size;
        self.rebalance(evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn promoted_objects_survive_a_scan() {
        let mut c = S3Lru::new(60);
        // Make 1 and 2 "protected" via hits.
        drive(&mut c, &[(1, 10), (2, 10), (1, 10), (2, 10), (1, 10), (2, 10)]);
        // Scan with one-time objects.
        let scan: Vec<(u64, u64)> = (100..108).map(|k| (k, 10)).collect();
        drive(&mut c, &scan);
        assert!(c.contains(&1), "promoted object must survive scan");
        assert!(c.contains(&2), "promoted object must survive scan");
        check_capacity_invariant(&c);
    }

    #[test]
    fn unreferenced_objects_evict_first() {
        let mut c = S3Lru::new(30);
        drive(&mut c, &[(1, 10), (1, 10), (2, 10), (3, 10), (4, 10)]);
        assert!(c.contains(&1), "hit object promoted out of probation");
        assert!(!c.contains(&2), "probationary LRU must be the victim");
        check_capacity_invariant(&c);
    }

    #[test]
    fn segment_accounting_consistent() {
        let mut c = S3Lru::new(90);
        let accesses: Vec<(u64, u64)> = (0..200).map(|i| ((i * 7) % 23, 5 + (i % 4) * 3)).collect();
        drive(&mut c, &accesses);
        let sum: u64 = c.seg_used.iter().sum();
        assert_eq!(sum, c.used());
        let lens: usize = c.segs.iter().map(|s| s.len()).sum();
        assert_eq!(lens, c.len());
        check_capacity_invariant(&c);
    }

    #[test]
    fn hit_at_top_segment_stays_at_top() {
        let mut c = S3Lru::new(300);
        // 3 hits promote to segment 2; further hits keep it there.
        drive(&mut c, &[(1, 10), (1, 10), (1, 10), (1, 10), (1, 10)]);
        assert_eq!(c.map[&1].seg, 2);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = S3Lru::new(20);
        let mut ev = Vec::new();
        c.insert(1u64, 21, 0, &mut ev);
        assert!(c.is_empty());
    }
}

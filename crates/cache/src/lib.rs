//! # otae-cache — byte-capacity cache simulation substrate
//!
//! Trace-driven cache simulator used as the evaluation substrate for the
//! ICPP 2018 one-time-access-exclusion paper. It provides the replacement
//! algorithms the paper evaluates (§5): **LRU**, **FIFO**, **S3LRU**
//! (segmented LRU), **ARC**, **LIRS**, the offline-optimal **Belady** bound,
//! plus **LFU**, **2Q** and **GDSF** as extra classical baselines.
//!
//! All policies implement the [`Cache`] trait, account capacity in **bytes**
//! (photo objects have heterogeneous sizes), and are deterministic. Admission
//! control is deliberately *not* part of this crate: a policy only sees
//! `on_hit` / `insert` / `on_bypass`, so any admission logic (the paper's
//! classifier, an oracle, or always-admit) can be layered on top — that
//! layering lives in `otae-core`.
//!
//! ```
//! use otae_cache::{Cache, Lru};
//!
//! let mut lru = Lru::new(100);
//! let mut evicted = Vec::new();
//! lru.insert(1u64, 60, 0, &mut evicted);
//! lru.insert(2u64, 60, 1, &mut evicted); // evicts key 1
//! assert!(!lru.contains(&1));
//! assert!(lru.contains(&2));
//! ```

#![warn(missing_docs)]

mod arc;
mod belady;
mod fifo;
mod gdsf;
mod lfu;
mod lirs;
pub mod list;
mod lru;
mod s3lru;
pub mod sim;
pub mod stats;
mod twoq;

pub use arc::ArcCache;
pub use belady::Belady;
pub use fifo::Fifo;
pub use gdsf::Gdsf;
pub use lfu::Lfu;
pub use lirs::Lirs;
pub use lru::Lru;
pub use s3lru::S3Lru;
pub use sim::run_always_admit;
pub use stats::CacheStats;
pub use twoq::TwoQ;

use std::hash::Hash;

/// Key bound required by all policies.
pub trait Key: Copy + Eq + Hash + Ord + std::fmt::Debug {}
impl<T: Copy + Eq + Hash + Ord + std::fmt::Debug> Key for T {}

/// An entry pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<K> {
    /// Evicted key.
    pub key: K,
    /// Its size in bytes.
    pub size: u64,
}

/// A byte-capacity cache with an external admission decision.
///
/// The driver looks up `contains` first; on a hit it calls `on_hit`, on a
/// miss it either calls `insert` (admitted) or `on_bypass` (excluded).
/// `now` is the logical access index within the request stream — policies
/// with future knowledge (Belady) or aging use it.
pub trait Cache<K: Key> {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;
    /// Capacity in bytes.
    fn capacity(&self) -> u64;
    /// Bytes currently resident.
    fn used(&self) -> u64;
    /// Number of resident objects.
    fn len(&self) -> usize;
    /// Whether `key` is resident.
    fn contains(&self, key: &K) -> bool;
    /// Record a hit on a resident `key`.
    fn on_hit(&mut self, key: &K, now: u64);
    /// Admit `key` after a miss, evicting into `evicted` as needed.
    /// Objects larger than the whole cache are ignored (never resident).
    fn insert(&mut self, key: K, size: u64, now: u64, evicted: &mut Vec<Evicted<K>>);
    /// Record a miss that was *not* admitted. Default: no-op.
    fn on_bypass(&mut self, _key: &K, _size: u64, _now: u64) {}
    /// True when no objects are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Drive a policy with a (key, size) sequence, always admitting, and
    /// return per-access hit flags. Shared by per-policy tests.
    pub fn drive<C: Cache<u64>>(cache: &mut C, accesses: &[(u64, u64)]) -> Vec<bool> {
        let mut out = Vec::with_capacity(accesses.len());
        let mut evicted = Vec::new();
        for (now, &(k, s)) in accesses.iter().enumerate() {
            let hit = cache.contains(&k);
            if hit {
                cache.on_hit(&k, now as u64);
            } else {
                cache.insert(k, s, now as u64, &mut evicted);
            }
            out.push(hit);
        }
        out
    }

    /// Capacity accounting invariant shared by per-policy tests.
    pub fn check_capacity_invariant<C: Cache<u64>>(cache: &C) {
        assert!(
            cache.used() <= cache.capacity(),
            "{}: used {} > capacity {}",
            cache.name(),
            cache.used(),
            cache.capacity()
        );
    }
}

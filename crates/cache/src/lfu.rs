//! Least-Frequently-Used replacement (classical baseline; ties broken by age).

use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
struct Entry {
    freq: u64,
    seq: u64,
    size: u64,
}

/// Byte-capacity LFU cache. Victim = lowest access frequency; among equals,
/// the oldest insertion (smallest sequence number) goes first.
#[derive(Debug, Clone)]
pub struct Lfu<K> {
    capacity: u64,
    used: u64,
    seq: u64,
    map: FxHashMap<K, Entry>,
    /// Ordered victim set: (freq, seq, key).
    order: BTreeSet<(u64, u64, K)>,
}

impl<K: Key> Lfu<K> {
    /// New LFU cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0, seq: 0, map: FxHashMap::default(), order: BTreeSet::new() }
    }
}

impl<K: Key> Cache<K> for Lfu<K> {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        if let Some(e) = self.map.get_mut(key) {
            let removed = self.order.remove(&(e.freq, e.seq, *key));
            debug_assert!(removed);
            e.freq += 1;
            self.order.insert((e.freq, e.seq, *key));
        }
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.map.contains_key(&key) {
            return;
        }
        while self.used + size > self.capacity {
            let victim = *self.order.iter().next().expect("over capacity implies nonempty");
            self.order.remove(&victim);
            let entry = self.map.remove(&victim.2).expect("map/order in sync");
            self.used -= entry.size;
            evicted.push(Evicted { key: victim.2, size: entry.size });
        }
        let entry = Entry { freq: 1, seq: self.seq, size };
        self.seq += 1;
        self.order.insert((entry.freq, entry.seq, key));
        self.map.insert(key, entry);
        self.used += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn evicts_least_frequent() {
        let mut c = Lfu::new(30);
        // 1 accessed 3x, 2 accessed 2x, 3 accessed 1x; inserting 4 evicts 3.
        drive(&mut c, &[(1, 10), (2, 10), (3, 10), (1, 10), (1, 10), (2, 10), (4, 10)]);
        assert!(c.contains(&1));
        assert!(c.contains(&2));
        assert!(!c.contains(&3));
        assert!(c.contains(&4));
        check_capacity_invariant(&c);
    }

    #[test]
    fn ties_broken_by_age() {
        let mut c = Lfu::new(20);
        let mut ev = Vec::new();
        c.insert(1u64, 10, 0, &mut ev);
        c.insert(2u64, 10, 1, &mut ev);
        c.insert(3u64, 10, 2, &mut ev); // both freq 1 -> evict older (1)
        assert_eq!(ev, vec![Evicted { key: 1, size: 10 }]);
    }

    #[test]
    fn frequency_survives_pressure() {
        let mut c = Lfu::new(30);
        let mut accesses = vec![(1u64, 10u64); 10]; // key 1 very hot
        accesses.extend((10..30).map(|k| (k, 10)));
        drive(&mut c, &accesses);
        assert!(c.contains(&1), "hot key must survive a scan under LFU");
        check_capacity_invariant(&c);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = Lfu::new(5);
        let mut ev = Vec::new();
        c.insert(9u64, 6, 0, &mut ev);
        assert!(c.is_empty());
    }
}

//! First-In-First-Out replacement.

use crate::list::{DList, NodeId};
use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;

/// Byte-capacity FIFO cache: eviction order is insertion order; hits do not
/// refresh position.
#[derive(Debug, Clone)]
pub struct Fifo<K> {
    capacity: u64,
    used: u64,
    /// Insertion order, front = newest.
    order: DList<K>,
    map: FxHashMap<K, (NodeId, u64)>,
}

impl<K: Key> Fifo<K> {
    /// New FIFO cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0, order: DList::new(), map: FxHashMap::default() }
    }
}

impl<K: Key> Cache<K> for Fifo<K> {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn on_hit(&mut self, _key: &K, _now: u64) {
        // FIFO ignores recency.
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.map.contains_key(&key) {
            return;
        }
        while self.used + size > self.capacity {
            let victim = self.order.pop_back().expect("over capacity implies nonempty");
            let (_, vsize) = self.map.remove(&victim).expect("map/list in sync");
            self.used -= vsize;
            evicted.push(Evicted { key: victim, size: vsize });
        }
        let node = self.order.push_front(key);
        self.map.insert(key, (node, size));
        self.used += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn evicts_in_insertion_order_despite_hits() {
        let mut c = Fifo::new(30);
        // Hit on 1 does NOT save it: FIFO evicts 1 first anyway.
        let hits = drive(&mut c, &[(1, 10), (2, 10), (3, 10), (1, 10), (4, 10)]);
        assert_eq!(hits, vec![false, false, false, true, false]);
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert!(c.contains(&4));
        check_capacity_invariant(&c);
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = Fifo::new(10);
        let mut ev = Vec::new();
        c.insert(1u64, 11, 0, &mut ev);
        assert!(c.is_empty());
    }

    #[test]
    fn fifo_and_lru_agree_without_reuse() {
        // With no re-accesses, FIFO and LRU behave identically.
        let accesses: Vec<(u64, u64)> = (0..100).map(|k| (k, 7)).collect();
        let mut f = Fifo::new(50);
        let mut l = crate::Lru::new(50);
        let hf = drive(&mut f, &accesses);
        let hl = drive(&mut l, &accesses);
        assert_eq!(hf, hl);
        assert_eq!(f.len(), l.len());
    }
}

//! Belady's MIN — the offline-optimal replacement bound used as the upper
//! limit in every figure of the paper's evaluation (§5.3).
//!
//! The policy is constructed with the full future request sequence; at each
//! point it evicts the resident object whose *next* access is farthest in the
//! future (or never). An object that will never be accessed again evicts
//! itself immediately, so it is effectively not cached — but the insertion is
//! still counted as a write by the driver, matching the paper's "traditional
//! caching method" accounting (§5.3.3).

use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;
use std::collections::BTreeSet;

/// Position meaning "never accessed again".
pub const NEVER: u64 = u64::MAX;

/// Byte-capacity Belady (MIN) cache.
///
/// `now` passed to [`Cache::on_hit`]/[`Cache::insert`] must be the 0-based
/// index of the current request within the exact sequence the policy was
/// built from.
#[derive(Debug, Clone)]
pub struct Belady<K> {
    capacity: u64,
    used: u64,
    /// next_occurrence[i] = index of the next access to the object accessed
    /// at position i, or [`NEVER`].
    next_occurrence: Vec<u64>,
    /// Victim order: (next access, key), largest first out.
    order: BTreeSet<(u64, K)>,
    map: FxHashMap<K, (u64, u64)>, // key -> (next access, size)
}

impl<K: Key> Belady<K> {
    /// Build from the future key sequence.
    pub fn new(capacity: u64, future: &[K]) -> Self {
        let mut last_seen: FxHashMap<K, u64> = FxHashMap::default();
        let mut next_occurrence = vec![NEVER; future.len()];
        for (i, key) in future.iter().enumerate().rev() {
            if let Some(&next) = last_seen.get(key) {
                next_occurrence[i] = next;
            }
            last_seen.insert(*key, i as u64);
        }
        Self {
            capacity,
            used: 0,
            next_occurrence,
            order: BTreeSet::new(),
            map: FxHashMap::default(),
        }
    }

    /// Build directly from a precomputed next-occurrence array (shared across
    /// capacities when sweeping).
    pub fn from_next_occurrence(capacity: u64, next_occurrence: Vec<u64>) -> Self {
        Self {
            capacity,
            used: 0,
            next_occurrence,
            order: BTreeSet::new(),
            map: FxHashMap::default(),
        }
    }

    fn next_of(&self, now: u64) -> u64 {
        self.next_occurrence.get(now as usize).copied().unwrap_or(NEVER)
    }
}

impl<K: Key> Cache<K> for Belady<K> {
    fn name(&self) -> &'static str {
        "Belady"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn on_hit(&mut self, key: &K, now: u64) {
        let next = self.next_of(now);
        if let Some(&(old_next, size)) = self.map.get(key) {
            self.order.remove(&(old_next, *key));
            self.order.insert((next, *key));
            self.map.insert(*key, (next, size));
        }
    }

    fn insert(&mut self, key: K, size: u64, now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.map.contains_key(&key) {
            return;
        }
        let next = self.next_of(now);
        self.map.insert(key, (next, size));
        self.order.insert((next, key));
        self.used += size;
        while self.used > self.capacity {
            let victim = *self.order.iter().next_back().expect("over capacity implies nonempty");
            self.order.remove(&victim);
            let (_, vsize) = self.map.remove(&victim.1).expect("map/order in sync");
            self.used -= vsize;
            evicted.push(Evicted { key: victim.1, size: vsize });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};
    use crate::{run_always_admit, Lru};

    fn hits<C: Cache<u64>>(c: &mut C, seq: &[(u64, u64)]) -> usize {
        drive(c, seq).iter().filter(|&&h| h).count()
    }

    #[test]
    fn never_reused_object_evicts_itself() {
        let seq = [(1u64, 10u64), (2, 10), (1, 10)];
        let keys: Vec<u64> = seq.iter().map(|a| a.0).collect();
        let mut c = Belady::new(20, &keys);
        let mut ev = Vec::new();
        c.insert(1, 10, 0, &mut ev);
        assert!(c.contains(&1), "1 is accessed again at pos 2");
        c.insert(2, 10, 1, &mut ev);
        // 2 is never reused, but there is room for both, so it stays.
        assert!(c.contains(&2));
        // Squeeze: a third never-reused object evicts itself first.
        let keys2 = vec![1u64, 2, 3];
        let mut c2 = Belady::new(10, &keys2);
        c2.insert(1, 10, 0, &mut ev); // 1 never reused in keys2
        ev.clear();
        c2.insert(2, 10, 1, &mut ev);
        assert_eq!(ev.len(), 1, "one of the never-reused objects must go");
    }

    #[test]
    fn optimal_on_textbook_sequence() {
        // Classic example: with capacity for 3 unit objects,
        // MIN gets the maximum possible hits.
        let keys = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        let seq: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 1)).collect();
        let mut belady = Belady::new(3, &keys);
        let mut lru = Lru::new(3);
        let hb = hits(&mut belady, &seq);
        let hl = hits(&mut lru, &seq);
        assert!(hb >= hl);
        // Known OPT result for this sequence and size 3: 5 hits (7 faults).
        assert_eq!(hb, 5);
        check_capacity_invariant(&belady);
    }

    #[test]
    fn belady_dominates_lru_on_random_traces() {
        // MIN must never lose to LRU.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 50
        };
        let keys: Vec<u64> = (0..5000).map(|_| next()).collect();
        let seq: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 10)).collect();
        for cap in [50u64, 100, 200, 400] {
            let mut b = Belady::new(cap, &keys);
            let mut l = Lru::new(cap);
            let hb = hits(&mut b, &seq);
            let hl = hits(&mut l, &seq);
            assert!(hb >= hl, "cap {cap}: belady {hb} < lru {hl}");
        }
    }

    #[test]
    fn stats_integration() {
        let keys = [1u64, 2, 1, 3, 1];
        let seq: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 10)).collect();
        let mut b = Belady::new(20, &keys);
        let stats = run_always_admit(&mut b, &seq);
        assert_eq!(stats.accesses, 5);
        assert_eq!(stats.hits, 2); // both re-accesses of 1 hit
        assert_eq!(stats.files_written, 3);
    }

    #[test]
    fn from_next_occurrence_matches_new() {
        let keys = [5u64, 6, 5, 7, 6, 5];
        let seq: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 1)).collect();
        let mut a = Belady::new(2, &keys);
        let next = a.next_occurrence.clone();
        let mut b = Belady::from_next_occurrence(2, next);
        assert_eq!(drive(&mut a, &seq), drive(&mut b, &seq));
    }
}

//! GDSF — Greedy-Dual-Size-Frequency replacement (Cherkasova, 1998).
//!
//! The canonical web/CDN policy for *heterogeneous object sizes*, which the
//! paper's photo workload has (4 KB thumbnails to multi-MB originals). Each
//! object carries a priority `H = L + frequency × cost / size` where `L` is
//! an inflation value set to the priority of the last evicted object; small
//! and frequently-used objects are kept preferentially. Included as an
//! extra baseline: it attacks the *byte* hit-rate side of the problem,
//! orthogonally to one-time-access exclusion.

use crate::{Cache, Evicted, Key};
use otae_fxhash::FxHashMap;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
struct Entry {
    freq: u64,
    size: u64,
    priority: f64,
    seq: u64,
}

/// Byte-capacity GDSF cache.
#[derive(Debug, Clone)]
pub struct Gdsf<K> {
    capacity: u64,
    used: u64,
    /// Inflation value L: floor priority for new insertions.
    inflation: f64,
    seq: u64,
    map: FxHashMap<K, Entry>,
    /// Victim order: lowest priority first. Keyed by (priority bits, seq, key).
    order: BTreeSet<(u64, u64, K)>,
}

/// Total-order encoding of a non-negative f64 for use in a BTreeSet key.
fn bits(p: f64) -> u64 {
    debug_assert!(p >= 0.0 && p.is_finite());
    p.to_bits()
}

impl<K: Key> Gdsf<K> {
    /// New GDSF cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            inflation: 0.0,
            seq: 0,
            map: FxHashMap::default(),
            order: BTreeSet::new(),
        }
    }

    /// Current inflation value `L` (diagnostics).
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    fn priority(&self, freq: u64, size: u64) -> f64 {
        // cost = 1 (uniform miss penalty); size in KiB keeps values tame.
        self.inflation + freq as f64 / (size.max(1) as f64 / 1024.0)
    }

    fn evict_one(&mut self, evicted: &mut Vec<Evicted<K>>) {
        let victim = *self.order.iter().next().expect("over capacity implies nonempty");
        self.order.remove(&victim);
        let entry = self.map.remove(&victim.2).expect("map/order in sync");
        self.used -= entry.size;
        // Inflate: future insertions start at the evicted priority.
        self.inflation = entry.priority;
        evicted.push(Evicted { key: victim.2, size: entry.size });
    }
}

impl<K: Key> Cache<K> for Gdsf<K> {
    fn name(&self) -> &'static str {
        "GDSF"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn on_hit(&mut self, key: &K, _now: u64) {
        let Some(entry) = self.map.get_mut(key) else { return };
        let removed = self.order.remove(&(bits(entry.priority), entry.seq, *key));
        debug_assert!(removed);
        entry.freq += 1;
        entry.priority = self.inflation + entry.freq as f64 / (entry.size.max(1) as f64 / 1024.0);
        self.order.insert((bits(entry.priority), entry.seq, *key));
    }

    fn insert(&mut self, key: K, size: u64, _now: u64, evicted: &mut Vec<Evicted<K>>) {
        if size > self.capacity || self.map.contains_key(&key) {
            return;
        }
        while self.used + size > self.capacity {
            self.evict_one(evicted);
        }
        let priority = self.priority(1, size);
        let entry = Entry { freq: 1, size, priority, seq: self.seq };
        self.seq += 1;
        self.order.insert((bits(priority), entry.seq, key));
        self.map.insert(key, entry);
        self.used += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_capacity_invariant, drive};

    #[test]
    fn small_objects_preferred_over_large() {
        let mut c = Gdsf::new(4000);
        let mut ev = Vec::new();
        c.insert(1u64, 1024, 0, &mut ev); // small: priority 1.0
        c.insert(2u64, 2048, 1, &mut ev); // large: priority 0.5
        c.insert(3u64, 1024, 2, &mut ev); // forces one eviction
        assert!(!c.contains(&2), "larger object has lower priority");
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        check_capacity_invariant(&c);
    }

    #[test]
    fn frequency_raises_priority() {
        let mut c = Gdsf::new(2048);
        let mut ev = Vec::new();
        c.insert(1u64, 1024, 0, &mut ev);
        c.insert(2u64, 1024, 1, &mut ev);
        c.on_hit(&2, 2); // freq 2: priority 2.0 vs 1's 1.0
        c.insert(3u64, 1024, 3, &mut ev);
        assert!(!c.contains(&1), "lower-frequency object evicted first");
        assert!(c.contains(&2));
        check_capacity_invariant(&c);
    }

    #[test]
    fn inflation_ages_out_stale_frequent_objects() {
        let mut c = Gdsf::new(4096);
        let mut ev = Vec::new();
        // Object 1 becomes very frequent early.
        c.insert(1u64, 1024, 0, &mut ev);
        for i in 0..20 {
            c.on_hit(&1, i);
        }
        // Long stream of fresh objects inflates L past 1's static priority.
        for k in 10..200u64 {
            c.insert(k, 1024, k, &mut ev);
        }
        assert!(
            !c.contains(&1),
            "inflation must eventually age out an object that stopped being accessed"
        );
        assert!(c.inflation() > 0.0);
        check_capacity_invariant(&c);
    }

    #[test]
    fn byte_hit_rate_beats_lru_on_mixed_sizes() {
        // Many small hot objects + huge cold objects: GDSF should score more
        // total hits than LRU by refusing to let one big object flush many
        // small ones.
        let mut accesses: Vec<(u64, u64)> = Vec::new();
        for round in 0..50u64 {
            for k in 0..10u64 {
                accesses.push((k, 1024)); // 10 hot 1-KiB objects
            }
            accesses.push((1000 + round, 16 * 1024)); // cold 16-KiB scan
        }
        let mut g = Gdsf::new(20 * 1024);
        let mut l = crate::Lru::new(20 * 1024);
        let hg = drive(&mut g, &accesses).iter().filter(|&&h| h).count();
        let hl = drive(&mut l, &accesses).iter().filter(|&&h| h).count();
        assert!(hg >= hl, "GDSF {hg} vs LRU {hl}");
        check_capacity_invariant(&g);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let run = || {
            let mut c = Gdsf::new(2048);
            let mut ev = Vec::new();
            for k in 0..10u64 {
                c.insert(k, 1024, k, &mut ev);
            }
            ev
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = Gdsf::new(512);
        let mut ev = Vec::new();
        c.insert(1u64, 1024, 0, &mut ev);
        assert!(c.is_empty());
    }
}

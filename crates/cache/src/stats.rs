//! Cache performance accounting with the paper's rate definitions (§5.3).

/// Counters collected while driving a cache over a request stream.
// lint: merge-exhaustive(fingerprint)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses served from cache.
    pub hits: u64,
    /// Total bytes requested (object size per access).
    pub bytes_accessed: u64,
    /// Bytes served from cache.
    pub bytes_hit: u64,
    /// Objects written into the cache (admitted misses). "File writes" (§5.3.3).
    pub files_written: u64,
    /// Bytes written into the cache. "Byte writes" (§5.3.4).
    pub bytes_written: u64,
    /// Missed accesses that were bypassed by admission control.
    pub bypasses: u64,
    /// Objects evicted.
    pub evictions: u64,
    /// Bytes evicted.
    pub bytes_evicted: u64,
}

impl CacheStats {
    fn ratio(a: u64, b: u64) -> f64 {
        if b == 0 {
            0.0
        } else {
            a as f64 / b as f64
        }
    }

    /// File hit rate: hits / accesses (Figure 6).
    pub fn file_hit_rate(&self) -> f64 {
        Self::ratio(self.hits, self.accesses)
    }

    /// Byte hit rate: bytes hit / bytes accessed (Figure 7).
    pub fn byte_hit_rate(&self) -> f64 {
        Self::ratio(self.bytes_hit, self.bytes_accessed)
    }

    /// File write rate: files written to SSD / files accessed (Figure 8).
    pub fn file_write_rate(&self) -> f64 {
        Self::ratio(self.files_written, self.accesses)
    }

    /// Byte write rate: bytes written to SSD / bytes accessed (Figure 9,
    /// §5.3.3: "(the written data to SSD) / (the total amount of accessed data)").
    pub fn byte_write_rate(&self) -> f64 {
        Self::ratio(self.bytes_written, self.bytes_accessed)
    }

    /// Record a hit of `size` bytes.
    pub fn record_hit(&mut self, size: u64) {
        self.accesses += 1;
        self.hits += 1;
        self.bytes_accessed += size;
        self.bytes_hit += size;
    }

    /// Record an admitted miss (object written to cache).
    pub fn record_admitted_miss(&mut self, size: u64) {
        self.accesses += 1;
        self.bytes_accessed += size;
        self.files_written += 1;
        self.bytes_written += size;
    }

    /// Record a bypassed miss (object served around the cache).
    pub fn record_bypassed_miss(&mut self, size: u64) {
        self.accesses += 1;
        self.bytes_accessed += size;
        self.bypasses += 1;
    }

    /// Record an eviction.
    pub fn record_eviction(&mut self, size: u64) {
        self.evictions += 1;
        self.bytes_evicted += size;
    }

    /// Merge another stats block into this one (for sharded runs).
    ///
    /// `other` is fully destructured: adding a counter to [`CacheStats`]
    /// without deciding how it merges is a compile error here, not a field
    /// silently dropped from every shard aggregation. (The prime-sum test
    /// below then checks each field merges exactly once.)
    pub fn merge(&mut self, other: &CacheStats) {
        let CacheStats {
            accesses,
            hits,
            bytes_accessed,
            bytes_hit,
            files_written,
            bytes_written,
            bypasses,
            evictions,
            bytes_evicted,
        } = *other;
        self.accesses += accesses;
        self.hits += hits;
        self.bytes_accessed += bytes_accessed;
        self.bytes_hit += bytes_hit;
        self.files_written += files_written;
        self.bytes_written += bytes_written;
        self.bypasses += bypasses;
        self.evictions += evictions;
        self.bytes_evicted += bytes_evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_from_counters() {
        let mut s = CacheStats::default();
        s.record_hit(100);
        s.record_admitted_miss(300);
        s.record_bypassed_miss(100);
        s.record_eviction(300);
        assert_eq!(s.accesses, 3);
        assert!((s.file_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.byte_hit_rate() - 100.0 / 500.0).abs() < 1e-12);
        assert!((s.file_write_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.byte_write_rate() - 300.0 / 500.0).abs() < 1e-12);
        assert_eq!(s.bypasses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes_evicted, 300);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.file_hit_rate(), 0.0);
        assert_eq!(s.byte_hit_rate(), 0.0);
        assert_eq!(s.file_write_rate(), 0.0);
        assert_eq!(s.byte_write_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::default();
        a.record_hit(10);
        let mut b = CacheStats::default();
        b.record_admitted_miss(20);
        a.merge(&b);
        assert_eq!(a.accesses, 2);
        assert_eq!(a.bytes_accessed, 30);
        assert_eq!(a.files_written, 1);
    }

    /// Merge must cover every field: distinct primes per field in both
    /// operands, so any dropped or double-counted field breaks the exact
    /// sums. Guards the sharded service's snapshot aggregation.
    #[test]
    fn merge_covers_every_field_exactly_once() {
        let a = CacheStats {
            accesses: 2,
            hits: 3,
            bytes_accessed: 5,
            bytes_hit: 7,
            files_written: 11,
            bytes_written: 13,
            bypasses: 17,
            evictions: 19,
            bytes_evicted: 23,
        };
        let b = CacheStats {
            accesses: 29,
            hits: 31,
            bytes_accessed: 37,
            bytes_hit: 41,
            files_written: 43,
            bytes_written: 47,
            bypasses: 53,
            evictions: 59,
            bytes_evicted: 61,
        };
        let mut m = a;
        m.merge(&b);
        let expected = CacheStats {
            accesses: 31,
            hits: 34,
            bytes_accessed: 42,
            bytes_hit: 48,
            files_written: 54,
            bytes_written: 60,
            bypasses: 70,
            evictions: 78,
            bytes_evicted: 84,
        };
        assert_eq!(m, expected);

        // Merging an empty block is the identity; merge is commutative.
        let mut id = a;
        id.merge(&CacheStats::default());
        assert_eq!(id, a);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ba, m);
    }
}

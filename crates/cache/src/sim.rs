//! Minimal always-admit trace driver (the paper's "Original" configuration).
//!
//! Classifier-gated admission lives in `otae-core`; this helper exists so the
//! cache crate is independently usable and testable.

use crate::{Cache, CacheStats, Evicted, Key};

/// Drive `cache` over `(key, size)` accesses, admitting every miss, and
/// return the collected statistics.
pub fn run_always_admit<K: Key, C: Cache<K>>(cache: &mut C, accesses: &[(K, u64)]) -> CacheStats {
    let mut stats = CacheStats::default();
    let mut evicted: Vec<Evicted<K>> = Vec::new();
    for (now, &(key, size)) in accesses.iter().enumerate() {
        if cache.contains(&key) {
            cache.on_hit(&key, now as u64);
            stats.record_hit(size);
        } else {
            evicted.clear();
            cache.insert(key, size, now as u64, &mut evicted);
            stats.record_admitted_miss(size);
            for e in &evicted {
                stats.record_eviction(e.size);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lru;

    #[test]
    fn always_admit_counts_writes_per_miss() {
        let mut lru = Lru::new(1000);
        let accesses: Vec<(u64, u64)> = vec![(1, 10), (2, 10), (1, 10), (3, 10)];
        let stats = run_always_admit(&mut lru, &accesses);
        assert_eq!(stats.accesses, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.files_written, 3);
        assert_eq!(stats.bytes_written, 30);
        assert_eq!(stats.bypasses, 0);
    }

    #[test]
    fn evictions_are_counted() {
        let mut lru = Lru::new(20);
        let accesses: Vec<(u64, u64)> = (0..5).map(|k| (k, 10)).collect();
        let stats = run_always_admit(&mut lru, &accesses);
        assert_eq!(stats.files_written, 5);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.bytes_evicted, 30);
    }
}

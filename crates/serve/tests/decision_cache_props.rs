//! Property: decision-cache coherence. For any request stream and any
//! model hot-swap schedule, a verdict resolved through the memo protocol
//! (ensure current epoch → lookup → predict-and-insert on miss) equals a
//! fresh `Classifier::predict` against the model *currently* installed in
//! the gate — i.e. a cached decision can never survive a swap or a feature
//! change — and the memo never exceeds its capacity bound.

use otae_core::N_FEATURES;
use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
use otae_serve::{feature_bits, AdmissionGate, DecisionCache};
use otae_trace::ObjectId;
use proptest::prelude::*;

fn tree(threshold: f32) -> DecisionTree {
    let mut d = Dataset::new(N_FEATURES);
    for i in 0..100 {
        let mut row = [0.0f32; N_FEATURES];
        row[0] = i as f32 / 100.0;
        row[1] = 1.0 - row[0];
        d.push(&row, row[0] > threshold);
    }
    let mut t = DecisionTree::new(TreeParams::default());
    t.fit(&d);
    t
}

/// Deterministic feature row per (object, variant): repeats of the same
/// pair produce bit-identical rows (memo hits), a different variant for
/// the same object produces different bits (the guard must miss).
fn row_for(obj: u32, variant: u8) -> [f32; N_FEATURES] {
    let mut row = [0.0f32; N_FEATURES];
    let mut z = ((obj as u64) << 8) | variant as u64;
    for v in row.iter_mut() {
        z = z.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        *v = (z >> 40) as f32 / (1u64 << 24) as f32;
    }
    row
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coherence invariant, under arbitrary interleavings of repeat
    /// lookups, feature drift, and hot swaps.
    #[test]
    fn memoized_verdicts_always_match_a_fresh_predict_on_the_installed_model(
        ops in proptest::collection::vec(
            // (object, feature variant, swap roll — 0 of 0..20 ≈ 5% swaps)
            (0u32..40, 0u8..4, 0u8..20),
            1..400,
        ),
        capacity in 1usize..64,
    ) {
        let trees: Vec<DecisionTree> =
            [0.2f32, 0.4, 0.6, 0.8].iter().map(|&t| tree(t)).collect();
        let gate = AdmissionGate::new();
        gate.install(trees[0].clone());
        let mut cache = DecisionCache::new(capacity);
        let mut swaps = 0usize;

        for (obj, variant, swap_roll) in ops {
            if swap_roll == 0 {
                swaps += 1;
                gate.install(trees[swaps % trees.len()].clone());
            }
            let (model, epoch) = gate.current_with_epoch();
            let model = model.expect("gate was warmed above");

            let row = row_for(obj, variant);
            let bits = feature_bits(&row);
            cache.ensure_epoch(epoch);
            let verdict = match cache.lookup(ObjectId(obj), &bits) {
                Some(v) => v,
                None => {
                    let v = model.predict(&row);
                    cache.insert(ObjectId(obj), bits, v);
                    v
                }
            };

            prop_assert_eq!(
                verdict,
                model.predict(&row),
                "memoized verdict diverged from the installed model \
                 (obj {}, variant {}, epoch {})",
                obj, variant, epoch
            );
            prop_assert!(cache.len() <= capacity, "memo exceeded its bound");
            prop_assert_eq!(cache.epoch(), epoch);
        }
        prop_assert_eq!(gate.swaps(), swaps as u64 + 1);
    }

    /// Compiled-model swap coherence: verdicts resolved through the
    /// *compiled* batch scorer (as the shard hot path does) and memoized
    /// behave exactly like the interpreted protocol across hot swaps — a
    /// verdict memoized against a pre-swap compiled model can never be
    /// served after the swap, and every verdict equals a fresh interpreted
    /// predict on the model currently installed in the gate.
    #[test]
    fn compiled_verdicts_never_survive_a_compiled_model_swap(
        ops in proptest::collection::vec(
            // (object, feature variant, swap roll — 0 of 0..16 ≈ 6% swaps)
            (0u32..40, 0u8..4, 0u8..16),
            1..300,
        ),
        capacity in 1usize..64,
    ) {
        let thresholds = [0.2f32, 0.4, 0.6, 0.8];
        let gate = AdmissionGate::new();
        gate.install(tree(thresholds[0]));
        let mut cache = DecisionCache::new(capacity);
        let mut swaps = 0usize;

        for (obj, variant, swap_roll) in ops {
            if swap_roll == 0 {
                swaps += 1;
                gate.install(tree(thresholds[swaps % thresholds.len()]));
            }
            let (model, epoch) = gate.current_with_epoch();
            let model = model.expect("gate was warmed above");
            prop_assert!(
                model.compiled().is_some(),
                "every installed model must carry its compiled twin"
            );

            let row = row_for(obj, variant);
            let bits = feature_bits(&row);
            cache.ensure_epoch(epoch);
            let verdict = match cache.lookup(ObjectId(obj), &bits) {
                Some(v) => v,
                None => {
                    // Resolve through the compiled batch path, exactly as
                    // the shard's resolve_run does on a memo miss.
                    let mut scored = Vec::new();
                    model.score_rows_fixed(&[row], true, &mut scored);
                    let v = scored[0] >= 0.5;
                    cache.insert(ObjectId(obj), bits, v);
                    v
                }
            };

            prop_assert_eq!(
                verdict,
                model.predict(&row),
                "compiled memoized verdict diverged from the installed \
                 model's interpreted walk (obj {}, variant {}, epoch {})",
                obj, variant, epoch
            );
            prop_assert!(cache.len() <= capacity, "memo exceeded its bound");
            prop_assert_eq!(cache.epoch(), epoch);
        }
        prop_assert_eq!(gate.swaps(), swaps as u64 + 1);
    }

    /// A swap invalidates wholesale: immediately after pointing the cache
    /// at a new epoch, every previously memoized object misses.
    #[test]
    fn every_memoized_verdict_dies_on_a_swap(
        objs in proptest::collection::vec(0u32..100, 1..50),
    ) {
        let model = tree(0.5);
        let mut cache = DecisionCache::new(64);
        cache.ensure_epoch(1);
        for &o in &objs {
            let row = row_for(o, 0);
            cache.insert(ObjectId(o), feature_bits(&row), model.predict(&row));
        }
        cache.ensure_epoch(2);
        prop_assert!(cache.is_empty());
        for &o in &objs {
            prop_assert_eq!(cache.lookup(ObjectId(o), &feature_bits(&row_for(o, 0))), None);
        }
    }
}

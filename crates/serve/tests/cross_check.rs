//! Cross-checks between the concurrent service and the single-threaded
//! simulator, plus conservation properties under real concurrency.
//!
//! With one shard, one worker, one client and the inline trainer, the
//! service is an elaborate way of running the simulator: same criteria,
//! same feature stream, same model at every stream position, same cache
//! clock. Every counter must therefore match `pipeline::run` **exactly**
//! — not approximately — for every admission mode.

use otae_core::pipeline::{run, Mode, PolicyKind, RunConfig};
use otae_serve::{serve_trace, LoadConfig, ServeConfig, TrainerMode};
use otae_trace::{generate, Trace, TraceConfig};
use proptest::prelude::*;

fn trace(seed: u64, n_objects: u32) -> Trace {
    generate(&TraceConfig { n_objects: n_objects as usize, seed, ..Default::default() })
}

fn cap(t: &Trace, frac: f64) -> u64 {
    (t.unique_bytes() as f64 * frac) as u64
}

fn assert_exact_match(t: &Trace, policy: PolicyKind, mode: Mode, capacity: u64) {
    let sim = run(t, &RunConfig::new(policy, mode, capacity));
    let cfg = ServeConfig::new(policy, mode, capacity);
    let srv = serve_trace(t, &cfg, &LoadConfig::default());

    assert_eq!(srv.replayed as usize, t.len());
    assert_eq!(
        srv.snapshot.stats, sim.stats,
        "{policy:?}/{mode:?}: serve counters must equal the simulator's"
    );
    assert_eq!(srv.criteria.m, sim.criteria.m, "criteria must resolve identically");
    if let Some(report) = &sim.classifier {
        assert_eq!(
            srv.snapshot.confusion, report.overall,
            "classifier decisions must be identical"
        );
        assert_eq!(srv.snapshot.rectifications, report.rectifications);
        assert_eq!(srv.trainings, report.trainings);
    }
    assert!(
        (srv.mean_latency_us - sim.mean_latency_us).abs() < 1e-6,
        "latency model must agree: {} vs {}",
        srv.mean_latency_us,
        sim.mean_latency_us
    );
}

#[test]
fn one_shard_one_worker_reproduces_pipeline_original() {
    let t = trace(23, 4_000);
    assert_exact_match(&t, PolicyKind::Lru, Mode::Original, cap(&t, 0.02));
}

#[test]
fn one_shard_one_worker_reproduces_pipeline_ideal() {
    let t = trace(23, 4_000);
    assert_exact_match(&t, PolicyKind::Lru, Mode::Ideal, cap(&t, 0.02));
}

#[test]
fn one_shard_one_worker_reproduces_pipeline_proposal() {
    let t = trace(23, 4_000);
    assert_exact_match(&t, PolicyKind::Lru, Mode::Proposal, cap(&t, 0.02));
}

#[test]
fn one_shard_one_worker_reproduces_pipeline_second_hit() {
    let t = trace(23, 4_000);
    assert_exact_match(&t, PolicyKind::Lru, Mode::SecondHit, cap(&t, 0.02));
}

#[test]
fn exactness_holds_across_policies() {
    let t = trace(41, 3_000);
    for policy in [PolicyKind::Fifo, PolicyKind::S3Lru, PolicyKind::Arc, PolicyKind::Lirs] {
        assert_exact_match(&t, policy, Mode::Proposal, cap(&t, 0.02));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under 4 shards and 4 workers the interleaving is nondeterministic,
    /// but the books must still balance: every request is counted exactly
    /// once, every access is a hit, an admitted miss, or a bypass, bytes
    /// follow files, and the per-shard blocks sum to the merged block.
    #[test]
    fn four_worker_aggregates_are_conserved(
        seed in 0u64..20,
        mode_sel in 0usize..3,
        frac in 0.01f64..0.08,
    ) {
        let t = trace(seed, 2_000);
        let mode = [Mode::Original, Mode::Ideal, Mode::Proposal][mode_sel];
        let mut cfg = ServeConfig::new(PolicyKind::Lru, mode, cap(&t, frac));
        cfg.shards = 4;
        cfg.workers = 4;
        cfg.trainer = TrainerMode::Background;
        let load = LoadConfig { clients: 2, target_qps: 0.0, duration: None };
        let r = serve_trace(&t, &cfg, &load);

        let s = &r.snapshot.stats;
        prop_assert_eq!(r.replayed as usize, t.len());
        prop_assert_eq!(s.accesses as usize, t.len());
        prop_assert_eq!(s.accesses, s.hits + s.files_written + s.bypasses);
        prop_assert_eq!(s.bytes_written, {
            let mut total = 0u64;
            for ps in &r.snapshot.per_shard {
                total += ps.bytes_written;
            }
            total
        });
        let mut sum = otae_cache::CacheStats::default();
        for ps in &r.snapshot.per_shard {
            sum.merge(ps);
        }
        prop_assert_eq!(sum, *s, "per-shard blocks must sum to the merged block");
        prop_assert_eq!(r.snapshot.per_shard.len(), 4);
        prop_assert_eq!(r.snapshot.response.requests(), s.accesses);
        prop_assert!(s.bytes_hit <= s.bytes_accessed);
        prop_assert!(s.hits <= s.accesses);
        if mode == Mode::Original {
            prop_assert_eq!(s.bypasses, 0);
        }
    }
}

//! The background retrainer thread (the production training path).
//!
//! Client threads forward one [`TrainMsg`] per submitted request, batched
//! into [`TrainBatch`] flushes so the sample channel (and the condvar wake
//! behind it) is touched once per ~[`SAMPLE_FLUSH`](crate::SAMPLE_FLUSH)
//! requests rather than per request; the retrainer owns the minute-capped
//! sampler and the daily-training
//! schedule, and installs each freshly fitted tree into the shared
//! [`AdmissionGate`](crate::AdmissionGate) — a hot swap the request
//! workers observe without ever blocking on training. Every step consults
//! the run's [`FaultPlan`], so a harness can fail a training job, stall an
//! install, or lose a model at the gate and assert the service degrades to
//! its previous model (or, cold, to admit-all) instead of misbehaving.

use crate::fault::{FaultPlan, RetrainFault, SwapFault};
use crate::gate::AdmissionGate;
use crossbeam::channel::Receiver;
use otae_core::daily::{DailyTrainer, MinuteSampler, TrainedModel};
use otae_core::{TrainingConfig, N_FEATURES};

/// One observed request, as forwarded to the retrainer.
#[derive(Debug, Clone)]
pub struct TrainMsg {
    /// Request timestamp (seconds since trace start).
    pub ts: u64,
    /// Feature row extracted for the request.
    pub features: [f32; N_FEATURES],
    /// Offline one-time-access label.
    pub one_time: bool,
}

/// A client-side flush of forwarded samples: what actually travels on the
/// sample channel. Batching is a transport detail — the retrainer consumes
/// the flattened message stream, so per-message accounting (`seen` counts,
/// stall deadlines, minute-sampler offers) is identical to an unbatched
/// channel carrying the same messages in the same per-client order.
pub type TrainBatch = Vec<TrainMsg>;

/// What the retrainer thread did over one run.
///
/// Every fitted model is accounted for exactly once:
/// `installs + failed + dropped_installs == trainings` at stream end
/// (a stalled model eventually installs, is superseded by a fresher one, or
/// flushes when the stream closes — never silently lost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrainerReport {
    /// Models fitted by the daily trainer.
    pub trainings: u32,
    /// Models actually installed into the gate.
    pub installs: u32,
    /// Trainings lost to an injected `RetrainFault::Fail`.
    pub failed: u32,
    /// Installs that were stalled by an injected `RetrainFault::Stall`
    /// (they may later land or be superseded).
    pub deferred: u32,
    /// Models lost at the gate to an injected `SwapFault::Drop`, plus
    /// stalled models superseded by a fresher training before landing.
    pub dropped_installs: u32,
}

/// Drain `rx` until every sender hangs up, sampling records and retraining
/// at each daily boundary.
///
/// With several client threads the forwarded stream is only approximately
/// time-ordered (each client submits its own stride in order); the sampler
/// and trainer tolerate the small interleaving skew, which matches how a
/// production log tailer would behave.
pub fn run_retrainer(
    rx: Receiver<TrainBatch>,
    gate: &AdmissionGate,
    training: &TrainingConfig,
    v: f32,
    plan: &dyn FaultPlan,
) -> RetrainerReport {
    let mut trainer = DailyTrainer::new(training.clone(), v);
    let mut sampler = MinuteSampler::new(training.records_per_minute);
    let mut report = RetrainerReport::default();
    // A model whose install was stalled, due once `seen` reaches the mark.
    let mut pending: Option<(TrainedModel, u64)> = None;
    let mut attempt = 0u32;
    let mut swap_attempt = 0u64;
    let mut seen = 0u64;
    // Batches are flattened here: `seen` counts messages, not flushes, so a
    // `RetrainFault::Stall { messages }` deadline means the same thing at
    // every flush size.
    for msg in rx.iter().flatten() {
        seen += 1;
        if let Some((model, due)) = pending.take() {
            if seen >= due {
                install(model, gate, plan, &mut swap_attempt, &mut report);
            } else {
                pending = Some((model, due));
            }
        }
        // Training (and compiling, a sliver of the fit cost) happens here,
        // on the retrainer thread — workers only ever see finished models.
        if let Some(model) = trainer.maybe_retrain_compiled(msg.ts, &mut sampler) {
            match plan.retrain_fault(attempt) {
                RetrainFault::Proceed => {
                    // A fresher model supersedes any still-stalled older one
                    // (installing the stale model later would roll the gate
                    // backwards); the loss is tallied as a dropped install.
                    if pending.take().is_some() {
                        report.dropped_installs += 1;
                    }
                    install(model, gate, plan, &mut swap_attempt, &mut report)
                }
                RetrainFault::Fail => report.failed += 1,
                RetrainFault::Stall { messages } => {
                    report.deferred += 1;
                    if pending.replace((model, seen + messages)).is_some() {
                        report.dropped_installs += 1;
                    }
                }
            }
            attempt += 1;
        }
        sampler.offer(msg.ts, msg.features, msg.one_time);
    }
    // Stream over: a still-stalled install lands now (the job finished late).
    if let Some((model, _)) = pending.take() {
        install(model, gate, plan, &mut swap_attempt, &mut report);
    }
    report.trainings = trainer.trainings;
    report
}

fn install(
    model: TrainedModel,
    gate: &AdmissionGate,
    plan: &dyn FaultPlan,
    swap_attempt: &mut u64,
    report: &mut RetrainerReport,
) {
    let fault = plan.swap_fault(*swap_attempt);
    *swap_attempt += 1;
    match fault {
        SwapFault::Install => {
            gate.install_trained(model);
            report.installs += 1;
        }
        SwapFault::Drop => report.dropped_installs += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::NoFaults;
    use crossbeam::channel::unbounded;
    use otae_trace::diurnal::DAY;

    /// Two days of separable samples (x > 0.5 means one-time), flushed in
    /// uneven batches so the tests exercise the batched transport.
    fn feed_two_days(tx: &crossbeam::channel::Sender<TrainBatch>) {
        let mut batch = TrainBatch::new();
        for day in 0..2u64 {
            for i in 0..600u64 {
                let ts = day * DAY + i * 120;
                let mut features = [0.0f32; N_FEATURES];
                features[0] = (i % 100) as f32 / 100.0;
                batch.push(TrainMsg { ts, features, one_time: (i % 100) >= 50 });
                if batch.len() == 97 {
                    tx.send(std::mem::take(&mut batch)).unwrap();
                }
            }
        }
        if !batch.is_empty() {
            tx.send(batch).unwrap();
        }
    }

    #[test]
    fn trains_at_daily_boundaries_and_installs() {
        let (tx, rx) = unbounded();
        let gate = AdmissionGate::new();
        let cfg = TrainingConfig::default();
        feed_two_days(&tx);
        drop(tx);
        let report = run_retrainer(rx, &gate, &cfg, 2.0, &NoFaults);
        assert_eq!(report.trainings, 1, "day-1 boundary fires once within 2 days");
        assert_eq!(report.installs, 1);
        assert_eq!(gate.swaps(), 1);
        let model = gate.current().expect("model installed");
        let mut hi = [0.0f32; N_FEATURES];
        hi[0] = 0.95;
        let mut lo = [0.0f32; N_FEATURES];
        lo[0] = 0.05;
        assert!(model.predict(&hi));
        assert!(!model.predict(&lo));
    }

    #[test]
    fn empty_stream_never_trains() {
        let (tx, rx) = unbounded::<TrainBatch>();
        drop(tx);
        let gate = AdmissionGate::new();
        let report = run_retrainer(rx, &gate, &TrainingConfig::default(), 2.0, &NoFaults);
        assert_eq!(report, RetrainerReport::default());
        assert!(!gate.is_warm());
    }

    #[test]
    fn failed_training_leaves_the_gate_cold() {
        #[derive(Debug)]
        struct FailAll;
        impl FaultPlan for FailAll {
            fn retrain_fault(&self, _attempt: u32) -> RetrainFault {
                RetrainFault::Fail
            }
        }
        let (tx, rx) = unbounded();
        let gate = AdmissionGate::new();
        feed_two_days(&tx);
        drop(tx);
        let report = run_retrainer(rx, &gate, &TrainingConfig::default(), 2.0, &FailAll);
        assert_eq!(report.trainings, 1, "the model was fitted…");
        assert_eq!(report.failed, 1, "…then lost");
        assert_eq!(report.installs, 0);
        assert!(!gate.is_warm(), "no model must reach the gate");
    }

    #[test]
    fn stalled_install_lands_late_but_lands() {
        #[derive(Debug)]
        struct StallFirst;
        impl FaultPlan for StallFirst {
            fn retrain_fault(&self, attempt: u32) -> RetrainFault {
                if attempt == 0 {
                    RetrainFault::Stall { messages: 200 }
                } else {
                    RetrainFault::Proceed
                }
            }
        }
        let (tx, rx) = unbounded();
        let gate = AdmissionGate::new();
        feed_two_days(&tx);
        drop(tx);
        let report = run_retrainer(rx, &gate, &TrainingConfig::default(), 2.0, &StallFirst);
        assert_eq!(report.trainings, 1);
        assert_eq!(report.deferred, 1);
        assert_eq!(report.installs, 1, "the stalled install must still land");
        assert!(gate.is_warm());
    }

    #[test]
    fn dropped_swap_keeps_the_previous_model() {
        #[derive(Debug)]
        struct DropAllSwaps;
        impl FaultPlan for DropAllSwaps {
            fn swap_fault(&self, _attempt: u64) -> SwapFault {
                SwapFault::Drop
            }
        }
        let (tx, rx) = unbounded();
        let gate = AdmissionGate::new();
        feed_two_days(&tx);
        drop(tx);
        let report = run_retrainer(rx, &gate, &TrainingConfig::default(), 2.0, &DropAllSwaps);
        assert_eq!(report.trainings, 1);
        assert_eq!(report.dropped_installs, 1);
        assert_eq!(report.installs, 0);
        assert!(!gate.is_warm(), "the dropped model never reached the gate");
    }
}

//! The background retrainer thread (the production training path).
//!
//! Client threads forward one [`TrainMsg`] per submitted request; the
//! retrainer owns the minute-capped sampler and the daily-training
//! schedule, and installs each freshly fitted tree into the shared
//! [`AdmissionGate`](crate::AdmissionGate) — a hot swap the request
//! workers observe without ever blocking on training.

use crate::gate::AdmissionGate;
use crossbeam::channel::Receiver;
use otae_core::daily::{DailyTrainer, MinuteSampler};
use otae_core::{TrainingConfig, N_FEATURES};

/// One observed request, as forwarded to the retrainer.
#[derive(Debug, Clone)]
pub struct TrainMsg {
    /// Request timestamp (seconds since trace start).
    pub ts: u64,
    /// Feature row extracted for the request.
    pub features: [f32; N_FEATURES],
    /// Offline one-time-access label.
    pub one_time: bool,
}

/// Drain `rx` until every sender hangs up, sampling records and retraining
/// at each daily boundary. Returns the number of completed trainings.
///
/// With several client threads the forwarded stream is only approximately
/// time-ordered (each client submits its own stride in order); the sampler
/// and trainer tolerate the small interleaving skew, which matches how a
/// production log tailer would behave.
pub fn run_retrainer(
    rx: Receiver<TrainMsg>,
    gate: &AdmissionGate,
    training: &TrainingConfig,
    v: f32,
) -> u32 {
    let mut trainer = DailyTrainer::new(training.clone(), v);
    let mut sampler = MinuteSampler::new(training.records_per_minute);
    for msg in rx.iter() {
        if let Some(model) = trainer.maybe_retrain(msg.ts, &mut sampler) {
            gate.install(model);
        }
        sampler.offer(msg.ts, msg.features, msg.one_time);
    }
    trainer.trainings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use otae_trace::diurnal::DAY;

    #[test]
    fn trains_at_daily_boundaries_and_installs() {
        let (tx, rx) = unbounded();
        let gate = AdmissionGate::new();
        let cfg = TrainingConfig::default();
        // Two days of separable samples: x > 0.5 means one-time.
        for day in 0..2u64 {
            for i in 0..600u64 {
                let ts = day * DAY + i * 120;
                let mut features = [0.0f32; N_FEATURES];
                features[0] = (i % 100) as f32 / 100.0;
                tx.send(TrainMsg { ts, features, one_time: (i % 100) >= 50 }).unwrap();
            }
        }
        drop(tx);
        let trainings = run_retrainer(rx, &gate, &cfg, 2.0);
        assert_eq!(trainings, 1, "day-1 boundary fires once within 2 days");
        assert_eq!(gate.swaps(), 1);
        let model = gate.current().expect("model installed");
        use otae_ml::Classifier;
        let mut hi = [0.0f32; N_FEATURES];
        hi[0] = 0.95;
        let mut lo = [0.0f32; N_FEATURES];
        lo[0] = 0.05;
        assert!(model.predict(&hi));
        assert!(!model.predict(&lo));
    }

    #[test]
    fn empty_stream_never_trains() {
        let (tx, rx) = unbounded::<TrainMsg>();
        drop(tx);
        let gate = AdmissionGate::new();
        assert_eq!(run_retrainer(rx, &gate, &TrainingConfig::default(), 2.0), 0);
        assert!(!gate.is_warm());
    }
}

//! Prepared requests: the unit of work flowing through the service.
//!
//! Feature extraction is inherently sequential (each request's features
//! depend on the whole stream before it, §3.2), so a single *prepare* pass
//! walks the trace in order and emits self-contained [`PreparedRequest`]s
//! that client threads can then submit and worker threads process in any
//! interleaving without touching shared extractor state.

use crate::fault::SwapFault;
use crate::gate::{AdmissionGate, GateModel};
use crate::service::{ServeConfig, TrainerMode};
use otae_core::daily::{DailyTrainer, MinuteSampler};
use otae_core::pipeline::Mode;
use otae_core::{FeatureExtractor, ReaccessIndex, N_FEATURES};
use otae_trace::{ObjectId, Trace};
use std::sync::Arc;

/// Where a request's admission model comes from.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// Model resolved when the request entered the system; the worker uses
    /// this exact snapshot. This makes a 1-shard/1-worker replay reproduce
    /// the single-threaded simulator request for request, because a queued
    /// request can never observe a model trained after its enqueue point.
    /// `epoch` is the gate's install count when the snapshot was taken —
    /// the key the per-shard decision cache memoizes verdicts under.
    Stamped {
        /// The snapshotted model (`None` while the gate is cold).
        model: Option<Arc<GateModel>>,
        /// Gate epoch the snapshot was taken at.
        epoch: u64,
    },
    /// Model resolved by the worker at dispatch time from the shared
    /// [`AdmissionGate`] — the production path exercised by the background
    /// retrainer.
    Gate,
}

/// One request, fully prepared for concurrent processing.
#[derive(Debug, Clone)]
pub struct PreparedRequest {
    /// Position in the trace; doubles as the cache clock (`now`).
    pub idx: u64,
    /// Trace timestamp in seconds (drives retraining boundaries).
    pub ts: u64,
    /// Requested object.
    pub object: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// Feature row extracted at stream position `idx` (Proposal mode).
    pub features: [f32; N_FEATURES],
    /// Offline one-time-access label (metrics and Ideal mode only).
    pub truth: bool,
    /// Admission-model resolution for this request.
    pub model: ModelSource,
}

/// Output of the prepare pass.
pub struct PreparedTrace {
    /// Requests in trace order.
    pub requests: Vec<PreparedRequest>,
    /// Daily trainings completed during prepare (inline trainer only).
    pub trainings: u32,
    /// Installs dropped by an injected [`SwapFault::Drop`] (inline trainer
    /// only; the background path accounts its own drops in the retrainer).
    pub dropped_installs: u32,
}

/// Walk the trace once, extracting features and (for the inline trainer)
/// driving the daily retraining cycle, stamping each request with its
/// model snapshot. `m` and `v` are the resolved criteria threshold and
/// cost-matrix value.
pub fn prepare(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &ServeConfig,
    gate: &AdmissionGate,
    m: u64,
    v: f32,
) -> PreparedTrace {
    let is_proposal = cfg.mode == Mode::Proposal;
    let inline = is_proposal && cfg.trainer == TrainerMode::Inline;
    let mut trainer = DailyTrainer::new(cfg.training.clone(), v);
    let mut sampler = MinuteSampler::new(cfg.training.records_per_minute);
    let mut extractor = FeatureExtractor::new(trace);

    let mut requests = Vec::with_capacity(trace.len());
    let mut swap_attempt = 0u64;
    let mut dropped_installs = 0u32;
    for (i, req) in trace.requests.iter().enumerate() {
        let truth = index.is_one_time(i, m);
        let mut features = [0.0f32; N_FEATURES];
        if is_proposal {
            if inline {
                if let Some(model) = trainer.maybe_retrain_compiled(req.ts, &mut sampler) {
                    // The same swap-fault seam the background retrainer
                    // consults: a dropped install leaves the previous model
                    // (and epoch) in place, deterministically, so the
                    // differential oracle can exercise swap faults on the
                    // exact 1×1 inline path too.
                    match cfg.faults.swap_fault(swap_attempt) {
                        SwapFault::Install => gate.install_trained(model),
                        SwapFault::Drop => dropped_installs += 1,
                    }
                    swap_attempt += 1;
                }
            }
            features = extractor.extract(trace, req);
            if inline {
                sampler.offer(req.ts, features, truth);
            }
            extractor.update(trace, req);
        }
        let model = if !is_proposal {
            // Original/Ideal and the miss filters (SecondHit, TinyLFU,
            // RejectX, CoinFlip) never consult a model; stamp None so
            // workers skip the gate entirely.
            ModelSource::Stamped { model: None, epoch: 0 }
        } else if inline {
            let (model, epoch) = gate.current_with_epoch();
            ModelSource::Stamped { model, epoch }
        } else {
            ModelSource::Gate
        };
        requests.push(PreparedRequest {
            idx: i as u64,
            ts: req.ts,
            object: req.object,
            size: trace.photo(req.object).size as u64,
            features,
            truth,
            model,
        });
    }
    PreparedTrace { requests, trainings: trainer.trainings, dropped_installs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_core::pipeline::PolicyKind;
    use otae_trace::{generate, TraceConfig};

    fn small_trace() -> Trace {
        generate(&TraceConfig { n_objects: 2_000, seed: 11, ..Default::default() })
    }

    #[test]
    fn original_mode_prepares_without_models() {
        let t = small_trace();
        let index = ReaccessIndex::build(&t);
        let cfg = ServeConfig::new(PolicyKind::Lru, Mode::Original, 1 << 24);
        let gate = AdmissionGate::new();
        let p = prepare(&t, &index, &cfg, &gate, 100, 2.0);
        assert_eq!(p.requests.len(), t.len());
        assert_eq!(p.trainings, 0);
        assert!(!gate.is_warm());
        assert!(p
            .requests
            .iter()
            .all(|r| matches!(r.model, ModelSource::Stamped { model: None, .. })));
        // idx is the trace position.
        assert!(p.requests.iter().enumerate().all(|(i, r)| r.idx == i as u64));
    }

    #[test]
    fn inline_proposal_stamps_models_after_first_training() {
        let t = small_trace();
        let index = ReaccessIndex::build(&t);
        let cfg = ServeConfig::new(PolicyKind::Lru, Mode::Proposal, 1 << 24);
        let gate = AdmissionGate::new();
        let p = prepare(&t, &index, &cfg, &gate, 100, 2.0);
        assert!(p.trainings >= 7, "9-day trace retrains daily: {}", p.trainings);
        assert_eq!(gate.swaps(), p.trainings as u64);
        // Cold prefix unstamped, warm suffix stamped.
        let first_stamped = p
            .requests
            .iter()
            .position(|r| matches!(&r.model, ModelSource::Stamped { model: Some(_), .. }))
            .expect("some request must carry a model");
        assert!(first_stamped > 0, "day 0 runs cold");
        assert!(p.requests[..first_stamped]
            .iter()
            .all(|r| matches!(&r.model, ModelSource::Stamped { model: None, .. })));
        // Stamped epochs are nondecreasing and track the install count.
        let mut last_epoch = 0;
        for r in &p.requests {
            if let ModelSource::Stamped { epoch, .. } = r.model {
                assert!(epoch >= last_epoch);
                last_epoch = epoch;
            }
        }
        assert_eq!(last_epoch, gate.swaps());
    }

    #[test]
    fn inline_proposal_swap_faults_drop_installs_deterministically() {
        use crate::fault::FaultPlan;

        /// Drops every even-numbered install attempt.
        #[derive(Debug)]
        struct DropEvenSwaps;
        impl FaultPlan for DropEvenSwaps {
            fn swap_fault(&self, attempt: u64) -> SwapFault {
                if attempt.is_multiple_of(2) {
                    SwapFault::Drop
                } else {
                    SwapFault::Install
                }
            }
        }

        let t = small_trace();
        let index = ReaccessIndex::build(&t);
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Proposal, 1 << 24);
        cfg.faults = Arc::new(DropEvenSwaps);
        let gate = AdmissionGate::new();
        let p = prepare(&t, &index, &cfg, &gate, 100, 2.0);
        assert!(p.trainings >= 7);
        assert_eq!(p.dropped_installs, p.trainings.div_ceil(2), "even attempts dropped");
        assert_eq!(gate.swaps(), (p.trainings / 2) as u64, "odd attempts installed");
    }

    #[test]
    fn background_proposal_defers_to_the_gate() {
        let t = small_trace();
        let index = ReaccessIndex::build(&t);
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Proposal, 1 << 24);
        cfg.trainer = TrainerMode::Background;
        let gate = AdmissionGate::new();
        let p = prepare(&t, &index, &cfg, &gate, 100, 2.0);
        assert_eq!(p.trainings, 0, "background mode trains in the retrainer thread");
        assert!(p.requests.iter().all(|r| matches!(r.model, ModelSource::Gate)));
    }
}

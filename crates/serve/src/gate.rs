//! The shared admission-model slot (hot-swap seam).

use otae_core::TrainedModel;
use otae_ml::{Classifier, CompiledTree, DecisionTree};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An installed admission model: the interpreted tree paired with its
/// branchless compiled twin (see [`otae_ml::compiled`]).
///
/// Compilation happens exactly once, at install (or earlier, at the train
/// boundary via [`TrainedModel`]) — never on the request path. The two
/// representations score bit-identically, so which one a worker consults
/// is purely a throughput knob. `compiled` is `None` only for trees that
/// cannot be packed into the compact node table; scoring then falls back
/// to the interpreted walk, degrading without panicking.
#[derive(Debug)]
pub struct GateModel {
    tree: DecisionTree,
    compiled: Option<CompiledTree>,
}

impl GateModel {
    /// Wrap a freshly trained tree, compiling it now.
    pub fn new(tree: DecisionTree) -> Self {
        let compiled = tree.compile().and_then(otae_ml::CompiledModel::into_tree);
        Self { tree, compiled }
    }

    /// Wrap a model that was already compiled at its train boundary.
    pub fn from_trained(model: TrainedModel) -> Self {
        Self { tree: model.tree, compiled: model.compiled }
    }

    /// The interpreted tree (reference semantics).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The compiled twin, when the tree compiled.
    pub fn compiled(&self) -> Option<&CompiledTree> {
        self.compiled.as_ref()
    }

    /// Positive-class confidence for one row (interpreted walk).
    pub fn score(&self, row: &[f32]) -> f32 {
        self.tree.score(row)
    }

    /// Hard decision at the 0.5 threshold (interpreted walk).
    pub fn predict(&self, row: &[f32]) -> bool {
        self.tree.predict(row)
    }

    /// Score fixed-width rows, appended to `out`: the compiled
    /// level-synchronous walk when `use_compiled` holds (and the model
    /// compiled), else per-row interpreted scores. Bit-identical either
    /// way.
    pub fn score_rows_fixed<const F: usize>(
        &self,
        rows: &[[f32; F]],
        use_compiled: bool,
        out: &mut Vec<f32>,
    ) {
        match &self.compiled {
            Some(ct) if use_compiled => ct.score_rows_fixed(rows, out),
            _ => out.extend(rows.iter().map(|r| self.tree.score(r))),
        }
    }
}

/// Shared slot holding the current admission classifier.
///
/// Request workers take a read lock only long enough to clone the `Arc`
/// (nanoseconds), then classify against their private reference, so a
/// retrainer swapping in a freshly trained tree never stalls the request
/// path: in-flight requests finish against the model they resolved, new
/// requests see the new one.
#[derive(Debug, Default)]
pub struct AdmissionGate {
    /// Model plus its epoch, updated together under the lock so a snapshot
    /// can never pair a model with another epoch (decision caches key
    /// memoized predictions by epoch — a mismatched pair would let a cached
    /// decision survive a swap).
    slot: RwLock<(Option<Arc<GateModel>>, u64)>,
    /// Lock-free mirror of the epoch, so workers can poll "did the model
    /// change?" with one relaxed load instead of taking the read lock per
    /// request. May briefly lag the locked epoch; it never runs ahead.
    swaps: AtomicU64,
}

impl AdmissionGate {
    /// Empty gate: no model installed, every miss is admitted (cold-start
    /// behaves like the paper's Original mode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current model (cheap: read-lock + `Arc` clone).
    pub fn current(&self) -> Option<Arc<GateModel>> {
        self.slot.read().0.clone()
    }

    /// Snapshot the current model together with its epoch (the install
    /// count at the time the model was installed). The pair is read under
    /// one lock, so it is always internally consistent.
    pub fn current_with_epoch(&self) -> (Option<Arc<GateModel>>, u64) {
        let slot = self.slot.read();
        (slot.0.clone(), slot.1)
    }

    /// Install a freshly trained tree, compiling it here (install is off
    /// the request path) and replacing the previous model.
    pub fn install(&self, model: DecisionTree) {
        self.install_arc(Arc::new(GateModel::new(model)));
    }

    /// Install a model that was compiled at its train boundary.
    pub fn install_trained(&self, model: TrainedModel) {
        self.install_arc(Arc::new(GateModel::from_trained(model)));
    }

    /// Install an already-shared model.
    pub fn install_arc(&self, model: Arc<GateModel>) {
        let epoch = {
            let mut slot = self.slot.write();
            slot.0 = Some(model);
            slot.1 += 1;
            slot.1
        };
        self.swaps.store(epoch, Ordering::Release);
    }

    /// Number of models installed so far (0 = still cold). Also the current
    /// model epoch — a cheap staleness hint for cached gate snapshots.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// True once a model has been installed.
    pub fn is_warm(&self) -> bool {
        self.swaps() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_ml::{Classifier, Dataset, TreeParams};

    fn tree(threshold: f32) -> DecisionTree {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            let x = i as f32 / 100.0;
            d.push(&[x], x > threshold);
        }
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        t
    }

    #[test]
    fn starts_cold_and_warms_on_install() {
        let gate = AdmissionGate::new();
        assert!(gate.current().is_none());
        assert!(!gate.is_warm());
        gate.install(tree(0.5));
        assert!(gate.is_warm());
        assert_eq!(gate.swaps(), 1);
        let m = gate.current().expect("installed");
        assert!(m.predict(&[0.9]));
        assert!(!m.predict(&[0.1]));
    }

    #[test]
    fn installed_models_carry_a_bit_identical_compiled_twin() {
        let gate = AdmissionGate::new();
        gate.install(tree(0.5));
        let m = gate.current().expect("installed");
        let ct = m.compiled().expect("fit-built trees always compile");
        let rows: Vec<[f32; 1]> = (0..100).map(|i| [i as f32 / 100.0]).collect();
        for row in &rows {
            assert_eq!(ct.score(row).to_bits(), m.score(row).to_bits());
        }
        // Both arms of the fixed-width entry point agree bitwise.
        let mut compiled = Vec::new();
        m.score_rows_fixed(&rows, true, &mut compiled);
        let mut interpreted = Vec::new();
        m.score_rows_fixed(&rows, false, &mut interpreted);
        assert_eq!(
            compiled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            interpreted.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn epoch_tracks_installs_and_stays_paired_with_the_model() {
        let gate = AdmissionGate::new();
        let (m, e) = gate.current_with_epoch();
        assert!(m.is_none());
        assert_eq!(e, 0);
        gate.install(tree(0.5));
        let (m, e) = gate.current_with_epoch();
        assert!(m.is_some());
        assert_eq!(e, 1);
        gate.install(tree(0.2));
        assert_eq!(gate.current_with_epoch().1, 2);
        assert_eq!(gate.swaps(), 2);
    }

    #[test]
    fn swap_replaces_model_but_keeps_old_snapshots_alive() {
        let gate = AdmissionGate::new();
        gate.install(tree(0.5));
        let old = gate.current().expect("first");
        gate.install(tree(0.2));
        let new = gate.current().expect("second");
        assert_eq!(gate.swaps(), 2);
        // The old snapshot still classifies with the old boundary.
        assert!(!old.predict(&[0.4]));
        assert!(new.predict(&[0.4]));
    }

    #[test]
    fn concurrent_readers_see_some_installed_model() {
        let gate = std::sync::Arc::new(AdmissionGate::new());
        gate.install(tree(0.5));
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let gate = std::sync::Arc::clone(&gate);
                s.spawn(move |_| {
                    for _ in 0..1000 {
                        assert!(gate.current().is_some());
                    }
                });
            }
            for t in [0.3f32, 0.6, 0.8] {
                gate.install(tree(t));
            }
        })
        .unwrap();
        assert_eq!(gate.swaps(), 4);
    }
}

//! Time sources for the service: real wall-clock for production runs and a
//! virtual clock for the deterministic fault-injection harness.
//!
//! The replay path touches time in two places — client pacing sleeps and the
//! duration cap — and both go through a [`ClockHandle`] so a harness run can
//! substitute virtual time: sleeps become instantaneous jumps of a shared
//! atomic counter and the whole replay is schedule-independent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Monotonic virtual time in nanoseconds, shared by every thread of a run.
///
/// Time only moves when someone sleeps against a schedule ([`ClockHandle::
/// sleep_until`]) or advances it explicitly, so a virtual-clock replay is as
/// fast as the hardware allows regardless of the configured pacing.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// Clock starting at `t = 0`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Clock starting at an arbitrary (e.g. seed-derived) offset, for
    /// harness runs that model joining a stream mid-flight.
    pub fn starting_at(offset: Duration) -> Arc<Self> {
        Arc::new(Self { nanos: AtomicU64::new(offset.as_nanos() as u64) })
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    /// Advance to `t` if `t` is in the future (monotonic: never moves back).
    pub fn advance_to(&self, t: Duration) {
        self.nanos.fetch_max(t.as_nanos() as u64, Ordering::AcqRel);
    }

    /// Advance by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.nanos.fetch_add(delta.as_nanos() as u64, Ordering::AcqRel);
    }
}

/// Which time source a serve run uses.
#[derive(Debug, Clone, Default)]
pub enum ServiceClock {
    /// Real wall-clock time (production and benchmarks).
    #[default]
    Wall,
    /// Shared virtual time (deterministic harness runs).
    Virtual(Arc<VirtualClock>),
}

impl ServiceClock {
    /// Start the clock for one run, capturing the wall-clock epoch.
    pub(crate) fn start(&self) -> ClockHandle {
        ClockHandle {
            epoch: Instant::now(),
            vclock: match self {
                ServiceClock::Wall => None,
                ServiceClock::Virtual(c) => Some(Arc::clone(c)),
            },
        }
    }
}

/// A started clock: answers "how long has this run been going" and sleeps
/// against an absolute schedule point.
#[derive(Debug, Clone)]
pub struct ClockHandle {
    epoch: Instant,
    vclock: Option<Arc<VirtualClock>>,
}

impl ClockHandle {
    /// Time elapsed since the run started (virtual clocks report their
    /// absolute reading).
    pub fn elapsed(&self) -> Duration {
        match &self.vclock {
            Some(v) => v.now(),
            None => self.epoch.elapsed(),
        }
    }

    /// Real wall time since the run started, regardless of clock kind.
    /// Throughput reporting wants honest wall time even on a virtual-clock
    /// run (where `elapsed()` reads simulated time).
    pub fn wall_elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Block until `elapsed() >= t`. On a virtual clock this jumps time
    /// forward instead of sleeping, so paced replays stay deterministic.
    pub fn sleep_until(&self, t: Duration) {
        match &self.vclock {
            Some(v) => v.advance_to(t),
            None => {
                let now = self.epoch.elapsed();
                if t > now {
                    std::thread::sleep(t - now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_is_monotone_and_jump_based() {
        let clock = VirtualClock::starting_at(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(1));
        clock.advance_to(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(5));
        // Moving backwards is a no-op.
        clock.advance_to(Duration::from_secs(2));
        assert_eq!(clock.now(), Duration::from_secs(5));
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(6));
    }

    #[test]
    fn virtual_handle_sleeps_instantly() {
        let vclock = VirtualClock::new();
        let handle = ServiceClock::Virtual(Arc::clone(&vclock)).start();
        let wall = Instant::now();
        handle.sleep_until(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5), "virtual sleep must not block");
        assert_eq!(handle.elapsed(), Duration::from_secs(3600));
    }

    #[test]
    fn wall_handle_tracks_real_time() {
        let handle = ServiceClock::Wall.start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(handle.elapsed() >= Duration::from_millis(5));
        // Sleeping until a past point returns immediately.
        handle.sleep_until(Duration::from_nanos(1));
    }

    #[test]
    fn concurrent_advances_keep_the_maximum() {
        let clock = VirtualClock::new();
        crossbeam::thread::scope(|s| {
            for i in 1..=8u64 {
                let clock = &clock;
                s.spawn(move |_| clock.advance_to(Duration::from_secs(i)));
            }
        })
        .expect("scope");
        assert_eq!(clock.now(), Duration::from_secs(8));
    }
}

//! Optional segment-store backing under the shards.
//!
//! With a store enabled, every admitted miss writes the object's actual
//! bytes (a deterministic pattern of the object's real size) into a
//! per-shard [`SegmentStore`], and every eviction appends a tombstone.
//! Bypassed misses write **nothing** — which is the paper's entire point:
//! the bytes the admission gate refuses are bytes the flash never
//! programs. The stores' measured byte counters (host appends + compaction
//! rewrites) feed the SSD wear model as a [`WearLedger`], replacing the
//! simulator's synthetic `bytes_written` with an observed write stream.
//!
//! Store operations are pure side effects of the admission decision: the
//! decision stream is bit-identical with the store on or off, which the
//! harness's differential oracle asserts.

use otae_device::WearLedger;
use otae_store::{
    FileBackend, MemBackend, NoStoreFaults, SegmentStore, StoreConfig, StoreError, StoreStats,
    MAX_PAYLOAD,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Where the service persists admitted objects' bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StoreMode {
    /// No store: admission is accounted but nothing is persisted (the
    /// pre-store service behaviour).
    #[default]
    None,
    /// Deterministic in-memory backend — no filesystem involved, used by
    /// the harness's differential and recovery oracles.
    Memory,
    /// Real segment files under per-shard subdirectories of this root.
    Disk(PathBuf),
}

impl StoreMode {
    /// Whether a store is attached at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, StoreMode::None)
    }
}

/// One shard's store handle plus its reusable payload buffer and error
/// tally. Lives inside the shard mutex, so store traffic is ordered
/// exactly like the shard's decision stream.
pub(crate) struct ShardStore {
    store: SegmentStore,
    buf: Vec<u8>,
    errors: u64,
}

impl ShardStore {
    /// Build one store per shard. Memory mode cannot fail; disk mode
    /// surfaces backend I/O errors to the caller (which degrades to
    /// storeless serving rather than unwinding).
    pub(crate) fn build(
        mode: &StoreMode,
        cfg: StoreConfig,
        shards: usize,
    ) -> Result<Vec<ShardStore>, StoreError> {
        let mut out = Vec::with_capacity(shards);
        for shard in 0..shards {
            let store = match mode {
                StoreMode::None => return Ok(Vec::new()),
                StoreMode::Memory => {
                    SegmentStore::open(Arc::new(MemBackend::new()), cfg, Arc::new(NoStoreFaults))?.0
                }
                StoreMode::Disk(root) => {
                    let backend = FileBackend::new(root.join(format!("shard-{shard:02}")))?;
                    SegmentStore::open(Arc::new(backend), cfg, Arc::new(NoStoreFaults))?.0
                }
            };
            out.push(ShardStore { store, buf: Vec::new(), errors: 0 });
        }
        Ok(out)
    }

    /// Persist an admitted object: a deterministic payload of its real
    /// size (clamped to the record cap), so recovery oracles can verify
    /// content, not just presence.
    pub(crate) fn on_admit(&mut self, key: u64, size: u64) {
        let len = size.min(MAX_PAYLOAD as u64) as usize;
        fill_payload(key, len, &mut self.buf);
        if self.store.put(key, &self.buf).is_err() {
            self.errors += 1;
        }
    }

    /// Record an eviction as a tombstone (the dead bytes it strands are
    /// what compaction later reclaims — and re-writes, which is the
    /// measured write amplification).
    pub(crate) fn on_evict(&mut self, key: u64) {
        if self.store.remove(key).is_err() {
            self.errors += 1;
        }
    }

    /// Drain the write queue so `snapshot` sees every acknowledged byte.
    pub(crate) fn flush(&mut self) {
        if self.store.flush().is_err() {
            self.errors += 1;
        }
    }

    pub(crate) fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot { stats: self.store.stats(), errors: self.errors }
    }
}

/// Merged store statistics across all shards, reported in the service
/// [`Snapshot`](crate::shard::Snapshot) when a store is attached.
// lint: merge-exhaustive
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreSnapshot {
    /// Measured store counters (appends, compactions, live set), summed
    /// over shards.
    pub stats: StoreStats,
    /// Store operations that failed (0 in healthy runs; non-zero only
    /// after a store crash or backend I/O error).
    pub errors: u64,
}

impl StoreSnapshot {
    /// Fold another shard's store snapshot into this one. The full
    /// destructure means a new field cannot be added without this merge
    /// accounting for it.
    pub fn merge(&mut self, other: &StoreSnapshot) {
        let StoreSnapshot { stats, errors } = *other;
        self.stats.merge(&stats);
        self.errors += errors;
    }

    /// Measured write amplification of the combined stores.
    pub fn write_amplification(&self) -> f64 {
        self.stats.write_amplification()
    }

    /// The combined write stream in the wear model's ingestion format.
    pub fn wear_ledger(&self) -> WearLedger {
        self.stats.wear_ledger()
    }
}

/// Deterministic payload for object `key`: the SplitMix64 finalizer of the
/// key, repeated as little-endian words to `len` bytes. Cheap to generate,
/// unique per object, and reproducible anywhere (the recovery oracle
/// recomputes it to verify read-back content).
pub fn fill_payload(key: u64, len: usize, buf: &mut Vec<u8>) {
    let mut z = key;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let word = z.to_le_bytes();
    buf.clear();
    buf.reserve(len);
    while buf.len() + 8 <= len {
        buf.extend_from_slice(&word);
    }
    buf.extend_from_slice(&word[..len - buf.len()]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_sized() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            fill_payload(42, len, &mut a);
            fill_payload(42, len, &mut b);
            assert_eq!(a.len(), len);
            assert_eq!(a, b);
        }
        fill_payload(1, 64, &mut a);
        fill_payload(2, 64, &mut b);
        assert_ne!(a, b, "different keys must differ");
    }

    #[test]
    fn memory_stores_absorb_admits_and_evicts() {
        let mut stores =
            ShardStore::build(&StoreMode::Memory, StoreConfig::default(), 2).expect("memory");
        assert_eq!(stores.len(), 2);
        stores[0].on_admit(7, 500);
        stores[0].on_admit(8, 300);
        stores[0].on_evict(7);
        stores[1].on_admit(9, 100);
        let mut merged = StoreSnapshot::default();
        for s in &mut stores {
            s.flush();
            merged.merge(&s.snapshot());
        }
        assert_eq!(merged.stats.acked_puts, 3);
        assert_eq!(merged.stats.acked_removes, 1);
        assert_eq!(merged.stats.live_records, 2);
        assert_eq!(merged.errors, 0);
        assert!(merged.stats.host_bytes > 900);
        assert_eq!(merged.wear_ledger().host_bytes(), merged.stats.host_bytes);
    }

    #[test]
    fn none_mode_builds_no_stores() {
        let stores = ShardStore::build(&StoreMode::None, StoreConfig::default(), 4).expect("none");
        assert!(stores.is_empty());
        assert!(!StoreMode::None.is_enabled());
        assert!(StoreMode::Memory.is_enabled());
    }

    #[test]
    fn oversized_objects_are_clamped_not_errored() {
        let mut stores =
            ShardStore::build(&StoreMode::Memory, StoreConfig::default(), 1).expect("memory");
        stores[0].on_admit(1, MAX_PAYLOAD as u64 + 10_000);
        stores[0].flush();
        let snap = stores[0].snapshot();
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.stats.acked_puts, 1);
    }
}

//! The service orchestrator: prepare → (clients ⇒ queue ⇒ workers) →
//! snapshot, with an optional background retrainer hot-swapping the
//! admission model mid-replay.

use crate::clock::ServiceClock;
use crate::fault::{FaultPlan, FaultReport, NoFaults};
use crate::gate::{AdmissionGate, GateModel};
use crate::loadgen::{replay_client, ClientReport, LoadConfig};
use crate::policy::filter_policy_for;
use crate::request::{prepare, ModelSource, PreparedRequest};
use crate::retrainer::{run_retrainer, RetrainerReport};
use crate::shard::{BatchScratch, Params, ShardedCache, Snapshot};
use crate::store_layer::{ShardStore, StoreMode};
use crossbeam::channel::{bounded, unbounded, Receiver};
use otae_core::pipeline::{Mode, PolicyKind};
use otae_core::{solve_criteria, CriteriaSolution, ReaccessIndex, TrainingConfig};
use otae_device::{HddProfile, LatencyModel};
use otae_trace::Trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How Proposal-mode models are trained and delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainerMode {
    /// The prepare pass drives the daily trainer and stamps each request
    /// with the model current at its enqueue point. Deterministic: a
    /// 1-shard/1-worker replay reproduces the single-threaded simulator
    /// exactly, regardless of queue depth or scheduling.
    Inline,
    /// A dedicated retrainer thread samples forwarded requests, trains at
    /// daily boundaries, and hot-swaps the shared gate; workers resolve
    /// the model at dispatch time. This is the production path.
    Background,
}

/// Full configuration of a serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of independent cache shards.
    pub shards: usize,
    /// Number of request-processing worker threads.
    pub workers: usize,
    /// Bound of the ingestion queue (requests buffered between clients and
    /// workers).
    pub queue_depth: usize,
    /// Replacement policy (each shard runs its own instance).
    pub policy: PolicyKind,
    /// Admission mode: the paper's Original/Proposal/Ideal plus the policy
    /// zoo's filters (SecondHit, TinyLFU, RejectX, CoinFlip).
    pub mode: Mode,
    /// Training delivery for Proposal mode. For every non-learned policy
    /// the retraining path is a structural no-op: no samples are forwarded,
    /// no retrainer thread spawns, the gate stays cold.
    pub trainer: TrainerMode,
    /// Total cache capacity in bytes, split evenly across shards.
    pub capacity: u64,
    /// Classifier training configuration (Proposal only).
    pub training: TrainingConfig,
    /// Device latency model for response-time accounting.
    pub latency: LatencyModel,
    /// HDD profile charging backend disk-head time per miss.
    pub hdd: HddProfile,
    /// Admit probability for the CoinFlip policy (ignored otherwise).
    pub coin_p: f32,
    /// Criteria fixed-point rounds (§4.3; paper uses 3).
    pub criteria_iterations: usize,
    /// Override the computed one-time-access threshold `M`.
    pub m_override: Option<u64>,
    /// Most requests a worker drains from the queue per batch (minimum 1).
    /// Batched requests are grouped by shard and their classifier verdicts
    /// resolved with one `score_rows` call per (model, epoch) run under a
    /// single lock acquisition. `1` restores the exact per-request path.
    pub max_batch: usize,
    /// Memoize classifier verdicts in a per-shard, model-epoch-keyed
    /// decision cache (invalidated wholesale on every hot-swap). Decisions
    /// are bit-identical either way; only repeat tree walks are saved.
    pub decision_cache: bool,
    /// Score batched misses with the compiled branchless SoA walk built at
    /// model install (see [`GateModel`]). Decisions are bit-identical with
    /// the flag on or off — `false` restores the interpreted tree walk,
    /// which the differential oracle uses as its reference arm.
    pub compiled_inference: bool,
    /// Time source for pacing and duration caps (wall by default; virtual
    /// for deterministic harness runs).
    pub clock: ServiceClock,
    /// Fault-injection schedule ([`NoFaults`] by default). Faults apply to
    /// the background training path and the shard request path.
    pub faults: Arc<dyn FaultPlan>,
    /// Segment-store backing for admitted objects ([`StoreMode::None`] by
    /// default — the storeless pre-store behaviour).
    pub store: StoreMode,
    /// Tuning for the attached stores (segment size, write-queue depth,
    /// compaction trigger). Ignored when `store` is `None`.
    pub store_config: otae_store::StoreConfig,
}

impl ServeConfig {
    /// Config with single-shard/single-worker topology and paper-default
    /// training, latency and criteria settings.
    pub fn new(policy: PolicyKind, mode: Mode, capacity: u64) -> Self {
        Self {
            shards: 1,
            workers: 1,
            queue_depth: 1024,
            policy,
            mode,
            trainer: TrainerMode::Inline,
            capacity,
            training: TrainingConfig::default(),
            latency: LatencyModel::default(),
            hdd: HddProfile::default(),
            coin_p: 0.5,
            criteria_iterations: 3,
            m_override: None,
            max_batch: 64,
            decision_cache: true,
            compiled_inference: true,
            clock: ServiceClock::Wall,
            faults: Arc::new(NoFaults),
            store: StoreMode::None,
            store_config: otae_store::StoreConfig::default(),
        }
    }
}

/// Outcome of one serve run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Admission mode the run served under.
    pub mode: Mode,
    /// Final merged + per-shard statistics.
    pub snapshot: Snapshot,
    /// Criteria solution used for labels/admission.
    pub criteria: CriteriaSolution,
    /// Requests actually submitted (equals the trace length unless a
    /// duration cap cut the replay short or a client thread died).
    pub replayed: u64,
    /// Wall-clock time of the replay phase: client start to the last
    /// worker joining, i.e. until the final request was processed. The
    /// retrainer's post-replay backlog drain (digesting samples after the
    /// last request is already served) is shutdown bookkeeping, not
    /// serving, and is excluded — though any CPU the retrainer stole
    /// *during* the replay is still fully visible here. Excludes prepare.
    pub wall: Duration,
    /// Requests processed per wall-clock second of the replay phase.
    pub throughput_rps: f64,
    /// Admission models installed into the gate over the run.
    pub model_swaps: u64,
    /// Completed daily trainings (models fitted, whether or not an injected
    /// fault later lost them).
    pub trainings: u32,
    /// Injected-fault and thread-failure tally (all-zero in clean runs).
    pub faults: FaultReport,
    /// Mean modeled service latency (µs).
    pub mean_latency_us: f64,
    /// Median modeled service latency (µs).
    pub latency_p50_us: f64,
    /// 99th-percentile modeled service latency (µs).
    pub latency_p99_us: f64,
    /// 99.9th-percentile modeled service latency (µs).
    pub latency_p999_us: f64,
}

impl ServeReport {
    /// The run's [`RunFingerprint`], comparable against
    /// [`otae_core::pipeline::RunResult::fingerprint`] for differential
    /// testing. Classifier fields are populated only for Proposal runs,
    /// mirroring the simulator's `classifier: Option<_>` report.
    pub fn fingerprint(&self) -> otae_core::RunFingerprint {
        let proposal = self.mode == Mode::Proposal;
        otae_core::RunFingerprint {
            stats: self.snapshot.stats,
            m: self.criteria.m,
            confusion: proposal.then_some(self.snapshot.confusion),
            rectifications: proposal.then_some(self.snapshot.rectifications),
            trainings: proposal.then_some(self.trainings),
            service_time_us: self.snapshot.service_time.total_us(),
            service_peak_us: self.snapshot.service_time.peak_window_us(),
        }
    }
}

/// Replay a trace through the sharded service, building the reaccess index
/// internally. For repeated runs share the index via
/// [`serve_trace_with_index`].
pub fn serve_trace(trace: &Trace, cfg: &ServeConfig, load: &LoadConfig) -> ServeReport {
    let index = ReaccessIndex::build(trace);
    serve_trace_with_index(trace, &index, cfg, load)
}

/// Replay a trace through the sharded service against a precomputed
/// reaccess index.
pub fn serve_trace_with_index(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &ServeConfig,
    load: &LoadConfig,
) -> ServeReport {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(load.clients > 0, "need at least one client");
    assert_eq!(index.len(), trace.len(), "index must match the trace");

    // Criteria resolution mirrors the single-threaded pipeline exactly.
    let avg_size = trace.avg_object_size().max(1.0);
    let base = solve_criteria(index, cfg.capacity, avg_size, cfg.criteria_iterations);
    let criteria =
        if cfg.policy == PolicyKind::Lirs { base.for_lirs(cfg.policy.stack_ratio()) } else { base };
    let m = cfg.m_override.unwrap_or(criteria.m);
    let v = cfg.training.cost.resolve(cfg.capacity, trace.unique_bytes());

    let gate = AdmissionGate::new();
    let prepared = prepare(trace, index, cfg, &gate, m, v);

    // Filter policies build through the same seam as the pipeline
    // (`MissFilter::for_run`), so both sides construct byte-identical
    // state; `None` for Original/Ideal/Proposal.
    let policy =
        filter_policy_for(cfg.mode, trace.meta.len(), m, cfg.training.max_splits, cfg.coin_p);
    let params = Params {
        latency: cfg.latency,
        mode: cfg.mode,
        classified: cfg.mode != Mode::Original,
        use_history: cfg.training.use_history,
        m,
        decision_cache: cfg.decision_cache,
        compiled: cfg.compiled_inference,
        hdd: cfg.hdd,
    };
    // Build one segment store per shard before serving starts. A failed
    // open (disk mode only) degrades to storeless serving — recorded as a
    // store failure, never an unwind.
    let (stores, store_open_failures) =
        match ShardStore::build(&cfg.store, cfg.store_config, cfg.shards) {
            Ok(stores) => (stores, 0u64),
            Err(e) => {
                eprintln!("warning: segment store disabled, open failed: {e}");
                (Vec::new(), 1)
            }
        };
    let sharded = ShardedCache::new(
        cfg.shards,
        cfg.policy,
        cfg.capacity,
        criteria.history_table_capacity(),
        trace,
        params,
        policy,
        stores,
    );

    // The retrainer thread only exists for the learned policy: every filter
    // policy (and Original/Ideal) runs the whole replay without a trainer,
    // a sampler channel, or a single gate install.
    let background = cfg.mode.is_learned() && cfg.trainer == TrainerMode::Background;
    let (req_tx, req_rx) = bounded::<PreparedRequest>(cfg.queue_depth.max(1));
    let (sample_tx, sample_rx) = if background {
        let (tx, rx) = unbounded();
        (Some(tx), Some(rx))
    } else {
        (None, None)
    };

    let plan: &dyn FaultPlan = cfg.faults.as_ref();
    let panics = AtomicU64::new(0);
    // Failure tallies accumulate in locals and land in the FaultReport via
    // one exhaustive literal below, so a new field cannot be forgotten
    // (merge-exhaustive).
    let mut client_failures = 0u32;
    let mut worker_failures = 0u32;
    let mut retrainer_failure = false;
    let mut client_reports: Vec<ClientReport> = Vec::new();
    let mut retrain_report = RetrainerReport::default();
    let clock = cfg.clock.start();
    let mut serve_wall = Duration::ZERO;
    // Thread failures are recorded, never propagated: a dead client only
    // loses its stride, a dead worker only its queue share (the channel
    // disconnects rather than deadlocks), a dead retrainer only freezes the
    // model — the service always reaches its snapshot.
    let scope_result = crossbeam::thread::scope(|s| {
        let retrainer = sample_rx.map(|rx| {
            let gate = &gate;
            let training = &cfg.training;
            s.spawn(move |_| run_retrainer(rx, gate, training, v, plan))
        });
        let workers: Vec<_> = (0..cfg.workers)
            .map(|_| {
                let rx = req_rx.clone();
                let sharded = &sharded;
                let gate = &gate;
                let panics = &panics;
                let max_batch = cfg.max_batch;
                s.spawn(move |_| run_worker(rx, sharded, gate, plan, panics, max_batch))
            })
            .collect();
        drop(req_rx);

        let clients: Vec<_> = (0..load.clients)
            .map(|c| {
                let tx = req_tx.clone();
                let stx = sample_tx.clone();
                let prepared = &prepared.requests;
                let clock = &clock;
                s.spawn(move |_| {
                    replay_client(c, load.clients, prepared, load, clock, &tx, stx.as_ref(), plan)
                })
            })
            .collect();
        drop(req_tx);
        drop(sample_tx);

        for h in clients {
            match h.join() {
                Ok(report) => client_reports.push(report),
                Err(_) => client_failures += 1,
            }
        }
        for w in workers {
            if w.join().is_err() {
                worker_failures += 1;
            }
        }
        // Every request is processed once the workers join; stamp the
        // replay wall here, before waiting out the retrainer's backlog.
        serve_wall = clock.wall_elapsed();
        if let Some(r) = retrainer {
            match r.join() {
                Ok(report) => retrain_report = report,
                Err(_) => retrainer_failure = true,
            }
        }
    });
    // `scope` only errors when a spawned thread panicked without being
    // joined; every join above consumes its result, so this is a spawn-time
    // failure — account it like a dead worker rather than unwinding.
    if scope_result.is_err() {
        worker_failures += 1;
        serve_wall = clock.wall_elapsed();
    }
    // A spawn failure (or a run with no workers) never stamped the replay
    // wall inside the scope; fall back to the full elapsed time.
    let wall = if serve_wall > Duration::ZERO { serve_wall } else { clock.wall_elapsed() };

    let replayed: u64 = client_reports.iter().map(|r| r.submitted).sum();

    // Every worker has joined: drain the store write queues so the
    // snapshot's byte counters cover every acknowledged append.
    sharded.flush_stores();
    let snapshot = sharded.snapshot();
    let faults = FaultReport {
        dropped_samples: client_reports.iter().map(|r| r.dropped_samples).sum(),
        corrupted_samples: client_reports.iter().map(|r| r.corrupted_samples).sum(),
        failed_trainings: retrain_report.failed,
        deferred_installs: retrain_report.deferred,
        dropped_installs: retrain_report.dropped_installs + prepared.dropped_installs,
        shard_panics: panics.load(Ordering::Acquire),
        client_failures,
        worker_failures,
        retrainer_failure,
        store_failures: store_open_failures + snapshot.store.as_ref().map_or(0, |s| s.errors),
    };
    let response = snapshot.response.clone();
    ServeReport {
        mode: cfg.mode,
        snapshot,
        criteria,
        replayed,
        wall,
        throughput_rps: replayed as f64 / wall.as_secs_f64().max(1e-9),
        model_swaps: gate.swaps(),
        trainings: if background { retrain_report.trainings } else { prepared.trainings },
        faults,
        mean_latency_us: response.mean_us(),
        latency_p50_us: response.percentile_us(0.5),
        latency_p99_us: response.percentile_us(0.99),
        latency_p999_us: response.percentile_us(0.999),
    }
}

/// Drain the request queue into the sharded cache until every client hangs
/// up: block for the first request, then opportunistically pull up to
/// `max_batch - 1` more without blocking, group the batch by shard and
/// process each shard's subsequence as one segment (one lock acquisition,
/// batched classifier scoring). Gate-resolved requests share a cached
/// model snapshot that is refreshed at most once per batch, and only when
/// the gate's lock-free epoch hint says it moved — the read lock and `Arc`
/// clone leave the per-request path entirely. Injected shard panics are
/// caught here — the request is consumed, the panic counted, and the
/// worker keeps draining; the requests before the faulted one in its shard
/// group are flushed first, so shard-local order is preserved.
fn run_worker(
    rx: Receiver<PreparedRequest>,
    sharded: &ShardedCache,
    gate: &AdmissionGate,
    plan: &dyn FaultPlan,
    panics: &AtomicU64,
    max_batch: usize,
) {
    let max_batch = max_batch.max(1);
    let mut batch: Vec<PreparedRequest> = Vec::with_capacity(max_batch);
    let mut scratch = BatchScratch::new();
    // Cached gate snapshot. The sentinel hint (`u64::MAX`) marks "never
    // snapshotted"; real epochs count installs from 0.
    let mut gate_hint = u64::MAX;
    let mut gate_model: Option<Arc<GateModel>> = None;
    let mut gate_epoch = 0u64;
    let mut groups: Vec<Vec<usize>> = (0..sharded.shard_count()).map(|_| Vec::new()).collect();
    let mut touched: Vec<usize> = Vec::with_capacity(sharded.shard_count());

    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        if batch.iter().any(|r| matches!(r.model, ModelSource::Gate)) {
            let hint = gate.swaps();
            if hint != gate_hint {
                let (model, epoch) = gate.current_with_epoch();
                gate_model = model;
                gate_epoch = epoch;
                gate_hint = hint;
            }
        }
        for s in touched.drain(..) {
            groups[s].clear();
        }
        for (i, req) in batch.iter().enumerate() {
            let s = sharded.shard_of(req.object);
            if groups[s].is_empty() {
                touched.push(s);
            }
            groups[s].push(i);
        }
        for &s in &touched {
            let mut segment: Vec<(&PreparedRequest, Option<&GateModel>, u64)> =
                Vec::with_capacity(groups[s].len());
            for &i in &groups[s] {
                let req = &batch[i];
                if plan.shard_panic(s, req.idx) {
                    sharded.process_segment(s, &segment, &mut scratch);
                    segment.clear();
                    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sharded.process_with_injected_panic(req)
                    }));
                    debug_assert!(unwound.is_err());
                    panics.fetch_add(1, Ordering::AcqRel);
                } else {
                    let (model, epoch) = match &req.model {
                        ModelSource::Stamped { model, epoch } => (model.as_deref(), *epoch),
                        ModelSource::Gate => (gate_model.as_deref(), gate_epoch),
                    };
                    segment.push((req, model, epoch));
                }
            }
            sharded.process_segment(s, &segment, &mut scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::fault::{RetrainFault, SampleFault};
    use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
    use otae_trace::{generate, TraceConfig};
    use std::time::Instant;

    fn trace() -> Trace {
        generate(&TraceConfig { n_objects: 4_000, seed: 17, ..Default::default() })
    }

    fn cap(t: &Trace) -> u64 {
        (t.unique_bytes() as f64 * 0.02) as u64
    }

    #[test]
    fn original_mode_serves_whole_trace() {
        let t = trace();
        let cfg = ServeConfig::new(PolicyKind::Lru, Mode::Original, cap(&t));
        let r = serve_trace(&t, &cfg, &LoadConfig::default());
        assert_eq!(r.replayed as usize, t.len());
        assert_eq!(r.snapshot.stats.accesses as usize, t.len());
        assert_eq!(r.snapshot.stats.bypasses, 0);
        assert!(r.throughput_rps > 0.0);
        assert_eq!(r.model_swaps, 0);
        assert!(r.faults.is_clean());
        assert!(r.latency_p999_us >= r.latency_p99_us);
        assert!(r.latency_p99_us >= r.latency_p50_us);
    }

    #[test]
    fn sharded_multiworker_conserves_accesses() {
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Ideal, cap(&t));
        cfg.shards = 4;
        cfg.workers = 4;
        let load = LoadConfig { clients: 2, target_qps: 0.0, duration: None };
        let r = serve_trace(&t, &cfg, &load);
        assert_eq!(r.snapshot.stats.accesses as usize, t.len());
        let s = &r.snapshot.stats;
        assert_eq!(s.accesses, s.hits + s.files_written + s.bypasses);
        assert!(s.bypasses > 0, "ideal mode must bypass one-time objects");
    }

    #[test]
    fn background_trainer_swaps_models_in() {
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Proposal, cap(&t));
        cfg.trainer = TrainerMode::Background;
        cfg.shards = 2;
        cfg.workers = 2;
        let r = serve_trace(&t, &cfg, &LoadConfig::default());
        assert_eq!(r.snapshot.stats.accesses as usize, t.len());
        assert!(r.trainings >= 7, "9-day trace retrains daily: {}", r.trainings);
        assert_eq!(r.model_swaps, r.trainings as u64);
        assert!(r.faults.is_clean());
    }

    #[test]
    fn second_hit_mode_is_served() {
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::SecondHit, cap(&t));
        cfg.shards = 2;
        cfg.workers = 2;
        let r = serve_trace(&t, &cfg, &LoadConfig::default());
        assert_eq!(r.snapshot.stats.accesses as usize, t.len());
        assert!(r.snapshot.stats.bypasses > 0, "doorkeeper must bypass first-timers");
    }

    #[test]
    fn duration_cap_stops_early() {
        let t = trace();
        let cfg = ServeConfig::new(PolicyKind::Lru, Mode::Original, cap(&t));
        let load = LoadConfig {
            clients: 1,
            target_qps: 200.0,
            duration: Some(Duration::from_millis(100)),
        };
        let r = serve_trace(&t, &cfg, &load);
        assert!(r.replayed > 0);
        assert!((r.replayed as usize) < t.len(), "cap must stop the replay");
        assert_eq!(r.snapshot.stats.accesses, r.replayed);
    }

    #[test]
    fn virtual_clock_replays_paced_load_instantly() {
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Original, cap(&t));
        cfg.clock = ServiceClock::Virtual(VirtualClock::new());
        // 500 QPS over tens of thousands of requests would take minutes of
        // wall time; virtually it completes immediately and fully.
        let load = LoadConfig { clients: 2, target_qps: 500.0, duration: None };
        let wall = Instant::now();
        let r = serve_trace(&t, &cfg, &load);
        assert_eq!(r.replayed as usize, t.len());
        assert!(wall.elapsed() < Duration::from_secs(30), "virtual pacing must not sleep");
    }

    /// Faults on the training path never disturb the request path: with
    /// every sample dropped and every training failed, the service still
    /// serves the whole trace and (never having installed a model) behaves
    /// exactly like admit-all.
    #[test]
    fn training_outage_degrades_to_admit_all() {
        #[derive(Debug)]
        struct TrainingOutage;
        impl FaultPlan for TrainingOutage {
            fn sample_fault(&self, idx: u64) -> SampleFault {
                if idx.is_multiple_of(2) {
                    SampleFault::Drop
                } else {
                    SampleFault::Deliver
                }
            }
            fn retrain_fault(&self, _attempt: u32) -> RetrainFault {
                RetrainFault::Fail
            }
        }
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Proposal, cap(&t));
        cfg.trainer = TrainerMode::Background;
        // Two shards, but one worker/client: multiple workers may reorder
        // same-shard requests, which breaks the exact cross-check below.
        cfg.shards = 2;
        cfg.faults = Arc::new(TrainingOutage);
        let r = serve_trace(&t, &cfg, &LoadConfig::default());
        assert_eq!(r.snapshot.stats.accesses as usize, t.len());
        assert_eq!(r.model_swaps, 0, "every training was failed");
        assert!(r.faults.failed_trainings > 0);
        assert!(r.faults.dropped_samples > 0);
        assert_eq!(r.snapshot.stats.bypasses, 0, "cold gate must admit everything");
        assert_eq!(r.snapshot.confusion.total(), 0);
        // Cross-check against an Original-mode run on the same topology
        // (shard count changes per-shard LRU behaviour): identical outcome.
        let mut orig = ServeConfig::new(PolicyKind::Lru, Mode::Original, cap(&t));
        orig.shards = 2;
        let o = serve_trace(&t, &orig, &LoadConfig::default());
        assert_eq!(r.snapshot.stats.hits, o.snapshot.stats.hits);
        assert_eq!(r.snapshot.stats.files_written, o.snapshot.stats.files_written);
    }

    /// Injected shard panics consume their requests without breaking the
    /// books: `accesses == replayed - shard_panics` and the shards keep
    /// serving after each recovery.
    #[test]
    fn shard_panics_are_recovered_and_conserved() {
        crate::fault::silence_injected_panics();
        #[derive(Debug)]
        struct PanicEvery1000;
        impl FaultPlan for PanicEvery1000 {
            fn shard_panic(&self, _shard: usize, idx: u64) -> bool {
                idx % 1000 == 7
            }
        }
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Original, cap(&t));
        cfg.shards = 4;
        cfg.workers = 4;
        cfg.faults = Arc::new(PanicEvery1000);
        let load = LoadConfig { clients: 2, target_qps: 0.0, duration: None };
        let r = serve_trace(&t, &cfg, &load);
        assert_eq!(r.replayed as usize, t.len());
        let expected_panics = (0..t.len() as u64).filter(|i| i % 1000 == 7).count() as u64;
        assert_eq!(r.faults.shard_panics, expected_panics);
        assert!(expected_panics > 0);
        assert_eq!(r.snapshot.stats.accesses, r.replayed - r.faults.shard_panics);
        assert_eq!(r.faults.worker_failures, 0, "workers must survive injected panics");
    }

    /// With a memory store attached, every admitted miss lands as an acked
    /// put and every eviction as an acked tombstone — the store's measured
    /// counters must reconcile exactly with the cache's decision counters.
    #[test]
    fn memory_store_reconciles_with_cache_counters() {
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Ideal, cap(&t));
        cfg.shards = 2;
        cfg.workers = 2;
        cfg.store = StoreMode::Memory;
        let r = serve_trace(&t, &cfg, &LoadConfig::default());
        assert!(r.faults.is_clean());
        let s = &r.snapshot.stats;
        let store = r.snapshot.store.as_ref().expect("store snapshot");
        assert_eq!(store.errors, 0);
        assert_eq!(store.stats.acked_puts, s.files_written);
        assert_eq!(store.stats.acked_removes, s.evictions);
        assert_eq!(store.stats.live_records, s.files_written - s.evictions);
        // Host bytes = payload bytes (the cache's byte-write counter)
        // plus framing overhead; never less.
        assert!(store.stats.host_bytes > s.bytes_written);
        assert!(store.wear_ledger().host_bytes() == store.stats.host_bytes);
        assert!(store.write_amplification() >= 1.0);
    }

    /// Store traffic is a pure side effect: the decision stream (and hence
    /// the fingerprint) is bit-identical with the store on or off.
    #[test]
    fn store_never_changes_decisions() {
        let t = trace();
        for mode in [Mode::Original, Mode::Ideal] {
            let mut with = ServeConfig::new(PolicyKind::Lru, mode, cap(&t));
            with.store = StoreMode::Memory;
            let without = ServeConfig::new(PolicyKind::Lru, mode, cap(&t));
            let a = serve_trace(&t, &with, &LoadConfig::default());
            let b = serve_trace(&t, &without, &LoadConfig::default());
            assert_eq!(a.fingerprint(), b.fingerprint(), "mode {mode:?}");
            assert!(a.snapshot.store.is_some());
            assert!(b.snapshot.store.is_none());
        }
    }

    /// Disk mode writes real segment files under per-shard directories and
    /// reports the same reconciliation as memory mode.
    #[test]
    fn disk_store_writes_real_segments() {
        let root = std::env::temp_dir()
            .join("otae-serve-store-test")
            .join(format!("pid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let t = trace();
        let mut cfg = ServeConfig::new(PolicyKind::Lru, Mode::Ideal, cap(&t));
        cfg.shards = 2;
        cfg.store = StoreMode::Disk(root.clone());
        let r = serve_trace(&t, &cfg, &LoadConfig::default());
        assert!(r.faults.is_clean());
        let store = r.snapshot.store.as_ref().expect("store snapshot");
        assert_eq!(store.stats.acked_puts, r.snapshot.stats.files_written);
        for shard in 0..2 {
            let dir = root.join(format!("shard-{shard:02}"));
            assert!(dir.is_dir(), "missing {}", dir.display());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    fn tree(threshold: f32) -> DecisionTree {
        let mut d = Dataset::new(otae_core::N_FEATURES);
        for i in 0..100 {
            let mut row = [0.0f32; otae_core::N_FEATURES];
            row[0] = i as f32 / 100.0;
            d.push(&row, row[0] > threshold);
        }
        let mut m = DecisionTree::new(TreeParams::default());
        m.fit(&d);
        m
    }

    /// The ISSUE's hot-swap acceptance test: four workers replay a stream
    /// resolving the model from the gate per request while the main thread
    /// keeps swapping fresh models in; the replay must complete (no
    /// blocking) and the workers must observe installed models.
    #[test]
    fn hot_swap_mid_replay_never_blocks_workers() {
        let t = trace();
        let index = ReaccessIndex::build(&t);
        let m = 1000u64;
        let params = Params {
            latency: LatencyModel::default(),
            mode: Mode::Proposal,
            classified: true,
            use_history: true,
            m,
            decision_cache: true,
            compiled: true,
            hdd: HddProfile::default(),
        };
        let sharded =
            ShardedCache::new(4, PolicyKind::Lru, cap(&t), 4096, &t, params, None, Vec::new());
        let gate = AdmissionGate::new();
        gate.install(tree(0.5)); // warm before replay so every decision consults a model
        let n = 40_000.min(t.len());
        let reqs: Vec<PreparedRequest> = t.requests[..n]
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let mut features = [0.0f32; otae_core::N_FEATURES];
                features[0] = (i % 100) as f32 / 100.0;
                PreparedRequest {
                    idx: i as u64,
                    ts: req.ts,
                    object: req.object,
                    size: t.photo(req.object).size as u64,
                    features,
                    truth: index.is_one_time(i, m),
                    model: ModelSource::Gate,
                }
            })
            .collect();

        let (tx, rx) = bounded::<PreparedRequest>(256);
        let swaps_target = 50u64;
        let panics = AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let sharded = &sharded;
                    let gate = &gate;
                    let panics = &panics;
                    s.spawn(move |_| run_worker(rx, sharded, gate, &NoFaults, panics, 64))
                })
                .collect();
            drop(rx);
            let producer = {
                let reqs = &reqs;
                let tx = tx.clone();
                s.spawn(move |_| {
                    for r in reqs {
                        tx.send(r.clone()).unwrap();
                    }
                })
            };
            drop(tx);
            // Swap models while the replay is in flight.
            for i in 0..swaps_target {
                gate.install(tree(0.2 + 0.6 * (i % 10) as f32 / 10.0));
                std::thread::sleep(Duration::from_micros(200));
            }
            producer.join().expect("producer");
            for w in workers {
                w.join().expect("worker");
            }
        })
        .expect("scope");

        assert_eq!(gate.swaps(), swaps_target + 1);
        assert_eq!(panics.load(Ordering::Acquire), 0);
        let snap = sharded.snapshot();
        assert_eq!(snap.stats.accesses as usize, n, "every request must be served");
        assert!(snap.confusion.total() > 0, "workers must have consulted the models");
    }
}

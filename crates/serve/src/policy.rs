//! The admission-policy zoo: one trait, five policies.
//!
//! The paper pits its learned gate against always-admit and an oracle; real
//! flash caches pit it against cheap frequency filters (TinyLFU, RejectX),
//! doorkeepers (SecondHit) and the null baseline (CoinFlip). This module
//! puts them all behind one serve-layer [`AdmissionPolicy`] trait so the
//! service can hot-swap the *policy*, not just the model:
//!
//! | policy      | state                         | learned |
//! |-------------|-------------------------------|---------|
//! | [`MlGatePolicy`] | gate model + history table | yes |
//! | SecondHit   | doorkeeper bloom filter       | no |
//! | TinyLFU     | count-min sketch + doorkeeper | no |
//! | RejectX     | windowed count-min sketch     | no |
//! | CoinFlip(p) | seeded splitmix64 stream      | no |
//!
//! The four non-ML policies wrap [`otae_core::zoo::MissFilter`] via
//! [`FilterPolicy`], so the service and the single-threaded pipeline build
//! byte-identical filter state from the same inputs — the property the
//! harness `differential_policy` oracle pins to fingerprint equality.
//!
//! The retrainer interacts with policies only through
//! [`AdmissionPolicy::on_model_swap`]; for every non-learned policy that
//! hook (and the whole retraining path) is a structural no-op.

use crate::gate::AdmissionGate;
use crate::request::PreparedRequest;
use otae_core::pipeline::Mode;
use otae_core::zoo::MissFilter;
use otae_core::{classifier_apply, HistoryTable};
use otae_ml::ConfusionMatrix;
use std::sync::Arc;

/// One admission policy, deciding over the prepared request (object key,
/// the 8-feature row, stream position) that the serve path already carries.
///
/// Implementations must be `Send`: the service keeps the policy behind a
/// mutex shared by every worker thread (exactly like the SecondHit
/// doorkeeper it generalises).
pub trait AdmissionPolicy: Send {
    /// Short display name (stable: used in benchmark tables and reports).
    fn name(&self) -> &'static str;

    /// Decide a miss: `true` admits the object to flash, `false` serves it
    /// around the cache.
    fn decide(&mut self, req: &PreparedRequest) -> bool;

    /// Observe the outcome of a decided miss (eviction feedback, delayed
    /// labels). Default: ignore — none of the current policies learn from
    /// outcomes online.
    fn observe(&mut self, _req: &PreparedRequest, _admitted: bool) {}

    /// Hook invoked when a new model epoch is installed. Non-ML policies
    /// ignore it; the ML gate invalidates any epoch-keyed memoization.
    fn on_model_swap(&mut self, _epoch: u64) {}

    /// True when the policy consumes trained models (i.e. the retrainer is
    /// *not* a no-op for it).
    fn is_learned(&self) -> bool {
        false
    }
}

/// A non-ML miss filter from the zoo, adapted to the serve trait. The
/// decision consults only the object key — the feature row and truth label
/// on the request are ignored, which is the point: these are the baselines
/// the learned gate must beat without their O(1) simplicity.
#[derive(Debug)]
pub struct FilterPolicy {
    filter: MissFilter,
}

impl FilterPolicy {
    /// Wrap a zoo filter.
    pub fn new(filter: MissFilter) -> Self {
        Self { filter }
    }

    /// The wrapped filter (counters for reports).
    pub fn filter(&self) -> &MissFilter {
        &self.filter
    }
}

impl AdmissionPolicy for FilterPolicy {
    fn name(&self) -> &'static str {
        self.filter.name()
    }

    fn decide(&mut self, req: &PreparedRequest) -> bool {
        self.filter.decide(req.object)
    }
}

/// The paper's learned gate as one policy among five: the hot-swappable
/// [`AdmissionGate`] model plus the §4.4.2 history table and confusion
/// accounting, with decisions produced by the same
/// [`classifier_apply`] sequence the pipeline and the sharded workers use.
///
/// This is the *sequential reference* implementation of the trait. The
/// production serve path keeps its specialised batched route (segment
/// scoring + per-shard history slices) for throughput; the test suite pins
/// that route to this one decision for decision.
pub struct MlGatePolicy {
    gate: Arc<AdmissionGate>,
    history: HistoryTable,
    confusion: ConfusionMatrix,
    use_history: bool,
    m: u64,
}

impl MlGatePolicy {
    /// Gate-backed policy with threshold `m` and the given history budget.
    pub fn new(
        gate: Arc<AdmissionGate>,
        m: u64,
        history_capacity: usize,
        use_history: bool,
    ) -> Self {
        Self {
            gate,
            history: HistoryTable::new(history_capacity),
            confusion: ConfusionMatrix::default(),
            use_history,
            m,
        }
    }

    /// Decisions tallied against ground truth so far.
    pub fn confusion(&self) -> ConfusionMatrix {
        self.confusion
    }

    /// History-table rectifications so far (§4.4.2).
    pub fn rectifications(&self) -> u64 {
        self.history.rectifications()
    }
}

impl AdmissionPolicy for MlGatePolicy {
    fn name(&self) -> &'static str {
        "MLGate"
    }

    fn decide(&mut self, req: &PreparedRequest) -> bool {
        let model = self.gate.current();
        classifier_apply(
            model.map(|m| m.predict(&req.features)),
            &mut self.history,
            &mut self.confusion,
            self.use_history,
            self.m,
            req.object,
            req.idx,
            req.truth,
        )
    }

    fn is_learned(&self) -> bool {
        true
    }
}

/// Build the shared filter policy a serve run in `mode` needs, or `None`
/// for the modes that do not route through the policy slot (Original and
/// Ideal decide inline; Proposal runs the batched ML route). Sizing and
/// seeding delegate to [`MissFilter::for_run`], the single seam the
/// pipeline uses too — which is what makes the 1-shard serve replay
/// bit-identical to the simulator for every filter policy.
pub fn filter_policy_for(
    mode: Mode,
    trace_objects: usize,
    m: u64,
    max_splits: usize,
    coin_p: f32,
) -> Option<Box<dyn AdmissionPolicy>> {
    MissFilter::for_run(mode, trace_objects, m, max_splits, coin_p)
        .map(|f| Box::new(FilterPolicy::new(f)) as Box<dyn AdmissionPolicy>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelSource;
    use otae_core::ClassifierAdmission;
    use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
    use otae_trace::ObjectId;

    fn req(idx: u64, object: u32, feature0: f32, truth: bool) -> PreparedRequest {
        let mut features = [0.0f32; otae_core::N_FEATURES];
        features[0] = feature0;
        PreparedRequest {
            idx,
            ts: idx,
            object: ObjectId(object),
            size: 1000,
            features,
            truth,
            model: ModelSource::Stamped { model: None, epoch: 0 },
        }
    }

    fn tree(threshold: f32) -> DecisionTree {
        let mut d = Dataset::new(otae_core::N_FEATURES);
        for i in 0..100 {
            let mut row = [0.0f32; otae_core::N_FEATURES];
            row[0] = i as f32 / 100.0;
            d.push(&row, row[0] > threshold);
        }
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        t
    }

    #[test]
    fn filter_policies_carry_their_zoo_names() {
        for (mode, name) in [
            (Mode::SecondHit, "SecondHit"),
            (Mode::TinyLfu, "TinyLFU"),
            (Mode::RejectX, "RejectX"),
            (Mode::CoinFlip, "CoinFlip"),
        ] {
            let p = filter_policy_for(mode, 1000, 100, 30, 0.5).expect("filter mode");
            assert_eq!(p.name(), name);
            assert!(!p.is_learned(), "{name} must not engage the retrainer");
        }
        for mode in [Mode::Original, Mode::Ideal, Mode::Proposal] {
            assert!(filter_policy_for(mode, 1000, 100, 30, 0.5).is_none());
        }
    }

    #[test]
    fn second_hit_policy_admits_only_on_reappearance() {
        let mut p = filter_policy_for(Mode::SecondHit, 1000, 100, 30, 0.5).unwrap();
        assert!(!p.decide(&req(0, 7, 0.0, false)), "first sighting bypasses");
        assert!(p.decide(&req(1, 7, 0.0, false)), "second sighting admits");
    }

    #[test]
    fn trait_hooks_default_to_no_ops() {
        let mut p = filter_policy_for(Mode::TinyLfu, 1000, 100, 30, 0.5).unwrap();
        let r = req(0, 1, 0.0, false);
        let before = p.decide(&r);
        // Neither hook may disturb filter state or panic.
        p.observe(&r, before);
        p.on_model_swap(42);
        let mut q = filter_policy_for(Mode::TinyLfu, 1000, 100, 30, 0.5).unwrap();
        assert_eq!(before, q.decide(&r), "hooks must not change decisions");
    }

    /// The trait-boxed ML gate must decide exactly like the pipeline's
    /// `ClassifierAdmission` — same model, same request stream, same
    /// verdicts, confusion and rectifications. This is the seam that makes
    /// "the ML gate is one implementation of the trait" true rather than
    /// aspirational.
    #[test]
    fn ml_gate_policy_matches_pipeline_classifier_semantics() {
        let gate = Arc::new(AdmissionGate::new());
        let mut policy = MlGatePolicy::new(Arc::clone(&gate), 100, 64, true);
        let mut reference = ClassifierAdmission::new(100, 64);

        // Phase 1: cold gate == untrained classifier (admit everything).
        for i in 0..10u64 {
            let r = req(i, i as u32, 0.9, true);
            assert!(policy.decide(&r), "cold gate admits");
            assert!(reference.decide(r.object, &r.features, r.idx, r.truth));
        }
        assert_eq!(policy.confusion().total(), 0);

        // Phase 2: install a model in both and replay a mixed stream with
        // repeats (exercises history rectification) and both label kinds.
        gate.install(tree(0.5));
        reference.model = Some(tree(0.5));
        for i in 10..300u64 {
            let r = req(i, (i % 23) as u32, (i % 10) as f32 / 10.0, i % 3 == 0);
            let got = policy.decide(&r);
            let want = reference.decide(r.object, &r.features, r.idx, r.truth);
            assert_eq!(got, want, "divergence at request {i}");
        }
        assert_eq!(policy.confusion(), reference.confusion);
        assert_eq!(policy.rectifications(), reference.history.rectifications());
        assert!(policy.confusion().total() > 0, "the model must have been consulted");
        assert!(policy.rectifications() > 0, "repeats within M must rectify");
        assert!(policy.is_learned());
        assert_eq!(policy.name(), "MLGate");
    }

    /// Hot-swapping the gate mid-stream changes subsequent decisions
    /// without resetting history state — mirroring the shard-level
    /// `rectification_survives_a_model_swap` test at the trait level.
    #[test]
    fn ml_gate_policy_tracks_hot_swaps() {
        let gate = Arc::new(AdmissionGate::new());
        let mut policy = MlGatePolicy::new(Arc::clone(&gate), 100, 64, true);
        gate.install(tree(0.5));
        assert!(!policy.decide(&req(0, 7, 0.9, true)), "one-time under model A");
        gate.install(tree(0.2));
        policy.on_model_swap(gate.swaps());
        // Reappears within M under model B: history must force-admit.
        assert!(policy.decide(&req(50, 7, 0.9, true)), "rectified across the swap");
        assert_eq!(policy.rectifications(), 1);
    }
}

//! Fault-injection seams for the service.
//!
//! The learned admission layer must degrade to plain caching when its
//! training machinery misbehaves (a stalled retrainer, a lossy sample
//! channel, a dying shard) — Flashield and the learned-eviction literature
//! both call this out as the make-or-break property of ML cache layers.
//! These hooks let a harness script exactly that misbehaviour: every
//! decision point on the training/swap path consults the run's
//! [`FaultPlan`], which defaults to [`NoFaults`] (all seams compile to
//! trivially-inlined no-ops in production configs).

/// What happens to one training sample on its way to the retrainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFault {
    /// Forward the sample unchanged (the default).
    Deliver,
    /// Silently drop it (lossy log tailer / dropped `TrainMsg` batch).
    Drop,
    /// Deliver a corrupted record: scrambled finite features and a flipped
    /// label (a codec bit-flip that survived into the training path).
    Corrupt,
}

/// What happens to one completed daily training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainFault {
    /// Install the model as usual (the default).
    Proceed,
    /// The training job dies; the model is lost and the previous one keeps
    /// serving.
    Fail,
    /// The training job stalls: the model is installed only after the
    /// retrainer has seen this many further samples.
    Stall {
        /// Number of subsequent samples to hold the install for.
        messages: u64,
    },
}

/// What happens when a trained model is about to be swapped into the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapFault {
    /// Install it (the default).
    Install,
    /// Lose it: the gate keeps whatever it had.
    Drop,
}

/// A scripted schedule of failures injected into one serve run.
///
/// Implementations must be deterministic pure functions of their arguments
/// (plus interior counters at most), so a failing run replays exactly from
/// its seed and schedule. All hooks default to "no fault".
pub trait FaultPlan: std::fmt::Debug + Send + Sync {
    /// Consulted for each training sample about to be forwarded; `idx` is
    /// the request's trace position (stable across thread interleavings).
    fn sample_fault(&self, idx: u64) -> SampleFault {
        let _ = idx;
        SampleFault::Deliver
    }

    /// Consulted when daily training attempt `attempt` (0-based) completes.
    fn retrain_fault(&self, attempt: u32) -> RetrainFault {
        let _ = attempt;
        RetrainFault::Proceed
    }

    /// Consulted when install attempt `attempt` (0-based) reaches the gate.
    fn swap_fault(&self, attempt: u64) -> SwapFault {
        let _ = attempt;
        SwapFault::Install
    }

    /// Return `true` to panic shard `shard` while it processes the request
    /// at trace position `idx` (the worker catches the unwind and keeps
    /// serving — "shard panic-and-recover").
    fn shard_panic(&self, shard: usize, idx: u64) -> bool {
        let _ = (shard, idx);
        false
    }
}

/// The production plan: no faults, ever.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultPlan for NoFaults {}

/// Per-run tally of injected faults and degraded-path events, reported so
/// harnesses can assert conservation (e.g. `accesses == replayed -
/// shard_panics`) and graceful degradation (e.g. `installs == 0 ⇒ admit-all
/// behaviour`).
// lint: merge-exhaustive
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Training samples dropped before the retrainer saw them.
    pub dropped_samples: u64,
    /// Training samples delivered corrupted.
    pub corrupted_samples: u64,
    /// Completed trainings whose model was lost to a `RetrainFault::Fail`.
    pub failed_trainings: u32,
    /// Trainings whose install was stalled by a `RetrainFault::Stall`.
    pub deferred_installs: u32,
    /// Trained models lost at the gate to a `SwapFault::Drop`.
    pub dropped_installs: u32,
    /// Requests consumed by injected shard panics (never reached a counter).
    pub shard_panics: u64,
    /// Client threads that died; their stride of the trace was not replayed.
    pub client_failures: u32,
    /// Worker threads that died outside an injected (caught) panic.
    pub worker_failures: u32,
    /// True when the retrainer thread itself died; the service keeps
    /// serving with whatever model the gate last held.
    pub retrainer_failure: bool,
    /// Segment-store operations that failed (a refused open degrades the
    /// run to storeless serving; put/remove/flush errors after a store
    /// crash each count once). Always zero when no store is attached.
    pub store_failures: u64,
}

impl FaultReport {
    /// True when the run saw no injected faults and no thread failures.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Panic payload used for injected shard faults, so a panic hook can tell
/// scripted failures apart from real bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault {
    /// Shard that the fault hit.
    pub shard: usize,
    /// Trace position of the request consumed by the fault.
    pub request: u64,
}

/// Install (once, process-wide) a panic hook that stays silent for
/// [`InjectedFault`] payloads and defers to the previous hook for anything
/// else. Harness runs call this so scripted shard panics don't spray
/// backtraces over real failures.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_transparent() {
        let plan = NoFaults;
        assert_eq!(plan.sample_fault(0), SampleFault::Deliver);
        assert_eq!(plan.retrain_fault(3), RetrainFault::Proceed);
        assert_eq!(plan.swap_fault(9), SwapFault::Install);
        assert!(!plan.shard_panic(2, 100));
    }

    #[test]
    fn clean_report_detects_any_fault() {
        assert!(FaultReport::default().is_clean());
        let r = FaultReport { dropped_samples: 1, ..Default::default() };
        assert!(!r.is_clean());
        let r = FaultReport { retrainer_failure: true, ..Default::default() };
        assert!(!r.is_clean());
    }

    #[test]
    fn injected_panics_are_catchable_and_identifiable() {
        silence_injected_panics();
        let result = std::panic::catch_unwind(|| {
            std::panic::panic_any(InjectedFault { shard: 1, request: 42 });
        });
        let payload = result.expect_err("must unwind");
        let fault = payload.downcast_ref::<InjectedFault>().expect("typed payload");
        assert_eq!(fault.shard, 1);
        assert_eq!(fault.request, 42);
    }
}

//! # otae-serve — sharded concurrent cache service with hot-swappable admission models
//!
//! The simulator crates answer *what* the paper's admission policy does to
//! hit and write rates; this crate answers whether the design *serves*: a
//! shard-per-core cache service where N independent shards (each a mutex
//! around an [`otae_cache::Cache`] policy, a slice of the §4.4.2 history
//! table, and its own counters) process requests drained from a bounded
//! queue by K worker threads, while a background retrainer hot-swaps the
//! daily-trained admission tree through a shared [`AdmissionGate`] without
//! stalling the request path.
//!
//! ```text
//!   trace ──prepare──▶ [PreparedRequest…]          AdmissionGate
//!   (features, labels,       │                    (RwLock<Arc<tree>>)
//!    model stamps)     M client threads                  ▲ install
//!                            │ paced @ QPS         retrainer thread
//!                      bounded channel             (samples ⇒ daily train)
//!                            │
//!                      K worker threads ──hash(object)──▶ shard mutex
//!                                                         ┌─────────┐
//!                                                         │ cache   │ ×N
//!                                                         │ history │
//!                                                         │ stats   │
//!                                                         └─────────┘
//! ```
//!
//! Two training deliveries are supported ([`TrainerMode`]): *Inline*
//! stamps each request with the model current at its enqueue point, which
//! makes a 1-shard/1-worker replay bit-identical to the single-threaded
//! [`otae_core::pipeline::run`] (the cross-check tests assert this);
//! *Background* resolves models at dispatch time from the gate — the
//! production path, exercised by the hot-swap tests.
//!
//! For deterministic testing the service additionally exposes two seams: a
//! [`ServiceClock`] (wall or seeded-virtual time, so paced replays run
//! instantly and reproducibly) and a [`FaultPlan`] (scripted failures on
//! the training/swap/shard paths, so a harness can assert the learned
//! layer degrades to plain caching instead of corrupting state).

#![warn(missing_docs)]

pub mod clock;
pub mod decision_cache;
pub mod fault;
pub mod gate;
pub mod loadgen;
pub mod policy;
pub mod request;
pub mod retrainer;
pub mod service;
pub mod shard;
pub mod store_layer;

pub use clock::{ServiceClock, VirtualClock};
pub use decision_cache::{feature_bits, DecisionCache, FeatureBits};
pub use fault::{
    silence_injected_panics, FaultPlan, FaultReport, InjectedFault, NoFaults, RetrainFault,
    SampleFault, SwapFault,
};
pub use gate::{AdmissionGate, GateModel};
pub use loadgen::{LoadConfig, SAMPLE_FLUSH};
pub use policy::{filter_policy_for, AdmissionPolicy, FilterPolicy, MlGatePolicy};
pub use request::{prepare, ModelSource, PreparedRequest, PreparedTrace};
pub use retrainer::{run_retrainer, RetrainerReport, TrainBatch, TrainMsg};
pub use service::{serve_trace, serve_trace_with_index, ServeConfig, ServeReport, TrainerMode};
pub use shard::{ShardedCache, Snapshot};
pub use store_layer::{fill_payload, StoreMode, StoreSnapshot};

/// Compile-time thread-safety guarantees for everything the service moves
/// across or shares between threads. A regression (e.g. an `Rc` slipping
/// into a cache policy or the trained tree) fails compilation here rather
/// than at a distant spawn site.
#[allow(dead_code)]
mod thread_safety_assertions {
    use super::*;

    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    const fn assert_send_sync<T: Send + Sync>() {}

    const _: () = {
        // Work items crossing the client ⇒ worker channel.
        assert_send::<PreparedRequest>();
        assert_send::<TrainMsg>();
        assert_send::<TrainBatch>();
        // Shared service state read by every worker.
        assert_send_sync::<AdmissionGate>();
        assert_send_sync::<ShardedCache>();
        // Per-shard memoization state lives inside the shard mutex.
        assert_send::<DecisionCache>();
        // Determinism seams shared across client/worker/retrainer threads.
        assert_send_sync::<VirtualClock>();
        assert_send_sync::<ServiceClock>();
        assert_send_sync::<NoFaults>();
        assert_send_sync::<std::sync::Arc<dyn FaultPlan>>();
        // Per-shard segment stores live inside the shard mutex; their
        // writer threads are owned by the store itself.
        assert_send::<crate::store_layer::ShardStore>();
        assert_send_sync::<StoreMode>();
        // Classifier state moved into shards and the retrainer.
        assert_send_sync::<otae_ml::DecisionTree>();
        assert_send_sync::<otae_core::HistoryTable>();
        assert_send_sync::<otae_core::ClassifierAdmission>();
        assert_send_sync::<otae_core::baseline::SecondHitAdmission>();
        assert_send_sync::<otae_cache::CacheStats>();
        assert_send_sync::<otae_device::ResponseTime>();
        // Disk-head-time accounting lives inside each shard's mutex.
        assert_send::<otae_device::ServiceTimeModel>();
        // The policy zoo: the shared filter slot crosses worker threads,
        // and every zoo filter must stay plain seeded data.
        assert_send::<Box<dyn policy::AdmissionPolicy>>();
        assert_send_sync::<otae_core::MissFilter>();
        // Every replacement policy must build into a Send trait object.
        assert_send::<Box<dyn otae_cache::Cache<otae_trace::ObjectId> + Send>>();
        // The admission policy enum itself (its Oracle variant borrows the
        // reaccess index, so Send requires the index to be Sync).
        assert_send::<otae_core::AdmissionPolicy<'static>>();
        assert_sync::<otae_core::ReaccessIndex>();
    };
}

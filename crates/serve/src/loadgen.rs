//! Trace-replay load generation: M client threads submitting prepared
//! requests into the service's bounded queue at a target aggregate QPS.

use crate::request::PreparedRequest;
use crate::retrainer::TrainMsg;
use crossbeam::channel::Sender;
use std::time::{Duration, Instant};

/// Load-generator settings.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of client threads replaying the trace.
    pub clients: usize,
    /// Aggregate target request rate; `0` replays as fast as possible.
    pub target_qps: f64,
    /// Stop submitting after this wall-clock duration (`None` = replay the
    /// whole trace).
    pub duration: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self { clients: 1, target_qps: 0.0, duration: None }
    }
}

/// Replay `client`'s stride of the prepared trace (requests `client`,
/// `client + n_clients`, …) into the request queue, pacing to its share of
/// the aggregate QPS target. Returns the number of requests submitted.
///
/// When `samples` is set (background-trainer Proposal runs), each submitted
/// request is also forwarded to the retrainer, tying training progress to
/// replay progress the way a production log tailer tails live traffic.
pub(crate) fn replay_client(
    client: usize,
    n_clients: usize,
    prepared: &[PreparedRequest],
    load: &LoadConfig,
    start: Instant,
    requests: &Sender<PreparedRequest>,
    samples: Option<&Sender<TrainMsg>>,
) -> u64 {
    let per_client_qps =
        if load.target_qps > 0.0 { load.target_qps / n_clients as f64 } else { 0.0 };
    let deadline = load.duration.map(|d| start + d);
    let mut sent = 0u64;
    for req in prepared.iter().skip(client).step_by(n_clients) {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break;
            }
        }
        if per_client_qps > 0.0 {
            // Open-loop pacing against the schedule, never sleeping past a
            // missed slot (so a stalled queue doesn't compound lag).
            let due = start + Duration::from_secs_f64(sent as f64 / per_client_qps);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        if let Some(samples) = samples {
            let _ =
                samples.send(TrainMsg { ts: req.ts, features: req.features, one_time: req.truth });
        }
        if requests.send(req.clone()).is_err() {
            break; // all workers gone; nothing left to do
        }
        sent += 1;
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelSource;
    use crossbeam::channel::unbounded;
    use otae_trace::ObjectId;

    fn prepared(n: usize) -> Vec<PreparedRequest> {
        (0..n)
            .map(|i| PreparedRequest {
                idx: i as u64,
                ts: i as u64,
                object: ObjectId(i as u32),
                size: 1,
                features: [0.0; otae_core::N_FEATURES],
                truth: false,
                model: ModelSource::Stamped(None),
            })
            .collect()
    }

    #[test]
    fn strides_partition_the_trace() {
        let reqs = prepared(10);
        let (tx, rx) = unbounded();
        let load = LoadConfig::default();
        let start = Instant::now();
        let mut total = 0;
        for c in 0..3 {
            total += replay_client(c, 3, &reqs, &load, start, &tx, None);
        }
        drop(tx);
        assert_eq!(total, 10);
        let mut seen: Vec<u64> = rx.iter().map(|r| r.idx).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn qps_pacing_slows_submission() {
        let reqs = prepared(8);
        let (tx, rx) = unbounded();
        // 100 QPS over 8 requests ≈ 70ms minimum (first slot fires at t=0).
        let load = LoadConfig { clients: 1, target_qps: 100.0, duration: None };
        let start = Instant::now();
        let sent = replay_client(0, 1, &reqs, &load, start, &tx, None);
        let took = start.elapsed();
        assert_eq!(sent, 8);
        assert!(took >= Duration::from_millis(60), "paced replay took {took:?}");
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
    }

    #[test]
    fn deadline_stops_replay_early() {
        let reqs = prepared(100_000);
        let (tx, rx) = unbounded();
        let load =
            LoadConfig { clients: 1, target_qps: 50.0, duration: Some(Duration::from_millis(50)) };
        let sent = replay_client(0, 1, &reqs, &load, Instant::now(), &tx, None);
        assert!(sent < 100_000, "deadline must cut the replay short");
        drop(tx);
        assert_eq!(rx.iter().count() as u64, sent);
    }

    #[test]
    fn sample_forwarding_mirrors_submissions() {
        let reqs = prepared(20);
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        let sent =
            replay_client(0, 1, &reqs, &LoadConfig::default(), Instant::now(), &tx, Some(&stx));
        drop(tx);
        drop(stx);
        assert_eq!(sent, 20);
        assert_eq!(rx.iter().count(), 20);
        assert_eq!(srx.iter().count(), 20);
    }
}

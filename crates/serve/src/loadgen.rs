//! Trace-replay load generation: M client threads submitting prepared
//! requests into the service's bounded queue at a target aggregate QPS.

use crate::clock::ClockHandle;
use crate::fault::{FaultPlan, SampleFault};
use crate::request::PreparedRequest;
use crate::retrainer::{TrainBatch, TrainMsg};
use crossbeam::channel::Sender;
use otae_core::N_FEATURES;
use std::time::Duration;

/// Samples buffered per client before a flush onto the retrainer channel.
/// One channel send (a mutex acquisition plus a condvar wake of the
/// retrainer thread) per `SAMPLE_FLUSH` submitted requests instead of per
/// request; at the measured serve throughput that wake is the dominant
/// per-request cost of background training, not the sample itself.
pub const SAMPLE_FLUSH: usize = 64;

/// Load-generator settings.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of client threads replaying the trace.
    pub clients: usize,
    /// Aggregate target request rate; `0` replays as fast as possible.
    pub target_qps: f64,
    /// Stop submitting after this much clock time (`None` = replay the
    /// whole trace). Measured against the run's [`ClockHandle`], so virtual
    /// clocks only trip the cap when paced sleeps advance them.
    pub duration: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self { clients: 1, target_qps: 0.0, duration: None }
    }
}

/// What one client thread did.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClientReport {
    /// Requests submitted into the queue.
    pub submitted: u64,
    /// Training samples dropped by the fault plan.
    pub dropped_samples: u64,
    /// Training samples forwarded corrupted by the fault plan.
    pub corrupted_samples: u64,
}

/// Replay `client`'s stride of the prepared trace (requests `client`,
/// `client + n_clients`, …) into the request queue, pacing to its share of
/// the aggregate QPS target.
///
/// When `samples` is set (background-trainer Proposal runs), each submitted
/// request is also forwarded to the retrainer, tying training progress to
/// replay progress the way a production log tailer tails live traffic.
/// Forwarding is buffered: surviving samples accumulate client-side and
/// flush as one [`TrainBatch`] every [`SAMPLE_FLUSH`] requests (and at
/// replay end), so per-client message order is preserved while the channel
/// — and the retrainer wake-up behind it — is paid once per flush. The
/// retrainer hanging up (its receiver dropped, its thread dead) only stops
/// the forwarding — replay itself continues, which is exactly the graceful
/// degradation the harness asserts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_client(
    client: usize,
    n_clients: usize,
    prepared: &[PreparedRequest],
    load: &LoadConfig,
    clock: &ClockHandle,
    requests: &Sender<PreparedRequest>,
    samples: Option<&Sender<TrainBatch>>,
    plan: &dyn FaultPlan,
) -> ClientReport {
    let per_client_qps =
        if load.target_qps > 0.0 { load.target_qps / n_clients as f64 } else { 0.0 };
    let mut report = ClientReport::default();
    let mut sample_buf =
        TrainBatch::with_capacity(if samples.is_some() { SAMPLE_FLUSH } else { 0 });
    for req in prepared.iter().skip(client).step_by(n_clients) {
        if let Some(deadline) = load.duration {
            if clock.elapsed() >= deadline {
                break;
            }
        }
        if per_client_qps > 0.0 {
            // Open-loop pacing against the schedule, never sleeping past a
            // missed slot (so a stalled queue doesn't compound lag).
            clock.sleep_until(Duration::from_secs_f64(report.submitted as f64 / per_client_qps));
        }
        if let Some(samples) = samples {
            let mut msg = TrainMsg { ts: req.ts, features: req.features, one_time: req.truth };
            match plan.sample_fault(req.idx) {
                SampleFault::Deliver => sample_buf.push(msg),
                SampleFault::Drop => report.dropped_samples += 1,
                SampleFault::Corrupt => {
                    // Finite garbage (the ML layer rejects NaN by contract)
                    // with a flipped label: a corrupt record that parsed.
                    msg.features = [f32::MAX; N_FEATURES];
                    msg.one_time = !msg.one_time;
                    report.corrupted_samples += 1;
                    sample_buf.push(msg);
                }
            }
            if sample_buf.len() >= SAMPLE_FLUSH {
                let _ = samples.send(std::mem::replace(
                    &mut sample_buf,
                    TrainBatch::with_capacity(SAMPLE_FLUSH),
                ));
            }
        }
        if requests.send(req.clone()).is_err() {
            break; // all workers gone; nothing left to do
        }
        report.submitted += 1;
    }
    if let (Some(samples), false) = (samples, sample_buf.is_empty()) {
        let _ = samples.send(sample_buf);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ServiceClock;
    use crate::fault::NoFaults;
    use crate::request::ModelSource;
    use crossbeam::channel::unbounded;
    use otae_trace::ObjectId;
    use std::time::Instant;

    fn prepared(n: usize) -> Vec<PreparedRequest> {
        (0..n)
            .map(|i| PreparedRequest {
                idx: i as u64,
                ts: i as u64,
                object: ObjectId(i as u32),
                size: 1,
                features: [0.0; otae_core::N_FEATURES],
                truth: false,
                model: ModelSource::Stamped { model: None, epoch: 0 },
            })
            .collect()
    }

    #[test]
    fn strides_partition_the_trace() {
        let reqs = prepared(10);
        let (tx, rx) = unbounded();
        let load = LoadConfig::default();
        let clock = ServiceClock::Wall.start();
        let mut total = 0;
        for c in 0..3 {
            total += replay_client(c, 3, &reqs, &load, &clock, &tx, None, &NoFaults).submitted;
        }
        drop(tx);
        assert_eq!(total, 10);
        let mut seen: Vec<u64> = rx.iter().map(|r| r.idx).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn qps_pacing_slows_submission() {
        let reqs = prepared(8);
        let (tx, rx) = unbounded();
        // 100 QPS over 8 requests ≈ 70ms minimum (first slot fires at t=0).
        let load = LoadConfig { clients: 1, target_qps: 100.0, duration: None };
        let clock = ServiceClock::Wall.start();
        let start = Instant::now();
        let sent = replay_client(0, 1, &reqs, &load, &clock, &tx, None, &NoFaults).submitted;
        let took = start.elapsed();
        assert_eq!(sent, 8);
        assert!(took >= Duration::from_millis(60), "paced replay took {took:?}");
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
    }

    #[test]
    fn virtual_clock_pacing_is_instant() {
        let reqs = prepared(1000);
        let (tx, rx) = unbounded();
        // 10 QPS over 1000 requests would take ~100 wall seconds.
        let load = LoadConfig { clients: 1, target_qps: 10.0, duration: None };
        let clock = ServiceClock::Virtual(crate::clock::VirtualClock::new()).start();
        let start = Instant::now();
        let sent = replay_client(0, 1, &reqs, &load, &clock, &tx, None, &NoFaults).submitted;
        assert_eq!(sent, 1000);
        assert!(start.elapsed() < Duration::from_secs(10), "virtual pacing must not sleep");
        // Virtual time advanced along the pacing schedule.
        assert!(clock.elapsed() >= Duration::from_secs(99));
        drop(tx);
        assert_eq!(rx.iter().count(), 1000);
    }

    #[test]
    fn deadline_stops_replay_early() {
        let reqs = prepared(100_000);
        let (tx, rx) = unbounded();
        let load =
            LoadConfig { clients: 1, target_qps: 50.0, duration: Some(Duration::from_millis(50)) };
        let clock = ServiceClock::Wall.start();
        let sent = replay_client(0, 1, &reqs, &load, &clock, &tx, None, &NoFaults).submitted;
        assert!(sent < 100_000, "deadline must cut the replay short");
        drop(tx);
        assert_eq!(rx.iter().count() as u64, sent);
    }

    #[test]
    fn sample_forwarding_mirrors_submissions() {
        let reqs = prepared(20);
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        let clock = ServiceClock::Wall.start();
        let report =
            replay_client(0, 1, &reqs, &LoadConfig::default(), &clock, &tx, Some(&stx), &NoFaults);
        drop(tx);
        drop(stx);
        assert_eq!(report.submitted, 20);
        assert_eq!(rx.iter().count(), 20);
        assert_eq!(srx.iter().flatten().count(), 20);
    }

    /// Flush batching is a transport detail: full flushes carry exactly
    /// `SAMPLE_FLUSH` messages, the tail flush carries the remainder, and
    /// the flattened stream preserves the client's submission order.
    #[test]
    fn sample_flushes_are_bounded_and_ordered() {
        let n = 2 * SAMPLE_FLUSH + 17;
        let reqs = prepared(n);
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        let clock = ServiceClock::Wall.start();
        let report =
            replay_client(0, 1, &reqs, &LoadConfig::default(), &clock, &tx, Some(&stx), &NoFaults);
        drop(tx);
        drop(stx);
        assert_eq!(report.submitted, n as u64);
        assert_eq!(rx.iter().count(), n);
        let batches: Vec<TrainBatch> = srx.iter().collect();
        assert_eq!(batches.len(), 3, "two full flushes plus the tail");
        assert_eq!(batches[0].len(), SAMPLE_FLUSH);
        assert_eq!(batches[1].len(), SAMPLE_FLUSH);
        assert_eq!(batches[2].len(), 17);
        let ts: Vec<u64> = batches.iter().flatten().map(|m| m.ts).collect();
        assert_eq!(ts, (0..n as u64).collect::<Vec<_>>(), "order survives batching");
    }

    /// The satellite invariant: a hung-up retrainer (its receiver gone) must
    /// not panic or stall the client — replay completes and every request is
    /// still submitted.
    #[test]
    fn hung_up_retrainer_does_not_stop_replay() {
        let reqs = prepared(50);
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        drop(srx); // retrainer is gone before the replay starts
        let clock = ServiceClock::Wall.start();
        let report =
            replay_client(0, 1, &reqs, &LoadConfig::default(), &clock, &tx, Some(&stx), &NoFaults);
        assert_eq!(report.submitted, 50);
        drop(tx);
        assert_eq!(rx.iter().count(), 50);
    }

    /// Scripted sample faults: drops and corruptions are tallied and only
    /// surviving samples reach the retrainer channel.
    #[test]
    fn sample_faults_are_applied_and_tallied() {
        #[derive(Debug)]
        struct EveryOther;
        impl FaultPlan for EveryOther {
            fn sample_fault(&self, idx: u64) -> SampleFault {
                match idx % 3 {
                    0 => SampleFault::Drop,
                    1 => SampleFault::Corrupt,
                    _ => SampleFault::Deliver,
                }
            }
        }
        let reqs = prepared(30);
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        let clock = ServiceClock::Wall.start();
        let report = replay_client(
            0,
            1,
            &reqs,
            &LoadConfig::default(),
            &clock,
            &tx,
            Some(&stx),
            &EveryOther,
        );
        drop(tx);
        drop(stx);
        assert_eq!(report.submitted, 30, "request path is unaffected by sample faults");
        assert_eq!(report.dropped_samples, 10);
        assert_eq!(report.corrupted_samples, 10);
        assert_eq!(rx.iter().count(), 30);
        let delivered: Vec<TrainMsg> = srx.iter().flatten().collect();
        assert_eq!(delivered.len(), 20, "dropped samples never reach the channel");
        let corrupted = delivered.iter().filter(|m| m.features == [f32::MAX; N_FEATURES]).count();
        assert_eq!(corrupted, 10);
    }
}

//! The sharded cache: N independent single-threaded caches behind mutexes.
//!
//! Each shard owns a replacement policy, its slice of the history table,
//! and its own counters, so the only cross-shard state on the request path
//! is the admission model `Arc` (and, for the SecondHit baseline, its
//! doorkeeper filter). Objects map to shards by id hash, so a shard's
//! state evolves exactly like a small single-threaded simulator over the
//! subsequence of requests routed to it.

use crate::request::PreparedRequest;
use otae_cache::{Cache, CacheStats, Evicted};
use otae_core::baseline::SecondHitAdmission;
use otae_core::classifier_decide;
use otae_core::pipeline::{Mode, PolicyKind};
use otae_core::HistoryTable;
use otae_device::{LatencyModel, ResponseTime};
use otae_ml::{ConfusionMatrix, DecisionTree};
use otae_trace::{ObjectId, Trace};
use parking_lot::Mutex;

/// Mode-invariant parameters shared by every shard.
#[derive(Debug, Clone)]
pub(crate) struct Params {
    pub latency: LatencyModel,
    pub mode: Mode,
    pub classified: bool,
    pub use_history: bool,
    pub m: u64,
}

/// One shard's private state (guarded by its mutex).
pub(crate) struct ShardState {
    cache: Box<dyn Cache<ObjectId> + Send>,
    history: HistoryTable,
    stats: CacheStats,
    response: ResponseTime,
    confusion: ConfusionMatrix,
    evicted: Vec<Evicted<ObjectId>>,
}

impl ShardState {
    /// Drive one request through this shard, mirroring the single-threaded
    /// pipeline's per-request sequence exactly.
    fn process(
        &mut self,
        req: &PreparedRequest,
        model: Option<&DecisionTree>,
        p: &Params,
        second_hit: Option<&Mutex<SecondHitAdmission>>,
    ) {
        let now = req.idx;
        if self.cache.contains(&req.object) {
            self.cache.on_hit(&req.object, now);
            self.stats.record_hit(req.size);
            self.response.record(p.latency.request_latency_us(true, req.size, p.classified));
            return;
        }
        let admit = match p.mode {
            Mode::Original => true,
            Mode::Ideal => !req.truth,
            Mode::Proposal => classifier_decide(
                model,
                &mut self.history,
                &mut self.confusion,
                p.use_history,
                p.m,
                req.object,
                &req.features,
                now,
                req.truth,
            ),
            // A missing doorkeeper is a wiring bug; degrade to admit-always
            // (Original behaviour) rather than unwind a worker thread.
            Mode::SecondHit => match second_hit {
                Some(dk) => dk.lock().decide(req.object),
                None => true,
            },
        };
        if admit {
            self.evicted.clear();
            self.cache.insert(req.object, req.size, now, &mut self.evicted);
            self.stats.record_admitted_miss(req.size);
            for e in &self.evicted {
                self.stats.record_eviction(e.size);
            }
        } else {
            self.cache.on_bypass(&req.object, req.size, now);
            self.stats.record_bypassed_miss(req.size);
        }
        self.response.record(p.latency.request_latency_us(false, req.size, p.classified));
    }
}

/// Merged view of the whole service at one point in time, plus the
/// per-shard breakdown. Because every counter is additive, the merged
/// block is cross-checkable against a single-threaded simulator run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All shards' cache counters, merged.
    pub stats: CacheStats,
    /// All shards' latency accumulators, merged.
    pub response: ResponseTime,
    /// All shards' classifier decisions, merged (Proposal mode).
    pub confusion: ConfusionMatrix,
    /// History-table rectifications across all shards (§4.4.2).
    pub rectifications: u64,
    /// Per-shard cache counters, indexed by shard.
    pub per_shard: Vec<CacheStats>,
}

/// N independent cache shards keyed by object-id hash.
pub struct ShardedCache {
    shards: Vec<Mutex<ShardState>>,
    params: Params,
    second_hit: Option<Mutex<SecondHitAdmission>>,
}

impl ShardedCache {
    /// Build `n_shards` shards of `policy`, splitting `capacity` (and the
    /// history-table budget) evenly across them.
    pub(crate) fn new(
        n_shards: usize,
        policy: PolicyKind,
        capacity: u64,
        history_capacity: usize,
        trace: &Trace,
        params: Params,
        second_hit: Option<SecondHitAdmission>,
    ) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let shard_capacity = capacity / n_shards as u64;
        let shard_history = history_capacity.div_ceil(n_shards).max(1);
        let shards = (0..n_shards)
            .map(|_| {
                Mutex::new(ShardState {
                    cache: policy.build(shard_capacity, trace),
                    history: HistoryTable::new(shard_history),
                    stats: CacheStats::default(),
                    response: ResponseTime::default(),
                    confusion: ConfusionMatrix::default(),
                    evicted: Vec::new(),
                })
            })
            .collect();
        Self { shards, params, second_hit: second_hit.map(Mutex::new) }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard an object maps to (stable for the service's lifetime).
    pub fn shard_of(&self, object: ObjectId) -> usize {
        // SplitMix64 finalizer: cheap, and decorrelates the sequential ids
        // synthetic traces use.
        let mut z = object.0 as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Route one request to its shard and process it under the shard lock.
    pub(crate) fn process(&self, req: &PreparedRequest, model: Option<&DecisionTree>) {
        let shard = &self.shards[self.shard_of(req.object)];
        shard.lock().process(req, model, &self.params, self.second_hit.as_ref());
    }

    /// Route the request to its shard, take the shard lock, then panic with
    /// an [`InjectedFault`](crate::fault::InjectedFault) payload *before*
    /// touching any counter — modelling a shard dying mid-request. The
    /// worker catches the unwind; because `parking_lot` mutexes release on
    /// unwind without poisoning, the shard keeps serving afterwards, and
    /// accounting stays conserved (`accesses == replayed - shard_panics`).
    pub(crate) fn process_with_injected_panic(&self, req: &PreparedRequest) -> ! {
        let shard_idx = self.shard_of(req.object);
        let _guard = self.shards[shard_idx].lock();
        std::panic::panic_any(crate::fault::InjectedFault { shard: shard_idx, request: req.idx });
    }

    /// Capture a merged + per-shard statistics snapshot. Shards are locked
    /// one at a time, so a snapshot taken mid-replay is a slightly stale
    /// but internally consistent per-shard view.
    pub fn snapshot(&self) -> Snapshot {
        let mut stats = CacheStats::default();
        let mut response = ResponseTime::default();
        let mut confusion = ConfusionMatrix::default();
        let mut rectifications = 0u64;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let s = shard.lock();
            stats.merge(&s.stats);
            response.merge(&s.response);
            confusion.tp += s.confusion.tp;
            confusion.fp += s.confusion.fp;
            confusion.fn_ += s.confusion.fn_;
            confusion.tn += s.confusion.tn;
            rectifications += s.history.rectifications();
            per_shard.push(s.stats);
        }
        Snapshot { stats, response, confusion, rectifications, per_shard }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelSource;
    use otae_trace::{generate, TraceConfig};

    fn params(mode: Mode) -> Params {
        Params {
            latency: LatencyModel::default(),
            mode,
            classified: mode != Mode::Original,
            use_history: true,
            m: 100,
        }
    }

    fn prepared(idx: u64, object: u32, size: u64, truth: bool) -> PreparedRequest {
        PreparedRequest {
            idx,
            ts: idx,
            object: ObjectId(object),
            size,
            features: [0.0; otae_core::N_FEATURES],
            truth,
            model: ModelSource::Stamped(None),
        }
    }

    fn sharded(n: usize, mode: Mode) -> ShardedCache {
        let trace = generate(&TraceConfig { n_objects: 100, seed: 1, ..Default::default() });
        ShardedCache::new(n, PolicyKind::Lru, 1 << 20, 64, &trace, params(mode), None)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let c = sharded(4, Mode::Original);
        for id in 0..1000u32 {
            let s = c.shard_of(ObjectId(id));
            assert!(s < 4);
            assert_eq!(s, c.shard_of(ObjectId(id)), "routing must be deterministic");
        }
    }

    #[test]
    fn hash_spreads_sequential_ids() {
        let c = sharded(4, Mode::Original);
        let mut counts = [0usize; 4];
        for id in 0..4000u32 {
            counts[c.shard_of(ObjectId(id))] += 1;
        }
        for &n in &counts {
            assert!((600..=1400).contains(&n), "imbalanced shard: {counts:?}");
        }
    }

    #[test]
    fn per_shard_counters_sum_to_merged() {
        let c = sharded(4, Mode::Original);
        for i in 0..500u64 {
            c.process(&prepared(i, (i % 37) as u32, 1000, false), None);
        }
        let snap = c.snapshot();
        assert_eq!(snap.stats.accesses, 500);
        let mut sum = CacheStats::default();
        for s in &snap.per_shard {
            sum.merge(s);
        }
        assert_eq!(sum, snap.stats);
        assert_eq!(snap.response.requests(), 500);
    }

    #[test]
    fn ideal_mode_bypasses_one_time_objects() {
        let c = sharded(2, Mode::Ideal);
        c.process(&prepared(0, 1, 1000, true), None);
        c.process(&prepared(1, 2, 1000, false), None);
        let snap = c.snapshot();
        assert_eq!(snap.stats.bypasses, 1);
        assert_eq!(snap.stats.files_written, 1);
    }

    #[test]
    fn injected_panic_leaves_shard_usable_and_counters_untouched() {
        crate::fault::silence_injected_panics();
        let c = sharded(2, Mode::Original);
        c.process(&prepared(0, 1, 1000, false), None);
        let req = prepared(1, 1, 1000, false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.process_with_injected_panic(&req)
        }));
        assert!(result.is_err(), "injection must unwind");
        // The shard recovered: same object still hits, counters saw exactly
        // the two *real* requests.
        c.process(&prepared(2, 1, 1000, false), None);
        let snap = c.snapshot();
        assert_eq!(snap.stats.accesses, 2);
        assert_eq!(snap.stats.hits, 1);
    }

    /// §4.4.2 across a hot swap: an object judged one-time under model A and
    /// reappearing within `M` must be force-admitted even though the model
    /// consulted the second time is a different (swapped-in) tree.
    #[test]
    fn rectification_survives_a_model_swap() {
        use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
        fn one_time_tree(threshold: f32) -> DecisionTree {
            let mut d = Dataset::new(otae_core::N_FEATURES);
            for i in 0..100 {
                let mut row = [0.0f32; otae_core::N_FEATURES];
                row[0] = i as f32 / 100.0;
                d.push(&row, row[0] > threshold);
            }
            let mut t = DecisionTree::new(TreeParams::default());
            t.fit(&d);
            t
        }
        let c = sharded(1, Mode::Proposal);
        let model_a = one_time_tree(0.5);
        let model_b = one_time_tree(0.2);
        let mut req = prepared(0, 7, 1000, true);
        req.features[0] = 0.9; // one-time under both models
        assert!(model_a.predict(&req.features) && model_b.predict(&req.features));
        c.process(&req, Some(&model_a));
        // Same object misses again within M (= 100 in these params), but the
        // gate has swapped to model B in between.
        let mut again = prepared(50, 7, 1000, true);
        again.features[0] = 0.9;
        c.process(&again, Some(&model_b));
        let snap = c.snapshot();
        assert_eq!(snap.rectifications, 1, "history must rectify across the swap");
        assert_eq!(snap.stats.bypasses, 1, "first miss bypassed");
        assert_eq!(snap.stats.files_written, 1, "second miss force-admitted");
    }
}

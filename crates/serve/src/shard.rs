//! The sharded cache: N independent single-threaded caches behind mutexes.
//!
//! Each shard owns a replacement policy, its slice of the history table,
//! and its own counters, so the only cross-shard state on the request path
//! is the admission model `Arc` (and, for the filter policies — SecondHit,
//! TinyLFU, RejectX, CoinFlip — the shared [`AdmissionPolicy`] slot).
//! Objects map to shards by id hash, so a shard's state evolves exactly
//! like a small single-threaded simulator over the subsequence of requests
//! routed to it.

use crate::decision_cache::{feature_bits, DecisionCache};
use crate::gate::GateModel;
use crate::policy::AdmissionPolicy;
use crate::request::PreparedRequest;
use crate::store_layer::{ShardStore, StoreSnapshot};
use otae_cache::{Cache, CacheStats, Evicted};
use otae_core::classifier_apply;
use otae_core::pipeline::{Mode, PolicyKind};
use otae_core::{HistoryTable, N_FEATURES};
use otae_device::{HddProfile, LatencyModel, ResponseTime, ServiceTimeModel};
use otae_ml::ConfusionMatrix;
use otae_trace::{ObjectId, Trace};
use parking_lot::Mutex;

/// Mode-invariant parameters shared by every shard.
#[derive(Debug, Clone)]
pub(crate) struct Params {
    pub latency: LatencyModel,
    pub mode: Mode,
    pub classified: bool,
    pub use_history: bool,
    pub m: u64,
    /// Memoize classifier verdicts in the per-shard [`DecisionCache`].
    pub decision_cache: bool,
    /// Score batched misses with the compiled branchless walk (when the
    /// installed model compiled). Decisions are bit-identical either way.
    pub compiled: bool,
    /// HDD profile charging disk-head time per backend miss.
    pub hdd: HddProfile,
}

/// How a request's classifier verdict is obtained (Proposal mode).
pub(crate) enum Verdict<'a> {
    /// Resolve under the shard lock: decision cache first (when enabled),
    /// then a fresh `model.predict`. This is the un-batched reference path
    /// the exactness tests compare the batched pass against; production
    /// workers always go through [`ShardedCache::process_segment`].
    #[cfg_attr(not(test), allow(dead_code))]
    Resolve(Option<&'a GateModel>, u64),
    /// Already resolved by the batched scoring pass.
    Ready(Option<bool>),
}

/// Reusable buffers for the batched scoring pass — one per worker, so the
/// hot path allocates nothing per request.
#[derive(Default)]
pub(crate) struct BatchScratch {
    /// Per-segment resolved verdicts (`None` = no model installed).
    preds: Vec<Option<bool>>,
    /// Fixed-width row buffer for the batched scoring pass — `[f32; 9]`
    /// elements keep the compiled walk free of per-row slice indirection.
    rows: Vec<[f32; N_FEATURES]>,
    /// Scores coming back from the model, parallel to `miss_idx`.
    scored: Vec<f32>,
    /// Segment positions whose verdict was not memoized.
    miss_idx: Vec<usize>,
}

impl BatchScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// One shard's private state (guarded by its mutex).
pub(crate) struct ShardState {
    cache: Box<dyn Cache<ObjectId> + Send>,
    history: HistoryTable,
    stats: CacheStats,
    response: ResponseTime,
    service_time: ServiceTimeModel,
    confusion: ConfusionMatrix,
    evicted: Vec<Evicted<ObjectId>>,
    decisions: DecisionCache,
    /// Segment store backing this shard (admitted bytes + tombstones);
    /// `None` runs the service storeless, exactly as before.
    store: Option<ShardStore>,
}

impl ShardState {
    /// Resolve one same-(model, epoch) run of `run` into `scratch.preds`
    /// (positions `offset..offset + run.len()`): decision-cache hits answer
    /// immediately; the misses are gathered into one fixed-width row buffer
    /// and scored in a single batched sweep — the compiled branchless walk
    /// when `use_compiled` holds — then memoized. Verdicts are exactly
    /// `model.predict` for every request: memo hits by the cache's epoch +
    /// bit-exact-feature guard, fresh scores because both the compiled and
    /// the interpreted batch paths score bit-identically to `predict`.
    #[allow(clippy::too_many_arguments)]
    fn resolve_run(
        &mut self,
        run: &[(&PreparedRequest, Option<&GateModel>, u64)],
        model: &GateModel,
        epoch: u64,
        use_cache: bool,
        use_compiled: bool,
        scratch: &mut BatchScratch,
        offset: usize,
    ) {
        scratch.rows.clear();
        scratch.miss_idx.clear();
        if use_cache {
            self.decisions.ensure_epoch(epoch);
            for (j, &(req, _, _)) in run.iter().enumerate() {
                let bits = feature_bits(&req.features);
                match self.decisions.lookup(req.object, &bits) {
                    Some(v) => scratch.preds[offset + j] = Some(v),
                    None => {
                        scratch.miss_idx.push(offset + j);
                        scratch.rows.push(req.features);
                    }
                }
            }
        } else {
            for (j, &(req, _, _)) in run.iter().enumerate() {
                scratch.miss_idx.push(offset + j);
                scratch.rows.push(req.features);
            }
        }
        if scratch.miss_idx.is_empty() {
            return;
        }
        scratch.scored.clear();
        model.score_rows_fixed(&scratch.rows, use_compiled, &mut scratch.scored);
        for (&k, &score) in scratch.miss_idx.iter().zip(&scratch.scored) {
            let v = score >= 0.5;
            scratch.preds[k] = Some(v);
            if use_cache {
                let req = run[k - offset].0;
                self.decisions.insert(req.object, feature_bits(&req.features), v);
            }
        }
    }

    /// The classifier's verdict for a miss: `None` while no model is
    /// installed, else `Some(model.predict(features))` — memoized in the
    /// decision cache when enabled. Memoization is exact: a hit requires
    /// the same model epoch and bit-identical features, so the returned
    /// verdict always equals a fresh `predict`.
    #[cfg_attr(not(test), allow(dead_code))]
    fn admission_verdict(
        &mut self,
        req: &PreparedRequest,
        model: Option<&GateModel>,
        epoch: u64,
        use_cache: bool,
    ) -> Option<bool> {
        let model = model?;
        if !use_cache {
            return Some(model.predict(&req.features));
        }
        self.decisions.ensure_epoch(epoch);
        let bits = feature_bits(&req.features);
        if let Some(v) = self.decisions.lookup(req.object, &bits) {
            return Some(v);
        }
        let v = model.predict(&req.features);
        self.decisions.insert(req.object, bits, v);
        Some(v)
    }

    /// Drive one request through this shard, mirroring the single-threaded
    /// pipeline's per-request sequence exactly. The classifier verdict may
    /// arrive precomputed (batched scoring); confusion and history
    /// bookkeeping always runs here, in request order.
    fn process(
        &mut self,
        req: &PreparedRequest,
        verdict: Verdict<'_>,
        p: &Params,
        policy: Option<&Mutex<Box<dyn AdmissionPolicy>>>,
    ) {
        let now = req.idx;
        if self.cache.contains(&req.object) {
            self.cache.on_hit(&req.object, now);
            self.stats.record_hit(req.size);
            self.response.record(p.latency.request_latency_us(true, req.size, p.classified));
            return;
        }
        let admit = match p.mode {
            Mode::Original => true,
            Mode::Ideal => !req.truth,
            Mode::Proposal => {
                let predicted = match verdict {
                    Verdict::Resolve(model, epoch) => {
                        self.admission_verdict(req, model, epoch, p.decision_cache)
                    }
                    Verdict::Ready(predicted) => predicted,
                };
                classifier_apply(
                    predicted,
                    &mut self.history,
                    &mut self.confusion,
                    p.use_history,
                    p.m,
                    req.object,
                    now,
                    req.truth,
                )
            }
            // A missing filter policy is a wiring bug; degrade to
            // admit-always (Original behaviour) rather than unwind a worker
            // thread.
            _filter => match policy {
                Some(pol) => pol.lock().decide(req),
                None => true,
            },
        };
        if admit {
            self.evicted.clear();
            self.cache.insert(req.object, req.size, now, &mut self.evicted);
            self.stats.record_admitted_miss(req.size);
            if let Some(store) = self.store.as_mut() {
                store.on_admit(req.object.0 as u64, req.size);
            }
            for e in &self.evicted {
                self.stats.record_eviction(e.size);
                if let Some(store) = self.store.as_mut() {
                    store.on_evict(e.key.0 as u64);
                }
            }
        } else {
            self.cache.on_bypass(&req.object, req.size, now);
            self.stats.record_bypassed_miss(req.size);
        }
        // Every miss reads the backend exactly once, admitted or not — the
        // flash write happens off the critical path (§5.3.5).
        self.service_time.record_miss(req.ts, req.size);
        self.response.record(p.latency.request_latency_us(false, req.size, p.classified));
    }
}

/// Merged view of the whole service at one point in time, plus the
/// per-shard breakdown. Because every counter is additive, the merged
/// block is cross-checkable against a single-threaded simulator run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All shards' cache counters, merged.
    pub stats: CacheStats,
    /// All shards' latency accumulators, merged.
    pub response: ResponseTime,
    /// All shards' backend disk-head-time accumulators, merged. Window
    /// counts add element-wise, so the merged peak is the peak of the
    /// combined stream.
    pub service_time: ServiceTimeModel,
    /// All shards' classifier decisions, merged (Proposal mode).
    pub confusion: ConfusionMatrix,
    /// History-table rectifications across all shards (§4.4.2).
    pub rectifications: u64,
    /// Per-shard cache counters, indexed by shard.
    pub per_shard: Vec<CacheStats>,
    /// Merged segment-store counters (`None` when serving storeless).
    pub store: Option<StoreSnapshot>,
}

/// N independent cache shards keyed by object-id hash.
pub struct ShardedCache {
    shards: Vec<Mutex<ShardState>>,
    params: Params,
    /// Shared filter policy for the non-ML admission modes (`None` for
    /// Original/Ideal/Proposal). One slot across all shards, exactly like
    /// the single filter instance the pipeline drives.
    policy: Option<Mutex<Box<dyn AdmissionPolicy>>>,
}

impl ShardedCache {
    /// Build `n_shards` shards of `policy`, splitting `capacity` (and the
    /// history-table budget) evenly across them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        n_shards: usize,
        policy: PolicyKind,
        capacity: u64,
        history_capacity: usize,
        trace: &Trace,
        params: Params,
        admission: Option<Box<dyn AdmissionPolicy>>,
        stores: Vec<ShardStore>,
    ) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(stores.is_empty() || stores.len() == n_shards, "need zero stores or one per shard");
        let shard_capacity = capacity / n_shards as u64;
        let shard_history = history_capacity.div_ceil(n_shards).max(1);
        let mut stores = stores.into_iter();
        let shards = (0..n_shards)
            .map(|_| {
                Mutex::new(ShardState {
                    cache: policy.build(shard_capacity, trace),
                    history: HistoryTable::new(shard_history),
                    stats: CacheStats::default(),
                    response: ResponseTime::default(),
                    service_time: ServiceTimeModel::new(params.hdd),
                    confusion: ConfusionMatrix::default(),
                    evicted: Vec::new(),
                    decisions: DecisionCache::new(shard_history),
                    store: stores.next(),
                })
            })
            .collect();
        Self { shards, params, policy: admission.map(Mutex::new) }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard an object maps to (stable for the service's lifetime).
    pub fn shard_of(&self, object: ObjectId) -> usize {
        // SplitMix64 finalizer: cheap, and decorrelates the sequential ids
        // synthetic traces use.
        let mut z = object.0 as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Route one request to its shard and process it under the shard lock,
    /// resolving the classifier verdict there (decision cache, then a fresh
    /// `predict`). `epoch` is the gate epoch `model` was snapshotted at.
    /// Reference path for the batched-equals-sequential tests; production
    /// workers batch through [`ShardedCache::process_segment`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn process(&self, req: &PreparedRequest, model: Option<&GateModel>, epoch: u64) {
        let shard = &self.shards[self.shard_of(req.object)];
        shard.lock().process(
            req,
            Verdict::Resolve(model, epoch),
            &self.params,
            self.policy.as_ref(),
        );
    }

    /// Process a batch segment routed to shard `shard_idx` under one shard
    /// lock: first a scoring pass that resolves every classifier verdict
    /// (memo lookups, then one `score_rows` call per same-(model, epoch)
    /// run), then the sequential per-request decision pass in arrival
    /// order. Decisions are bit-identical to feeding the segment through
    /// [`ShardedCache::process`] one request at a time — only the number of
    /// lock acquisitions and tree walks changes.
    pub(crate) fn process_segment(
        &self,
        shard_idx: usize,
        segment: &[(&PreparedRequest, Option<&GateModel>, u64)],
        scratch: &mut BatchScratch,
    ) {
        if segment.is_empty() {
            return;
        }
        let p = &self.params;
        let mut shard = self.shards[shard_idx].lock();
        scratch.preds.clear();
        scratch.preds.resize(segment.len(), None);
        if p.mode == Mode::Proposal {
            let mut start = 0;
            while start < segment.len() {
                let (_, model, epoch) = segment[start];
                let mut end = start + 1;
                while end < segment.len() {
                    let (_, m2, e2) = segment[end];
                    let same = match (model, m2) {
                        (Some(a), Some(b)) => std::ptr::eq(a, b) && epoch == e2,
                        (None, None) => true,
                        _ => false,
                    };
                    if !same {
                        break;
                    }
                    end += 1;
                }
                if let Some(model) = model {
                    shard.resolve_run(
                        &segment[start..end],
                        model,
                        epoch,
                        p.decision_cache,
                        p.compiled,
                        scratch,
                        start,
                    );
                }
                start = end;
            }
        }
        // Admitted bytes are handed to the shard store inside the critical
        // section by design: `on_admit`'s bounded send is the backpressure
        // seam, and moving store puts outside the lock would reorder them
        // against later requests on the same shard, breaking replay
        // determinism (DESIGN.md §15).
        for (k, &(req, _, _)) in segment.iter().enumerate() {
            // otae-lint: allow(no-blocking-under-lock)
            shard.process(req, Verdict::Ready(scratch.preds[k]), p, self.policy.as_ref());
        }
    }

    /// Route the request to its shard, take the shard lock, then panic with
    /// an [`InjectedFault`](crate::fault::InjectedFault) payload *before*
    /// touching any counter — modelling a shard dying mid-request. The
    /// worker catches the unwind; because `parking_lot` mutexes release on
    /// unwind without poisoning, the shard keeps serving afterwards, and
    /// accounting stays conserved (`accesses == replayed - shard_panics`).
    pub(crate) fn process_with_injected_panic(&self, req: &PreparedRequest) -> ! {
        let shard_idx = self.shard_of(req.object);
        let _guard = self.shards[shard_idx].lock();
        std::panic::panic_any(crate::fault::InjectedFault { shard: shard_idx, request: req.idx });
    }

    /// Drain every shard store's write queue so the next snapshot reports
    /// fully acknowledged byte counters. No-op when serving storeless.
    ///
    /// Only called after every worker has joined, so the store can be
    /// lifted out of its shard and flushed *without* the shard lock held:
    /// `flush` blocks on the writer thread's acknowledgement, and holding a
    /// shard mutex across that wait is exactly what no-blocking-under-lock
    /// exists to forbid.
    pub fn flush_stores(&self) {
        for shard in &self.shards {
            let taken = shard.lock().store.take();
            if let Some(mut store) = taken {
                store.flush();
                shard.lock().store = Some(store);
            }
        }
    }

    /// Capture a merged + per-shard statistics snapshot. Shards are locked
    /// one at a time, so a snapshot taken mid-replay is a slightly stale
    /// but internally consistent per-shard view.
    pub fn snapshot(&self) -> Snapshot {
        let mut stats = CacheStats::default();
        let mut response = ResponseTime::default();
        let mut service_time = ServiceTimeModel::new(self.params.hdd);
        let mut confusion = ConfusionMatrix::default();
        let mut rectifications = 0u64;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut store: Option<StoreSnapshot> = None;
        for shard in &self.shards {
            let s = shard.lock();
            stats.merge(&s.stats);
            response.merge(&s.response);
            service_time.merge(&s.service_time);
            confusion.merge(&s.confusion);
            rectifications += s.history.rectifications();
            per_shard.push(s.stats);
            if let Some(shard_store) = s.store.as_ref() {
                store.get_or_insert_with(StoreSnapshot::default).merge(&shard_store.snapshot());
            }
        }
        Snapshot { stats, response, service_time, confusion, rectifications, per_shard, store }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelSource;
    use otae_trace::{generate, TraceConfig};

    fn params(mode: Mode) -> Params {
        Params {
            latency: LatencyModel::default(),
            mode,
            classified: mode != Mode::Original,
            use_history: true,
            m: 100,
            decision_cache: true,
            compiled: true,
            hdd: HddProfile::default(),
        }
    }

    fn prepared(idx: u64, object: u32, size: u64, truth: bool) -> PreparedRequest {
        PreparedRequest {
            idx,
            ts: idx,
            object: ObjectId(object),
            size,
            features: [0.0; otae_core::N_FEATURES],
            truth,
            model: ModelSource::Stamped { model: None, epoch: 0 },
        }
    }

    fn sharded(n: usize, mode: Mode) -> ShardedCache {
        let trace = generate(&TraceConfig { n_objects: 100, seed: 1, ..Default::default() });
        ShardedCache::new(n, PolicyKind::Lru, 1 << 20, 64, &trace, params(mode), None, Vec::new())
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let c = sharded(4, Mode::Original);
        for id in 0..1000u32 {
            let s = c.shard_of(ObjectId(id));
            assert!(s < 4);
            assert_eq!(s, c.shard_of(ObjectId(id)), "routing must be deterministic");
        }
    }

    #[test]
    fn hash_spreads_sequential_ids() {
        let c = sharded(4, Mode::Original);
        let mut counts = [0usize; 4];
        for id in 0..4000u32 {
            counts[c.shard_of(ObjectId(id))] += 1;
        }
        for &n in &counts {
            assert!((600..=1400).contains(&n), "imbalanced shard: {counts:?}");
        }
    }

    #[test]
    fn per_shard_counters_sum_to_merged() {
        let c = sharded(4, Mode::Original);
        for i in 0..500u64 {
            c.process(&prepared(i, (i % 37) as u32, 1000, false), None, 0);
        }
        let snap = c.snapshot();
        assert_eq!(snap.stats.accesses, 500);
        let mut sum = CacheStats::default();
        for s in &snap.per_shard {
            sum.merge(s);
        }
        assert_eq!(sum, snap.stats);
        assert_eq!(snap.response.requests(), 500);
    }

    #[test]
    fn ideal_mode_bypasses_one_time_objects() {
        let c = sharded(2, Mode::Ideal);
        c.process(&prepared(0, 1, 1000, true), None, 0);
        c.process(&prepared(1, 2, 1000, false), None, 0);
        let snap = c.snapshot();
        assert_eq!(snap.stats.bypasses, 1);
        assert_eq!(snap.stats.files_written, 1);
    }

    #[test]
    fn injected_panic_leaves_shard_usable_and_counters_untouched() {
        crate::fault::silence_injected_panics();
        let c = sharded(2, Mode::Original);
        c.process(&prepared(0, 1, 1000, false), None, 0);
        let req = prepared(1, 1, 1000, false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.process_with_injected_panic(&req)
        }));
        assert!(result.is_err(), "injection must unwind");
        // The shard recovered: same object still hits, counters saw exactly
        // the two *real* requests.
        c.process(&prepared(2, 1, 1000, false), None, 0);
        let snap = c.snapshot();
        assert_eq!(snap.stats.accesses, 2);
        assert_eq!(snap.stats.hits, 1);
    }

    /// The tentpole exactness claim at shard granularity: pushing a stream
    /// through `process_segment` in arbitrary batch sizes — with and
    /// without the decision cache, with and without the compiled walk —
    /// must leave counters bit-identical to the one-request-at-a-time
    /// reference path, including across a model swap mid-stream.
    #[test]
    fn batched_segments_match_per_request_processing_exactly() {
        use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
        fn tree(threshold: f32) -> GateModel {
            let mut d = Dataset::new(otae_core::N_FEATURES);
            for i in 0..100 {
                let mut row = [0.0f32; otae_core::N_FEATURES];
                row[0] = i as f32 / 100.0;
                d.push(&row, row[0] > threshold);
            }
            let mut t = DecisionTree::new(TreeParams::default());
            t.fit(&d);
            GateModel::new(t)
        }
        let model_a = tree(0.5);
        let model_b = tree(0.2);
        assert!(model_a.compiled().is_some() && model_b.compiled().is_some());
        // A stream with repeats (memo hits), a swap at the midpoint, and
        // truths that exercise both confusion outcomes.
        let reqs: Vec<PreparedRequest> = (0..400u64)
            .map(|i| {
                let mut r = prepared(i, (i % 23) as u32, 500 + (i % 7) * 100, i % 3 == 0);
                r.features[0] = (i % 10) as f32 / 10.0;
                r
            })
            .collect();
        let resolved: Vec<(&PreparedRequest, Option<&GateModel>, u64)> = reqs
            .iter()
            .enumerate()
            .map(
                |(i, r)| {
                    if i < 200 {
                        (r, Some(&model_a), 1u64)
                    } else {
                        (r, Some(&model_b), 2u64)
                    }
                },
            )
            .collect();

        let reference = sharded(1, Mode::Proposal);
        for &(req, model, epoch) in &resolved {
            reference.process(req, model, epoch);
        }
        let want = reference.snapshot();
        assert!(want.confusion.total() > 0, "models must have been consulted");
        assert!(want.stats.bypasses > 0 && want.stats.files_written > 0);

        for batch in [1usize, 3, 32, 400] {
            for cache_on in [true, false] {
                for compiled_on in [true, false] {
                    let trace =
                        generate(&TraceConfig { n_objects: 100, seed: 1, ..Default::default() });
                    let mut p = params(Mode::Proposal);
                    p.decision_cache = cache_on;
                    p.compiled = compiled_on;
                    let c = ShardedCache::new(
                        1,
                        PolicyKind::Lru,
                        1 << 20,
                        64,
                        &trace,
                        p,
                        None,
                        Vec::new(),
                    );
                    let mut scratch = BatchScratch::new();
                    for seg in resolved.chunks(batch) {
                        c.process_segment(0, seg, &mut scratch);
                    }
                    let got = c.snapshot();
                    let tag = format!("batch={batch} cache={cache_on} compiled={compiled_on}");
                    assert_eq!(got.stats, want.stats, "{tag}");
                    assert_eq!(got.confusion, want.confusion, "{tag}");
                    assert_eq!(got.rectifications, want.rectifications, "{tag}");
                }
            }
        }
    }

    /// §4.4.2 across a hot swap: an object judged one-time under model A and
    /// reappearing within `M` must be force-admitted even though the model
    /// consulted the second time is a different (swapped-in) tree.
    #[test]
    fn rectification_survives_a_model_swap() {
        use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
        fn one_time_tree(threshold: f32) -> GateModel {
            let mut d = Dataset::new(otae_core::N_FEATURES);
            for i in 0..100 {
                let mut row = [0.0f32; otae_core::N_FEATURES];
                row[0] = i as f32 / 100.0;
                d.push(&row, row[0] > threshold);
            }
            let mut t = DecisionTree::new(TreeParams::default());
            t.fit(&d);
            GateModel::new(t)
        }
        let c = sharded(1, Mode::Proposal);
        let model_a = one_time_tree(0.5);
        let model_b = one_time_tree(0.2);
        let mut req = prepared(0, 7, 1000, true);
        req.features[0] = 0.9; // one-time under both models
        assert!(model_a.predict(&req.features) && model_b.predict(&req.features));
        c.process(&req, Some(&model_a), 1);
        // Same object misses again within M (= 100 in these params), but the
        // gate has swapped to model B in between.
        let mut again = prepared(50, 7, 1000, true);
        again.features[0] = 0.9;
        c.process(&again, Some(&model_b), 2);
        let snap = c.snapshot();
        assert_eq!(snap.rectifications, 1, "history must rectify across the swap");
        assert_eq!(snap.stats.bypasses, 1, "first miss bypassed");
        assert_eq!(snap.stats.files_written, 1, "second miss force-admitted");
    }
}

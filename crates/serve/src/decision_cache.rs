//! Model-epoch-keyed memoization of admission predictions.
//!
//! The classifier's verdict for a request is a pure function of (installed
//! model, feature row). Repeat lookups of hot objects therefore don't need
//! a fresh tree walk: a small per-shard FIFO map remembers the last verdict
//! per object, keyed by the model epoch it was computed under and guarded
//! by a bit-exact feature comparison. Any hot-swap bumps the epoch and
//! invalidates the whole cache wholesale — a cached decision must never
//! survive a model swap.
//!
//! Only the *prediction* is memoized. Confusion accounting and history-table
//! rectification (§4.4.2) are stateful and always run per request, which is
//! why a memoized run is bit-identical to the per-request path (the harness
//! differential oracle enforces this).

use otae_core::N_FEATURES;
use otae_fxhash::FxHashMap;
use otae_trace::ObjectId;
use std::collections::VecDeque;

/// Feature row reduced to its exact bit pattern (`f32::to_bits` per lane):
/// NaN-safe equality, no float comparison on the hot path.
pub type FeatureBits = [u32; N_FEATURES];

/// Pack a feature row into its comparable bit pattern.
pub fn feature_bits(features: &[f32; N_FEATURES]) -> FeatureBits {
    let mut bits = [0u32; N_FEATURES];
    for (b, f) in bits.iter_mut().zip(features) {
        *b = f.to_bits();
    }
    bits
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    bits: FeatureBits,
    predicted_one_time: bool,
}

/// Bounded FIFO memo of (object → model verdict), valid for one model epoch.
///
/// Mirrors the history table's eviction discipline: insertion order is
/// tracked in a queue and the oldest entries fall out first. A lookup hits
/// only when the stored feature bits equal the current row's bits exactly,
/// so the returned verdict is — by construction — what `model.predict`
/// would return right now.
#[derive(Debug)]
pub struct DecisionCache {
    capacity: usize,
    epoch: u64,
    map: FxHashMap<ObjectId, Entry>,
    fifo: VecDeque<ObjectId>,
    invalidations: u64,
}

impl DecisionCache {
    /// Empty cache holding at most `capacity` memoized verdicts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            epoch: 0,
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            fifo: VecDeque::with_capacity(capacity),
            invalidations: 0,
        }
    }

    /// Point the cache at model `epoch`, clearing every memoized verdict if
    /// the epoch changed (the wholesale invalidation on hot-swap).
    pub fn ensure_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            if !self.map.is_empty() {
                self.map.clear();
                self.fifo.clear();
                self.invalidations += 1;
            }
            self.epoch = epoch;
        }
    }

    /// Memoized verdict for `obj` under the current epoch, if the stored
    /// feature bits match `bits` exactly.
    pub fn lookup(&self, obj: ObjectId, bits: &FeatureBits) -> Option<bool> {
        let entry = self.map.get(&obj)?;
        (entry.bits == *bits).then_some(entry.predicted_one_time)
    }

    /// Memoize `predicted_one_time` for `obj` under the current epoch,
    /// evicting the oldest entries FIFO when full. Re-inserting an existing
    /// object refreshes its entry without re-queueing it (same discipline as
    /// the history table).
    pub fn insert(&mut self, obj: ObjectId, bits: FeatureBits, predicted_one_time: bool) {
        let entry = Entry { bits, predicted_one_time };
        if self.map.insert(obj, entry).is_some() {
            return;
        }
        while self.map.len() > self.capacity {
            match self.fifo.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.fifo.push_back(obj);
    }

    /// Memoized verdicts currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Epoch the current contents are valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wholesale invalidations performed so far (epoch changes that dropped
    /// a non-empty cache).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(x: f32) -> [f32; N_FEATURES] {
        let mut f = [0.0f32; N_FEATURES];
        f[0] = x;
        f
    }

    #[test]
    fn memoizes_and_respects_feature_bits() {
        let mut c = DecisionCache::new(4);
        let bits = feature_bits(&row(0.9));
        assert_eq!(c.lookup(ObjectId(1), &bits), None);
        c.insert(ObjectId(1), bits, true);
        assert_eq!(c.lookup(ObjectId(1), &bits), Some(true));
        // Same object, different features: the memo must not answer.
        let other = feature_bits(&row(0.1));
        assert_eq!(c.lookup(ObjectId(1), &other), None);
    }

    #[test]
    fn epoch_bump_invalidates_wholesale() {
        let mut c = DecisionCache::new(4);
        let bits = feature_bits(&row(0.5));
        c.ensure_epoch(1);
        c.insert(ObjectId(1), bits, true);
        c.insert(ObjectId(2), bits, false);
        c.ensure_epoch(2);
        assert!(c.is_empty(), "swap must drop every memoized verdict");
        assert_eq!(c.lookup(ObjectId(1), &bits), None);
        assert_eq!(c.invalidations(), 1);
        // Same epoch again: no further invalidation.
        c.insert(ObjectId(1), bits, true);
        c.ensure_epoch(2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.invalidations(), 1);
    }

    #[test]
    fn fifo_eviction_bounds_the_map() {
        let mut c = DecisionCache::new(2);
        let bits = feature_bits(&row(0.5));
        c.insert(ObjectId(1), bits, true);
        c.insert(ObjectId(2), bits, true);
        c.insert(ObjectId(3), bits, true);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(ObjectId(1), &bits), None, "oldest entry evicted first");
        assert_eq!(c.lookup(ObjectId(3), &bits), Some(true));
        // Refreshing an existing key neither grows nor re-queues it.
        c.insert(ObjectId(2), bits, false);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(ObjectId(2), &bits), Some(false));
    }

    #[test]
    fn nan_features_never_false_hit() {
        let mut c = DecisionCache::new(2);
        let nan = feature_bits(&row(f32::NAN));
        c.insert(ObjectId(1), nan, true);
        // Bit-exact NaN matches itself (same payload), unlike float ==.
        assert_eq!(c.lookup(ObjectId(1), &nan), Some(true));
        assert_eq!(c.lookup(ObjectId(1), &feature_bits(&row(0.0))), None);
    }
}

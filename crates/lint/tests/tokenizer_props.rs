//! Property tests: the lexer is total, and banned patterns embedded in
//! string literals, raw strings, or comments never produce diagnostics.
//!
//! The vendored proptest stand-in has no regex string strategies, so
//! strings are built from sampled charset indices instead.

use otae_lint::{lex, lint_source, Options};
use proptest::collection::vec;
use proptest::prelude::*;

/// Token patterns that would fire some rule if they appeared in code
/// position at these paths.
const BANNED: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "std::thread::sleep(d)",
    "thread_rng()",
    "from_entropy()",
    "OsRng",
    "std::collections::HashMap::new()",
    "HashMap::with_capacity(8)",
    ".unwrap()",
    ".expect(\"x\")",
    "panic!(\"x\")",
    "mpsc::channel()",
];

/// Paths covering every rule's scope.
const PATHS: &[&str] =
    &["crates/serve/src/fixture.rs", "crates/harness/src/fixture.rs", "crates/ml/src/fixture.rs"];

fn lowercase_filler(indices: &[usize]) -> String {
    indices.iter().map(|&i| (b'a' + (i % 26) as u8) as char).collect()
}

fn assert_silent(src: &str, context: &str) {
    for path in PATHS {
        let diags = lint_source(path, src, Options { strict: true });
        assert!(
            diags.is_empty(),
            "{context} leaked a diagnostic at {path}:\n{src}\n{:?}",
            diags.iter().map(|d| d.render()).collect::<Vec<_>>()
        );
    }
}

/// Escape for embedding inside a plain (escaped) string literal.
fn escaped(banned: &str) -> String {
    banned.replace('"', "\\\"")
}

proptest! {
    #[test]
    fn banned_patterns_in_plain_strings_are_silent(
        idx in 0..BANNED.len(),
        pre in vec(0..26usize, 0..12),
        post in vec(0..26usize, 0..12),
    ) {
        let banned = escaped(BANNED[idx]);
        let (pre, post) = (lowercase_filler(&pre), lowercase_filler(&post));
        let src = format!("fn f() -> usize {{ let s = \"{pre}{banned}{post}\"; s.len() }}\n");
        assert_silent(&src, "plain string");
    }

    #[test]
    fn banned_patterns_in_raw_strings_are_silent(
        idx in 0..BANNED.len(),
        hashes in 0usize..4,
        filler in vec(0..26usize, 0..12),
    ) {
        let banned = BANNED[idx];
        let h = "#".repeat(hashes);
        let filler = lowercase_filler(&filler);
        let src = format!("fn f() -> usize {{ let s = r{h}\"{filler} {banned}\"{h}; s.len() }}\n");
        assert_silent(&src, "raw string");
    }

    #[test]
    fn banned_patterns_in_comments_are_silent(
        idx in 0..BANNED.len(),
        filler in vec(0..26usize, 0..12),
        block in any::<bool>(),
    ) {
        let banned = BANNED[idx];
        let filler = lowercase_filler(&filler);
        let src = if block {
            format!("/* {filler} {banned} /* nested {banned} */ tail */\nfn f() -> u8 {{ 0 }}\n")
        } else {
            format!("// {filler} {banned}\nfn f() -> u8 {{ 0 }}\n")
        };
        assert_silent(&src, "comment");
    }

    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..256)) {
        // Arbitrary (possibly invalid) UTF-8, lossily decoded: the lexer
        // must neither panic nor loop.
        let src = String::from_utf8_lossy(&bytes);
        let _ = lex(&src);
    }

    #[test]
    fn linter_is_total_on_rust_shaped_soup(indices in vec(0..38usize, 0..160)) {
        // Characters weighted toward Rust's tricky lexical space: quotes,
        // hashes, braces, `r`/`b` prefixes, comment starters.
        const SOUP: [char; 38] = [
            '{', '}', '(', ')', '[', ']', '\'', '"', '#', '/', '*', 'r', 'b',
            '!', '.', ':', ';', ',', '<', '>', '=', '+', '_', ' ', '\n',
            '0', '9', 'a', 'e', 'k', 'n', 'p', 's', 't', 'u', 'w', 'x', 'z',
        ];
        let src: String = indices.iter().map(|&i| SOUP[i % SOUP.len()]).collect();
        for path in PATHS {
            let _ = lint_source(path, &src, Options { strict: true });
        }
    }
}

/// Deterministic regressions for the lexer's trickiest edges: hashless raw
/// strings (once mis-lexed as an ident `r` plus a plain string, so a banned
/// pattern inside leaked into code position) and deeply nested block
/// comments.
#[test]
fn raw_string_and_comment_regressions() {
    let cases = [
        // Hashless raw string: no hash to delimit, closes at the first `"`.
        "fn f() -> usize { let s = r\"Instant::now()\"; s.len() }\n",
        // Hashless raw string immediately followed by real code.
        "fn f() -> usize { let s = r\"panic!(oops)\"; s.len() }\n",
        // Byte raw string, hashless.
        "fn f() -> usize { let s = br\"HashMap::new()\"; s.len() }\n",
        // One hash, embedded quote.
        "fn f() -> usize { let s = r#\"say \"unwrap()\" aloud\"#; s.len() }\n",
        // Three-deep nested block comment.
        "/* a /* b /* Instant::now() */ c */ d */\nfn f() -> u8 { 0 }\n",
        // Nested block comment that closes exactly at EOF.
        "fn f() -> u8 { 0 }\n/* outer /* inner */ tail */",
    ];
    for src in cases {
        assert_silent(src, "regression case");
    }
}

//! Property tests for the lock-order analysis.
//!
//! Synthetic programs are generated around a random global lock order: `n`
//! lock classes behind one `App` struct, one `pair_*` fn per included
//! consecutive edge of the order, each edge either acquiring both locks
//! directly or routing the second acquisition through a `grab_*` helper
//! (exercising the transitive, call-graph side of the analysis).
//!
//! * Programs whose acquisitions all follow the global order never trip
//!   `lock-order`.
//! * Planting a single reversed edge always trips it.

use otae_lint::{lint_source, Options};
use proptest::collection::vec;
use proptest::prelude::*;

const PATH: &str = "crates/core/src/fixture.rs";

/// Permutation of `0..n` from arbitrary swap seeds (Fisher–Yates).
fn permutation(n: usize, seeds: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = seeds.get(i).copied().unwrap_or(0) % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Render the synthetic workspace file. `reversed` plants one fn that
/// acquires edge `k`'s locks in the opposite order.
fn program(
    order: &[usize],
    include: &[bool],
    indirect: &[bool],
    reversed: Option<usize>,
) -> String {
    let n = order.len();
    let mut s = String::from("use std::sync::Mutex;\n\n");
    for i in 0..n {
        s.push_str(&format!("pub struct L{i} {{ v: u64 }}\n"));
    }
    s.push_str("pub struct App {\n");
    for i in 0..n {
        s.push_str(&format!("    f{i}: Mutex<L{i}>,\n"));
    }
    s.push_str("}\n\nimpl App {\n");
    for i in 0..n {
        s.push_str(&format!(
            "    fn grab_{i}(&self) -> u64 {{\n        let g = self.f{i}.lock();\n        g.v\n    }}\n"
        ));
    }
    for (k, w) in order.windows(2).enumerate() {
        if !include[k] {
            continue;
        }
        let (x, y) = (w[0], w[1]);
        if indirect[k] {
            s.push_str(&format!(
                "    fn pair_{k}(&self) -> u64 {{\n        let a = self.f{x}.lock();\n        a.v + self.grab_{y}()\n    }}\n"
            ));
        } else {
            s.push_str(&format!(
                "    fn pair_{k}(&self) -> u64 {{\n        let a = self.f{x}.lock();\n        let b = self.f{y}.lock();\n        a.v + b.v\n    }}\n"
            ));
        }
    }
    if let Some(k) = reversed {
        let (x, y) = (order[k], order[k + 1]);
        s.push_str(&format!(
            "    fn reversed(&self) -> u64 {{\n        let b = self.f{y}.lock();\n        let a = self.f{x}.lock();\n        a.v + b.v\n    }}\n"
        ));
    }
    s.push_str("}\n");
    s
}

fn lock_order_diags(src: &str) -> usize {
    let diags = lint_source(PATH, src, Options { strict: false });
    for d in &diags {
        assert_eq!(
            d.rule.name(),
            "lock-order",
            "synthetic program tripped an unrelated rule:\n{src}\n{}",
            d.render()
        );
    }
    diags.len()
}

proptest! {
    #[test]
    fn ordered_programs_never_cycle(
        n in 2usize..6,
        seeds in vec(any::<usize>(), 6),
        include_bits in vec(any::<bool>(), 5),
        indirect_bits in vec(any::<bool>(), 5),
    ) {
        let order = permutation(n, &seeds);
        let src = program(&order, &include_bits, &indirect_bits, None);
        prop_assert_eq!(lock_order_diags(&src), 0, "acyclic program flagged:\n{}", src);
    }

    #[test]
    fn planted_reversal_is_always_caught(
        n in 2usize..6,
        seeds in vec(any::<usize>(), 6),
        include_bits in vec(any::<bool>(), 5),
        indirect_bits in vec(any::<bool>(), 5),
        pick in any::<usize>(),
    ) {
        let order = permutation(n, &seeds);
        // The reversed edge must coexist with its forward twin.
        let k = pick % (n - 1);
        let mut include_bits = include_bits;
        include_bits[k] = true;
        let src = program(&order, &include_bits, &indirect_bits, Some(k));
        prop_assert!(lock_order_diags(&src) >= 1, "planted cycle missed:\n{}", src);
    }
}

//! Compiler-testsuite-style fixture corpus.
//!
//! Every `lint_fixtures/*.rs` file is linted as the virtual workspace path
//! named by its first-line `// otae-lint-fixture-path:` directive, and the
//! diagnostics must match the `//~ ERROR <rule>` / `//~ WARN <rule>`
//! markers exactly (line + rule, strict mode on so advisories show).
//! `lint_fixtures/fix/*.rs` files are input/expected pairs for `--fix`.

use otae_lint::{apply_fixes, lex, lint_source, mark_test_scopes, Options};
use std::fs;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("lint_fixtures")
}

fn virtual_path(src: &str) -> String {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("// otae-lint-fixture-path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| "crates/fixture/src/lib.rs".to_string())
}

/// Parse `//~ ERROR <rule>` / `//~ WARN <rule>` markers into (line, rule).
fn expected_markers(name: &str, src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        for part in line.split("//~").skip(1) {
            let part = part.trim_start();
            let rest = part
                .strip_prefix("ERROR")
                .or_else(|| part.strip_prefix("WARN"))
                .unwrap_or_else(|| panic!("{name}: marker must be `//~ ERROR` or `//~ WARN`"));
            let rule = rest
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("{name}: marker missing a rule name"))
                .to_string();
            out.push((idx as u32 + 1, rule));
        }
    }
    out.sort();
    out
}

fn fixture_sources(sub: Option<&str>) -> Vec<(String, String)> {
    let dir = match sub {
        Some(s) => fixture_dir().join(s),
        None => fixture_dir(),
    };
    let mut out = Vec::new();
    for entry in fs::read_dir(&dir).expect("fixture dir exists") {
        let path = entry.expect("dir entry").path();
        if path.is_file() && path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().expect("file name").to_string_lossy().into_owned();
            out.push((name, fs::read_to_string(&path).expect("fixture readable")));
        }
    }
    out.sort();
    out
}

#[test]
fn fixtures_match_their_markers_exactly() {
    let fixtures = fixture_sources(None);
    assert!(fixtures.len() >= 12, "fixture corpus shrank: {} files", fixtures.len());
    let mut bad = 0;
    let mut good = 0;
    for (name, src) in &fixtures {
        let vpath = virtual_path(src);
        let mut got: Vec<(u32, String)> = lint_source(&vpath, src, Options { strict: true })
            .into_iter()
            .map(|d| (d.line, d.rule.name().to_string()))
            .collect();
        got.sort();
        let want = expected_markers(name, src);
        assert_eq!(got, want, "{name} (linted as {vpath}): diagnostics != markers");
        if name.starts_with("bad_") {
            assert!(!want.is_empty(), "{name}: bad_ fixtures must carry markers");
            bad += 1;
        }
        if name.starts_with("good_") {
            assert!(want.is_empty(), "{name}: good_ fixtures must be marker-free");
            good += 1;
        }
    }
    assert!(bad >= 6 && good >= 5, "corpus balance: {bad} bad, {good} good");
}

#[test]
fn every_enforced_rule_has_a_firing_fixture() {
    let mut fired: Vec<String> = Vec::new();
    for (name, src) in fixture_sources(None) {
        for (_, rule) in expected_markers(&name, &src) {
            fired.push(rule);
        }
    }
    for rule in otae_lint::ENFORCED {
        assert!(fired.iter().any(|r| r == rule.name()), "no fixture exercises {}", rule.name());
    }
    assert!(
        fired.iter().any(|r| r == "advisory-clone-per-request"),
        "no fixture exercises the strict-mode advisory"
    );
}

#[test]
fn advisories_only_show_in_strict_mode() {
    for (name, src) in fixture_sources(None) {
        let vpath = virtual_path(&src);
        let lax = lint_source(&vpath, &src, Options { strict: false });
        assert!(
            lax.iter().all(|d| !d.rule.advisory()),
            "{name}: advisory reported without --strict"
        );
    }
}

#[test]
fn bad_fixtures_report_accurate_columns() {
    // Spot-check that positions point at real tokens, not line starts.
    let src = fs::read_to_string(fixture_dir().join("bad_wall_clock.rs")).expect("fixture");
    let diags = lint_source(&virtual_path(&src), &src, Options::default());
    for d in &diags {
        let line = src.lines().nth(d.line as usize - 1).expect("diag line in range");
        assert!(
            d.col > 1 && (d.col as usize) <= line.len(),
            "column {} out of range for line {:?}",
            d.col,
            line
        );
    }
}

#[test]
fn fix_pairs_rewrite_to_expected_output() {
    let pairs: Vec<(String, String)> = fixture_sources(Some("fix"));
    let inputs: Vec<&(String, String)> =
        pairs.iter().filter(|(n, _)| !n.ends_with(".fixed.rs")).collect();
    assert!(inputs.len() >= 2, "need at least the siphash and rng fix pairs");
    for (name, src) in inputs {
        let expected_name = name.replace(".rs", ".fixed.rs");
        let expected = pairs
            .iter()
            .find(|(n, _)| *n == expected_name)
            .unwrap_or_else(|| panic!("{name}: missing {expected_name}"))
            .1
            .clone();
        let vpath = virtual_path(src);
        let mut lexed = lex(src);
        mark_test_scopes(&mut lexed.tokens, src);
        let fixed = apply_fixes(&vpath, src, &lexed.tokens)
            .unwrap_or_else(|| panic!("{name}: no fixes applied"));
        assert_eq!(fixed, expected, "{name}: --fix output mismatch");
        // And the rewrite must actually silence the fixable rules.
        let after = lint_source(&vpath, &fixed, Options::default());
        assert!(
            after.is_empty(),
            "{name}: diagnostics survive --fix: {:?}",
            after.iter().map(|d| d.render()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn cli_exit_codes_track_fixture_kind() {
    let exe = env!("CARGO_BIN_EXE_otae-lint");
    let dir = fixture_dir();
    for (name, _) in fixture_sources(None) {
        let status = std::process::Command::new(exe)
            .arg("--root")
            .arg(&dir)
            .arg(dir.join(&name))
            .stdout(std::process::Stdio::null())
            .status()
            .expect("run otae-lint");
        let code = status.code().expect("exit code");
        if name.starts_with("bad_") && name != "bad_strict_clone.rs" {
            assert_eq!(code, 1, "{name}: bad_ fixture must fail the lint");
        } else {
            // good_ fixtures and the advisory-only fixture pass (advisories
            // never affect the exit code, even under --strict).
            assert_eq!(code, 0, "{name}: must exit clean");
        }
    }
}

//! Lightweight item/block parser over the lexer: per-file symbol tables.
//!
//! The structural rules (lock-order, no-blocking-under-lock,
//! merge-exhaustive, guard-across-spawn) need more than a token stream:
//! they need to know which structs exist, what their fields' types are,
//! which functions belong to which `impl` block, and where each function
//! body begins and ends. This pass recovers exactly that — nothing more —
//! from the lexed stream. It is deliberately not a Rust parser: item
//! headers are recognised at *item position* (after `;`, `}`, `{`, `]`, or
//! a visibility/qualifier run), generics are skipped with bracket
//! counting, and everything it does not understand is ignored. A wrong
//! guess degrades a structural rule to silence, never to a panic or a
//! false diagnostic storm.

use crate::lexer::{Lexed, Token, TokenKind};

/// A `// lint: merge-exhaustive` tag bound to a struct declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    /// `merge-exhaustive(fingerprint)`: the struct must also flow into
    /// `RunFingerprint`.
    pub fingerprint: bool,
}

/// A named struct field (or `0`, `1`, … for tuple structs) and the raw
/// token texts of its type.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub ty: Vec<String>,
}

/// One `struct` declaration.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    pub col: u32,
    pub in_test: bool,
    pub fields: Vec<FieldDef>,
    pub tag: Option<Tag>,
}

/// One `fn` declaration (with or without a body).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, `None` for free functions.
    pub owner: Option<String>,
    pub line: u32,
    pub col: u32,
    pub in_test: bool,
    /// Named value parameters (`self` receivers excluded).
    pub params: Vec<FieldDef>,
    /// Token indices of the body's `{` and matching `}`.
    pub body: Option<(usize, usize)>,
}

/// Everything the structural rules need from one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnDef>,
    /// All type-introducing item names: structs, enums, unions, traits.
    pub type_names: Vec<String>,
    /// Trait names — the call graph refuses to cross `dyn` dispatch.
    pub trait_names: Vec<String>,
}

/// Build the file model from an already-lexed (and scope-marked) stream.
pub fn build(src: &str, lexed: &Lexed) -> FileModel {
    let p = Parser { src, toks: &lexed.tokens };
    let mut model = FileModel::default();
    let mut depth: u32 = 0;
    // (owner name, depth at which its body opened)
    let mut owners: Vec<(String, u32)> = Vec::new();
    let mut pending_owner: Option<String> = None;
    let mut i = 0;
    while i < p.toks.len() {
        if p.is_punct(i, "{") {
            depth += 1;
            if let Some(o) = pending_owner.take() {
                owners.push((o, depth));
            }
            i += 1;
            continue;
        }
        if p.is_punct(i, "}") {
            if owners.last().is_some_and(|&(_, d)| d == depth) {
                owners.pop();
            }
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        match p.ident(i) {
            Some("impl") if p.item_position(i) => {
                pending_owner = p.impl_owner(i + 1);
                i += 1;
            }
            Some("trait") if p.item_position(i) => {
                if let Some(name) = p.ident(i + 1) {
                    model.type_names.push(name.to_string());
                    model.trait_names.push(name.to_string());
                    pending_owner = Some(name.to_string());
                }
                i += 2;
            }
            Some("enum" | "union") if p.item_position(i) => {
                if let Some(name) = p.ident(i + 1) {
                    model.type_names.push(name.to_string());
                }
                i += 2;
            }
            Some("struct") if p.item_position(i) => {
                if let Some(def) = p.parse_struct(i) {
                    model.type_names.push(def.name.clone());
                    model.structs.push(def);
                }
                i += 2;
            }
            Some("fn") if p.ident(i + 1).is_some() => {
                if let Some(def) = p.parse_fn(i, owners.last().map(|(o, _)| o.as_str())) {
                    model.fns.push(def);
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    // Bind each `// lint: merge-exhaustive` tag to the next struct below it
    // (derive attributes may sit between the comment and the declaration).
    for tag in &lexed.tags {
        let bound = model
            .structs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.line >= tag.line)
            .min_by_key(|(_, s)| s.line)
            .map(|(idx, _)| idx);
        if let Some(idx) = bound {
            let prev = model.structs[idx].tag.map(|t| t.fingerprint).unwrap_or(false);
            model.structs[idx].tag = Some(Tag { fingerprint: prev || tag.fingerprint });
        }
    }
    model
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
}

impl Parser<'_> {
    fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| self.text(t))
    }

    fn is_punct(&self, i: usize, c: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && self.text(t) == c)
    }

    /// Is the keyword at `i` in item position (start of a declaration)
    /// rather than inside an expression or type (`-> impl Trait`)?
    fn item_position(&self, i: usize) -> bool {
        let mut j = i;
        loop {
            if j == 0 {
                return true;
            }
            j -= 1;
            let t = &self.toks[j];
            match (t.kind, self.text(t)) {
                (TokenKind::Ident, "pub" | "unsafe" | "const" | "async" | "extern" | "default") => {
                }
                // `extern "C" fn` — the ABI string.
                (TokenKind::Str, _) => {}
                (TokenKind::Punct, ")") => {
                    // Only a `pub(crate)`-style visibility group qualifies.
                    let Some(open) = self.match_back(j, "(", ")") else { return false };
                    if open == 0 || self.ident(open - 1) != Some("pub") {
                        return false;
                    }
                    j = open;
                }
                (TokenKind::Punct, ";" | "}" | "{" | "]") => return true,
                _ => return false,
            }
        }
    }

    /// Index of the `(`/`[`/`{` matching the closer at `close_idx`.
    fn match_back(&self, close_idx: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = close_idx;
        loop {
            if self.is_punct(j, close) {
                depth += 1;
            } else if self.is_punct(j, open) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
    }

    /// Index of the closer matching the opener at `open_idx`.
    fn match_forward(&self, open_idx: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = open_idx;
        while j < self.toks.len() {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            j += 1;
        }
        None
    }

    /// Skip a `<…>` generic parameter list starting at `j`, if present.
    fn skip_generics(&self, j: usize) -> usize {
        if !self.is_punct(j, "<") {
            return j;
        }
        let mut depth = 0i32;
        let mut k = j;
        while k < self.toks.len() {
            if self.toks[k].kind == TokenKind::Punct {
                match self.text(&self.toks[k]) {
                    "<" | "(" | "[" => depth += 1,
                    ">" if !self.is_punct(k.wrapping_sub(1), "-") => {
                        depth -= 1;
                        if depth == 0 {
                            return k + 1;
                        }
                    }
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
            }
            k += 1;
        }
        k
    }

    /// The self-type name of an `impl` header starting after the keyword:
    /// `impl Foo`, `impl<T> Trait for Foo<T>`, `impl Default for Bar`.
    fn impl_owner(&self, start: usize) -> Option<String> {
        let mut j = self.skip_generics(start);
        let mut candidate: Option<String> = None;
        let mut depth = 0i32;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match (t.kind, self.text(t)) {
                (TokenKind::Punct, "<" | "(" | "[") => depth += 1,
                (TokenKind::Punct, ">") if !self.is_punct(j.wrapping_sub(1), "-") => depth -= 1,
                (TokenKind::Punct, ")" | "]") => depth -= 1,
                (TokenKind::Punct, "{") if depth <= 0 => break,
                (TokenKind::Ident, "where") if depth <= 0 => break,
                // `impl Trait for Type` — the owner is the type after `for`.
                (TokenKind::Ident, "for") if depth <= 0 => candidate = None,
                (TokenKind::Ident, "dyn" | "mut" | "as") => {}
                (TokenKind::Ident, name) if candidate.is_none() => {
                    candidate = Some(name.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        candidate
    }

    /// Collect raw type token texts until a top-level `,` or `limit`.
    /// Returns the texts and the index of the stopping token.
    fn collect_type(&self, start: usize, limit: usize) -> (Vec<String>, usize) {
        let mut depth = 0i32;
        let mut out = Vec::new();
        let mut j = start;
        while j < limit {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "<" | "(" | "[" | "{" => depth += 1,
                    ">" if !self.is_punct(j.wrapping_sub(1), "-") => depth -= 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
            }
            out.push(self.text(t).to_string());
            j += 1;
        }
        (out, j)
    }

    fn parse_struct(&self, i: usize) -> Option<StructDef> {
        let name = self.ident(i + 1)?.to_string();
        let (line, col, in_test) = (self.toks[i].line, self.toks[i].col, self.toks[i].in_test);
        let mut j = self.skip_generics(i + 2);
        // Walk over any `where` clause to the body (or `;` for unit structs).
        while j < self.toks.len()
            && !self.is_punct(j, "{")
            && !self.is_punct(j, "(")
            && !self.is_punct(j, ";")
        {
            j += 1;
        }
        let mut fields = Vec::new();
        if self.is_punct(j, "(") {
            let close = self.match_forward(j, "(", ")")?;
            let mut k = j + 1;
            let mut idx = 0usize;
            while k < close {
                let (ty, next) = self.collect_type(k, close);
                if !ty.is_empty() {
                    // Tuple fields are addressed by position.
                    fields.push(FieldDef { name: idx.to_string(), ty });
                    idx += 1;
                }
                k = next + 1;
            }
        } else if self.is_punct(j, "{") {
            let close = self.match_forward(j, "{", "}")?;
            let mut k = j + 1;
            while k < close {
                while self.is_punct(k, "#") && self.is_punct(k + 1, "[") {
                    k = self.match_forward(k + 1, "[", "]")? + 1;
                }
                if self.ident(k) == Some("pub") {
                    k += 1;
                    if self.is_punct(k, "(") {
                        k = self.match_forward(k, "(", ")")? + 1;
                    }
                }
                let Some(fname) = self.ident(k) else { break };
                if !self.is_punct(k + 1, ":") {
                    break;
                }
                let (ty, next) = self.collect_type(k + 2, close);
                fields.push(FieldDef { name: fname.to_string(), ty });
                k = next + 1;
            }
        }
        Some(StructDef { name, line, col, in_test, fields, tag: None })
    }

    fn parse_fn(&self, i: usize, owner: Option<&str>) -> Option<FnDef> {
        let name = self.ident(i + 1)?.to_string();
        let (line, col, in_test) = (self.toks[i].line, self.toks[i].col, self.toks[i].in_test);
        let j = self.skip_generics(i + 2);
        if !self.is_punct(j, "(") {
            return None;
        }
        let close = self.match_forward(j, "(", ")")?;
        let mut params = Vec::new();
        let mut k = j + 1;
        while k < close {
            while self.is_punct(k, "#") && self.is_punct(k + 1, "[") {
                k = self.match_forward(k + 1, "[", "]")? + 1;
            }
            // Receiver forms: `self`, `&self`, `&mut self`, `&'a self`.
            let mut p = k;
            while self.is_punct(p, "&")
                || self.ident(p) == Some("mut")
                || self.toks.get(p).is_some_and(|t| t.kind == TokenKind::Lifetime)
            {
                p += 1;
            }
            if self.ident(p) == Some("self") {
                let (_, next) = self.collect_type(p, close);
                k = next + 1;
                continue;
            }
            // `name: Type` (after an optional `mut`); anything fancier
            // (tuple patterns, `_`) is skipped to the next comma.
            let mut q = k;
            if self.ident(q) == Some("mut") {
                q += 1;
            }
            if let Some(pname) = self.ident(q) {
                if self.is_punct(q + 1, ":") && !self.is_punct(q + 2, ":") {
                    let (ty, next) = self.collect_type(q + 2, close);
                    params.push(FieldDef { name: pname.to_string(), ty });
                    k = next + 1;
                    continue;
                }
            }
            let (_, next) = self.collect_type(k, close);
            k = next + 1;
        }
        // Find the body `{`, or `;` for a bodyless trait signature.
        let mut b = close + 1;
        let mut depth = 0i32;
        let mut body = None;
        while b < self.toks.len() {
            let t = &self.toks[b];
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        body = Some((b, self.match_forward(b, "{", "}")?));
                        break;
                    }
                    _ => {}
                }
            }
            b += 1;
        }
        Some(FnDef { name, owner: owner.map(str::to_string), line, col, in_test, params, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        let mut lexed = lex(src);
        crate::scope::mark_test_scopes(&mut lexed.tokens, src);
        build(src, &lexed)
    }

    #[test]
    fn structs_fields_and_types_are_recovered() {
        let src = "
pub struct Shared {
    pub index: Mutex<StoreIndex>,
    io: RwLock<()>,
    #[allow(dead_code)]
    pub(crate) buf: Vec<u8>,
}
struct Pair(u32, FxHashMap<u64, u64>);
";
        let m = model(src);
        assert_eq!(m.structs.len(), 2);
        let s = &m.structs[0];
        assert_eq!(s.name, "Shared");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["index", "io", "buf"]);
        assert_eq!(s.fields[0].ty, ["Mutex", "<", "StoreIndex", ">"]);
        let p = &m.structs[1];
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[1].name, "1");
        assert_eq!(p.fields[1].ty[0], "FxHashMap");
    }

    #[test]
    fn fns_get_owners_params_and_bodies() {
        let src = "
fn free(a: u32, mut b: Vec<u8>) -> u32 { a }
impl Store {
    pub fn get(&self, key: u64) -> Option<u64> { self.lookup(key) }
}
impl Gate for Store {
    fn decide(&mut self, req: &Request) -> bool { true }
}
trait Gate {
    fn decide(&mut self, req: &Request) -> bool;
}
";
        let m = model(src);
        let free = m.fns.iter().find(|f| f.name == "free").expect("free fn");
        assert_eq!(free.owner, None);
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[1].name, "b");
        assert!(free.body.is_some());
        let get = m.fns.iter().find(|f| f.name == "get").expect("method");
        assert_eq!(get.owner.as_deref(), Some("Store"));
        assert_eq!(get.params.len(), 1, "self receiver excluded");
        // Trait impl methods belong to the implementing type; the bodyless
        // trait signature belongs to the trait and has no body.
        let impls: Vec<_> = m.fns.iter().filter(|f| f.name == "decide").collect();
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].owner.as_deref(), Some("Store"));
        assert!(impls[0].body.is_some());
        assert_eq!(impls[1].owner.as_deref(), Some("Gate"));
        assert!(impls[1].body.is_none());
        assert!(m.trait_names.contains(&"Gate".to_string()));
    }

    #[test]
    fn return_position_impl_is_not_an_item() {
        let src = "fn make() -> impl Iterator<Item = u32> { (0..3).into_iter() }\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 1);
        assert!(m.type_names.is_empty(), "`-> impl Trait` must not parse as an impl block");
    }

    #[test]
    fn tags_bind_to_the_next_struct() {
        let src = "
struct Untagged { a: u32 }
// lint: merge-exhaustive(fingerprint)
#[derive(Debug, Default)]
pub struct Stats { hits: u64, misses: u64 }
// lint: merge-exhaustive
struct Faults { drops: u64 }
";
        let m = model(src);
        assert_eq!(m.structs[0].tag, None);
        assert_eq!(m.structs[1].tag, Some(Tag { fingerprint: true }));
        assert_eq!(m.structs[2].tag, Some(Tag { fingerprint: false }));
    }

    #[test]
    fn test_scope_marks_carry_into_the_model() {
        let src = "
fn prod() {}
#[cfg(test)]
mod tests {
    struct Fixture { x: u64 }
    fn helper() {}
}
";
        let m = model(src);
        assert!(!m.fns.iter().find(|f| f.name == "prod").expect("prod").in_test);
        assert!(m.fns.iter().find(|f| f.name == "helper").expect("helper").in_test);
        assert!(m.structs[0].in_test);
    }

    #[test]
    fn generic_headers_do_not_derail_parsing() {
        let src = "
impl<K: Ord, V> Table<K, V> where K: Clone {
    fn insert<Q: Into<K>>(&mut self, key: Q, value: V) -> Option<V> { None }
}
struct Table<K, V> where K: Ord { entries: Vec<(K, V)> }
";
        let m = model(src);
        let f = m.fns.iter().find(|f| f.name == "insert").expect("insert");
        assert_eq!(f.owner.as_deref(), Some("Table"));
        assert_eq!(f.params.len(), 2);
        assert_eq!(m.structs[0].fields[0].name, "entries");
    }
}

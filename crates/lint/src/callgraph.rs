//! Workspace-wide structural analysis: symbol tables, the function-level
//! call graph, transitive lock/blocking effects, and the four structural
//! rules built on top (lock-order, no-blocking-under-lock,
//! merge-exhaustive, guard-across-spawn).
//!
//! The analysis is sound-by-silence: anything the lightweight parser or
//! receiver resolution cannot prove is dropped, so a diagnostic here is
//! always anchored to a concrete witness (an acquisition site, a blocking
//! call, a struct literal). Test scopes and `tests/`/`benches/` trees are
//! excluded from fact extraction entirely — a deadlock that only a test
//! can produce is a test bug, not a serve-path invariant.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{path_is_test, Rule};
use crate::diag::Diagnostic;
use crate::lexer::{Lexed, TokenKind};
use crate::locks::{self, Event, EventKind};
use crate::parse::FileModel;

/// One file prepared for workspace analysis.
pub struct PreppedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub src: String,
    pub lexed: Lexed,
    pub model: FileModel,
}

/// What is known about a struct field's (or fn param's) type.
#[derive(Debug, Clone, Default)]
pub struct FieldInfo {
    /// The significant type name after stripping wrappers (`Option`,
    /// `Vec`, `Box`, `Arc`, references, `dyn`, …).
    pub type_name: Option<String>,
    /// Set when the type contains a `Mutex`/`RwLock`: the lock's class.
    pub lock_class: Option<String>,
}

/// Workspace symbol tables shared by the body scanner and the rules.
#[derive(Default)]
pub struct Tables {
    /// struct name -> field name -> resolved field info.
    pub structs: BTreeMap<String, BTreeMap<String, FieldInfo>>,
    /// All first-party type names (structs, enums, unions, traits).
    pub types: BTreeSet<String>,
    /// Trait names — calls through trait-typed receivers are not crossed.
    pub traits: BTreeSet<String>,
    /// (owner or "", fn name) -> workspace fn id. Only bodied, non-test fns.
    pub keys: BTreeMap<(String, String), usize>,
    /// Method name -> every owned workspace fn id carrying it, for the
    /// unique-candidate fallback on unresolvable receivers. Free functions
    /// are excluded (method syntax cannot reach them), as are names that
    /// collide with ubiquitous std methods — see `FALLBACK_STOPLIST`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Method names never resolved through the unique-candidate fallback: they
/// are overwhelmingly std methods (`iterator.collect()`, `file.flush()`),
/// so a single same-named workspace method must not capture every
/// unresolved call site. Typed receivers still resolve them via `keys`.
const FALLBACK_STOPLIST: &[&str] = &[
    "all",
    "any",
    "clear",
    "collect",
    "contains",
    "contains_key",
    "count",
    "drain",
    "entry",
    "extend",
    "filter",
    "find",
    "first",
    "flush",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "merge",
    "min",
    "new",
    "next",
    "parse",
    "pop",
    "push",
    "remove",
    "replace",
    "retain",
    "sort",
    "sort_by",
    "split",
    "sum",
    "take",
    "write",
];

/// Type wrappers that never carry lock identity themselves.
const WRAPPERS: &[&str] =
    &["Option", "Vec", "VecDeque", "Box", "Arc", "Rc", "Cell", "RefCell", "dyn", "mut", "ref"];

/// First identifier in `ty[from..]` that is not a wrapper.
fn significant(ty: &[String], from: usize) -> Option<&str> {
    ty.get(from..)?.iter().map(String::as_str).find(|t| {
        t.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && !WRAPPERS.contains(t)
    })
}

/// Resolve a field (or parameter) type into a `FieldInfo`. `owner` names
/// the enclosing struct (or fn scope) for the `Owner.field` fallback lock
/// class used when the lock wraps a non-workspace type (`RwLock<()>`).
pub fn field_info(owner: &str, field: &str, ty: &[String], types: &BTreeSet<String>) -> FieldInfo {
    if let Some(pos) = ty.iter().position(|t| t == "Mutex" || t == "RwLock") {
        let inner = significant(ty, pos + 1);
        let lock_class = match inner {
            Some(name) if types.contains(name) => name.to_string(),
            _ => format!("{owner}.{field}"),
        };
        return FieldInfo { type_name: inner.map(str::to_string), lock_class: Some(lock_class) };
    }
    FieldInfo { type_name: significant(ty, 0).map(str::to_string), lock_class: None }
}

/// Transitive effects of one function: which lock classes running it may
/// acquire, and whether it may block.
#[derive(Debug, Default, Clone)]
struct Effects {
    /// class -> human witness of where the acquisition happens.
    locks: BTreeMap<String, String>,
    /// First blocking operation reachable from this fn, if any.
    blocking: Option<String>,
}

/// One ordered-acquisition edge in the lock graph.
struct LockEdge {
    from: String,
    to: String,
    witness: String,
    file: usize,
    line: u32,
    col: u32,
}

/// The full structural analysis over a prepared file set.
pub struct Analysis {
    pub diags: Vec<Diagnostic>,
    /// Rendered acquisition graph (printed under `--strict`).
    pub lock_graph: String,
}

pub fn analyze(files: &[PreppedFile]) -> Analysis {
    let ws = Workspace::build(files);
    let mut diags = Vec::new();
    let graph = ws.check_lock_order(&mut diags);
    ws.check_blocking_and_spawn(&mut diags);
    ws.check_merge_exhaustive(&mut diags);
    Analysis { diags, lock_graph: graph }
}

struct Workspace<'a> {
    files: &'a [PreppedFile],
    tables: Tables,
    /// Workspace fn id -> (file idx, fn idx within that file's model).
    fns: Vec<(usize, usize)>,
    facts: Vec<Vec<Event>>,
    effects: Vec<Effects>,
}

impl<'a> Workspace<'a> {
    fn build(files: &'a [PreppedFile]) -> Self {
        let mut tables = Tables::default();
        for f in files {
            for t in &f.model.type_names {
                tables.types.insert(t.clone());
            }
            for t in &f.model.trait_names {
                tables.traits.insert(t.clone());
            }
        }
        for f in files {
            for s in &f.model.structs {
                let fields = tables.structs.entry(s.name.clone()).or_default();
                for fd in &s.fields {
                    fields
                        .entry(fd.name.clone())
                        .or_insert_with(|| field_info(&s.name, &fd.name, &fd.ty, &tables.types));
                }
            }
        }
        // Register bodied functions outside test scope; facts are only
        // extracted for production code.
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if path_is_test(&f.path) {
                continue;
            }
            for (di, d) in f.model.fns.iter().enumerate() {
                if d.body.is_none() || d.in_test {
                    continue;
                }
                let id = fns.len();
                fns.push((fi, di));
                let owned = d.owner.is_some();
                let owner = d.owner.clone().unwrap_or_default();
                tables.keys.entry((owner, d.name.clone())).or_insert(id);
                if owned && !FALLBACK_STOPLIST.contains(&d.name.as_str()) {
                    tables.by_name.entry(d.name.clone()).or_default().push(id);
                }
            }
        }
        let facts: Vec<Vec<Event>> = fns
            .iter()
            .map(|&(fi, di)| {
                let f = &files[fi];
                locks::scan_fn(&f.src, &f.lexed.tokens, &f.model.fns[di], &tables)
            })
            .collect();
        let effects = compute_effects(files, &fns, &facts);
        Workspace { files, tables, fns, facts, effects }
    }

    fn fn_name(&self, id: usize) -> String {
        let (fi, di) = self.fns[id];
        let d = &self.files[fi].model.fns[di];
        match &d.owner {
            Some(o) => format!("{o}::{}", d.name),
            None => d.name.clone(),
        }
    }

    fn site(&self, id: usize, line: u32) -> String {
        let (fi, _) = self.fns[id];
        format!("{}:{line}", self.files[fi].path)
    }

    fn allowed(&self, file: usize, rule: Rule, line: u32) -> bool {
        self.files[file].lexed.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == rule.name())
                && (a.line == line || (a.standalone && a.line + 1 == line))
        })
    }

    fn report(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: Rule,
        file: usize,
        line: u32,
        col: u32,
        message: String,
    ) {
        let path = &self.files[file].path;
        if !rule.in_scope(path) || self.allowed(file, rule, line) {
            return;
        }
        out.push(Diagnostic { rule, path: clone_path(path), line, col, message, fixable: false });
    }

    // ---- lock-order ----------------------------------------------------

    fn lock_edges(&self) -> Vec<LockEdge> {
        let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        for (id, evs) in self.facts.iter().enumerate() {
            let (fi, _) = self.fns[id];
            for ev in evs {
                if ev.held.is_empty() {
                    continue;
                }
                let acquired: Vec<(String, String)> = match &ev.kind {
                    EventKind::Acquire { class } => vec![(
                        class.clone(),
                        format!(
                            "{} acquires `{class}` at {}",
                            self.fn_name(id),
                            self.site(id, ev.line)
                        ),
                    )],
                    EventKind::Call { target } => self.effects[*target]
                        .locks
                        .iter()
                        .map(|(c, w)| {
                            (
                                c.clone(),
                                format!(
                                    "{} calls `{}` at {} ({w})",
                                    self.fn_name(id),
                                    self.fn_name(*target),
                                    self.site(id, ev.line)
                                ),
                            )
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                for (class, witness) in acquired {
                    for h in &ev.held {
                        // Same-class sequential acquisitions (e.g. locking
                        // each shard of a Vec<Mutex<_>> in turn) are not
                        // ordering edges between *different* classes.
                        if *h == class {
                            continue;
                        }
                        edges.entry((h.clone(), class.clone())).or_insert_with(|| LockEdge {
                            from: h.clone(),
                            to: class.clone(),
                            witness: witness.clone(),
                            file: fi,
                            line: ev.line,
                            col: ev.col,
                        });
                    }
                }
            }
        }
        edges.into_values().collect()
    }

    /// Returns the rendered acquisition graph; pushes a diagnostic per
    /// detected cycle (the first found — fixing it re-exposes any next).
    fn check_lock_order(&self, out: &mut Vec<Diagnostic>) -> String {
        let edges = self.lock_edges();
        let graph = self.render_graph(&edges);
        if let Some(cycle) = find_cycle(&edges) {
            // Anchor the diagnostic at the witness of the cycle's first edge.
            let first = edges
                .iter()
                .find(|e| e.from == cycle[0] && e.to == cycle[1])
                .expect("cycle edge must exist");
            let path = cycle.join(" -> ");
            let witnesses: Vec<String> = cycle
                .windows(2)
                .filter_map(|w| {
                    edges.iter().find(|e| e.from == w[0] && e.to == w[1]).map(|e| e.witness.clone())
                })
                .collect();
            self.report(
                out,
                Rule::LockOrder,
                first.file,
                first.line,
                first.col,
                format!("lock acquisition cycle {path}; {}", witnesses.join("; ")),
            );
        }
        graph
    }

    fn render_graph(&self, edges: &[LockEdge]) -> String {
        let mut classes: BTreeSet<String> = BTreeSet::new();
        for fields in self.tables.structs.values() {
            for fi in fields.values() {
                if let Some(c) = &fi.lock_class {
                    classes.insert(c.clone());
                }
            }
        }
        for e in edges {
            classes.insert(e.from.clone());
            classes.insert(e.to.clone());
        }
        let ordered: BTreeSet<&String> = edges.iter().flat_map(|e| [&e.from, &e.to]).collect();
        let mut s = format!(
            "lock acquisition graph: {} classes, {} ordered edges\n",
            classes.len(),
            edges.len()
        );
        for e in edges {
            s.push_str(&format!("  {} -> {}  [{}]\n", e.from, e.to, e.witness));
        }
        let isolated: Vec<&str> =
            classes.iter().filter(|c| !ordered.contains(*c)).map(String::as_str).collect();
        if !isolated.is_empty() {
            s.push_str(&format!("  isolated (never nested): {}\n", isolated.join(", ")));
        }
        s
    }

    // ---- no-blocking-under-lock & guard-across-spawn -------------------

    fn check_blocking_and_spawn(&self, out: &mut Vec<Diagnostic>) {
        for (id, evs) in self.facts.iter().enumerate() {
            let (fi, _) = self.fns[id];
            for ev in evs {
                match &ev.kind {
                    EventKind::SpawnCapture { guard, class } => {
                        self.report(
                            out,
                            Rule::GuardAcrossSpawn,
                            fi,
                            ev.line,
                            ev.col,
                            format!(
                                "guard `{guard}` (lock class `{class}`) is captured by a \
                                 spawned closure"
                            ),
                        );
                    }
                    EventKind::Blocking { what } if !ev.held.is_empty() => {
                        self.report(
                            out,
                            Rule::NoBlockingUnderLock,
                            fi,
                            ev.line,
                            ev.col,
                            format!(
                                "blocking `{what}` while holding lock `{}`",
                                ev.held.join("`, `")
                            ),
                        );
                    }
                    EventKind::Call { target } if !ev.held.is_empty() => {
                        if let Some(w) = &self.effects[*target].blocking {
                            self.report(
                                out,
                                Rule::NoBlockingUnderLock,
                                fi,
                                ev.line,
                                ev.col,
                                format!(
                                    "call to `{}` may block ({w}) while holding lock `{}`",
                                    self.fn_name(*target),
                                    ev.held.join("`, `")
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // ---- merge-exhaustive ----------------------------------------------

    fn check_merge_exhaustive(&self, out: &mut Vec<Diagnostic>) {
        // Fingerprint flow context: the RunFingerprint field types plus
        // every identifier inside any `fn fingerprint` body. When the
        // analyzed set has neither (single-file mode), the flow check is
        // skipped — it would be unsound to fail it.
        let fp_types: BTreeSet<String> = self
            .files
            .iter()
            .flat_map(|f| &f.model.structs)
            .filter(|s| s.name == "RunFingerprint")
            .flat_map(|s| &s.fields)
            .flat_map(|fd| fd.ty.iter().cloned())
            .collect();
        let mut fp_idents: BTreeSet<String> = BTreeSet::new();
        for f in self.files {
            for d in &f.model.fns {
                if d.name != "fingerprint" {
                    continue;
                }
                let Some((open, close)) = d.body else { continue };
                for t in &f.lexed.tokens[open..close] {
                    if t.kind == TokenKind::Ident {
                        fp_idents.insert(f.src[t.start..t.end].to_string());
                    }
                }
            }
        }
        let have_fp_context = !fp_types.is_empty() || !fp_idents.is_empty();

        for (fi, f) in self.files.iter().enumerate() {
            if path_is_test(&f.path) {
                continue;
            }
            for s in &f.model.structs {
                let Some(tag) = s.tag else { continue };
                if s.in_test {
                    continue;
                }
                let field_names: Vec<&str> = s.fields.iter().map(|fd| fd.name.as_str()).collect();
                self.check_merges(out, &s.name, &field_names);
                self.check_functional_updates(out, &s.name);
                if tag.fingerprint && have_fp_context {
                    let methods: BTreeSet<&str> = self
                        .files
                        .iter()
                        .flat_map(|f| &f.model.fns)
                        .filter(|d| d.owner.as_deref() == Some(s.name.as_str()))
                        .map(|d| d.name.as_str())
                        .collect();
                    let flows = fp_types.contains(&s.name)
                        || fp_idents.contains(&s.name)
                        || methods.iter().any(|m| fp_idents.contains(*m));
                    if !flows {
                        self.report(
                            out,
                            Rule::MergeExhaustive,
                            fi,
                            s.line,
                            s.col,
                            format!(
                                "`{}` is tagged merge-exhaustive(fingerprint) but does not \
                                 flow into RunFingerprint",
                                s.name
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Every `fn merge` owned by the tagged struct must contain a struct
    /// expression/pattern naming every field with no `..`.
    fn check_merges(&self, out: &mut Vec<Diagnostic>, name: &str, fields: &[&str]) {
        for (fi, f) in self.files.iter().enumerate() {
            if path_is_test(&f.path) {
                continue;
            }
            for d in &f.model.fns {
                if d.name != "merge" || d.owner.as_deref() != Some(name) || d.in_test {
                    continue;
                }
                let Some((open, close)) = d.body else { continue };
                if self.body_has_full_destructure(f, open, close, name, fields) {
                    continue;
                }
                let body_idents: BTreeSet<&str> = f.lexed.tokens[open..close]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| &f.src[t.start..t.end])
                    .collect();
                let missing: Vec<&str> =
                    fields.iter().filter(|fd| !body_idents.contains(**fd)).copied().collect();
                let detail = if missing.is_empty() {
                    "no full `Self { .. }` destructure found".to_string()
                } else {
                    format!("fields never mentioned: {}", missing.join(", "))
                };
                self.report(
                    out,
                    Rule::MergeExhaustive,
                    fi,
                    d.line,
                    d.col,
                    format!("`{name}::merge` must destructure every field ({detail})"),
                );
            }
        }
    }

    fn body_has_full_destructure(
        &self,
        f: &PreppedFile,
        open: usize,
        close: usize,
        name: &str,
        fields: &[&str],
    ) -> bool {
        let toks = &f.lexed.tokens;
        let mut i = open;
        while i + 1 < close {
            let head_ok = tok_ident(f, i).is_some_and(|t| t == "Self" || t == name);
            if head_ok && tok_punct(f, i + 1, "{") {
                if let Some(end) = match_forward_toks(f, i + 1) {
                    let mut depth = 0i32;
                    let mut seen: BTreeSet<&str> = BTreeSet::new();
                    let mut has_rest = false;
                    for j in i + 2..end {
                        let t = &toks[j];
                        if t.kind == TokenKind::Punct {
                            match &f.src[t.start..t.end] {
                                "{" | "(" | "[" => depth += 1,
                                "}" | ")" | "]" => depth -= 1,
                                "." if depth == 0
                                    && tok_punct(f, j + 1, ".")
                                    && toks[j + 1].start == t.end =>
                                {
                                    has_rest = true;
                                }
                                _ => {}
                            }
                        } else if t.kind == TokenKind::Ident && depth == 0 {
                            seen.insert(&f.src[t.start..t.end]);
                        }
                    }
                    if !has_rest && fields.iter().all(|fd| seen.contains(fd)) {
                        return true;
                    }
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
        false
    }

    /// Ban `..base` functional updates in literals of the tagged struct —
    /// they silently forward fields the merge audit never sees.
    fn check_functional_updates(&self, out: &mut Vec<Diagnostic>, name: &str) {
        for (fi, f) in self.files.iter().enumerate() {
            if path_is_test(&f.path) {
                continue;
            }
            let toks = &f.lexed.tokens;
            // Literal heads: `Name {` anywhere, and `Self {` inside fns the
            // struct owns.
            let mut heads: Vec<usize> = Vec::new();
            for (i, t) in toks.iter().enumerate().take(toks.len().saturating_sub(1)) {
                if t.in_test {
                    continue;
                }
                if tok_ident(f, i) == Some(name) && tok_punct(f, i + 1, "{") {
                    let prev = i.checked_sub(1).and_then(|p| tok_ident(f, p));
                    if !matches!(
                        prev,
                        Some("struct" | "mod" | "trait" | "enum" | "union" | "impl" | "fn" | "for")
                    ) {
                        heads.push(i);
                    }
                }
            }
            for d in &f.model.fns {
                if d.owner.as_deref() != Some(name) || d.in_test {
                    continue;
                }
                let Some((open, close)) = d.body else { continue };
                for i in open..close.saturating_sub(1) {
                    if tok_ident(f, i) == Some("Self") && tok_punct(f, i + 1, "{") {
                        heads.push(i);
                    }
                }
            }
            heads.sort_unstable();
            heads.dedup();
            for head in heads {
                let Some(end) = match_forward_toks(f, head + 1) else { continue };
                let mut depth = 0i32;
                for j in head + 2..end {
                    let t = &toks[j];
                    if t.kind != TokenKind::Punct {
                        continue;
                    }
                    match &f.src[t.start..t.end] {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        // `..ident` / `..Self::default()` is a functional
                        // update; `..}` is a (pattern) rest and is fine.
                        "." if depth == 0
                            && tok_punct(f, j + 1, ".")
                            && toks[j + 1].start == t.end
                            && toks.get(j + 2).is_some_and(|n| n.kind == TokenKind::Ident) =>
                        {
                            self.report(
                                out,
                                Rule::MergeExhaustive,
                                fi,
                                t.line,
                                t.col,
                                format!(
                                    "functional-update `..` on merge-exhaustive struct \
                                     `{name}` hides fields from the audit"
                                ),
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

fn clone_path(p: &str) -> String {
    p.to_string()
}

fn tok_ident(f: &PreppedFile, i: usize) -> Option<&str> {
    f.lexed.tokens.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| &f.src[t.start..t.end])
}

fn tok_punct(f: &PreppedFile, i: usize, c: &str) -> bool {
    f.lexed.tokens.get(i).is_some_and(|t| t.kind == TokenKind::Punct && &f.src[t.start..t.end] == c)
}

/// Index of the `}` matching the `{` at `open_idx`.
fn match_forward_toks(f: &PreppedFile, open_idx: usize) -> Option<usize> {
    let toks = &f.lexed.tokens;
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        if tok_punct(f, j, "{") {
            depth += 1;
        } else if tok_punct(f, j, "}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Per-function transitive effects, computed to a fixpoint over the call
/// graph. Cycles in the call graph converge because the effect domain only
/// grows and is bounded.
fn compute_effects(
    files: &[PreppedFile],
    fns: &[(usize, usize)],
    facts: &[Vec<Event>],
) -> Vec<Effects> {
    let mut effects = vec![Effects::default(); fns.len()];
    for (id, evs) in facts.iter().enumerate() {
        let (fi, _) = fns[id];
        let path = &files[fi].path;
        for ev in evs {
            match &ev.kind {
                EventKind::Acquire { class } => {
                    effects[id]
                        .locks
                        .entry(class.clone())
                        .or_insert_with(|| format!("{path}:{}", ev.line));
                }
                EventKind::Blocking { what } if effects[id].blocking.is_none() => {
                    effects[id].blocking = Some(format!("`{what}` at {path}:{}", ev.line));
                }
                _ => {}
            }
        }
    }
    loop {
        let mut changed = false;
        for id in 0..fns.len() {
            for ev in &facts[id] {
                let EventKind::Call { target } = &ev.kind else { continue };
                let callee = effects[*target].clone();
                for (c, w) in callee.locks {
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        effects[id].locks.entry(c)
                    {
                        let (tfi, tdi) = fns[*target];
                        let name = &files[tfi].model.fns[tdi].name;
                        e.insert(format!("via `{name}`: {w}"));
                        changed = true;
                    }
                }
                if effects[id].blocking.is_none() {
                    if let Some(w) = callee.blocking {
                        let (tfi, tdi) = fns[*target];
                        let name = &files[tfi].model.fns[tdi].name;
                        effects[id].blocking = Some(format!("via `{name}`: {w}"));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return effects;
        }
    }
}

/// Find a cycle in the edge set; returns the node sequence
/// `[n0, n1, …, n0]` when one exists.
fn find_cycle(edges: &[LockEdge]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
        adj.entry(&e.to).or_default();
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut color: BTreeMap<&str, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();

    fn dfs<'g>(
        node: &'g str,
        adj: &BTreeMap<&'g str, Vec<&'g str>>,
        color: &mut BTreeMap<&'g str, Color>,
        stack: &mut Vec<&'g str>,
    ) -> Option<Vec<String>> {
        color.insert(node, Color::Gray);
        stack.push(node);
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            match color.get(next).copied().unwrap_or(Color::White) {
                Color::Gray => {
                    let start = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Color::White => {
                    if let Some(c) = dfs(next, adj, color, stack) {
                        return Some(c);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    for n in nodes {
        if color[&n] == Color::White {
            let mut stack = Vec::new();
            if let Some(c) = dfs(n, &adj, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

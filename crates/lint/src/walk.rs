//! Workspace file discovery.
//!
//! Finds every first-party `.rs` file under the workspace root, skipping
//! `vendor/` (third-party code we do not own), `target/`, hidden
//! directories, and the linter's own fixture corpus (fixtures *contain*
//! violations on purpose; they are linted by the fixture testsuite, not the
//! workspace pass).

use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", "lint_fixtures"];

/// Resolve the workspace root: explicit argument, else two levels up from
/// this crate's manifest (crates/lint → workspace), else the current
/// directory.
pub fn workspace_root(explicit: Option<&Path>) -> PathBuf {
    if let Some(p) = explicit {
        return p.to_path_buf();
    }
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) if root.join("Cargo.toml").is_file() => root.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Collect workspace-relative paths of all lintable `.rs` files, sorted.
pub fn collect(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    visit(root, root, &mut files);
    files.sort();
    files
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            visit(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Normalise a path for rule matching: workspace-relative, forward slashes.
pub fn rule_path(rel: &Path) -> String {
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_but_not_vendor_or_fixtures() {
        let root = workspace_root(None);
        let files = collect(&root);
        let paths: Vec<String> = files.iter().map(|p| rule_path(p)).collect();
        assert!(
            paths.iter().any(|p| p == "crates/lint/src/walk.rs"),
            "walker should find its own source; got {} files",
            paths.len()
        );
        assert!(paths.iter().all(|p| !p.starts_with("vendor/")), "vendor must be skipped");
        assert!(paths.iter().all(|p| !p.contains("lint_fixtures")), "fixtures must be skipped");
        assert!(paths.iter().all(|p| !p.starts_with("target/")), "target must be skipped");
    }

    #[test]
    fn root_resolution_lands_on_workspace_manifest() {
        let root = workspace_root(None);
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}

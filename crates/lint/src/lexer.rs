//! A small hand-rolled Rust lexer, just deep enough for linting.
//!
//! The classic failure mode of grep-style linters is reporting "violations"
//! inside string literals, raw strings, and comments. This lexer strips all
//! of those correctly — nested block comments, `r#"…"#` raw strings with an
//! arbitrary number of hashes, byte/char literals, and the `'a`-lifetime
//! versus `'a'`-char ambiguity — and hands the rule engine a stream of
//! *code* tokens with exact line/column positions. Comments are not
//! discarded entirely: `// otae-lint: allow(<rule>)` directives are parsed
//! out of them as the per-site escape hatch.

/// What a token is. The rule engine matches almost entirely on `Ident` and
/// `Punct`; literal kinds exist so rules can *skip* them deliberately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Lifetime such as `'a` (disambiguated from char literals).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String (`"…"`), raw string (`r#"…"#`), byte string, or C string.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation byte (`:`, `#`, `(`, `[`, `{`, `.`, …).
    Punct,
}

/// One lexed token: kind, byte span into the source, and 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
    /// Filled in by the scope pass: true inside `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
}

/// An `// otae-lint: allow(rule-a, rule-b)` directive found in a comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule names listed inside `allow(…)`.
    pub rules: Vec<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// True when the comment is the only thing on its line, in which case
    /// it covers the *next* line instead of its own.
    pub standalone: bool,
}

/// A `// lint: merge-exhaustive` tag found in a comment. Tags opt the next
/// struct declaration into the `merge-exhaustive` rule.
#[derive(Debug, Clone)]
pub struct TagDirective {
    /// Line the comment sits on.
    pub line: u32,
    /// True for `merge-exhaustive(fingerprint)`: the struct must also flow
    /// into `RunFingerprint`.
    pub fingerprint: bool,
}

/// Lexer output: the code-token stream plus the comment directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
    pub tags: Vec<TagDirective>,
}

/// Lex `src` completely. Never panics: unterminated literals and comments
/// simply run to end-of-file, which is the forgiving behaviour a linter
/// wants on code that may not even compile yet.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
        line_had_code: false,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    /// Whether the current line has produced a code token yet (drives the
    /// `standalone` flag on allow directives).
    line_had_code: bool,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
            self.line_had_code = false;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.line_had_code = true;
        self.out.tokens.push(Token { kind, start, end: self.pos, line, col, in_test: false });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => {
                    self.string();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'\'' => self.char_or_lifetime(start, line, col),
                b'r' | b'b' | b'c' if self.literal_prefix() => {
                    // br#"…"#, rb is not legal Rust but lexing it as a raw
                    // string is harmless; c"…" is a C string literal.
                    self.raw_or_prefixed(start, line, col);
                }
                b'r' if self.peek(1) == b'#'
                    && (self.peek(2) == b'_' || self.peek(2).is_ascii_alphabetic()) =>
                {
                    // Raw identifier `r#type` — one token, hash included.
                    self.bump_n(2);
                    while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ if c == b'_' || c.is_ascii_alphabetic() => {
                    while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Does the cursor sit on a prefixed literal (`r"`, `r#"`, `b"`, `b'`,
    /// `br"`, `c"`, …) rather than a plain identifier starting with r/b/c?
    fn literal_prefix(&self) -> bool {
        let mut i = 1;
        // Allow one more prefix letter (br, rb-style combinations).
        if matches!(self.peek(1), b'r' | b'b') {
            i = 2;
        }
        // Raw forms: hashes then a quote. `r#ident` (raw identifier) has a
        // hash followed by an identifier character, not a quote.
        let mut j = i;
        while self.peek(j) == b'#' {
            j += 1;
        }
        if j > i {
            return self.peek(j) == b'"';
        }
        matches!(self.peek(i), b'"' | b'\'')
    }

    fn raw_or_prefixed(&mut self, start: usize, line: u32, col: u32) {
        // Consume the prefix letters (`r`, `b`, `c`, `br`, `cr`, `rb`),
        // remembering whether an `r` makes the literal *raw*: raw strings
        // have no escapes even with zero hashes, so `r"a\"` ends at the
        // quote — routing it through escaped-string scanning would swallow
        // the terminator and corrupt every following token span.
        let mut raw = false;
        while matches!(self.peek(0), b'r' | b'b' | b'c') {
            raw |= self.peek(0) == b'r';
            self.bump();
            if matches!(self.peek(0), b'"' | b'\'' | b'#') {
                break;
            }
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        match self.peek(0) {
            b'"' if hashes > 0 || raw => {
                // Raw string: ends at `"` followed by `hashes` hashes, with
                // no escape processing at all.
                self.bump();
                loop {
                    if self.pos >= self.src.len() {
                        break;
                    }
                    if self.peek(0) == b'"' {
                        let mut k = 1;
                        while k <= hashes && self.peek(k) == b'#' {
                            k += 1;
                        }
                        if k == hashes + 1 {
                            self.bump_n(hashes + 1);
                            break;
                        }
                    }
                    self.bump();
                }
                self.push(TokenKind::Str, start, line, col);
            }
            b'"' => {
                self.string();
                self.push(TokenKind::Str, start, line, col);
            }
            b'\'' => {
                self.char_literal();
                self.push(TokenKind::Char, start, line, col);
            }
            _ => {
                // `r#ident` raw identifier: hashes already consumed.
                while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                    self.bump();
                }
                self.push(TokenKind::Ident, start, line, col);
            }
        }
    }

    /// Plain (escaped) string body, cursor on the opening quote.
    fn string(&mut self) {
        self.bump();
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    /// Char literal body, cursor on the opening quote.
    fn char_literal(&mut self) {
        self.bump();
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char (`'x'`).
    /// Rule: identifier characters followed by another `'` form a char;
    /// otherwise it was a lifetime.
    fn char_or_lifetime(&mut self, start: usize, line: u32, col: u32) {
        let next = self.peek(1);
        if next == b'\\' || next == b'\'' {
            self.char_literal();
            self.push(TokenKind::Char, start, line, col);
            return;
        }
        if next == b'_' || next.is_ascii_alphabetic() {
            // Scan the identifier run; a closing quote right after it means
            // this was a single-char literal like 'a'.
            let mut k = 2;
            while self.peek(k) == b'_' || self.peek(k).is_ascii_alphanumeric() {
                k += 1;
            }
            if self.peek(k) == b'\'' && k == 2 {
                self.char_literal();
                self.push(TokenKind::Char, start, line, col);
            } else {
                self.bump(); // the quote
                while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, line, col);
            }
            return;
        }
        // Something like '\u{…}' handled above via backslash; anything else
        // (e.g. '(' char literal) — treat as char.
        self.char_literal();
        self.push(TokenKind::Char, start, line, col);
    }

    fn number(&mut self) {
        self.bump();
        loop {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the number; `1..3` does not.
                self.bump();
            } else {
                break;
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let (line, standalone) = (self.line, !self.line_had_code);
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.parse_allow(text, line, standalone);
        self.parse_tag(text, line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let (line, standalone) = (self.line, !self.line_had_code);
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.parse_allow(text, line, standalone);
        self.parse_tag(text, line);
    }

    /// Extract `otae-lint: allow(a, b)` from a comment's text.
    fn parse_allow(&mut self, text: &str, line: u32, standalone: bool) {
        let Some(at) = text.find("otae-lint:") else { return };
        let rest = text[at + "otae-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else { return };
        let Some(close) = rest.find(')') else { return };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            self.out.allows.push(AllowDirective { rules, line, standalone });
        }
    }

    /// Extract `lint: merge-exhaustive` / `lint: merge-exhaustive(fingerprint)`
    /// from a comment's text. The tag binds to the next `struct` declaration.
    fn parse_tag(&mut self, text: &str, line: u32) {
        let Some(at) = text.find("lint:") else { return };
        let rest = text[at + "lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("merge-exhaustive") else { return };
        let fingerprint = rest.trim_start().starts_with("(fingerprint)");
        self.out.tags.push(TagDirective { line, fingerprint });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.iter().map(|t| src[t.start..t.end].to_string()).collect()
    }

    #[test]
    fn idents_and_paths_tokenize() {
        assert_eq!(
            texts("std::time::Instant::now()"),
            ["std", ":", ":", "time", ":", ":", "Instant", ":", ":", "now", "(", ")"]
        );
    }

    #[test]
    fn strings_are_single_tokens() {
        let src = r#"let x = "Instant::now() inside a string"; call(x)"#;
        let t = texts(src);
        assert!(t.contains(&"\"Instant::now() inside a string\"".to_string()));
        assert!(!t.contains(&"Instant".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes() {
        let src = r###"let x = r#"a "quoted" HashMap::new()"#; done()"###;
        let t = texts(src);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(t.contains(&"done".to_string()));
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let src = "/* outer /* inner thread_rng() */ still comment */ fn main() {}";
        let t = texts(src);
        assert_eq!(t[0], "fn");
        assert!(!t.contains(&"thread_rng".to_string()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'b'; let z = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| &src[t.start..t.end])
            .collect();
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(chars, ["'b'", "'\\n'"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let t = texts("let r#type = 1; let r2 = r#fn;");
        assert!(t.contains(&"r#type".to_string()));
        assert!(t.contains(&"r#fn".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"HashMap::new()\"; let c = b'x'; tail()";
        let t = texts(src);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(t.contains(&"tail".to_string()));
    }

    #[test]
    fn allow_directives_are_parsed_with_standalone_flag() {
        let src = "\
// otae-lint: allow(no-wall-clock)
let x = 1; // otae-lint: allow(no-siphash, no-unseeded-rng)
";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert!(lexed.allows[0].standalone);
        assert_eq!(lexed.allows[0].rules, ["no-wall-clock"]);
        assert_eq!(lexed.allows[0].line, 1);
        assert!(!lexed.allows[1].standalone);
        assert_eq!(lexed.allows[1].rules, ["no-siphash", "no-unseeded-rng"]);
    }

    #[test]
    fn hashless_raw_strings_do_not_process_escapes() {
        // `r"a\"` is a complete raw string: the backslash is a literal
        // byte, not an escape of the closing quote. Escape-processing it
        // would swallow the terminator and corrupt every later span.
        let src = "let re = r\"a\\\"; done()";
        let t = texts(src);
        assert!(t.contains(&"r\"a\\\"".to_string()));
        assert!(t.contains(&"done".to_string()));
    }

    #[test]
    fn prefixed_hashless_raw_strings_terminate() {
        let t = texts("let a = br\"x\\\"; let b = cr\"y\\\"; tail()");
        assert!(t.contains(&"br\"x\\\"".to_string()));
        assert!(t.contains(&"cr\"y\\\"".to_string()));
        assert!(t.contains(&"tail".to_string()));
    }

    #[test]
    fn merge_exhaustive_tags_are_parsed() {
        let src = "\
// lint: merge-exhaustive
struct A;
// lint: merge-exhaustive(fingerprint)
struct B;
// otae-lint: allow(no-siphash)
struct C;
";
        let lexed = lex(src);
        assert_eq!(lexed.tags.len(), 2);
        assert_eq!(lexed.tags[0].line, 1);
        assert!(!lexed.tags[0].fingerprint);
        assert_eq!(lexed.tags[1].line, 3);
        assert!(lexed.tags[1].fingerprint);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let src = "fn main() {\n    panic!(\"x\");\n}";
        let lexed = lex(src);
        let panic_tok =
            lexed.tokens.iter().find(|t| &src[t.start..t.end] == "panic").expect("panic token");
        assert_eq!(panic_tok.line, 2);
        assert_eq!(panic_tok.col, 5);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let x = \"unterminated");
        lex("let y = r#\"unterminated");
        lex("/* unterminated");
        lex("let c = 'x");
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        assert_eq!(texts("for i in 0..10 {}"), ["for", "i", "in", "0", ".", ".", "10", "{", "}"]);
        assert!(texts("let x = 1.5f32;").contains(&"1.5f32".to_string()));
    }
}

//! Diagnostics: rustc-style rendering and exit-code policy.

use crate::config::Rule;

/// One violation (or advisory finding).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based position of the offending token.
    pub line: u32,
    pub col: u32,
    /// What was found, e.g. "`Instant::now` call".
    pub message: String,
    /// Whether `--fix` can rewrite this site mechanically.
    pub fixable: bool,
}

impl Diagnostic {
    /// Render in the `file:line:col` shape editors and CI both parse.
    pub fn render(&self) -> String {
        let severity = if self.rule.advisory() { "warning" } else { "error" };
        format!(
            "{severity}[{rule}]: {msg}\n  --> {path}:{line}:{col}\n  = note: {inv}{fix}",
            rule = self.rule.name(),
            msg = self.message,
            path = self.path,
            line = self.line,
            col = self.col,
            inv = self.rule.invariant(),
            fix = if self.fixable {
                "\n  = help: mechanically fixable; rerun with --fix"
            } else {
                ""
            },
        )
    }
}

/// Order diagnostics for stable output: path, then position, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule.name()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule.name(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic {
            rule: Rule::NoWallClock,
            path: "crates/serve/src/service.rs".into(),
            line: 213,
            col: 17,
            message: "`Instant::now` call".into(),
            fixable: false,
        };
        let text = d.render();
        assert!(text.starts_with("error[no-wall-clock]:"), "{text}");
        assert!(text.contains("--> crates/serve/src/service.rs:213:17"), "{text}");
    }

    #[test]
    fn advisories_render_as_warnings() {
        let d = Diagnostic {
            rule: Rule::AdvisoryClonePerRequest,
            path: "crates/serve/src/loadgen.rs".into(),
            line: 1,
            col: 1,
            message: "`.clone()` on the per-request path".into(),
            fixable: false,
        };
        assert!(d.render().starts_with("warning[advisory-clone-per-request]:"));
    }
}

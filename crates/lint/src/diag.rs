//! Diagnostics: rustc-style rendering and exit-code policy.

use crate::config::Rule;

/// One violation (or advisory finding).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based position of the offending token.
    pub line: u32,
    pub col: u32,
    /// What was found, e.g. "`Instant::now` call".
    pub message: String,
    /// Whether `--fix` can rewrite this site mechanically.
    pub fixable: bool,
}

impl Diagnostic {
    /// Render in the `file:line:col` shape editors and CI both parse.
    pub fn render(&self) -> String {
        let severity = if self.rule.advisory() { "warning" } else { "error" };
        format!(
            "{severity}[{rule}]: {msg}\n  --> {path}:{line}:{col}\n  = note: {inv}{fix}",
            rule = self.rule.name(),
            msg = self.message,
            path = self.path,
            line = self.line,
            col = self.col,
            inv = self.rule.invariant(),
            fix = if self.fixable {
                "\n  = help: mechanically fixable; rerun with --fix"
            } else {
                ""
            },
        )
    }
}

/// Render a diagnostic set as a JSON array for machine-readable CI
/// annotations (`--json`). Hand-rolled because the linter is deliberately
/// dependency-free; the escaper covers everything `Diagnostic` can carry.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let severity = if d.rule.advisory() { "warning" } else { "error" };
        s.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"severity\":\"{severity}\",\"path\":\"{}\",\"line\":{},\
             \"col\":{},\"message\":\"{}\",\"fixable\":{}}}",
            json_escape(d.rule.name()),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message),
            d.fixable,
        ));
    }
    s.push_str(if diags.is_empty() { "]" } else { "\n]" });
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Order diagnostics for stable output: path, then position, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule.name()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule.name(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic {
            rule: Rule::NoWallClock,
            path: "crates/serve/src/service.rs".into(),
            line: 213,
            col: 17,
            message: "`Instant::now` call".into(),
            fixable: false,
        };
        let text = d.render();
        assert!(text.starts_with("error[no-wall-clock]:"), "{text}");
        assert!(text.contains("--> crates/serve/src/service.rs:213:17"), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_shapes() {
        let d = Diagnostic {
            rule: Rule::NoPanicInServe,
            path: "crates/serve/src/shard.rs".into(),
            line: 7,
            col: 3,
            message: "`.expect(\"msg\")` call".into(),
            fixable: false,
        };
        let json = render_json(&[d]);
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"rule\":\"no-panic-in-serve\""), "{json}");
        assert!(json.contains("\\\"msg\\\""), "quotes must be escaped: {json}");
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn advisories_render_as_warnings() {
        let d = Diagnostic {
            rule: Rule::AdvisoryClonePerRequest,
            path: "crates/serve/src/loadgen.rs".into(),
            line: 1,
            col: 1,
            message: "`.clone()` on the per-request path".into(),
            fixable: false,
        };
        assert!(d.render().starts_with("warning[advisory-clone-per-request]:"));
    }
}

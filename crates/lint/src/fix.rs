//! Mechanical `--fix` rewrites for the two rules whose remedy is purely
//! syntactic: `no-siphash` (rule 1) and `no-unseeded-rng` (rule 3).
//!
//! Fixes are computed as byte-span edits against the original source and
//! applied back-to-front so earlier spans stay valid. Only non-test code
//! outside string literals and comments is ever rewritten (the edits are
//! derived from the same token stream the rules matched on), and brace-group
//! imports (`use std::collections::{HashMap, …}`) are left for a human —
//! splitting a grouped import is judgement, not mechanics.

use crate::lexer::{Token, TokenKind};

/// Deterministic seed stamped into `no-unseeded-rng` rewrites; the value is
/// arbitrary but grep-able, so swept call sites are easy to audit later.
pub const FIX_SEED: &str = "0x07AE_5EED";

#[derive(Debug, Clone)]
struct Edit {
    start: usize,
    end: usize,
    replacement: String,
}

/// Rewrite `src` (lexed as `tokens`, already scope-marked) and return the
/// fixed text, or `None` when nothing applied.
pub fn apply_fixes(path: &str, src: &str, tokens: &[Token]) -> Option<String> {
    use crate::config::Rule;
    let mut edits: Vec<Edit> = Vec::new();
    if Rule::NoSiphash.in_scope(path) {
        fix_siphash(src, tokens, &mut edits);
    }
    if Rule::NoUnseededRng.in_scope(path) {
        fix_rng(src, tokens, &mut edits);
    }
    if edits.is_empty() {
        return None;
    }
    edits.sort_by_key(|e| e.start);
    edits.dedup_by_key(|e| e.start);
    let mut out = src.to_string();
    for e in edits.iter().rev() {
        out.replace_range(e.start..e.end, &e.replacement);
    }
    Some(out)
}

fn text<'a>(src: &'a str, t: &Token) -> &'a str {
    &src[t.start..t.end]
}

fn is_ident(src: &str, tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident && text(src, t) == name)
}

fn is_punct(src: &str, tokens: &[Token], i: usize, c: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Punct && text(src, t) == c)
}

/// Matches `std :: collections :: <Name>` starting at `i`; returns the index
/// of the final name token.
fn std_collections_path(src: &str, tokens: &[Token], i: usize) -> Option<usize> {
    if is_ident(src, tokens, i, "std")
        && is_punct(src, tokens, i + 1, ":")
        && is_punct(src, tokens, i + 2, ":")
        && is_ident(src, tokens, i + 3, "collections")
        && is_punct(src, tokens, i + 4, ":")
        && is_punct(src, tokens, i + 5, ":")
        && (is_ident(src, tokens, i + 6, "HashMap") || is_ident(src, tokens, i + 6, "HashSet"))
    {
        Some(i + 6)
    } else {
        None
    }
}

/// Rule 1 fixes:
/// - `std::collections::HashMap` (any position, imports included) →
///   `otae_fxhash::FxHashMap`; same for `HashSet`.
/// - remaining bare `HashMap`/`HashSet` idents in files whose import was
///   rewritten → `FxHashMap`/`FxHashSet`.
/// - `Fx…::new()` → `Fx…::default()`; `Fx…::with_capacity(n)` →
///   `Fx…::with_capacity_and_hasher(n, Default::default())`.
fn fix_siphash(src: &str, tokens: &[Token], edits: &mut Vec<Edit>) {
    // Pass 1: path rewrites; remember whether this file imported the std
    // names (then bare uses must be renamed too).
    let mut renamed_import = false;
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].in_test {
            i += 1;
            continue;
        }
        if let Some(name_idx) = std_collections_path(src, tokens, i) {
            // Skip brace-group imports: `use std::collections::{…}` never
            // matches here (the name is inside braces), but a grouped path
            // like `std::collections::{HashMap,…}` equally never matches.
            let name = text(src, &tokens[name_idx]);
            let fx = if name == "HashMap" { "FxHashMap" } else { "FxHashSet" };
            edits.push(Edit {
                start: tokens[i].start,
                end: tokens[name_idx].end,
                replacement: format!("otae_fxhash::{fx}"),
            });
            // Was this a `use` statement? Then bare names elsewhere refer to
            // the rewritten import.
            if i >= 1 && is_ident(src, tokens, i - 1, "use") {
                renamed_import = true;
            }
            i = name_idx + 1;
            continue;
        }
        i += 1;
    }
    // Pass 2: bare names and constructors.
    for i in 0..tokens.len() {
        if tokens[i].in_test || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let name = text(src, &tokens[i]);
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Skip tokens that are part of a path we already rewrote.
        if i >= 2 && is_punct(src, tokens, i - 1, ":") && is_punct(src, tokens, i - 2, ":") {
            continue;
        }
        let is_ctor = is_punct(src, tokens, i + 1, ":") && is_punct(src, tokens, i + 2, ":");
        if !renamed_import && !is_ctor {
            continue;
        }
        let fx = if name == "HashMap" { "FxHashMap" } else { "FxHashSet" };
        if renamed_import {
            edits.push(Edit {
                start: tokens[i].start,
                end: tokens[i].end,
                replacement: fx.to_string(),
            });
        }
        if is_ctor {
            if is_ident(src, tokens, i + 3, "new")
                && is_punct(src, tokens, i + 4, "(")
                && is_punct(src, tokens, i + 5, ")")
            {
                edits.push(Edit {
                    start: tokens[i + 3].start,
                    end: tokens[i + 3].end,
                    replacement: "default".to_string(),
                });
            } else if is_ident(src, tokens, i + 3, "with_capacity")
                && is_punct(src, tokens, i + 4, "(")
            {
                if let Some(close) = matching_paren(src, tokens, i + 4) {
                    edits.push(Edit {
                        start: tokens[i + 3].start,
                        end: tokens[i + 3].end,
                        replacement: "with_capacity_and_hasher".to_string(),
                    });
                    edits.push(Edit {
                        start: tokens[close].start,
                        end: tokens[close].start,
                        replacement: ", Default::default()".to_string(),
                    });
                }
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(src: &str, tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match text(src, t) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Rule 3 fixes: swap entropy draws for the workspace's seeded RNG.
/// - `[rand::]thread_rng()` → `rand_chacha::ChaCha8Rng::seed_from_u64(SEED)`
/// - `from_entropy()` → `seed_from_u64(SEED)`
fn fix_rng(src: &str, tokens: &[Token], edits: &mut Vec<Edit>) {
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident {
            continue;
        }
        match text(src, &tokens[i]) {
            "thread_rng"
                if is_punct(src, tokens, i + 1, "(") && is_punct(src, tokens, i + 2, ")") =>
            {
                // Fold a leading `rand::` into the replacement span.
                let start = if i >= 3
                    && is_ident(src, tokens, i - 3, "rand")
                    && is_punct(src, tokens, i - 2, ":")
                    && is_punct(src, tokens, i - 1, ":")
                {
                    tokens[i - 3].start
                } else {
                    tokens[i].start
                };
                edits.push(Edit {
                    start,
                    end: tokens[i + 2].end,
                    replacement: format!("rand_chacha::ChaCha8Rng::seed_from_u64({FIX_SEED})"),
                });
            }
            "from_entropy"
                if is_punct(src, tokens, i + 1, "(") && is_punct(src, tokens, i + 2, ")") =>
            {
                edits.push(Edit {
                    start: tokens[i].start,
                    end: tokens[i + 2].end,
                    replacement: format!("seed_from_u64({FIX_SEED})"),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(path: &str, src: &str) -> Option<String> {
        let mut lexed = crate::lexer::lex(src);
        crate::scope::mark_test_scopes(&mut lexed.tokens, src);
        apply_fixes(path, src, &lexed.tokens)
    }

    #[test]
    fn import_and_ctor_rewrite() {
        let src =
            "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
        let fixed = fix("crates/cache/src/x.rs", src).expect("fix applies");
        assert_eq!(
            fixed,
            "use otae_fxhash::FxHashMap;\nfn f() -> FxHashMap<u32, u32> { FxHashMap::default() }\n"
        );
    }

    #[test]
    fn with_capacity_gains_hasher_argument() {
        let src = "fn f() { let m = HashMap::with_capacity(n * (2 + k)); m.len(); }\n";
        let fixed = fix("crates/cache/src/x.rs", src).expect("fix applies");
        assert!(
            fixed.contains("HashMap::with_capacity_and_hasher(n * (2 + k), Default::default())"),
            "{fixed}"
        );
    }

    #[test]
    fn qualified_path_rewrites_in_place() {
        let src = "fn f() { let m: std::collections::HashSet<u32> = std::collections::HashSet::from([1]); }\n";
        let fixed = fix("crates/cache/src/x.rs", src).expect("fix applies");
        assert!(fixed.contains("let m: otae_fxhash::FxHashSet<u32>"), "{fixed}");
    }

    #[test]
    fn rng_calls_become_seeded() {
        let src = "fn f() { let a = rand::thread_rng(); let b = thread_rng(); let c = ChaCha8Rng::from_entropy(); }\n";
        let fixed = fix("crates/ml/src/x.rs", src).expect("fix applies");
        assert!(!fixed.contains("thread_rng"), "{fixed}");
        assert!(!fixed.contains("from_entropy"), "{fixed}");
        assert_eq!(fixed.matches("seed_from_u64(0x07AE_5EED)").count(), 3, "{fixed}");
    }

    #[test]
    fn test_scopes_and_strings_are_untouched() {
        let src = "fn f() { log(\"HashMap::new()\"); }\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let m: HashMap<u32, u32> = HashMap::new(); m.len(); }\n}\n";
        assert_eq!(fix("crates/cache/src/x.rs", src), None, "nothing outside tests to fix");
    }

    #[test]
    fn brace_group_imports_are_left_alone() {
        let src = "use std::collections::{HashMap, VecDeque};\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); m.len(); }\n";
        let fixed = fix("crates/cache/src/x.rs", src).expect("ctor still fixed");
        // The grouped import is untouched; only the constructor is rewritten
        // (to the hasher-generic `default`), so a human finishes the import.
        assert!(fixed.contains("use std::collections::{HashMap, VecDeque};"), "{fixed}");
        assert!(fixed.contains("HashMap::default()"), "{fixed}");
    }
}

//! Rule identities, path scoping, and per-rule allowlists.
//!
//! Paths are workspace-relative with forward slashes. Scoping is
//! deliberately path-based rather than module-path-based: the invariants
//! being enforced are *architectural* ("time goes through `serve::clock`",
//! "the serve request path never panics") and the architecture maps 1:1
//! onto the crate layout, so path prefixes are both simpler and harder to
//! dodge than `mod` tracking.

/// Every rule the linter knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `std::collections::HashMap`/`HashSet` construction (SipHash) banned
    /// in first-party non-test code — use `otae_fxhash`.
    NoSiphash,
    /// `Instant::now` / `SystemTime::now` / `thread::sleep` banned outside
    /// `serve::clock` — everything routes through `ServiceClock`.
    NoWallClock,
    /// `thread_rng` / `from_entropy` / `OsRng` banned everywhere: every RNG
    /// must be seeded so any run replays from its seed.
    NoUnseededRng,
    /// `unwrap`/`expect`/panic-family macros/indexing-through-locks banned
    /// in non-test serve and harness run paths — degrade via `FaultReport`
    /// counters and `Result`, never by unwinding a worker.
    NoPanicInServe,
    /// Hash-map iteration feeding float accumulation banned in ML scoring
    /// paths — ordering-dependent sums break engine-parity tests.
    NoFloatNondeterminism,
    /// Unbounded `mpsc::channel()` banned on service paths — use
    /// `sync_channel` so backpressure is explicit.
    BoundedChannel,
    /// Structural: the cross-crate lock acquisition graph must be acyclic;
    /// any cycle is a potential deadlock and fails with a witness path.
    LockOrder,
    /// Structural: channel send/recv, file I/O, `join`, and paced sleeps
    /// are banned while a lock guard is held on serve/store paths.
    NoBlockingUnderLock,
    /// Structural: structs tagged `// lint: merge-exhaustive` must
    /// destructure every field in `merge` and never use `..` functional
    /// updates; `(fingerprint)`-tagged structs must flow into
    /// `RunFingerprint`.
    MergeExhaustive,
    /// Structural: lock guards may not be moved into spawned closures —
    /// a guard crossing a thread boundary outlives all local reasoning.
    GuardAcrossSpawn,
    /// Advisory (strict mode only): `.clone()` inside per-request serve
    /// paths; reported, never fails the build.
    AdvisoryClonePerRequest,
}

/// All enforced (non-advisory) rules, in diagnostic order.
pub const ENFORCED: [Rule; 10] = [
    Rule::NoSiphash,
    Rule::NoWallClock,
    Rule::NoUnseededRng,
    Rule::NoPanicInServe,
    Rule::NoFloatNondeterminism,
    Rule::BoundedChannel,
    Rule::LockOrder,
    Rule::NoBlockingUnderLock,
    Rule::MergeExhaustive,
    Rule::GuardAcrossSpawn,
];

impl Rule {
    /// The rule's diagnostic name (also what `allow(…)` directives use).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoSiphash => "no-siphash",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::NoPanicInServe => "no-panic-in-serve",
            Rule::NoFloatNondeterminism => "no-float-nondeterminism",
            Rule::BoundedChannel => "bounded-channel",
            Rule::LockOrder => "lock-order",
            Rule::NoBlockingUnderLock => "no-blocking-under-lock",
            Rule::MergeExhaustive => "merge-exhaustive",
            Rule::GuardAcrossSpawn => "guard-across-spawn",
            Rule::AdvisoryClonePerRequest => "advisory-clone-per-request",
        }
    }

    /// One-line statement of the invariant, shown with every diagnostic.
    pub fn invariant(self) -> &'static str {
        match self {
            Rule::NoSiphash => {
                "hot paths hash with otae-fxhash, not SipHash; construct FxHashMap/FxHashSet"
            }
            Rule::NoWallClock => {
                "time is injected through ServiceClock so harness runs replay deterministically"
            }
            Rule::NoUnseededRng => {
                "every RNG is seeded; an unseeded source breaks bit-exact replay from a seed"
            }
            Rule::NoPanicInServe => {
                "serve/harness run paths degrade via FaultReport counters and Result, never panic"
            }
            Rule::NoFloatNondeterminism => {
                "float accumulation over hash-map order is nondeterministic; iterate a sorted or \
                 dense structure"
            }
            Rule::BoundedChannel => {
                "service channels are bounded (sync_channel) so backpressure is explicit"
            }
            Rule::LockOrder => {
                "lock classes are acquired in one global order; a cycle in the acquisition \
                 graph is a latent deadlock"
            }
            Rule::NoBlockingUnderLock => {
                "nothing blocks (channel send/recv, file I/O, join, paced sleep) while a lock \
                 guard is held — critical-path latency must stay bounded"
            }
            Rule::MergeExhaustive => {
                "tagged accounting structs destructure every field in merge and flow into \
                 RunFingerprint, so adding a field cannot silently escape the audit"
            }
            Rule::GuardAcrossSpawn => {
                "lock guards never move into spawned closures; a guard crossing threads defeats \
                 local lock-discipline reasoning"
            }
            Rule::AdvisoryClonePerRequest => {
                "per-request serve paths should avoid clone(); prefer borrowing or Arc"
            }
        }
    }

    /// Whether the rule also applies inside `#[cfg(test)]`/`#[test]` scopes
    /// and `tests/` trees. Only the replayability rule does: tests that use
    /// entropy are exactly the flaky tests the harness exists to prevent.
    pub fn checks_tests(self) -> bool {
        matches!(self, Rule::NoUnseededRng)
    }

    /// True for strict-mode advisory rules that never affect the exit code.
    pub fn advisory(self) -> bool {
        matches!(self, Rule::AdvisoryClonePerRequest)
    }

    /// Path prefixes the rule applies to. Empty means "everywhere".
    pub fn applies_to(self) -> &'static [&'static str] {
        match self {
            // The sweep converted every first-party crate, so the hash rule
            // holds workspace-wide, strictly wider than the hot-path floor
            // (cache, core history, serve) the invariant requires.
            Rule::NoSiphash => &[],
            // Global scope deliberately covers the admission-policy zoo
            // (core/src/zoo.rs, serve/src/policy.rs): every zoo filter must
            // be seeded-deterministic (CoinFlip's RNG, the sketch hashes)
            // and clock-free, or differential fingerprint equality between
            // the pipeline and the service breaks.
            Rule::NoWallClock => &[],
            Rule::NoUnseededRng => &[],
            // Widened when crates/device and the zoo grew real service-path
            // code: FTL/wear models run inside the shard critical section
            // and the zoo's filters run per request.
            Rule::NoPanicInServe => &[
                "crates/serve/src/",
                "crates/harness/src/",
                "crates/store/src/",
                "crates/device/src/",
                "crates/core/src/zoo.rs",
            ],
            Rule::NoFloatNondeterminism => &["crates/ml/src/", "crates/core/src/"],
            Rule::BoundedChannel => &[
                "crates/serve/src/",
                "crates/harness/src/",
                "crates/store/src/",
                "crates/device/src/",
                "crates/core/src/zoo.rs",
            ],
            // Structural rules see the whole workspace; no-blocking-under-lock
            // is confined to the latency-critical serve/store/harness paths
            // (the pipeline and bench crates block deliberately).
            Rule::LockOrder => &[],
            Rule::NoBlockingUnderLock => {
                &["crates/serve/src/", "crates/harness/src/", "crates/store/src/"]
            }
            Rule::MergeExhaustive => &[],
            Rule::GuardAcrossSpawn => &[],
            Rule::AdvisoryClonePerRequest => &[
                "crates/serve/src/loadgen.rs",
                "crates/serve/src/shard.rs",
                "crates/serve/src/request.rs",
                "crates/serve/src/decision_cache.rs",
                "crates/serve/src/policy.rs",
            ],
        }
    }

    /// Per-rule allowlist: (path prefix, rationale). Rationales are printed
    /// by `--list-rules` and documented in DESIGN.md §10.
    pub fn allowlist(self) -> &'static [(&'static str, &'static str)] {
        match self {
            Rule::NoWallClock => &[
                (
                    "crates/serve/src/clock.rs",
                    "the one place wall time is allowed: ServiceClock wraps it",
                ),
                (
                    "crates/bench/",
                    "benchmarks measure wall time by definition; they never feed simulation state",
                ),
            ],
            Rule::NoSiphash => &[],
            Rule::NoUnseededRng => &[],
            Rule::NoPanicInServe => &[],
            Rule::NoFloatNondeterminism => &[],
            Rule::BoundedChannel => &[],
            Rule::LockOrder => &[],
            Rule::NoBlockingUnderLock => &[],
            Rule::MergeExhaustive => &[],
            Rule::GuardAcrossSpawn => &[],
            Rule::AdvisoryClonePerRequest => &[],
        }
    }

    /// Does the rule apply to `path` (workspace-relative, `/`-separated)?
    pub fn in_scope(self, path: &str) -> bool {
        let applies = self.applies_to();
        if !applies.is_empty() && !applies.iter().any(|p| path.starts_with(p)) {
            return false;
        }
        !self.allowlist().iter().any(|(p, _)| path.starts_with(p))
    }
}

/// Is `path` test-only code by location (integration tests, benches)?
/// Criterion benches drive wall-clock timing by design and never feed
/// simulation state, so they sit with tests for scoping purposes.
pub fn path_is_test(path: &str) -> bool {
    path.split('/').any(|seg| seg == "tests" || seg == "benches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_honours_prefixes_and_allowlists() {
        assert!(Rule::NoPanicInServe.in_scope("crates/serve/src/service.rs"));
        assert!(Rule::NoPanicInServe.in_scope("crates/serve/src/decision_cache.rs"));
        assert!(Rule::BoundedChannel.in_scope("crates/serve/src/decision_cache.rs"));
        assert!(Rule::AdvisoryClonePerRequest.in_scope("crates/serve/src/decision_cache.rs"));
        assert!(!Rule::NoPanicInServe.in_scope("crates/ml/src/tree.rs"));
        assert!(Rule::NoFloatNondeterminism.in_scope("crates/ml/src/compiled.rs"));
        assert!(Rule::NoWallClock.in_scope("crates/serve/src/service.rs"));
        assert!(!Rule::NoWallClock.in_scope("crates/serve/src/clock.rs"));
        assert!(!Rule::NoWallClock.in_scope("crates/bench/src/experiments/train.rs"));
        assert!(Rule::NoSiphash.in_scope("src/cli.rs"));
        // The admission-policy zoo sits inside the global determinism
        // rules' scope and the serve half in the clone advisory's.
        assert!(Rule::NoUnseededRng.in_scope("crates/core/src/zoo.rs"));
        assert!(Rule::NoWallClock.in_scope("crates/serve/src/policy.rs"));
        assert!(Rule::AdvisoryClonePerRequest.in_scope("crates/serve/src/policy.rs"));
        // Widened scopes: device models and the zoo run on the request path.
        assert!(Rule::NoPanicInServe.in_scope("crates/device/src/ftl.rs"));
        assert!(Rule::NoPanicInServe.in_scope("crates/core/src/zoo.rs"));
        assert!(Rule::BoundedChannel.in_scope("crates/device/src/service_time.rs"));
        assert!(!Rule::NoPanicInServe.in_scope("crates/core/src/pipeline.rs"));
        // Structural rules: lock-order everywhere, blocking confined.
        assert!(Rule::LockOrder.in_scope("crates/cache/src/lru.rs"));
        assert!(Rule::NoBlockingUnderLock.in_scope("crates/store/src/store.rs"));
        assert!(!Rule::NoBlockingUnderLock.in_scope("crates/core/src/pipeline.rs"));
        assert!(Rule::MergeExhaustive.in_scope("crates/device/src/latency.rs"));
        // The store's group-commit write buffer and file-handle cache are
        // inside the enforced store scope: the handle cache holds a lock
        // around lookup only (opens happen outside it), and the write
        // buffer runs on the writer's critical path.
        for path in [
            "crates/store/src/write_buffer.rs",
            "crates/store/src/handles.rs",
            "crates/store/src/intake.rs",
        ] {
            assert!(Rule::NoBlockingUnderLock.in_scope(path), "{path} must be lint-covered");
            assert!(Rule::NoPanicInServe.in_scope(path), "{path} must be lint-covered");
            assert!(Rule::BoundedChannel.in_scope(path), "{path} must be lint-covered");
            assert!(Rule::LockOrder.in_scope(path), "{path} must be lint-covered");
        }
    }

    #[test]
    fn rule_names_are_unique_and_stable() {
        let mut names: Vec<&str> = ENFORCED.iter().map(|r| r.name()).collect();
        names.push(Rule::AdvisoryClonePerRequest.name());
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn test_paths_are_detected() {
        assert!(path_is_test("crates/cache/tests/props.rs"));
        assert!(path_is_test("tests/properties.rs"));
        assert!(path_is_test("crates/bench/benches/cache_ops.rs"));
        assert!(!path_is_test("crates/cache/src/lru.rs"));
    }
}

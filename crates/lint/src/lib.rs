//! otae-lint: dependency-free static analysis for the otae workspace.
//!
//! Enforces the architectural invariants the test suite cannot see
//! locally — deterministic hashing, injected clocks, seeded RNGs,
//! panic-free serve paths, order-independent float accumulation, and
//! bounded service channels. See DESIGN.md §10 for the rule catalogue and
//! allowlist rationales.
//!
//! The crate is a library plus a thin CLI (`cargo run -p otae-lint`) so the
//! fixture testsuite and property tests drive the exact engine CI runs.

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod fix;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod rules;
pub mod scope;
pub mod walk;

pub use config::{path_is_test, Rule, ENFORCED};
pub use diag::Diagnostic;
pub use fix::apply_fixes;
pub use lexer::{lex, Lexed, Token, TokenKind};
pub use rules::{lint_source, lint_workspace, Options, SourceFile, WorkspaceReport};
pub use scope::mark_test_scopes;

//! Per-function lock and effect extraction.
//!
//! Walks one function body and records, in order, every lock acquisition
//! (`.lock()` / `.read()` / `.write()` on a field whose type contains a
//! `Mutex`/`RwLock`), every potentially-blocking operation (channel
//! send/recv, file I/O, `join`, paced sleeps), every resolvable call to
//! another workspace function, and every spawned closure that captures a
//! live guard — each annotated with the set of lock classes *held* at that
//! point. The call graph layer combines these per-function facts into
//! transitive effects and the cross-crate acquisition graph.
//!
//! Guard liveness model (deliberately simple, documented in DESIGN.md §15):
//! an acquisition that is the entire right-hand side of a `let` becomes a
//! *named guard* live until its block closes or it is `drop`ped; any other
//! acquisition is a *temporary guard* live until the end of the enclosing
//! statement (`;`, `,`, or `}` at its nesting depth). Receivers are
//! resolved structurally — `self.field`, locals bound by `let`/`for`/
//! `if let Some(..)`/match arms, index and `as_ref`-style adapters are
//! transparent — and anything unresolvable degrades to "no fact", never to
//! a false positive.

use crate::callgraph::{field_info, FieldInfo, Tables};
use crate::lexer::{Token, TokenKind};
use crate::parse::FnDef;

/// One observed fact inside a function body.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    /// Lock classes held when the event happens.
    pub held: Vec<String>,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone)]
pub enum EventKind {
    /// A lock of `class` is acquired here.
    Acquire { class: String },
    /// A call to workspace fn `target` (index into the workspace fn list).
    Call { target: usize },
    /// A directly blocking operation (`what` names it, e.g. "recv").
    Blocking { what: String },
    /// A spawned closure captures the named live guard.
    SpawnCapture { guard: String, class: String },
}

/// Methods that pass the receiver through unchanged for resolution.
const TRANSPARENT: &[&str] =
    &["as_ref", "as_mut", "as_deref", "as_deref_mut", "clone", "borrow", "borrow_mut"];

/// Blocking method names that take arguments.
const BLOCKING_ANY_ARGS: &[&str] = &[
    "send",
    "send_timeout",
    "recv_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "sync_all",
    "sync_data",
    "read_at",
    "write_at",
    "sleep",
    "sleep_until",
    "park_timeout",
    "wait",
    "wait_timeout",
];

/// Blocking method names that must be called with empty parentheses
/// (`JoinHandle::join` blocks; `Vec::join(sep)` does not).
const BLOCKING_EMPTY_ARGS: &[&str] = &["recv", "join"];

/// Blocking `Type::fn` path calls.
const BLOCKING_PATHS: &[(&str, &[&str])] = &[
    ("thread", &["sleep", "park"]),
    ("File", &["open", "create", "options"]),
    (
        "fs",
        &[
            "read",
            "write",
            "read_to_string",
            "remove_file",
            "remove_dir_all",
            "create_dir_all",
            "rename",
            "copy",
            "read_dir",
            "metadata",
        ],
    ),
    ("OpenOptions", &["new"]),
];

/// Scan one function body for events. `fn_owner` is the `impl` type name.
pub fn scan_fn(src: &str, toks: &[Token], def: &FnDef, tables: &Tables) -> Vec<Event> {
    let Some((open, close)) = def.body else { return Vec::new() };
    let mut s = Scanner {
        src,
        toks,
        tables,
        owner: def.owner.as_deref(),
        bindings: Vec::new(),
        named_guards: Vec::new(),
        temp_guards: Vec::new(),
        match_frames: Vec::new(),
        pending_match: None,
        events: Vec::new(),
    };
    let scope = def.owner.as_deref().unwrap_or(&def.name);
    for p in &def.params {
        let info = field_info(scope, &p.name, &p.ty, &tables.types);
        s.bindings.push(Binding { name: p.name.clone(), depth: 0, info });
    }
    s.walk(open + 1, close);
    s.events
}

#[derive(Debug, Clone)]
struct Binding {
    name: String,
    depth: u32,
    info: FieldInfo,
}

#[derive(Debug)]
struct NamedGuard {
    name: String,
    class: String,
    depth: u32,
}

#[derive(Debug)]
struct TempGuard {
    class: String,
    paren: u32,
}

struct Scanner<'a> {
    src: &'a str,
    toks: &'a [Token],
    tables: &'a Tables,
    owner: Option<&'a str>,
    bindings: Vec<Binding>,
    named_guards: Vec<NamedGuard>,
    temp_guards: Vec<TempGuard>,
    /// (brace depth of the match body, scrutinee resolution).
    match_frames: Vec<(u32, FieldInfo)>,
    pending_match: Option<FieldInfo>,
    events: Vec<Event>,
}

impl Scanner<'_> {
    fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| self.text(t))
    }

    fn is_punct(&self, i: usize, c: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && self.text(t) == c)
    }

    fn held(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .named_guards
            .iter()
            .map(|g| g.class.clone())
            .chain(self.temp_guards.iter().map(|g| g.class.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn push_event(&mut self, kind: EventKind, at: usize) {
        let t = &self.toks[at];
        self.events.push(Event { kind, held: self.held(), line: t.line, col: t.col });
    }

    fn walk(&mut self, start: usize, end: usize) {
        let mut depth: u32 = 1;
        let mut paren: u32 = 0;
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "{" => {
                        depth += 1;
                        if let Some(info) = self.pending_match.take() {
                            self.match_frames.push((depth, info));
                        }
                    }
                    "}" => {
                        self.bindings.retain(|b| b.depth < depth);
                        self.named_guards.retain(|g| g.depth < depth);
                        if self.match_frames.last().is_some_and(|&(d, _)| d == depth) {
                            self.match_frames.pop();
                        }
                        // Statement-less tail expressions end here too.
                        self.release_temps(paren);
                        depth = depth.saturating_sub(1);
                    }
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren = paren.saturating_sub(1),
                    ";" | "," => self.release_temps(paren),
                    "." => {
                        if let Some(next) = self.handle_dot(i, depth, paren) {
                            i = next;
                            continue;
                        }
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            match self.text(t) {
                "let" => self.handle_let(i, depth, end),
                "for" => self.handle_for(i, depth, end),
                "match" => self.handle_match(i, end),
                "drop" if self.is_punct(i + 1, "(") && self.is_punct(i + 3, ")") => {
                    if let Some(name) = self.ident(i + 2).map(str::to_string) {
                        self.named_guards.retain(|g| g.name != name);
                    }
                }
                "spawn" if self.is_punct(i + 1, "(") => self.handle_spawn(i + 1, end),
                "Some" | "Ok" => self.try_bind_arm(i, depth),
                _ => {
                    self.check_path_blocking(i);
                    self.check_path_call(i);
                }
            }
            i += 1;
        }
    }

    /// Drop temporary guards whose statement ends at this nesting depth.
    fn release_temps(&mut self, paren: u32) {
        self.temp_guards.retain(|g| g.paren < paren);
    }

    /// `.method(` sites: acquisitions, blocking methods, resolvable calls.
    /// Returns the index to resume from when the site was consumed.
    fn handle_dot(&mut self, i: usize, depth: u32, paren: u32) -> Option<usize> {
        let m = self.ident(i + 1)?;
        if !self.is_punct(i + 2, "(") {
            return None;
        }
        let empty = self.is_punct(i + 3, ")");
        // Lock acquisition: `.lock()` / `.read()` / `.write()` (no args).
        if empty && matches!(m, "lock" | "read" | "write") {
            let recv = self.resolve_receiver(i.checked_sub(1)?);
            if let Some(class) = recv.lock_class {
                self.push_event(EventKind::Acquire { class: class.clone() }, i + 1);
                if self.is_punct(i + 4, ";") {
                    if let Some(name) = self.let_binding_name(i) {
                        self.bindings.push(Binding {
                            name: name.clone(),
                            depth,
                            info: FieldInfo { type_name: recv.type_name, lock_class: None },
                        });
                        self.named_guards.push(NamedGuard { name, class, depth });
                        return Some(i + 4);
                    }
                }
                self.temp_guards.push(TempGuard { class, paren });
                return Some(i + 4);
            }
            return None;
        }
        // Directly blocking methods.
        let blocking =
            BLOCKING_ANY_ARGS.contains(&m) || (empty && BLOCKING_EMPTY_ARGS.contains(&m));
        if blocking {
            self.push_event(EventKind::Blocking { what: m.to_string() }, i + 1);
            return None;
        }
        if TRANSPARENT.contains(&m) {
            return None;
        }
        // Method call resolution.
        let m = m.to_string();
        let recv = self.resolve_receiver(i.checked_sub(1)?);
        let target = match recv.type_name {
            Some(ty) if self.tables.traits.contains(&ty) => None, // dyn seam
            Some(ty) => self.tables.keys.get(&(ty, m)).copied(),
            None => match self.tables.by_name.get(&m) {
                Some(ids) if ids.len() == 1 => Some(ids[0]),
                _ => None,
            },
        };
        if let Some(target) = target {
            self.push_event(EventKind::Call { target }, i + 1);
        }
        None
    }

    /// `thread::sleep(..)`, `File::open(..)`, `fs::write(..)` path forms.
    fn check_path_blocking(&mut self, i: usize) {
        let Some(head) = self.ident(i) else { return };
        if !(self.is_punct(i + 1, ":") && self.is_punct(i + 2, ":")) {
            return;
        }
        let Some(m) = self.ident(i + 3) else { return };
        if !self.is_punct(i + 4, "(") {
            return;
        }
        for (ty, fns) in BLOCKING_PATHS {
            if head == *ty && fns.contains(&m) {
                let what = format!("{head}::{m}");
                self.push_event(EventKind::Blocking { what }, i);
                return;
            }
        }
    }

    /// `Type::assoc(..)`, `Self::assoc(..)`, and free `helper(..)` calls.
    fn check_path_call(&mut self, i: usize) {
        let Some(head) = self.ident(i) else { return };
        if self.is_punct(i + 1, ":") && self.is_punct(i + 2, ":") {
            let Some(m) = self.ident(i + 3) else { return };
            if !self.is_punct(i + 4, "(") {
                return;
            }
            let owner = if head == "Self" {
                match self.owner {
                    Some(o) => o.to_string(),
                    None => return,
                }
            } else if self.tables.types.contains(head) {
                head.to_string()
            } else {
                return;
            };
            if let Some(&target) = self.tables.keys.get(&(owner, m.to_string())) {
                self.push_event(EventKind::Call { target }, i);
            }
            return;
        }
        // Free function call: bare ident followed by `(`, not a method or
        // path segment (those were handled above).
        if self.is_punct(i + 1, "(")
            && !(i >= 1 && (self.is_punct(i - 1, ".") || self.is_punct(i - 1, ":")))
        {
            if let Some(&target) = self.tables.keys.get(&(String::new(), head.to_string())) {
                self.push_event(EventKind::Call { target }, i);
            }
        }
    }

    /// If the statement containing the acquisition at `dot` is
    /// `let [mut] name = <acquisition>;`, return the bound name.
    fn let_binding_name(&self, dot: usize) -> Option<String> {
        let mut s = dot;
        while s > 0 {
            let t = &self.toks[s - 1];
            if t.kind == TokenKind::Punct && matches!(self.text(t), ";" | "{" | "}") {
                break;
            }
            s -= 1;
        }
        if self.ident(s) != Some("let") {
            return None;
        }
        let mut j = s + 1;
        if self.ident(j) == Some("mut") {
            j += 1;
        }
        let name = self.ident(j)?;
        if self.is_punct(j + 1, "=") {
            Some(name.to_string())
        } else {
            None
        }
    }

    /// `let` bindings: simple aliases and `let Some(x) = …` destructures.
    fn handle_let(&mut self, i: usize, depth: u32, end: usize) {
        let mut j = i + 1;
        if self.ident(j) == Some("mut") {
            j += 1;
        }
        // `let Some(x) = rhs` / `let Ok(x) = rhs` (also reached via
        // `if let` / `while let`).
        if matches!(self.ident(j), Some("Some" | "Ok")) && self.is_punct(j + 1, "(") {
            let mut k = j + 2;
            if self.ident(k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = self.ident(k) {
                if self.is_punct(k + 1, ")") && self.is_punct(k + 2, "=") {
                    let info = self.resolve_rhs(k + 3, end);
                    self.bindings.push(Binding { name: name.to_string(), depth, info });
                }
            }
            return;
        }
        // `let [mut] name = rhs;`
        let Some(name) = self.ident(j) else { return };
        if !self.is_punct(j + 1, "=") || self.is_punct(j + 2, "=") {
            return;
        }
        let info = self.resolve_rhs(j + 2, end);
        self.bindings.push(Binding { name: name.to_string(), depth, info });
    }

    /// `for name in <iterable> {` — the element of a collection of locks is
    /// the lock itself (`for shard in &self.shards`), so the binding simply
    /// inherits the iterable's resolution.
    fn handle_for(&mut self, i: usize, depth: u32, end: usize) {
        let Some(name) = self.ident(i + 1) else { return };
        if self.ident(i + 2) != Some("in") {
            return;
        }
        let info = self.resolve_rhs(i + 3, end);
        self.bindings.push(Binding { name: name.to_string(), depth, info });
    }

    /// `match <scrutinee> {` — remember the scrutinee's resolution so
    /// `Some(x) =>` arms can inherit it.
    fn handle_match(&mut self, i: usize, end: usize) {
        // Find the `{` opening the match body at this nesting level.
        let mut j = i + 1;
        let mut d = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    "{" if d == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= end || j == i + 1 {
            return;
        }
        self.pending_match = Some(self.resolve_receiver(j - 1));
    }

    /// `Some(x) =>` / `Ok(x) =>` inside a match body: bind `x` to the
    /// scrutinee's resolution.
    fn try_bind_arm(&mut self, i: usize, depth: u32) {
        let Some((_, info)) = self.match_frames.last() else { return };
        if !self.is_punct(i + 1, "(") {
            return;
        }
        let mut k = i + 2;
        if self.ident(k) == Some("mut") {
            k += 1;
        }
        let Some(name) = self.ident(k) else { return };
        if self.is_punct(k + 1, ")") && self.is_punct(k + 2, "=") && self.is_punct(k + 3, ">") {
            let info = info.clone();
            self.bindings.push(Binding { name: name.to_string(), depth, info });
        }
    }

    /// `spawn(…)`: any live named guard referenced inside the argument list
    /// is a guard moved into another thread's closure.
    fn handle_spawn(&mut self, open: usize, end: usize) {
        let mut d = 0u32;
        let mut j = open;
        let mut captured: Vec<(String, String)> = Vec::new();
        while j < end {
            if self.is_punct(j, "(") {
                d += 1;
            } else if self.is_punct(j, ")") {
                d -= 1;
                if d == 0 {
                    break;
                }
            } else if let Some(name) = self.ident(j) {
                if let Some(g) = self.named_guards.iter().find(|g| g.name == name) {
                    let pair = (g.name.clone(), g.class.clone());
                    if !captured.contains(&pair) {
                        captured.push(pair);
                    }
                }
            }
            j += 1;
        }
        for (guard, class) in captured {
            self.push_event(EventKind::SpawnCapture { guard, class }, open);
        }
    }

    /// Resolve the value a right-hand side evaluates to, by resolving the
    /// trailing path expression before the statement's end.
    fn resolve_rhs(&self, start: usize, end: usize) -> FieldInfo {
        // Find the statement end: `;` or `{` at this nesting level.
        let mut d = 0i32;
        let mut j = start;
        while j < end {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    ";" | "{" if d <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j == start {
            return FieldInfo::default();
        }
        self.resolve_receiver(j - 1)
    }

    /// Resolve the receiver chain ending (inclusive) at token `end`:
    /// `self.a.b`, `local.field`, `self.shards[i]`, through `as_ref()`-style
    /// adapters and interior `.lock()` derefs.
    fn resolve_receiver(&self, end: usize) -> FieldInfo {
        let mut steps: Vec<Step> = Vec::new();
        let mut j = end as isize;
        loop {
            if j < 0 {
                return FieldInfo::default();
            }
            let ju = j as usize;
            let t = &self.toks[ju];
            match t.kind {
                TokenKind::Ident => {
                    steps.push(Step::Name(self.text(t).to_string()));
                    if ju >= 2 && self.is_punct(ju - 1, ":") && self.is_punct(ju - 2, ":") {
                        j = ju as isize - 3;
                        continue;
                    }
                    if ju >= 1 && self.is_punct(ju - 1, ".") {
                        j = ju as isize - 2;
                        continue;
                    }
                    break;
                }
                TokenKind::Punct if self.text(t) == ")" => {
                    let Some(open) = self.match_back(ju, "(", ")") else {
                        return FieldInfo::default();
                    };
                    if open == 0 {
                        return FieldInfo::default();
                    }
                    let Some(m) = self.ident(open - 1) else { return FieldInfo::default() };
                    let lockish = matches!(m, "lock" | "read" | "write") && open + 1 == ju;
                    if !(TRANSPARENT.contains(&m) || lockish) {
                        return FieldInfo::default();
                    }
                    if lockish {
                        steps.push(Step::LockDeref);
                    }
                    if open >= 2 && self.is_punct(open - 2, ".") {
                        j = open as isize - 3;
                        continue;
                    }
                    return FieldInfo::default();
                }
                TokenKind::Punct if self.text(t) == "]" => {
                    // Indexing is transparent: the element of a collection
                    // of locks resolves to the lock.
                    let Some(open) = self.match_back(ju, "[", "]") else {
                        return FieldInfo::default();
                    };
                    if open == 0 {
                        return FieldInfo::default();
                    }
                    j = open as isize - 1;
                }
                _ => return FieldInfo::default(),
            }
        }
        steps.reverse();
        self.resolve_steps(&steps)
    }

    fn match_back(&self, close_idx: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = close_idx;
        loop {
            if self.is_punct(j, close) {
                depth += 1;
            } else if self.is_punct(j, open) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
    }

    fn resolve_steps(&self, steps: &[Step]) -> FieldInfo {
        let mut cur = FieldInfo::default();
        let mut first = true;
        for step in steps {
            match step {
                Step::Name(n) => {
                    if first {
                        first = false;
                        if n == "self" || n == "Self" {
                            cur.type_name = self.owner.map(str::to_string);
                        } else if let Some(b) = self.bindings.iter().rev().find(|b| &b.name == n) {
                            cur = b.info.clone();
                        } else if self.tables.types.contains(n.as_str()) {
                            cur.type_name = Some(n.clone());
                        } else {
                            return FieldInfo::default();
                        }
                    } else {
                        let Some(ty) = cur.type_name.take() else { return FieldInfo::default() };
                        let Some(fi) =
                            self.tables.structs.get(&ty).and_then(|fields| fields.get(n))
                        else {
                            return FieldInfo::default();
                        };
                        cur = fi.clone();
                    }
                }
                Step::LockDeref => {
                    // Deref through a guard: the inner type is already the
                    // field's significant type; the lock itself is gone.
                    cur.lock_class = None;
                }
            }
        }
        cur
    }
}

/// One segment of a resolved receiver chain.
#[derive(Debug)]
enum Step {
    Name(String),
    LockDeref,
}

//! The rule engine: token-pattern checks over the lexed, scope-marked
//! stream.
//!
//! Every check works on *code* tokens only (the lexer already stripped
//! comments and literals), honours `#[cfg(test)]` scoping per rule, and
//! consults the file's `// otae-lint: allow(…)` directives before
//! reporting. Matching is resolution-free by design — a lexer cannot know
//! what `HashMap` resolves to — so each pattern is chosen to be
//! unambiguous at the token level (e.g. `HashMap::new` exists only for the
//! SipHash `RandomState` hasher; `FxHashMap` is a different identifier).

use crate::config::{path_is_test, Rule, ENFORCED};
use crate::diag::Diagnostic;
use crate::lexer::{AllowDirective, Lexed, Token, TokenKind};

/// Options for one lint pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Also run advisory rules (never affect the exit code).
    pub strict: bool,
}

/// One source file handed to the workspace analyzer, under its
/// workspace-relative path.
pub struct SourceFile {
    pub path: String,
    pub src: String,
}

/// Result of a workspace pass: diagnostics plus the rendered lock
/// acquisition graph (printed under `--strict`).
pub struct WorkspaceReport {
    pub diags: Vec<Diagnostic>,
    pub lock_graph: String,
}

/// Lint a whole file set at once. Token-pattern rules run per file exactly
/// as before; the structural rules (lock-order, no-blocking-under-lock,
/// merge-exhaustive, guard-across-spawn) see the cross-file symbol tables
/// and call graph.
pub fn lint_workspace(files: &[SourceFile], opts: Options) -> WorkspaceReport {
    let mut out = Vec::new();
    let mut prepped = Vec::with_capacity(files.len());
    for f in files {
        let mut lexed = crate::lexer::lex(&f.src);
        crate::scope::mark_test_scopes(&mut lexed.tokens, &f.src);
        {
            let ctx =
                Ctx { path: &f.path, src: &f.src, lexed: &lexed, path_test: path_is_test(&f.path) };
            for rule in ENFORCED {
                check_rule(&ctx, rule, &mut out);
            }
            if opts.strict {
                check_rule(&ctx, Rule::AdvisoryClonePerRequest, &mut out);
            }
        }
        let model = crate::parse::build(&f.src, &lexed);
        prepped.push(crate::callgraph::PreppedFile {
            path: f.path.clone(),
            src: f.src.clone(),
            lexed,
            model,
        });
    }
    let analysis = crate::callgraph::analyze(&prepped);
    out.extend(analysis.diags);
    crate::diag::sort(&mut out);
    // Structs sharing a name across files would otherwise double-report.
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line && a.col == b.col);
    WorkspaceReport { diags: out, lock_graph: analysis.lock_graph }
}

/// Lint one file's source under its workspace-relative path (a one-file
/// workspace: structural rules degrade soundly without cross-file context).
pub fn lint_source(path: &str, src: &str, opts: Options) -> Vec<Diagnostic> {
    let files = [SourceFile { path: path.to_string(), src: src.to_string() }];
    lint_workspace(&files, opts).diags
}

struct Ctx<'a> {
    path: &'a str,
    src: &'a str,
    lexed: &'a Lexed,
    path_test: bool,
}

impl Ctx<'_> {
    fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Token `i` matches identifier `name`.
    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens().get(i).is_some_and(|t| t.kind == TokenKind::Ident && self.text(t) == name)
    }

    /// Token `i` matches punctuation `c`.
    fn is_punct(&self, i: usize, c: &str) -> bool {
        self.tokens().get(i).is_some_and(|t| t.kind == TokenKind::Punct && self.text(t) == c)
    }

    /// Tokens starting at `i` spell the `::`-separated path `segs`.
    fn is_path(&self, i: usize, segs: &[&str]) -> bool {
        let mut j = i;
        for (k, seg) in segs.iter().enumerate() {
            if k > 0 {
                if !(self.is_punct(j, ":") && self.is_punct(j + 1, ":")) {
                    return false;
                }
                j += 2;
            }
            if !self.is_ident(j, seg) {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Number of tokens a matched `segs` path occupies.
    fn path_len(segs: &[&str]) -> usize {
        segs.len() + 2 * (segs.len() - 1)
    }

    /// Is the site at token `i` suppressed by an allow directive for `rule`?
    fn allowed(&self, rule: Rule, token: &Token) -> bool {
        self.lexed.allows.iter().any(|a: &AllowDirective| {
            a.rules.iter().any(|r| r == rule.name())
                && (a.line == token.line || (a.standalone && a.line + 1 == token.line))
        })
    }

    /// Should `rule` skip the token because of test scoping?
    fn test_exempt(&self, rule: Rule, token: &Token) -> bool {
        !rule.checks_tests() && (self.path_test || token.in_test)
    }

    fn report(&self, out: &mut Vec<Diagnostic>, rule: Rule, i: usize, msg: String, fixable: bool) {
        let t = &self.tokens()[i];
        if self.test_exempt(rule, t) || self.allowed(rule, t) {
            return;
        }
        out.push(Diagnostic {
            rule,
            path: self.path.to_string(),
            line: t.line,
            col: t.col,
            message: msg,
            fixable,
        });
    }
}

fn check_rule(ctx: &Ctx, rule: Rule, out: &mut Vec<Diagnostic>) {
    if !rule.in_scope(ctx.path) {
        return;
    }
    match rule {
        Rule::NoSiphash => no_siphash(ctx, out),
        Rule::NoWallClock => no_wall_clock(ctx, out),
        Rule::NoUnseededRng => no_unseeded_rng(ctx, out),
        Rule::NoPanicInServe => no_panic(ctx, out),
        Rule::NoFloatNondeterminism => no_float_nondeterminism(ctx, out),
        Rule::BoundedChannel => bounded_channel(ctx, out),
        // Structural rules run in the workspace pass (callgraph::analyze),
        // not per file.
        Rule::LockOrder
        | Rule::NoBlockingUnderLock
        | Rule::MergeExhaustive
        | Rule::GuardAcrossSpawn => {}
        Rule::AdvisoryClonePerRequest => advisory_clone(ctx, out),
    }
}

/// Rule 1 — std HashMap/HashSet (SipHash) construction.
///
/// Fires on (a) `use std::collections::…HashMap/HashSet` imports, including
/// brace groups, (b) fully-qualified `std::collections::HashMap` paths, and
/// (c) `HashMap::new` / `with_capacity` / `from` constructions — those
/// constructors exist only on the `RandomState` (SipHash) instantiation, so
/// the match needs no type resolution. `with_hasher` forms never fire.
fn no_siphash(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens();
    let mut i = 0;
    while i < toks.len() {
        // `use std::collections::…` — scan the statement for map names.
        if ctx.is_ident(i, "use") && ctx.is_path(i + 1, &["std", "collections"]) {
            let mut j = i + 1 + Ctx::path_len(&["std", "collections"]);
            let mut named: Vec<usize> = Vec::new();
            let mut has_brace_group = false;
            while j < toks.len() && !ctx.is_punct(j, ";") {
                if ctx.is_ident(j, "HashMap") || ctx.is_ident(j, "HashSet") {
                    named.push(j);
                }
                if ctx.is_punct(j, "{") {
                    has_brace_group = true;
                }
                j += 1;
            }
            // Fixable only in the single-name `use std::collections::X;`
            // form; brace groups need a manual split.
            let fixable = named.len() == 1 && !has_brace_group;
            for &n in &named {
                let name = ctx.text(&toks[n]);
                ctx.report(
                    out,
                    Rule::NoSiphash,
                    n,
                    format!("`std::collections::{name}` import (SipHash)"),
                    fixable && !toks[n].in_test,
                );
            }
            i = j;
            continue;
        }
        // Fully-qualified path outside a use statement.
        if ctx.is_path(i, &["std", "collections", "HashMap"])
            || ctx.is_path(i, &["std", "collections", "HashSet"])
        {
            let name_idx = i + Ctx::path_len(&["std", "collections", "HashMap"]) - 1;
            let name = ctx.text(&toks[name_idx]);
            ctx.report(
                out,
                Rule::NoSiphash,
                i,
                format!("fully-qualified `std::collections::{name}` (SipHash)"),
                true,
            );
            i = name_idx + 1;
            continue;
        }
        // Bare construction: `HashMap::new(…)` etc. A preceding `::` would
        // mean a longer path (e.g. `collections::HashMap`) already handled.
        if (ctx.is_ident(i, "HashMap") || ctx.is_ident(i, "HashSet"))
            && !(i >= 1 && ctx.is_punct(i - 1, ":"))
            && ctx.is_punct(i + 1, ":")
            && ctx.is_punct(i + 2, ":")
        {
            let ctor =
                ["new", "with_capacity", "from"].into_iter().find(|c| ctx.is_ident(i + 3, c));
            if let Some(ctor) = ctor {
                let name = ctx.text(&toks[i]);
                ctx.report(
                    out,
                    Rule::NoSiphash,
                    i,
                    format!("`{name}::{ctor}` constructs a SipHash table"),
                    true,
                );
            }
        }
        i += 1;
    }
}

/// Rule 2 — wall-clock reads and raw sleeps outside `serve::clock`.
fn no_wall_clock(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens();
    for i in 0..toks.len() {
        for (pat, what) in [
            (&["Instant", "now"][..], "`Instant::now` call"),
            (&["SystemTime", "now"][..], "`SystemTime::now` call"),
            (&["thread", "sleep"][..], "raw `thread::sleep`"),
        ] {
            if ctx.is_path(i, &[pat[0], pat[1]]) {
                ctx.report(out, Rule::NoWallClock, i, what.to_string(), false);
            }
        }
    }
}

/// Rule 3 — entropy-seeded RNG anywhere (tests included).
fn no_unseeded_rng(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let (what, fixable) = match ctx.text(tok) {
            "thread_rng" => ("`thread_rng()` draws from the OS entropy pool", true),
            "from_entropy" => ("`from_entropy()` seeds from the OS entropy pool", true),
            "OsRng" => ("`OsRng` is unseedable by construction", false),
            _ => continue,
        };
        ctx.report(out, Rule::NoUnseededRng, i, what.to_string(), fixable);
    }
}

/// Rule 4 — panic paths in serve/harness run code.
fn no_panic(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens();
    for (i, tok) in toks.iter().enumerate() {
        // `.unwrap(` / `.expect(` method calls.
        if ctx.is_punct(i, ".") {
            for m in ["unwrap", "expect"] {
                if ctx.is_ident(i + 1, m) && ctx.is_punct(i + 2, "(") {
                    ctx.report(
                        out,
                        Rule::NoPanicInServe,
                        i + 1,
                        format!("`.{m}()` on a run path"),
                        false,
                    );
                }
            }
            // Indexing through a just-acquired lock guard: `.lock()[…]`,
            // `.read()[…]`, `.write()[…]` — an out-of-range index unwinds
            // while the lock is held.
            for m in ["lock", "read", "write"] {
                if ctx.is_ident(i + 1, m)
                    && ctx.is_punct(i + 2, "(")
                    && ctx.is_punct(i + 3, ")")
                    && ctx.is_punct(i + 4, "[")
                {
                    ctx.report(
                        out,
                        Rule::NoPanicInServe,
                        i + 4,
                        format!("indexing `[…]` directly through `.{m}()`"),
                        false,
                    );
                }
            }
        }
        // Panic-family macros.
        if tok.kind == TokenKind::Ident
            && ctx.is_punct(i + 1, "!")
            && !(i >= 1 && ctx.is_punct(i - 1, "#"))
        {
            let name = ctx.text(tok);
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                ctx.report(
                    out,
                    Rule::NoPanicInServe,
                    i,
                    format!("`{name}!` macro on a run path"),
                    false,
                );
            }
        }
    }
}

/// Rule 5 — hash-map iteration feeding float accumulation in scoring paths.
///
/// Heuristic, documented in DESIGN.md §10: an identifier is *map-ish* when
/// the file declares it with a hash-map/set type (`x: FxHashMap<…>`,
/// `let x = HashMap::new()`, struct fields included). A map-ish iteration
/// (`x.values()`, `.iter()`, `.keys()`, `.drain()`, …) fires when the same
/// statement also contains a float-accumulation marker (`sum::<f32>`,
/// `fold(0.0, …)`, `product::<f64>`), or when it is the iterator of a `for`
/// loop whose body accumulates with `+=`. BTree/Vec iteration never fires —
/// that is the fix.
fn no_float_nondeterminism(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens();
    const MAP_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
    // Pass 1: collect map-ish identifiers.
    let mut mapish: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(&toks[i]);
        // `name : [& [mut]] MapType <` — binding, param, or field.
        if ctx.is_punct(i + 1, ":") && !ctx.is_punct(i + 2, ":") {
            let mut j = i + 2;
            while ctx.is_punct(j, "&") || ctx.is_ident(j, "mut") {
                j += 1;
            }
            if MAP_TYPES.iter().any(|t| ctx.is_ident(j, t)) && ctx.is_punct(j + 1, "<") {
                mapish.push(name);
            }
        }
        // `let [mut] name = MapType::…`.
        if ctx.is_ident(i, "let") {
            let mut j = i + 1;
            if ctx.is_ident(j, "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                && ctx.is_punct(j + 1, "=")
                && MAP_TYPES.iter().any(|t| ctx.is_ident(j + 2, t))
            {
                mapish.push(ctx.text(&toks[j]));
            }
        }
    }
    if mapish.is_empty() {
        return;
    }
    const ITERS: [&str; 7] =
        ["iter", "iter_mut", "values", "values_mut", "keys", "into_iter", "drain"];
    // Pass 2: find map-ish iterations and scan their statement context.
    for i in 0..toks.len() {
        if !(toks[i].kind == TokenKind::Ident && mapish.contains(&ctx.text(&toks[i]))) {
            continue;
        }
        if !(ctx.is_punct(i + 1, ".") && ITERS.iter().any(|m| ctx.is_ident(i + 2, m))) {
            continue;
        }
        let in_for = statement_start_has_for(ctx, i);
        if float_accum_ahead(ctx, i + 3) || (in_for && for_body_accumulates(ctx, i)) {
            ctx.report(
                out,
                Rule::NoFloatNondeterminism,
                i,
                format!(
                    "hash-map iteration `{}.{}()` feeds float accumulation",
                    ctx.text(&toks[i]),
                    ctx.text(&toks[i + 2]),
                ),
                false,
            );
        }
    }
}

/// Does the statement containing token `i` open with a `for … in`?
fn statement_start_has_for(ctx: &Ctx, i: usize) -> bool {
    let toks = ctx.tokens();
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokenKind::Punct && matches!(ctx.text(t), ";" | "{" | "}") {
            return false;
        }
        if t.kind == TokenKind::Ident && ctx.text(t) == "for" {
            return true;
        }
    }
    false
}

/// Scan forward from `from` to the end of the statement (`;` at depth 0, or
/// an opening `{`) for a float-accumulation marker.
fn float_accum_ahead(ctx: &Ctx, from: usize) -> bool {
    let toks = ctx.tokens();
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokenKind::Punct {
            match ctx.text(t) {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return false,
                "{" | "}" => return false,
                _ => {}
            }
        }
        if is_float_marker(ctx, j) {
            return true;
        }
    }
    false
}

/// `sum::<fNN>` / `product::<fNN>` / `fold(<float literal>`.
fn is_float_marker(ctx: &Ctx, j: usize) -> bool {
    let toks = ctx.tokens();
    for agg in ["sum", "product"] {
        if ctx.is_ident(j, agg)
            && ctx.is_punct(j + 1, ":")
            && ctx.is_punct(j + 2, ":")
            && ctx.is_punct(j + 3, "<")
            && toks
                .get(j + 4)
                .is_some_and(|t| t.kind == TokenKind::Ident && matches!(ctx.text(t), "f32" | "f64"))
        {
            return true;
        }
    }
    ctx.is_ident(j, "fold")
        && ctx.is_punct(j + 1, "(")
        && toks.get(j + 2).is_some_and(|t| t.kind == TokenKind::Number && ctx.text(t).contains('.'))
}

/// For `for … in map.iter() { body }`: does the body contain `+=`?
fn for_body_accumulates(ctx: &Ctx, i: usize) -> bool {
    let toks = ctx.tokens();
    // Find the loop body's opening brace after the iteration expression.
    let mut j = i;
    while j < toks.len() && !(toks[j].kind == TokenKind::Punct && ctx.text(&toks[j]) == "{") {
        j += 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match ctx.text(t) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                "+" if ctx.is_punct(j + 1, "=") => return true,
                _ => {}
            }
        }
        j += 1;
    }
    false
}

/// Rule 6 — unbounded `mpsc::channel()` on service paths.
fn bounded_channel(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens().len() {
        if ctx.is_path(i, &["mpsc", "channel"])
            && ctx.is_punct(i + Ctx::path_len(&["mpsc", "channel"]), "(")
        {
            ctx.report(
                out,
                Rule::BoundedChannel,
                i,
                "unbounded `mpsc::channel()`; use `mpsc::sync_channel`".to_string(),
                false,
            );
        }
    }
}

/// Advisory — `.clone()` on per-request serve paths (strict mode only).
fn advisory_clone(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens().len() {
        if ctx.is_punct(i, ".") && ctx.is_ident(i + 1, "clone") && ctx.is_punct(i + 2, "(") {
            ctx.report(
                out,
                Rule::AdvisoryClonePerRequest,
                i + 1,
                "`.clone()` on the per-request path".to_string(),
                false,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src, Options::default())
            .into_iter()
            .map(|d| (d.rule.name(), d.line))
            .collect()
    }

    #[test]
    fn siphash_import_and_ctor_fire() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); m.len(); }\n";
        let found = rules_at("crates/cache/src/x.rs", src);
        assert!(found.contains(&("no-siphash", 1)), "{found:?}");
        assert!(found.contains(&("no-siphash", 2)), "{found:?}");
    }

    #[test]
    fn fxhash_never_fires() {
        let src = "use otae_fxhash::FxHashMap;\nfn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); m.len(); }\n";
        assert!(rules_at("crates/cache/src/x.rs", src).is_empty());
    }

    #[test]
    fn with_hasher_forms_are_legal() {
        let src = "fn f() { let m = HashMap::with_capacity_and_hasher(8, h()); m.len(); }\n";
        assert!(rules_at("crates/cache/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_clock_rs_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_at("crates/serve/src/service.rs", src), [("no-wall-clock", 1)]);
        assert!(rules_at("crates/serve/src/clock.rs", src).is_empty());
        assert!(rules_at("crates/bench/src/experiments/train.rs", src).is_empty());
    }

    #[test]
    fn unseeded_rng_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); }\n}\n";
        assert_eq!(rules_at("crates/ml/src/x.rs", src), [("no-unseeded-rng", 3)]);
    }

    #[test]
    fn panic_rule_scoped_to_serve_and_harness() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_at("crates/serve/src/shard.rs", src), [("no-panic-in-serve", 1)]);
        assert!(rules_at("crates/ml/src/tree.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_and_lock_indexing_fire() {
        let src = "fn f() { panic!(\"x\"); }\nfn g(v: &L) -> u32 { v.lock()[3] }\n";
        let found = rules_at("crates/serve/src/shard.rs", src);
        assert!(found.contains(&("no-panic-in-serve", 1)), "{found:?}");
        assert!(found.contains(&("no-panic-in-serve", 2)), "{found:?}");
    }

    #[test]
    fn attribute_macros_are_not_panics() {
        // `#[panic_handler]`-style attribute tokens must not match `panic!`.
        let src = "#[test]\nfn t() {}\nfn ok() -> u32 { 1 }\n";
        assert!(rules_at("crates/serve/src/shard.rs", src).is_empty());
    }

    #[test]
    fn float_nondeterminism_needs_both_halves() {
        let iter_only = "fn f(m: &FxHashMap<u32, f32>) -> usize { m.values().count() }\n";
        assert!(rules_at("crates/ml/src/score.rs", iter_only).is_empty());
        let sum = "fn f(m: &FxHashMap<u32, f32>) -> f32 { m.values().sum::<f32>() }\n";
        assert_eq!(rules_at("crates/ml/src/score.rs", sum), [("no-float-nondeterminism", 1)]);
        let for_loop = "fn f(m: &FxHashMap<u32, f32>) -> f32 {\n    let mut t = 0.0;\n    for v in m.values() { t += v; }\n    t\n}\n";
        assert_eq!(rules_at("crates/ml/src/score.rs", for_loop), [("no-float-nondeterminism", 3)]);
        // Sorted iteration is the sanctioned fix.
        let btree = "fn f(m: &BTreeMap<u32, f32>) -> f32 { m.values().sum::<f32>() }\n";
        assert!(rules_at("crates/ml/src/score.rs", btree).is_empty());
    }

    #[test]
    fn bounded_channel_fires_on_mpsc_channel() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }\n";
        assert_eq!(rules_at("crates/harness/src/run.rs", src), [("bounded-channel", 1)]);
        let sync = "fn f() { let (tx, rx) = mpsc::sync_channel(1); }\n";
        assert!(rules_at("crates/harness/src/run.rs", sync).is_empty());
    }

    #[test]
    fn store_sources_are_in_scope_for_panic_and_channel_rules() {
        let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_at("crates/store/src/store.rs", unwrap), [("no-panic-in-serve", 1)]);
        let unbounded = "fn f() { let (tx, rx) = mpsc::channel(); }\n";
        assert_eq!(rules_at("crates/store/src/store.rs", unbounded), [("bounded-channel", 1)]);
        // Out-of-scope crates stay exempt.
        assert!(rules_at("crates/trace/src/codec.rs", unwrap).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "fn f() { let t = Instant::now(); } // otae-lint: allow(no-wall-clock)\n";
        assert!(rules_at("crates/serve/src/service.rs", same).is_empty());
        let above = "// otae-lint: allow(no-wall-clock)\nfn f() { let t = Instant::now(); }\n";
        assert!(rules_at("crates/serve/src/service.rs", above).is_empty());
        let wrong_rule = "// otae-lint: allow(no-siphash)\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_at("crates/serve/src/service.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn cfg_test_scope_exempts_panic_rule() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(rules_at("crates/serve/src/shard.rs", src).is_empty());
    }

    #[test]
    fn strict_mode_reports_advisories() {
        let src = "fn f(r: &R) { send(r.clone()); }\n";
        let relaxed = lint_source("crates/serve/src/loadgen.rs", src, Options::default());
        assert!(relaxed.is_empty());
        let strict = lint_source("crates/serve/src/loadgen.rs", src, Options { strict: true });
        assert_eq!(strict.len(), 1);
        assert!(strict[0].rule.advisory());
    }
}

//! CLI for otae-lint.
//!
//! ```text
//! cargo run -p otae-lint                 # lint the whole workspace
//! cargo run -p otae-lint -- --fix       # apply mechanical fixes, then relint
//! cargo run -p otae-lint -- --strict    # also report advisory findings
//! cargo run -p otae-lint -- --list-rules
//! cargo run -p otae-lint -- path/a.rs   # lint specific files only
//! ```
//!
//! Exit code 0 when no enforced rule fired; 1 otherwise (advisories never
//! affect the exit code); 2 on usage or I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use otae_lint::{apply_fixes, lint_workspace, walk, Options, Rule, SourceFile, ENFORCED};

struct Cli {
    fix: bool,
    strict: bool,
    json: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        fix: false,
        strict: std::env::var("OTAE_LINT_STRICT").map(|v| v == "1").unwrap_or(false),
        json: false,
        list_rules: false,
        root: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix" => cli.fix = true,
            "--strict" => cli.strict = true,
            "--json" => cli.json = true,
            "--list-rules" => cli.list_rules = true,
            "--root" => {
                let v = args.next().ok_or("--root requires a directory argument")?;
                cli.root = Some(PathBuf::from(v));
            }
            "-h" | "--help" => {
                println!(
                    "otae-lint: workspace static analysis\n\n\
                     usage: otae-lint [--fix] [--strict] [--json] [--list-rules] [--root DIR] \
                     [FILES…]\n\n\
                     With no FILES, lints every first-party .rs file in the workspace.\n\
                     --fix       apply mechanical rewrites for no-siphash / no-unseeded-rng\n\
                     --strict    also report advisory findings and the lock acquisition graph\n\
                     \x20           (or set OTAE_LINT_STRICT=1)\n\
                     --json      emit diagnostics as a JSON array (summary goes to stderr)\n\
                     --list-rules  print the rule catalogue with scopes and allowlists"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (try --help)"));
            }
            file => cli.paths.push(PathBuf::from(file)),
        }
    }
    Ok(cli)
}

fn list_rules() {
    for rule in ENFORCED.iter().copied().chain([Rule::AdvisoryClonePerRequest]) {
        let kind = if rule.advisory() { "advisory" } else { "enforced" };
        println!("{} ({kind})", rule.name());
        println!("  invariant: {}", rule.invariant());
        let applies = rule.applies_to();
        if applies.is_empty() {
            println!("  scope: entire workspace");
        } else {
            println!("  scope: {}", applies.join(", "));
        }
        if rule.checks_tests() {
            println!("  also enforced in test code");
        }
        for (path, why) in rule.allowlist() {
            println!("  allow {path}: {why}");
        }
    }
}

/// Load one file for linting, applying `--fix` first if asked.
fn load_file(root: &Path, rel: &Path, fix: bool) -> Result<SourceFile, String> {
    let abs = root.join(rel);
    let mut src = std::fs::read_to_string(&abs)
        .map_err(|e| format!("{}: cannot read: {e}", abs.display()))?;
    // Fixtures (and only fixtures) carry a first-line directive naming the
    // virtual workspace path they should be linted as, so path-scoped rules
    // are exercisable from files living elsewhere.
    let rule_path = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// otae-lint-fixture-path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| walk::rule_path(rel));
    if fix {
        let mut lexed = otae_lint::lex(&src);
        otae_lint::mark_test_scopes(&mut lexed.tokens, &src);
        if let Some(fixed) = apply_fixes(&rule_path, &src, &lexed.tokens) {
            std::fs::write(&abs, &fixed)
                .map_err(|e| format!("{}: cannot write fix: {e}", abs.display()))?;
            eprintln!("fixed: {rule_path}");
            src = fixed;
        }
    }
    Ok(SourceFile { path: rule_path, src })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("otae-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let root = walk::workspace_root(cli.root.as_deref());
    let files: Vec<PathBuf> = if cli.paths.is_empty() {
        walk::collect(&root)
    } else {
        // Explicit files may be given relative to the CWD or the root.
        cli.paths
            .iter()
            .map(|p| match p.strip_prefix(&root) {
                Ok(rel) => rel.to_path_buf(),
                Err(_) => p.clone(),
            })
            .collect()
    };

    let opts = Options { strict: cli.strict };
    let mut sources: Vec<SourceFile> = Vec::new();
    let mut io_error = false;
    for rel in &files {
        match load_file(&root, rel, cli.fix) {
            Ok(sf) => sources.push(sf),
            Err(e) => {
                eprintln!("otae-lint: {e}");
                io_error = true;
            }
        }
    }
    let report = lint_workspace(&sources, opts);
    let all = report.diags;

    if cli.json {
        println!("{}", otae_lint::diag::render_json(&all));
    } else {
        for d in &all {
            println!("{}\n", d.render());
        }
        if cli.strict {
            print!("{}", report.lock_graph);
        }
    }
    let errors = all.iter().filter(|d| !d.rule.advisory()).count();
    let warnings = all.len() - errors;
    let summary = format!(
        "otae-lint: {} file{} checked, {errors} error{}, {warnings} warning{}",
        files.len(),
        if files.len() == 1 { "" } else { "s" },
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );
    if cli.json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if io_error {
        ExitCode::from(2)
    } else if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

//! Marks which tokens live inside test-only code.
//!
//! Rules that guard *production* invariants (panic-freedom, wall-clock
//! isolation, SipHash avoidance) must not fire on `#[cfg(test)]` modules or
//! `#[test]` functions — tests legitimately unwrap, sleep, and build
//! reference `HashMap`s. This pass walks the token stream once, tracking
//! brace depth, and flags every token whose enclosing item carried a
//! test-marking attribute (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`,
//! `#[cfg_attr(test, …)]`, and inner `#![cfg(test)]` forms).

use crate::lexer::{Token, TokenKind};

/// Fill in [`Token::in_test`] across the stream.
pub fn mark_test_scopes(tokens: &mut [Token], src: &str) {
    let text = |t: &Token| &src[t.start..t.end];
    // Stack of (depth-after-open, is_test) for every open brace scope.
    let mut scopes: Vec<(u32, bool)> = Vec::new();
    let mut depth: u32 = 0;
    // An attribute containing `test` was seen and its item body has not
    // opened yet.
    let mut pending_test = false;

    let mut i = 0;
    while i < tokens.len() {
        let is_punct = |j: usize, c: &str| {
            tokens.get(j).is_some_and(|t| t.kind == TokenKind::Punct && &src[t.start..t.end] == c)
        };
        if is_punct(i, "#") {
            // Outer `#[…]` or inner `#![…]` attribute: scan its bracketed
            // token run for the `test` identifier.
            let inner = is_punct(i + 1, "!");
            let open = if inner { i + 2 } else { i + 1 };
            if is_punct(open, "[") {
                let mut j = open + 1;
                let mut bracket_depth = 1u32;
                let mut has_test = false;
                while j < tokens.len() && bracket_depth > 0 {
                    let t = &tokens[j];
                    match (t.kind, text(t)) {
                        (TokenKind::Punct, "[") => bracket_depth += 1,
                        (TokenKind::Punct, "]") => bracket_depth -= 1,
                        (TokenKind::Ident, "test") => has_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                // The attribute tokens themselves inherit the current scope.
                let in_test = pending_test || scopes.iter().any(|s| s.1);
                for t in &mut tokens[i..j] {
                    t.in_test = in_test;
                }
                if has_test {
                    if inner {
                        // `#![cfg(test)]` marks the *enclosing* scope.
                        scopes.push((depth, true));
                    } else {
                        pending_test = true;
                    }
                }
                i = j;
                continue;
            }
        }

        let t = &tokens[i];
        match (t.kind, text(t)) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                if pending_test {
                    scopes.push((depth, true));
                    pending_test = false;
                }
            }
            (TokenKind::Punct, "}") => {
                if scopes.last().is_some_and(|&(d, _)| d == depth) {
                    scopes.pop();
                }
                depth = depth.saturating_sub(1);
            }
            (TokenKind::Punct, ";") => {
                // `#[cfg(test)] use foo;` — a body-less item consumed the
                // attribute without opening a scope.
                pending_test = false;
            }
            _ => {}
        }
        tokens[i].in_test = pending_test || scopes.iter().any(|s| s.1);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flags(src: &str, ident: &str) -> Vec<bool> {
        let mut lexed = lex(src);
        mark_test_scopes(&mut lexed.tokens, src);
        lexed.tokens.iter().filter(|t| &src[t.start..t.end] == ident).map(|t| t.in_test).collect()
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "
fn prod() { hit(); }
#[cfg(test)]
mod tests {
    fn helper() { hit(); }
}
fn prod2() { hit(); }
";
        assert_eq!(test_flags(src, "hit"), [false, true, false]);
    }

    #[test]
    fn test_fn_attribute_marks_only_its_body() {
        let src = "
fn a() { hit(); }
#[test]
fn b() { hit(); }
fn c() { hit(); }
";
        assert_eq!(test_flags(src, "hit"), [false, true, false]);
    }

    #[test]
    fn cfg_any_test_and_cfg_attr_count() {
        let src = "
#[cfg(any(test, feature = \"x\"))]
mod m { hit(); }
#[cfg_attr(test, allow(dead_code))]
fn f() { hit(); }
";
        assert_eq!(test_flags(src, "hit"), [true, true]);
    }

    #[test]
    fn bodyless_items_consume_the_attribute() {
        let src = "
#[cfg(test)]
use std::collections::HashMap;
fn prod() { hit(); }
";
        assert_eq!(test_flags(src, "hit"), [false]);
    }

    #[test]
    fn nested_braces_inside_test_stay_test() {
        let src = "
#[cfg(test)]
mod tests {
    fn f() { if x { hit(); } }
}
";
        assert_eq!(test_flags(src, "hit"), [true]);
    }

    #[test]
    fn inner_cfg_test_marks_enclosing_scope() {
        let src = "
mod generated {
    #![cfg(test)]
    fn f() { hit(); }
}
fn prod() { hit(); }
";
        assert_eq!(test_flags(src, "hit"), [true, false]);
    }

    #[test]
    fn non_test_attributes_do_not_mark() {
        let src = "
#[derive(Debug)]
struct S { x: u8 }
fn f() { hit(); }
";
        assert_eq!(test_flags(src, "hit"), [false]);
    }
}

// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! A guard moved into a spawned closure keeps the lock held for the
//! lifetime of another thread — the acquiring scope no longer bounds it.
use std::sync::Mutex;
use std::thread;

pub struct Counter {
    value: u64,
}

pub struct Shared {
    state: Mutex<Counter>,
}

impl Shared {
    pub fn detach_guard(&self) {
        let mut guard = self.state.lock();
        thread::spawn(move || { //~ ERROR guard-across-spawn
            guard.value += 1;
        });
    }

    pub fn copy_out_first(&self) {
        let value = {
            let guard = self.state.lock();
            guard.value
        };
        thread::spawn(move || value + 1);
    }
}

// otae-lint-fixture-path: crates/harness/src/fixture.rs
//! Unbounded channels hide backpressure on service paths.
use std::sync::mpsc;

fn wire() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel() //~ ERROR bounded-channel
}

fn wire_bounded() -> (mpsc::SyncSender<u32>, mpsc::Receiver<u32>) {
    mpsc::sync_channel(16)
}

// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! Raw time sources outside serve::clock.
use std::time::{Duration, Instant};

fn pace() -> Duration {
    let start = Instant::now(); //~ ERROR no-wall-clock
    std::thread::sleep(Duration::from_millis(1)); //~ ERROR no-wall-clock
    let _stamp = std::time::SystemTime::now(); //~ ERROR no-wall-clock
    start.elapsed()
}

// otae-lint-fixture-path: crates/core/src/fixture.rs
//! Tagged accounting structs must destructure every field in `merge`, must
//! not hide fields behind functional-update `..`, and fingerprint-tagged
//! structs must actually reach a fingerprint.

// lint: merge-exhaustive
pub struct Tally {
    hits: u64,
    misses: u64,
}

impl Tally {
    pub fn merge(&mut self, other: &Tally) { //~ ERROR merge-exhaustive
        self.hits += other.hits;
    }

    pub fn renew(keep: u64) -> Tally {
        Tally {
            hits: keep,
            ..Tally::default() //~ ERROR merge-exhaustive
        }
    }
}

// lint: merge-exhaustive(fingerprint)
pub struct Ghost { //~ ERROR merge-exhaustive
    count: u64,
}

impl Ghost {
    pub fn merge(&mut self, other: &Ghost) {
        let Ghost { count } = *other;
        self.count += count;
    }
}

pub struct Report {
    total: u64,
}

impl Report {
    pub fn fingerprint(&self) -> u64 {
        self.total
    }
}

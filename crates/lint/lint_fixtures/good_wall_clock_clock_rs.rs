// otae-lint-fixture-path: crates/serve/src/clock.rs
//! The allowlisted clock module may read wall time: it is the wrapper.
use std::time::Instant;

fn epoch() -> Instant {
    Instant::now()
}

// otae-lint-fixture-path: crates/core/src/fixture.rs
//! Opposite nesting orders between two lock classes form a cycle in the
//! acquisition graph; one diagnostic, anchored at the first edge's witness.
use std::sync::Mutex;

pub struct Alpha {
    hits: u64,
}

pub struct Beta {
    misses: u64,
}

pub struct Pair {
    alpha: Mutex<Alpha>,
    beta: Mutex<Beta>,
}

impl Pair {
    pub fn alpha_then_beta(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock(); //~ ERROR lock-order
        a.hits + b.misses
    }

    pub fn beta_then_alpha(&self) -> u64 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        a.hits + b.misses
    }
}

// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! Banned patterns inside literals and comments must never fire.
// Instant::now() thread_rng() HashMap::new() panic!("x") mpsc::channel()

/* block comment: SystemTime::now() and .unwrap() and
   /* nested: from_entropy() OsRng */ still inside the comment */

fn render() -> String {
    let a = "Instant::now() and HashMap::new() in a string";
    let b = r#"raw: thread_rng() "quoted" .expect("x") mpsc::channel()"#;
    let c = r##"more hashes: use std::collections::HashMap; "# still raw"##;
    let d = b"bytes: panic! OsRng .unwrap()";
    let e = '"';
    format!("{a}{b}{c}{d:?}{e}")
}

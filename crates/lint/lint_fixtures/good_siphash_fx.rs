// otae-lint-fixture-path: crates/cache/src/fixture.rs
//! FxHashMap construction and explicit `with_hasher` forms are sanctioned:
//! only the SipHash-only constructors (`new`, `with_capacity`, `from`) fire.
use otae_fxhash::{FxBuildHasher, FxHashMap, FxHashSet};

type HashMap<K, V> = FxHashMap<K, V>;

fn build() -> usize {
    let m: FxHashMap<u32, u32> = FxHashMap::default();
    let s = FxHashSet::<u32>::default();
    let mut h = HashMap::with_hasher(FxBuildHasher::default());
    let p: HashMap<u32, u32> = HashMap::with_capacity_and_hasher(8, FxBuildHasher::default());
    h.insert(1u32, 2u32);
    m.len() + s.len() + h.len() + p.capacity()
}

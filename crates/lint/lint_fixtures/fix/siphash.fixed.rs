// otae-lint-fixture-path: crates/cache/src/fixture.rs
use otae_fxhash::FxHashMap;

fn build(n: usize) -> usize {
    let mut m: FxHashMap<u32, u32> = FxHashMap::default();
    let big = FxHashMap::with_capacity_and_hasher(n * (2 + n), Default::default());
    let q: otae_fxhash::FxHashSet<u32> = otae_fxhash::FxHashSet::from([1]);
    m.insert(1, 2);
    m.len() + big.capacity() + q.len()
}

// otae-lint-fixture-path: crates/cache/src/fixture.rs
use std::collections::HashMap;

fn build(n: usize) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    let big = HashMap::with_capacity(n * (2 + n));
    let q: std::collections::HashSet<u32> = std::collections::HashSet::from([1]);
    m.insert(1, 2);
    m.len() + big.capacity() + q.len()
}

// otae-lint-fixture-path: crates/ml/src/fixture.rs
use rand::Rng;

fn jitter() -> u64 {
    let mut a = rand::thread_rng();
    let mut b = thread_rng();
    let mut c = ChaCha8Rng::from_entropy();
    a.gen::<u64>() ^ b.gen::<u64>() ^ c.gen::<u64>()
}

// otae-lint-fixture-path: crates/ml/src/fixture.rs
use rand::Rng;

fn jitter() -> u64 {
    let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(0x07AE_5EED);
    let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(0x07AE_5EED);
    let mut c = ChaCha8Rng::seed_from_u64(0x07AE_5EED);
    a.gen::<u64>() ^ b.gen::<u64>() ^ c.gen::<u64>()
}

// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! Test scopes may unwrap, expect, and panic freely.

fn run(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asserts_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        v.expect("tests may panic");
        if run(v) != 3 {
            panic!("even this is fine in tests");
        }
    }
}

// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! The clean patterns: scope the guard so it dies before the wait, or
//! `drop` it explicitly. Neither holds a lock across a blocking call.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct State {
    pending: u64,
}

pub struct Gate {
    state: Mutex<State>,
    rx: Receiver<u64>,
}

impl Gate {
    pub fn scope_then_wait(&self) -> u64 {
        let pending = {
            let st = self.state.lock();
            st.pending
        };
        pending + self.rx.recv().unwrap_or_default()
    }

    pub fn drop_then_wait(&self) -> u64 {
        let st = self.state.lock();
        let pending = st.pending;
        drop(st);
        pending + self.rx.recv().unwrap_or_default()
    }
}

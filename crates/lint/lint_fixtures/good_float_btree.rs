// otae-lint-fixture-path: crates/ml/src/fixture.rs
//! Sorted (BTreeMap) iteration is the sanctioned fix, and hash maps used
//! only for keyed lookup are fine.
use otae_fxhash::FxHashMap;
use std::collections::BTreeMap;

fn score(weights: &BTreeMap<u64, f32>, lookup: &FxHashMap<u64, f32>) -> f32 {
    let bias = lookup.get(&0).copied().unwrap_or(0.0);
    weights.values().sum::<f32>() + bias
}

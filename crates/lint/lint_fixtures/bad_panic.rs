// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! Panic paths in non-test serve code.

fn run(x: Option<u32>, locks: &Locks) -> u32 {
    let a = x.unwrap(); //~ ERROR no-panic-in-serve
    let b = x.expect("present"); //~ ERROR no-panic-in-serve
    if a > b {
        panic!("impossible"); //~ ERROR no-panic-in-serve
    }
    let c = locks.inner.lock()[0]; //~ ERROR no-panic-in-serve
    match c {
        0 => unreachable!(), //~ ERROR no-panic-in-serve
        _ => todo!(), //~ ERROR no-panic-in-serve
    }
}

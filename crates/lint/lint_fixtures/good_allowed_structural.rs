// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! The per-site escape hatch works for the structural rules too: each
//! violation below is suppressed by a reviewed `otae-lint: allow(..)`.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::thread;

pub struct State {
    pending: u64,
}

pub struct Pinned {
    state: Mutex<State>,
    rx: Receiver<u64>,
}

impl Pinned {
    pub fn prefilled_wait(&self) -> u64 {
        let st = self.state.lock();
        // Reviewed: startup-only path; the channel is pre-filled before
        // any lock contention exists.
        // otae-lint: allow(no-blocking-under-lock)
        st.pending + self.rx.recv().unwrap_or_default()
    }

    pub fn pinned_worker(&self) {
        let guard = self.state.lock();
        // Reviewed: the spawned thread is joined before this fn returns.
        // otae-lint: allow(guard-across-spawn)
        thread::spawn(move || guard.pending);
    }
}

// lint: merge-exhaustive
pub struct Partial {
    seen: u64,
    skipped: u64,
}

impl Partial {
    // Reviewed: `skipped` is recomputed after every merge, not summed.
    // otae-lint: allow(merge-exhaustive)
    pub fn merge(&mut self, other: &Partial) {
        self.seen += other.seen;
    }
}

// otae-lint-fixture-path: crates/ml/src/fixture.rs
//! Entropy-seeded RNG is banned everywhere — tests included, because an
//! unseeded test is exactly the flaky test the harness exists to prevent.

fn sample() -> u64 {
    let mut rng = rand::thread_rng(); //~ ERROR no-unseeded-rng
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn still_banned_in_tests() {
        let _rng = ChaCha8Rng::from_entropy(); //~ ERROR no-unseeded-rng
        let _os = OsRng; //~ ERROR no-unseeded-rng
    }
}

// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! Channel receives must not happen while a shard lock is held — every
//! sender then stalls behind an unrelated slow consumer. Covers both the
//! direct form and blocking reached transitively through a workspace call.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct State {
    pending: u64,
}

pub struct Inbox {
    state: Mutex<State>,
    rx: Receiver<u64>,
}

impl Inbox {
    fn pull(&self) -> u64 {
        self.rx.recv().unwrap_or_default()
    }

    pub fn drain_direct(&self) -> u64 {
        let mut st = self.state.lock();
        let v = self.rx.recv().unwrap_or_default(); //~ ERROR no-blocking-under-lock
        st.pending += v;
        st.pending
    }

    pub fn drain_via_helper(&self) -> u64 {
        let st = self.state.lock();
        st.pending + self.pull() //~ ERROR no-blocking-under-lock
    }
}

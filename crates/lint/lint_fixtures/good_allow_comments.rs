// otae-lint-fixture-path: crates/serve/src/fixture.rs
//! The per-site escape hatch: same-line and standalone-line-above forms.
use std::time::{Duration, Instant};

fn calibrate(x: Option<u32>) -> u32 {
    // One-off calibration probe, reviewed: real wall time is intentional.
    // otae-lint: allow(no-wall-clock)
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_nanos(1)); // otae-lint: allow(no-wall-clock)
    let v = x.unwrap(); // otae-lint: allow(no-panic-in-serve) — startup-only path
    v + t0.elapsed().subsec_nanos()
}

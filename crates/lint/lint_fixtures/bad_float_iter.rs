// otae-lint-fixture-path: crates/ml/src/fixture.rs
//! Hash-map iteration feeding float accumulation in a scoring path.
use otae_fxhash::FxHashMap;

fn score(weights: &FxHashMap<u64, f32>) -> f32 {
    let direct = weights.values().sum::<f32>(); //~ ERROR no-float-nondeterminism
    let mut total = 0.0f32;
    for (_k, w) in weights.iter() { //~ ERROR no-float-nondeterminism
        total += w;
    }
    direct + total
}

// otae-lint-fixture-path: crates/serve/src/loadgen.rs
//! Advisory finding: reported under --strict, never fails the build.

fn submit(req: &Request, tx: &Sender<Request>) {
    let _ = tx.send(req.clone()); //~ WARN advisory-clone-per-request
}

// otae-lint-fixture-path: crates/core/src/fixture.rs
//! The pattern the rule enforces: `merge` destructures every field, and the
//! fingerprint-tagged struct appears in the RunFingerprint record.

// lint: merge-exhaustive(fingerprint)
pub struct Ledger {
    reads: u64,
    writes: u64,
}

impl Ledger {
    pub fn merge(&mut self, other: &Ledger) {
        let Ledger { reads, writes } = *other;
        self.reads += reads;
        self.writes += writes;
    }
}

pub struct RunFingerprint {
    pub ledger: Ledger,
    pub m: u64,
}

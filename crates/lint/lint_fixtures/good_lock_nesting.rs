// otae-lint-fixture-path: crates/core/src/fixture.rs
//! A consistent acquisition order is exactly what lock-order permits: both
//! functions nest Beta inside Alpha, so the graph has one edge and no cycle.
use std::sync::Mutex;

pub struct Alpha {
    hits: u64,
}

pub struct Beta {
    misses: u64,
}

pub struct Pair {
    alpha: Mutex<Alpha>,
    beta: Mutex<Beta>,
}

impl Pair {
    pub fn tally(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        a.hits + b.misses
    }

    pub fn reconcile(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        a.hits.max(b.misses)
    }
}

// otae-lint-fixture-path: crates/cache/src/fixture.rs
//! Every way of constructing a SipHash table must be caught.
use std::collections::HashMap; //~ ERROR no-siphash
use std::collections::{HashSet, VecDeque}; //~ ERROR no-siphash

fn build() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new(); //~ ERROR no-siphash //~ ERROR no-siphash
    let s = HashSet::from([1u32]); //~ ERROR no-siphash
    let n = HashMap::with_capacity(8); //~ ERROR no-siphash
    let q: VecDeque<u32> = VecDeque::new();
    m.len() + s.len() + n.len() + q.len()
}

//! # otae-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), each calling a
//! function in [`experiments`]; `run_all` regenerates everything and writes
//! CSV series into `results/`. Criterion microbenches (in `benches/`) verify
//! the §5.3.5 timing constants (`t_classify`, `t_query`) and measure cache,
//! training and generation throughput.
//!
//! Scale: experiments default to a 60 k-object synthetic trace (~240 k
//! requests over 9 days). Capacities are expressed as *paper-equivalent
//! gigabytes*: the paper sweeps 2–20 GB against a ~448 GB sampled working
//! set, so "`g` GB" here means `g/448` of the trace's unique bytes. Set
//! `OTAE_OBJECTS` to change the trace size.

#![warn(missing_docs)]

pub mod common;
pub mod experiments;

pub use common::{capacity_grid, gb_to_bytes, standard_trace, Table, PAPER_GBS};

//! Extension: daily-batch vs online incremental training (§4.4.3).
fn main() {
    otae_bench::experiments::online::run();
}

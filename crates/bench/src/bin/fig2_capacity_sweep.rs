//! Figure 2: hit rate vs cache capacity, always-admit.
fn main() {
    otae_bench::experiments::fig2::run();
}

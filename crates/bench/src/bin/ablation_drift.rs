//! Extension: concept drift vs retraining cadence (§4.4.3 motivation).
fn main() {
    otae_bench::experiments::drift::run();
}

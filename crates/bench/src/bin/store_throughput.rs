//! Extension: segment-store append/read/compact throughput, recovery time
//! and measured write amplification.
fn main() {
    otae_bench::experiments::store::run();
}

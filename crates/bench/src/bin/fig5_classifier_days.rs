//! Figure 5: per-day classifier quality (LRU and LIRS criteria).
fn main() {
    otae_bench::experiments::fig5::run();
}

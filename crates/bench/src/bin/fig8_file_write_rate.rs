//! Figure 8 of the paper.
use otae_bench::experiments::figures::{FigureGrid, Metric};
fn main() {
    FigureGrid::compute().emit(Metric::FileWriteRate, 8, "fig8_file_write_rate");
}

//! Extension: sharded concurrent service throughput and latency tails.
fn main() {
    otae_bench::experiments::serve::run();
}

//! §4.3 ablation: reaccess-distance criteria vs naive accessed-once-ever.
fn main() {
    otae_bench::experiments::ablations::criteria();
}

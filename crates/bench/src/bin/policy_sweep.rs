//! Admission-policy zoo: policy × eviction × capacity sweep.
fn main() {
    otae_bench::experiments::policy_sweep::run();
}

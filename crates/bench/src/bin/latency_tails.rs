//! Extension: latency tails (p50/p99) and warm-up timeline.
fn main() {
    otae_bench::experiments::tails::run();
}

//! Extension: multi-server OC fleet — partitioning, balance, failures.
fn main() {
    otae_bench::experiments::cluster::run();
}

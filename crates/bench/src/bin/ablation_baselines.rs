//! Extension: ML classifier vs non-ML admission/replacement baselines.
fn main() {
    otae_bench::experiments::baselines::run();
}

//! Training-throughput trajectory: exact vs histogram-binned split engine.
fn main() {
    otae_bench::experiments::train::run();
}

//! SSD lifetime projection from measured write reductions (wear model).
fn main() {
    otae_bench::experiments::ablations::ssd_lifetime();
}

//! Figure 9 of the paper.
use otae_bench::experiments::figures::{FigureGrid, Metric};
fn main() {
    FigureGrid::compute().emit(Metric::ByteWriteRate, 9, "fig9_byte_write_rate");
}

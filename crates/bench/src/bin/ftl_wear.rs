//! Extension: FTL-level write amplification under the cache workload.
fn main() {
    otae_bench::experiments::ftl_wear::run();
}

//! Extension: OC->DC tiered topology (§2.1) with per-tier admission.
fn main() {
    otae_bench::experiments::tiered::run();
}

//! §3.1.1 ensemble trade-off: accuracy vs training cost.
fn main() {
    otae_bench::experiments::ablations::ensemble_tradeoff();
}

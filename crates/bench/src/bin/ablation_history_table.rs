//! §4.4.2 ablation: history table on/off.
fn main() {
    otae_bench::experiments::ablations::history_table();
}

//! §2.2 trace characterisation + Figure 3.
fn main() {
    otae_bench::experiments::trace_stats::run();
}

//! Table 4 ablation: cost matrix v sweep.
fn main() {
    otae_bench::experiments::ablations::cost_matrix();
}

//! Figure 6 of the paper.
use otae_bench::experiments::figures::{FigureGrid, Metric};
fn main() {
    FigureGrid::compute().emit(Metric::FileHitRate, 6, "fig6_file_hit_rate");
}

//! Figure 10 of the paper.
use otae_bench::experiments::figures::{FigureGrid, Metric};
fn main() {
    FigureGrid::compute().emit(Metric::ResponseTime, 10, "fig10_response_time");
}

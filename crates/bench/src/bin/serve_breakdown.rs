//! Diagnostic: where does Proposal admission's serve-time overhead live?
//!
//! Replays the standard trace at 1×1 under a ladder of configurations that
//! peel one cost layer at a time — admit-everything baseline, Proposal
//! with pieces of the hot-path machinery disabled, and Proposal with
//! training suppressed via a fail-all fault plan — and prints the
//! throughput of each rung. Numbers are wall-clock on whatever machine
//! runs this; the point is the *ratios* between adjacent rungs.

use otae_bench::common::{gb_to_bytes, standard_trace};
use otae_core::pipeline::{Mode, PolicyKind};
use otae_core::ReaccessIndex;
use otae_serve::{
    serve_trace_with_index, FaultPlan, LoadConfig, RetrainFault, ServeConfig, TrainerMode,
};
use std::sync::Arc;
use std::time::Instant;

/// Suppresses every training so the gate stays cold: isolates the cost of
/// sampling + channel traffic + history bookkeeping from fit + scoring.
#[derive(Debug)]
struct FailAllTrainings;
impl FaultPlan for FailAllTrainings {
    fn retrain_fault(&self, _attempt: u32) -> RetrainFault {
        RetrainFault::Fail
    }
}

fn main() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let capacity = gb_to_bytes(&trace, 10.0);
    let load = LoadConfig { clients: 1, target_qps: 0.0, duration: None };

    let base = |mode: Mode| {
        let mut cfg = ServeConfig::new(PolicyKind::Lru, mode, capacity);
        cfg.shards = 1;
        cfg.workers = 1;
        cfg.trainer = TrainerMode::Background;
        cfg
    };

    let mut rungs: Vec<(&str, ServeConfig)> = Vec::new();
    rungs.push(("original (no gate)", base(Mode::Original)));
    rungs.push(("proposal defaults (compiled + memo)", base(Mode::Proposal)));
    {
        let mut cfg = base(Mode::Proposal);
        cfg.compiled_inference = false;
        rungs.push(("proposal interpreted (memo on)", cfg));
    }
    {
        let mut cfg = base(Mode::Proposal);
        cfg.decision_cache = false;
        rungs.push(("proposal no memo (compiled on)", cfg));
    }
    {
        let mut cfg = base(Mode::Proposal);
        cfg.faults = Arc::new(FailAllTrainings);
        rungs.push(("proposal cold gate (fits suppressed)", cfg));
    }
    {
        let mut cfg = base(Mode::Proposal);
        cfg.training.records_per_minute = 0;
        rungs.push(("proposal sampler cap 0", cfg));
    }

    // The once-daily fit, timed in isolation on the exact day-1 window the
    // serve replay's retrainer sees (real trace features and labels).
    {
        use otae_core::daily::{train_tree, CostPolicy, Sample};
        use otae_core::{solve_criteria, FeatureExtractor, N_FEATURES};
        use otae_trace::diurnal::DAY;
        let avg_size = trace.avg_object_size().max(1.0);
        let m = solve_criteria(&index, capacity, avg_size, 3).m;
        let v = CostPolicy::Auto.resolve(capacity, trace.unique_bytes());
        let features = FeatureExtractor::extract_all(&trace);
        let window: Vec<Sample> = trace
            .requests
            .iter()
            .enumerate()
            .filter(|(_, req)| req.ts < DAY)
            .map(|(i, req)| Sample {
                ts: req.ts,
                features: features[i],
                one_time: index.is_one_time(i, m),
            })
            .collect();
        let per_day = window.len();
        let _ = train_tree(&window, v, 30);
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            std::hint::black_box(train_tree(std::hint::black_box(&window), v, 30));
        }
        println!(
            "one daily fit on {} samples: {:.1} ms",
            per_day,
            t0.elapsed().as_secs_f64() * 1e3 / reps as f64
        );

        // Phase split: dataset assembly vs. quantization vs. everything else.
        let t0 = Instant::now();
        let mut data = otae_ml::Dataset::new(N_FEATURES);
        for _ in 0..reps {
            data = otae_ml::Dataset::new(N_FEATURES);
            for s in &window {
                data.push(std::hint::black_box(&s.features), s.one_time);
            }
        }
        println!("  dataset build: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3 / reps as f64);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(otae_ml::BinnedDataset::build(std::hint::black_box(&data), 256));
        }
        println!("  binning build: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3 / reps as f64);

        // All eight boundary fits on their true windows, as the retrainer
        // would see them: total isolated fit cost for one replay.
        let mut sampler = otae_core::daily::MinuteSampler::new(100);
        let mut next_boundary = DAY + 5 * 3600; // 05:00 of day 1
        let mut windows: Vec<Vec<Sample>> = Vec::new();
        for (i, req) in trace.requests.iter().enumerate() {
            if req.ts >= next_boundary {
                windows.push(
                    sampler.window(next_boundary.saturating_sub(DAY), next_boundary).to_vec(),
                );
                while req.ts >= next_boundary {
                    next_boundary += DAY;
                }
            }
            sampler.offer(req.ts, features[i], index.is_one_time(i, m));
        }
        let t0 = Instant::now();
        for w in &windows {
            std::hint::black_box(train_tree(std::hint::black_box(w), v, 30));
        }
        let sizes: Vec<usize> = windows.iter().map(Vec::len).collect();
        println!(
            "all {} boundary fits (windows {:?}): {:.1} ms total",
            windows.len(),
            sizes,
            t0.elapsed().as_secs_f64() * 1e3
        );

        // Phase split on the largest window (the steady-state fit size).
        let big = windows.iter().max_by_key(|w| w.len()).expect("windows");
        let t0 = Instant::now();
        let mut bdata = otae_ml::Dataset::new(N_FEATURES);
        for _ in 0..reps {
            bdata = otae_ml::Dataset::new(N_FEATURES);
            for s in big {
                bdata.push(std::hint::black_box(&s.features), s.one_time);
            }
        }
        let t_data = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(otae_ml::BinnedDataset::build(std::hint::black_box(&bdata), 256));
        }
        let t_bin = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(train_tree(std::hint::black_box(big), v, 30));
        }
        let t_fit = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        println!(
            "largest window ({} samples): fit {t_fit:.1} ms = dataset {t_data:.1} + binning \
             {t_bin:.1} + search {:.1} ms",
            big.len(),
            t_fit - t_data - t_bin
        );
    }

    println!("{:<42} {:>14} {:>10}", "rung", "ops/s", "wall_s");
    for (name, cfg) in rungs {
        // Warmup, then best of 3.
        let _ = serve_trace_with_index(&trace, &index, &cfg, &load);
        let mut best = f64::MIN;
        let mut wall = f64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = serve_trace_with_index(&trace, &index, &cfg, &load);
            let w = t0.elapsed().as_secs_f64();
            if r.throughput_rps > best {
                best = r.throughput_rps;
                wall = w;
            }
        }
        println!("{name:<42} {best:>14.0} {wall:>10.3}");
    }
}

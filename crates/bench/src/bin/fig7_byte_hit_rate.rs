//! Figure 7 of the paper.
use otae_bench::experiments::figures::{FigureGrid, Metric};
fn main() {
    FigureGrid::compute().emit(Metric::ByteHitRate, 7, "fig7_byte_hit_rate");
}

//! Figure 3: requests per photo type (also emitted by trace_stats).
fn main() {
    otae_bench::experiments::trace_stats::run();
}

//! §3.2.2: information gain, forward selection, drop-one ablation.
fn main() {
    otae_bench::experiments::ablations::features();
}

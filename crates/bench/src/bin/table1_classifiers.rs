//! Table 1: seven-classifier comparison + §3.1.2 tree shape.
fn main() {
    otae_bench::experiments::table1::run();
}

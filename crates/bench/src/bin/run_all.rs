//! Regenerate every table and figure; CSVs land in results/.
use otae_bench::experiments::{
    ablations, baselines, cluster, drift, fig2, fig5, figures, ftl_wear, online, serve, store,
    table1, tails, tiered, trace_stats, train,
};

fn main() {
    let t0 = std::time::Instant::now();
    println!("### trace statistics (§2.2, Figure 3)\n");
    trace_stats::run();
    println!("### Figure 2\n");
    fig2::run();
    println!("### Table 1\n");
    table1::run();
    println!("### Figure 5\n");
    fig5::run();
    println!("### Figures 6-10\n");
    let grid = figures::FigureGrid::compute();
    grid.emit(figures::Metric::FileHitRate, 6, "fig6_file_hit_rate");
    grid.emit(figures::Metric::ByteHitRate, 7, "fig7_byte_hit_rate");
    grid.emit(figures::Metric::FileWriteRate, 8, "fig8_file_write_rate");
    grid.emit(figures::Metric::ByteWriteRate, 9, "fig9_byte_write_rate");
    grid.emit(figures::Metric::ResponseTime, 10, "fig10_response_time");
    println!("### Ablations\n");
    ablations::cost_matrix();
    ablations::history_table();
    ablations::features();
    ablations::criteria();
    ablations::ensemble_tradeoff();
    ablations::ssd_lifetime();
    println!("### Extensions: tiered OC/DC topology, online learning\n");
    tiered::run();
    online::run();
    baselines::run();
    ftl_wear::run();
    drift::run();
    cluster::run();
    tails::run();
    serve::run();
    println!("### Extension: segment-store throughput and recovery\n");
    store::run();
    println!("### Perf trajectory: training throughput\n");
    train::run();
    println!("all experiments done in {:?}", t0.elapsed());
}

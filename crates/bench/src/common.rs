//! Shared experiment infrastructure: the standard trace, capacity scaling,
//! and table/CSV output.

use otae_trace::{generate, Trace, TraceConfig};
use std::fmt::Write as _;
use std::path::Path;

/// The paper's working set: ~14 M sampled objects × ~32 KB ≈ 448 GB, against
/// which it sweeps 2–20 GB of cache.
pub const PAPER_WORKING_SET_GB: f64 = 448.0;

/// The capacity axis of Figures 6–10 (GB, paper scale).
pub const PAPER_GBS: [f64; 10] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];

/// Number of objects in the standard experiment trace (override with
/// `OTAE_OBJECTS`).
pub fn standard_objects() -> usize {
    std::env::var("OTAE_OBJECTS").ok().and_then(|v| v.parse().ok()).unwrap_or(60_000)
}

/// The standard 9-day experiment trace (deterministic, seed 42).
pub fn standard_trace() -> Trace {
    generate(&TraceConfig { n_objects: standard_objects(), seed: 42, ..Default::default() })
}

/// Convert a paper-scale capacity in GB to bytes for this trace:
/// `g/448` of the trace's unique bytes.
pub fn gb_to_bytes(trace: &Trace, gb: f64) -> u64 {
    ((trace.unique_bytes() as f64) * gb / PAPER_WORKING_SET_GB).max(1.0) as u64
}

/// The standard capacity grid as `(gb_label, bytes)` pairs.
pub fn capacity_grid(trace: &Trace) -> Vec<(f64, u64)> {
    PAPER_GBS.iter().map(|&g| (g, gb_to_bytes(trace, g))).collect()
}

/// A printable, CSV-writable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut first = true;
            for (cell, w) in cells.iter().zip(widths) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Write the table as CSV under `results/<name>.csv` (creating the
    /// directory as needed).
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        std::fs::write(dir.join(format!("{name}.csv")), out)
    }

    /// Print to stdout and persist as CSV (CSV skipped in smoke mode so
    /// sanity runs never overwrite real results).
    pub fn emit(&self, csv_name: &str) {
        println!("{}", self.render());
        if smoke_mode() {
            println!("[smoke] skipping results/{csv_name}.csv");
            return;
        }
        if let Err(e) = self.write_csv(csv_name) {
            eprintln!("warning: failed to write results/{csv_name}.csv: {e}");
        }
    }
}

/// True when `OTAE_BENCH_SMOKE=1`: experiments shrink to seconds-scale
/// sanity runs and skip writing the repo-root `BENCH_*.json` trajectory
/// files (so CI smoke runs never clobber real numbers).
pub fn smoke_mode() -> bool {
    std::env::var("OTAE_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Map `path` into `dir`, keeping only the file name. The pure core of
/// the `OTAE_BENCH_OUT_DIR` redirect, split out for testability.
fn redirect_into(dir: Option<&str>, path: &str) -> Option<String> {
    let dir = dir.filter(|d| !d.is_empty())?;
    let name = Path::new(path).file_name()?.to_str()?.to_string();
    Some(Path::new(dir).join(name).to_string_lossy().into_owned())
}

/// When `OTAE_BENCH_OUT_DIR` is set, `BENCH_*.json` artifacts are written
/// under that directory instead of their given path — **even in smoke
/// mode**. `scripts/bench_guard.sh` uses this to capture a fresh run's
/// numbers for regression comparison without clobbering the committed
/// trajectory files.
fn bench_out_redirect(path: &str) -> Option<String> {
    redirect_into(std::env::var("OTAE_BENCH_OUT_DIR").ok().as_deref(), path)
}

/// Machine-readable perf-trajectory artifact (`BENCH_*.json` at the repo
/// root): named stages with wall time and an ops/s rate, plus free scalar
/// metrics. Hand-rolled writer — no JSON crate on the offline allowlist.
#[derive(Debug, Clone)]
pub struct BenchJson {
    benchmark: String,
    stages: Vec<(String, f64, f64)>,
    metrics: Vec<(String, f64)>,
}

impl BenchJson {
    /// New artifact for `benchmark`.
    pub fn new(benchmark: &str) -> Self {
        Self { benchmark: benchmark.to_string(), stages: Vec::new(), metrics: Vec::new() }
    }

    /// Record a stage's wall time (seconds) and throughput (ops/s).
    pub fn stage(&mut self, name: &str, wall_s: f64, ops_per_s: f64) {
        self.stages.push((name.to_string(), wall_s, ops_per_s));
    }

    /// Record a free-standing scalar metric (e.g. a speedup ratio).
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"benchmark\": \"{}\",\n  \"stages\": [", esc(&self.benchmark));
        for (i, (name, wall, ops)) in self.stages.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\": \"{}\", \"wall_s\": {}, \"ops_per_s\": {}}}",
                if i == 0 { "" } else { "," },
                esc(name),
                num(*wall),
                num(*ops)
            );
        }
        out.push_str("\n  ],\n  \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                if i == 0 { "" } else { "," },
                esc(name),
                num(*value)
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Write to `path` (skipped with a notice in smoke mode, unless
    /// redirected by `OTAE_BENCH_OUT_DIR` — a redirected artifact is
    /// never the committed one, so it is safe to write).
    pub fn write(&self, path: &str) {
        let redirected = bench_out_redirect(path);
        if smoke_mode() && redirected.is_none() {
            println!("[smoke] skipping {path}");
            return;
        }
        let path = redirected.as_deref().unwrap_or(path);
        if let Err(e) = std::fs::write(path, self.to_json()) {
            eprintln!("warning: failed to write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }

    /// Parse an artifact previously produced by [`BenchJson::write`]. A
    /// line-based reader of this writer's own fixed layout — not a general
    /// JSON parser (none is on the offline allowlist). Returns `None` when
    /// the file is absent or not in that layout.
    pub fn load(path: &str) -> Option<Self> {
        fn unquote(s: &str) -> Option<(String, &str)> {
            let rest = s.strip_prefix('"')?;
            let mut out = String::new();
            let mut chars = rest.char_indices();
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => out.push(chars.next()?.1),
                    '"' => return Some((out, &rest[i + 1..])),
                    _ => out.push(c),
                }
            }
            None
        }
        fn num_after(s: &str, key: &str) -> Option<f64> {
            let rest = s[s.find(key)? + key.len()..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            let tok = rest[..end].trim();
            if tok == "null" {
                Some(f64::NAN)
            } else {
                tok.parse().ok()
            }
        }

        let text = std::fs::read_to_string(path).ok()?;
        let mut json = BenchJson::new("");
        let mut in_metrics = false;
        for line in text.lines() {
            let t = line.trim().trim_end_matches(',');
            if let Some(rest) = t.strip_prefix("\"benchmark\":") {
                json.benchmark = unquote(rest.trim_start())?.0;
            } else if let Some(rest) = t.strip_prefix("{\"name\":") {
                let (name, tail) = unquote(rest.trim_start())?;
                json.stages.push((
                    name,
                    num_after(tail, "\"wall_s\":")?,
                    num_after(tail, "\"ops_per_s\":")?,
                ));
            } else if t.starts_with("\"metrics\"") {
                in_metrics = true;
            } else if in_metrics && t.starts_with('"') {
                let (name, tail) = unquote(t)?;
                let tok = tail.trim_start().strip_prefix(':')?.trim();
                let value = if tok == "null" { f64::NAN } else { tok.parse().ok()? };
                json.metrics.push((name, value));
            }
        }
        if json.benchmark.is_empty() {
            return None;
        }
        Some(json)
    }

    /// Merge this artifact into `path` and write the result: the existing
    /// file's benchmark name, stages and metrics are kept, entries whose
    /// names this artifact redefines are replaced in place, and new ones
    /// are appended — so several experiments can share one `BENCH_*.json`
    /// without clobbering each other's numbers. Falls back to a plain
    /// write when the file is absent or unparseable; skipped in smoke
    /// mode like [`BenchJson::write`].
    pub fn merge_write(&self, path: &str) {
        let redirected = bench_out_redirect(path);
        if smoke_mode() && redirected.is_none() {
            println!("[smoke] skipping {path}");
            return;
        }
        // Merge against the artifact at the *effective* location: when
        // redirected, fresh stages accumulate in the out dir and the
        // committed file is neither read nor written.
        let effective = redirected.as_deref().unwrap_or(path);
        let merged = match Self::load(effective) {
            Some(mut existing) => {
                for (name, wall, ops) in &self.stages {
                    match existing.stages.iter_mut().find(|(n, _, _)| n == name) {
                        Some(slot) => *slot = (name.clone(), *wall, *ops),
                        None => existing.stages.push((name.clone(), *wall, *ops)),
                    }
                }
                for (name, value) in &self.metrics {
                    match existing.metrics.iter_mut().find(|(n, _)| n == name) {
                        Some(slot) => slot.1 = *value,
                        None => existing.metrics.push((name.clone(), *value)),
                    }
                }
                existing
            }
            None => self.clone(),
        };
        merged.write(path);
    }
}

/// Format a float with 4 decimal places (the paper's table precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scaling_is_proportional() {
        let trace = generate(&TraceConfig { n_objects: 2_000, seed: 1, ..Default::default() });
        let b2 = gb_to_bytes(&trace, 2.0);
        let b20 = gb_to_bytes(&trace, 20.0);
        assert!((b20 as f64 / b2 as f64 - 10.0).abs() < 0.01);
        let grid = capacity_grid(&trace);
        assert_eq!(grid.len(), 10);
        assert!(grid.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn table_renders_and_escapes_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "x,y".into()]);
        let text = t.render();
        assert!(text.contains("demo"));
        assert!(text.contains('1'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn bench_json_serializes_stages_and_metrics() {
        let mut j = BenchJson::new("demo");
        j.stage("tree_exact", 1.5, 2000.0);
        j.stage("tree_binned", 0.25, 12000.0);
        j.metric("speedup", 6.0);
        let text = j.to_json();
        assert!(text.contains("\"benchmark\": \"demo\""));
        assert!(text.contains("\"name\": \"tree_exact\""));
        assert!(text.contains("\"ops_per_s\": 12000.000000"));
        assert!(text.contains("\"speedup\": 6.000000"));
        // Hand-rolled JSON must stay balanced.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                text.matches(open).count(),
                text.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn bench_json_load_round_trips_its_own_writer() {
        let mut j = BenchJson::new("round_trip");
        j.stage("alpha", 1.25, 800.5);
        j.stage("beta", 0.5, 12000.0);
        j.metric("speedup", 6.25);
        j.metric("ratio", 0.333333);
        let path = std::env::temp_dir().join("otae_bench_json_round_trip.json");
        let path = path.to_str().expect("temp path");
        std::fs::write(path, j.to_json()).expect("write temp artifact");
        let back = BenchJson::load(path).expect("parse own output");
        assert_eq!(back.benchmark, "round_trip");
        assert_eq!(back.stages.len(), 2);
        assert_eq!(back.stages[0].0, "alpha");
        assert!((back.stages[0].1 - 1.25).abs() < 1e-9);
        assert!((back.stages[1].2 - 12000.0).abs() < 1e-9);
        assert_eq!(back.metrics.len(), 2);
        assert!((back.metrics[0].1 - 6.25).abs() < 1e-9);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_json_merge_replaces_by_name_and_appends_the_rest() {
        let mut existing = BenchJson::new("serve_throughput");
        existing.stage("original_1x1", 0.2, 1000.0);
        existing.metric("gate_overhead_1x1", 2.0);
        let path = std::env::temp_dir().join("otae_bench_json_merge.json");
        let path = path.to_str().expect("temp path");
        std::fs::write(path, existing.to_json()).expect("write temp artifact");

        let mut incoming = BenchJson::new("store_throughput");
        incoming.stage("store_append_q16", 0.1, 50000.0);
        incoming.metric("gate_overhead_1x1", 3.0); // redefined: replaced
        incoming.metric("store_recovery_ms", 12.5); // new: appended
        incoming.merge_write(path);

        let back = BenchJson::load(path).expect("parse merged artifact");
        assert_eq!(back.benchmark, "serve_throughput", "existing name wins");
        assert_eq!(back.stages.len(), 2, "old stage kept, new appended");
        assert_eq!(back.stages[0].0, "original_1x1");
        assert_eq!(back.stages[1].0, "store_append_q16");
        assert_eq!(back.metrics.len(), 2);
        assert!((back.metrics[0].1 - 3.0).abs() < 1e-9, "redefined metric replaced");
        assert!((back.metrics[1].1 - 12.5).abs() < 1e-9);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_json_load_rejects_missing_or_foreign_files() {
        assert!(BenchJson::load("/nonexistent/otae-bench.json").is_none());
        let path = std::env::temp_dir().join("otae_bench_json_foreign.json");
        let path = path.to_str().expect("temp path");
        std::fs::write(path, "not json at all").expect("write temp file");
        assert!(BenchJson::load(path).is_none());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_out_redirect_keeps_only_the_file_name() {
        assert_eq!(
            redirect_into(Some("/tmp/guard"), "BENCH_serve.json").as_deref(),
            Some("/tmp/guard/BENCH_serve.json")
        );
        assert_eq!(
            redirect_into(Some("/tmp/guard"), "deep/nested/BENCH_x.json").as_deref(),
            Some("/tmp/guard/BENCH_x.json")
        );
        assert_eq!(redirect_into(Some(""), "BENCH_serve.json"), None, "empty dir = no redirect");
        assert_eq!(redirect_into(None, "BENCH_serve.json"), None);
    }

    #[test]
    fn bench_json_escapes_and_handles_nonfinite() {
        let mut j = BenchJson::new("a\"b");
        j.stage("s", f64::NAN, f64::INFINITY);
        let text = j.to_json();
        assert!(text.contains("a\\\"b"));
        assert!(text.contains("\"wall_s\": null"));
    }
}

//! Admission-policy zoo sweep: policy × eviction × capacity.
//!
//! The paper compares classifier families at one operating point; this
//! experiment compares admission *policies* — the learned gate against the
//! zoo's non-ML baselines (SecondHit, TinyLFU, RejectX, CoinFlip) and the
//! Original/Ideal brackets — on the axes a production flash cache actually
//! trades: file hit rate (service quality), file write rate and flash bytes
//! written (device wear), and the backend disk-head-time the misses cost
//! (total and the worst 60-second window, the provisioning number).

use crate::common::{f4, gb_to_bytes, smoke_mode, standard_trace, BenchJson, Table};
use otae_core::reaccess::ReaccessIndex;
use otae_core::sweep::{grid, sweep};
use otae_core::{Mode, PolicyKind, RunConfig};

/// Capacity used for the `BENCH_policy.json` summary cells (paper GB).
const SUMMARY_GB: f64 = 8.0;

/// Run the zoo sweep, print the grid, and merge the summary capacity's
/// cells into `BENCH_policy.json`.
pub fn run() {
    let smoke = smoke_mode();
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);

    let evictions: &[PolicyKind] = if smoke {
        &[PolicyKind::Lru]
    } else {
        &[PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::S3Lru]
    };
    let gbs: &[f64] = if smoke { &[SUMMARY_GB] } else { &[4.0, SUMMARY_GB, 16.0] };
    let caps: Vec<u64> = gbs.iter().map(|&g| gb_to_bytes(&trace, g)).collect();

    let points = grid(evictions, &Mode::ALL, &caps);
    let base = RunConfig::new(PolicyKind::Lru, Mode::Original, caps[0]);
    let start = std::time::Instant::now();
    let results = sweep(&trace, &index, &points, &base, 0);
    let wall = start.elapsed().as_secs_f64();

    let mut t = Table::new(
        "Policy sweep: admission zoo × eviction × capacity",
        &[
            "eviction",
            "admission",
            "capacity (GB)",
            "hit rate",
            "write rate",
            "flash MB written",
            "DT total (s)",
            "DT peak (ms/60s)",
        ],
    );
    let gb_of = |capacity: u64| {
        let i = caps.iter().position(|&c| c == capacity).expect("capacity from the grid");
        gbs[i]
    };
    for r in &results {
        t.push_row(vec![
            r.policy.name().to_string(),
            r.mode.name().to_string(),
            format!("{}", gb_of(r.capacity)),
            f4(r.stats.file_hit_rate()),
            f4(r.stats.file_write_rate()),
            format!("{:.1}", r.stats.bytes_written as f64 / 1e6),
            format!("{:.2}", r.service_time.total_us() as f64 / 1e6),
            format!("{:.1}", r.service_time.peak_window_us() as f64 / 1e3),
        ]);
    }
    t.emit("policy_sweep");

    // Machine-readable artifact: every (admission, eviction, capacity)
    // cell's hit rate, write rate, flash bytes written, and disk-head-time
    // (total + peak window), keyed `{admission}_{eviction}_{gb}gb_{metric}`.
    let mut json = BenchJson::new("policy_sweep");
    json.stage("policy_sweep_grid", wall, results.len() as f64 / wall.max(1e-9));
    for r in &results {
        let cell = format!(
            "{}_{}_{}gb",
            r.mode.name().to_ascii_lowercase(),
            r.policy.name().to_ascii_lowercase(),
            gb_of(r.capacity),
        );
        json.metric(&format!("{cell}_hit_rate"), r.stats.file_hit_rate());
        json.metric(&format!("{cell}_write_rate"), r.stats.file_write_rate());
        json.metric(&format!("{cell}_flash_bytes_written"), r.stats.bytes_written as f64);
        json.metric(&format!("{cell}_dt_total_s"), r.service_time.total_us() as f64 / 1e6);
        json.metric(&format!("{cell}_dt_peak_ms"), r.service_time.peak_window_us() as f64 / 1e3);
    }
    json.merge_write("BENCH_policy.json");
}

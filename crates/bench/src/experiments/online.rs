//! Extension experiment: the §4.4.3 trade-off the paper decided without
//! measuring — offline daily batch retraining vs real-time incremental
//! learning with delayed label feedback.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::online::{run_online_with, OnlineModelKind};
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};

/// Compare Original / daily-batch Proposal / online Proposal / Ideal.
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);

    let mut t = Table::new(
        "Online vs daily-batch training (§4.4.3's unmeasured alternative)",
        &[
            "cache (GB)",
            "admission",
            "hit rate",
            "write rate",
            "precision",
            "recall",
            "latency (us)",
        ],
    );
    for gb in [2.0, 10.0] {
        let cap = gb_to_bytes(&trace, gb);
        let orig =
            run_with_index(&trace, &index, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        t.push_row(vec![
            format!("{gb}"),
            "always admit".into(),
            f4(orig.stats.file_hit_rate()),
            f4(orig.stats.file_write_rate()),
            "-".into(),
            "-".into(),
            format!("{:.1}", orig.mean_latency_us),
        ]);

        let daily =
            run_with_index(&trace, &index, &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap));
        let report = daily.classifier.expect("proposal run");
        t.push_row(vec![
            format!("{gb}"),
            "daily batch CART (paper)".into(),
            f4(daily.stats.file_hit_rate()),
            f4(daily.stats.file_write_rate()),
            f4(report.overall.precision()),
            f4(report.overall.recall()),
            format!("{:.1}", daily.mean_latency_us),
        ]);

        for kind in [OnlineModelKind::Logistic, OnlineModelKind::Hoeffding] {
            let online = run_online_with(
                &trace,
                &index,
                &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap),
                kind,
            );
            t.push_row(vec![
                format!("{gb}"),
                format!("{} (delayed labels)", kind.name()),
                f4(online.stats.file_hit_rate()),
                f4(online.stats.file_write_rate()),
                f4(online.confusion.precision()),
                f4(online.confusion.recall()),
                format!("{:.1}", online.mean_latency_us),
            ]);
        }

        let ideal =
            run_with_index(&trace, &index, &RunConfig::new(PolicyKind::Lru, Mode::Ideal, cap));
        t.push_row(vec![
            format!("{gb}"),
            "oracle".into(),
            f4(ideal.stats.file_hit_rate()),
            f4(ideal.stats.file_write_rate()),
            "1.0000".into(),
            "1.0000".into(),
            format!("{:.1}", ideal.mean_latency_us),
        ]);
    }
    t.emit("ablation_online");
}

//! Figure 5: per-day quality of the deployed classification system for the
//! LRU and LIRS criteria, plus the daily-retraining-vs-static ablation that
//! motivates §4.4.3.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};
use otae_trace::Trace;

fn proposal_run(
    trace: &Trace,
    index: &ReaccessIndex,
    policy: PolicyKind,
    gb: f64,
    train_once: bool,
) -> otae_core::RunResult {
    let mut cfg = RunConfig::new(policy, Mode::Proposal, gb_to_bytes(trace, gb));
    cfg.training.train_once = train_once;
    run_with_index(trace, index, &cfg)
}

/// Run the per-day classifier report.
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let gb = 6.0;

    for policy in [PolicyKind::Lru, PolicyKind::Lirs] {
        let result = proposal_run(&trace, &index, policy, gb, false);
        let report = result.classifier.expect("proposal reports classifier metrics");
        let mut t = Table::new(
            &format!(
                "Figure 5: daily classifier performance under {} criteria (M = {})",
                policy.name(),
                result.criteria.m
            ),
            &["day", "precision", "recall", "accuracy", "decisions"],
        );
        for d in &report.per_day {
            if d.confusion.total() == 0 {
                continue;
            }
            t.push_row(vec![
                d.day.to_string(),
                f4(d.confusion.precision()),
                f4(d.confusion.recall()),
                f4(d.confusion.accuracy()),
                d.confusion.total().to_string(),
            ]);
        }
        t.push_row(vec![
            "all".into(),
            f4(report.overall.precision()),
            f4(report.overall.recall()),
            f4(report.overall.accuracy()),
            report.overall.total().to_string(),
        ]);
        t.emit(&format!("fig5_classifier_days_{}", policy.name().to_lowercase()));
        println!(
            "   trainings: {}, history rectifications: {}\n",
            report.trainings, report.rectifications
        );
    }

    // §4.4.3 ablation: static model decays over days; daily retraining holds.
    let daily = proposal_run(&trace, &index, PolicyKind::Lru, gb, false);
    let once = proposal_run(&trace, &index, PolicyKind::Lru, gb, true);
    let mut ab = Table::new(
        "Ablation: daily retraining vs train-once (accuracy per day, LRU criteria)",
        &["day", "daily retrain", "train once"],
    );
    let daily_report = daily.classifier.unwrap();
    let once_report = once.classifier.unwrap();
    for (d1, d2) in daily_report.per_day.iter().zip(&once_report.per_day) {
        if d1.confusion.total() == 0 && d2.confusion.total() == 0 {
            continue;
        }
        ab.push_row(vec![
            d1.day.to_string(),
            f4(d1.confusion.accuracy()),
            f4(d2.confusion.accuracy()),
        ]);
    }
    ab.push_row(vec![
        "all".into(),
        f4(daily_report.overall.accuracy()),
        f4(once_report.overall.accuracy()),
    ]);
    ab.emit("ablation_daily_retrain");
}

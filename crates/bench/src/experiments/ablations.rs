//! Ablations of the design choices DESIGN.md calls out: the Table-4 cost
//! matrix, the history table, the feature set (§3.2.2), and the
//! reaccess-distance criteria vs the naive "accessed once ever" rule (§4.3).

use crate::common::{f4, gb_to_bytes, pct, standard_trace, Table};
use crate::experiments::table1::build_dataset;
use otae_core::daily::CostPolicy;
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig, FEATURE_NAMES};
use otae_ml::feature_select::{cv_accuracy, forward_select, information_gain};

/// Table 4 ablation: sweep the false-positive cost `v` at a small and a
/// large cache and report classifier precision/recall plus cache outcomes.
pub fn cost_matrix() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let mut t = Table::new(
        "Ablation: cost matrix v (Table 4; paper: v=2 small caches, v=3 large)",
        &["cache (GB)", "v", "precision", "recall", "hit rate", "write rate"],
    );
    for gb in [4.0, 16.0] {
        for v in [1.0f32, 2.0, 3.0, 5.0] {
            let mut cfg = RunConfig::new(PolicyKind::Lru, Mode::Proposal, gb_to_bytes(&trace, gb));
            cfg.training.cost = CostPolicy::Fixed(v);
            let r = run_with_index(&trace, &index, &cfg);
            let report = r.classifier.expect("proposal run");
            t.push_row(vec![
                format!("{gb}"),
                format!("{v}"),
                f4(report.overall.precision()),
                f4(report.overall.recall()),
                f4(r.stats.file_hit_rate()),
                f4(r.stats.file_write_rate()),
            ]);
        }
    }
    t.emit("ablation_cost_matrix");
}

/// §4.4.2 ablation: history table on vs off.
pub fn history_table() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let mut t = Table::new(
        "Ablation: history table (§4.4.2)",
        &["cache (GB)", "history", "hit rate", "write rate", "rectifications"],
    );
    for gb in [4.0, 10.0] {
        for use_history in [true, false] {
            let mut cfg = RunConfig::new(PolicyKind::Lru, Mode::Proposal, gb_to_bytes(&trace, gb));
            cfg.training.use_history = use_history;
            let r = run_with_index(&trace, &index, &cfg);
            let report = r.classifier.expect("proposal run");
            t.push_row(vec![
                format!("{gb}"),
                if use_history { "on" } else { "off" }.into(),
                f4(r.stats.file_hit_rate()),
                f4(r.stats.file_write_rate()),
                report.rectifications.to_string(),
            ]);
        }
    }
    t.emit("ablation_history_table");
}

/// §3.2.2: information gains, forward selection, and drop-one accuracy.
pub fn features() {
    let trace = standard_trace();
    let data = build_dataset(&trace, 10.0, 16_000);

    let mut gains =
        Table::new("Feature information gain (§3.2.2)", &["feature", "information gain (bits)"]);
    let mut ranked: Vec<(usize, f64)> =
        (0..data.n_features()).map(|c| (c, information_gain(&data, c, 16))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("gain not NaN"));
    for (c, g) in &ranked {
        gains.push_row(vec![FEATURE_NAMES[*c].to_string(), f4(*g)]);
    }
    gains.emit("feature_information_gain");

    let selection = forward_select(&data, 0.001, 3);
    let mut sel = Table::new(
        "Forward feature selection (paper picks avg_views, recency, age, access_time, type)",
        &["step", "feature", "CV accuracy"],
    );
    for (step, (&col, &score)) in selection.selected.iter().zip(&selection.scores).enumerate() {
        sel.push_row(vec![(step + 1).to_string(), FEATURE_NAMES[col].to_string(), f4(score)]);
    }
    sel.emit("feature_forward_selection");

    let full_acc = cv_accuracy(&data, 5);
    let mut drop = Table::new(
        "Drop-one feature ablation (CV accuracy; full set at top)",
        &["dropped feature", "CV accuracy", "delta"],
    );
    drop.push_row(vec!["(none)".into(), f4(full_acc), "-".into()]);
    for (c, name) in FEATURE_NAMES.iter().enumerate().take(data.n_features()) {
        let cols: Vec<usize> = (0..data.n_features()).filter(|&x| x != c).collect();
        let acc = cv_accuracy(&data.select_features(&cols), 5);
        drop.push_row(vec![name.to_string(), f4(acc), format!("{:+.4}", acc - full_acc)]);
    }
    drop.emit("ablation_features");
}

/// §4.3 ablation: reaccess-distance criteria vs naive "accessed once in the
/// whole trace", both with the oracle admitter so only the criteria differs.
pub fn criteria() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let mut t = Table::new(
        "Ablation: one-time-access criteria (oracle admission)",
        &["cache (GB)", "criteria", "hit rate", "write rate", "M"],
    );
    for gb in [2.0, 6.0, 12.0] {
        let cap = gb_to_bytes(&trace, gb);
        for naive in [false, true] {
            let mut cfg = RunConfig::new(PolicyKind::Lru, Mode::Ideal, cap);
            if naive {
                cfg.m_override = Some(u64::MAX - 1);
            }
            let r = run_with_index(&trace, &index, &cfg);
            t.push_row(vec![
                format!("{gb}"),
                if naive { "naive (ever reaccessed)" } else { "reaccess distance M" }.into(),
                f4(r.stats.file_hit_rate()),
                f4(r.stats.file_write_rate()),
                if naive { "inf".into() } else { r.criteria.m.to_string() },
            ]);
        }
    }
    t.emit("ablation_criteria");
}

/// §3.1.1's ensemble trade-off: boosting 30 trees buys ~1 % accuracy at ~30×
/// the single-tree cost.
pub fn ensemble_tradeoff() {
    use otae_ml::{AdaBoost, Classifier, DecisionTree, TreeParams};
    let trace = standard_trace();
    let data = build_dataset(&trace, 10.0, 16_000);
    let (train, test) = data.train_test_split(0.7, 7);
    let mut t = Table::new(
        "Ensemble trade-off (§3.1.1): accuracy vs training cost",
        &["model", "accuracy", "train time (ms)"],
    );
    let accuracy = |clf: &dyn Classifier| {
        let correct =
            (0..test.len()).filter(|&i| clf.predict(test.row(i)) == test.label(i)).count();
        correct as f64 / test.len() as f64
    };
    let mut tree = DecisionTree::new(TreeParams::default());
    let t0 = std::time::Instant::now();
    tree.fit(&train);
    let tree_ms = t0.elapsed().as_secs_f64() * 1e3;
    t.push_row(vec!["Decision Tree (1)".into(), f4(accuracy(&tree)), format!("{tree_ms:.1}")]);
    for rounds in [10usize, 30] {
        let mut boost = AdaBoost::new(rounds);
        let t0 = std::time::Instant::now();
        boost.fit(&train);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        t.push_row(vec![format!("AdaBoost ({rounds})"), f4(accuracy(&boost)), format!("{ms:.1}")]);
    }
    t.emit("ablation_ensemble_tradeoff");
}

/// SSD lifetime projection from the measured write reductions (§1's
/// motivation, quantified with the wear model).
pub fn ssd_lifetime() {
    use otae_device::{SsdWearModel, WearLedger};
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let cap = gb_to_bytes(&trace, 6.0);
    let days = 9.0;
    let mut t = Table::new(
        "SSD lifetime projection (wear model, LRU, 6GB-equivalent)",
        &["mode", "bytes written", "write rate", "life consumed", "relative lifetime"],
    );
    let wear = SsdWearModel::default();
    let mut baseline_rate = 0.0;
    for mode in [Mode::Original, Mode::Proposal, Mode::Ideal] {
        let r = run_with_index(&trace, &index, &RunConfig::new(PolicyKind::Lru, mode, cap));
        // The simulator measures host bytes only; the ledger carries no GC
        // stream, so the model applies its assumed WA factor.
        let mut ledger = WearLedger::new();
        ledger.record_host_write(r.stats.bytes_written);
        let per_day = r.stats.bytes_written as f64 / days;
        if mode == Mode::Original {
            baseline_rate = per_day;
        }
        t.push_row(vec![
            mode.name().into(),
            r.stats.bytes_written.to_string(),
            pct(r.stats.byte_write_rate()),
            format!("{:.4}%", wear.life_consumed(&ledger) * 100.0),
            format!("{:.2}x", wear.lifetime_extension(baseline_rate, per_day)),
        ]);
    }
    t.emit("ssd_lifetime");
}

//! Extension experiment: close the loop to the flash layer.
//!
//! Feeds the cache simulator's insert/evict stream into the page-mapped FTL
//! and measures *physical* flash behaviour — host pages, write
//! amplification, erase counts — under each admission mode. The paper
//! argues in bytes written; this shows the effect survives (and compounds)
//! at the device level.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::pipeline::{run_with_observer, CacheEvent};
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};
use otae_device::{FtlConfig, FtlSim, SsdWearModel, WearLedger};

/// Size an FTL for the cache: 4 KiB pages (bounding the per-object rounding
/// loss), 25 % filesystem-level slack over the cache's byte capacity, plus
/// 12.5 % over-provisioning — a realistic cache-SSD provisioning.
fn ftl_config_for(capacity: u64) -> FtlConfig {
    let page_size = 4 * 1024u32;
    let pages_per_block = 256u32;
    let block_bytes = page_size as u64 * pages_per_block as u64;
    let visible = ((capacity as f64 * 1.25) as u64).div_ceil(block_bytes).max(8) as u32;
    let op = (visible / 8).max(2); // 12.5 % over-provisioning
    FtlConfig { page_size, pages_per_block, blocks: visible + op, op_blocks: op, gc_threshold: 4 }
}

/// Run the FTL wear comparison (LRU replacement, 6 GB-equivalent cache).
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let cap = gb_to_bytes(&trace, 6.0);
    let cfg = ftl_config_for(cap);
    // Endurance model sized to this device; WA in the model is irrelevant
    // here because every ledger carries a measured GC stream.
    let wear =
        SsdWearModel { capacity: cfg.visible_bytes(), pe_cycles: 3000, write_amplification: 1.5 };

    let mut t = Table::new(
        "FTL-level wear (greedy-GC page-mapped flash under the cache)",
        &[
            "admission",
            "host pages",
            "physical pages",
            "measured WA",
            "erases",
            "max/mean block wear",
            "life consumed",
            "relative lifetime",
        ],
    );
    let mut baseline_life = 0.0f64;
    for mode in [Mode::Original, Mode::SecondHit, Mode::Proposal, Mode::Ideal] {
        let mut ftl = FtlSim::new(cfg);
        let mut dropped = 0u64;
        run_with_observer(
            &trace,
            &index,
            &RunConfig::new(PolicyKind::Lru, mode, cap),
            &mut |event| match event {
                CacheEvent::Insert { object, size } => {
                    if ftl.write_object(object.0 as u64, size).is_err() {
                        dropped += 1;
                    }
                }
                CacheEvent::Evict { object, .. } => ftl.invalidate_object(object.0 as u64),
            },
        );
        let s = ftl.stats();
        // Lifetime runs on measured bytes: the FTL exports its page
        // counters as a byte ledger, the wear model's only input format.
        let ledger: WearLedger = ftl.wear_ledger();
        let life = wear.life_consumed(&ledger);
        if mode == Mode::Original {
            baseline_life = life;
        }
        let lifetime = if life == 0.0 { f64::INFINITY } else { baseline_life / life };
        t.push_row(vec![
            mode.name().into(),
            s.host_pages.to_string(),
            s.physical_pages.to_string(),
            f4(ledger.write_amplification()),
            s.erases.to_string(),
            format!("{}/{:.1}", ftl.max_erases(), ftl.mean_erases()),
            format!("{:.3}%", life * 100.0),
            format!("{lifetime:.2}x"),
        ]);
        if dropped > 0 {
            eprintln!("warning: {dropped} writes dropped (device full) under {}", mode.name());
        }
    }
    t.emit("ftl_wear");
}

//! Figures 6–10: the (policy × {Belady, Original, Proposal, Ideal} ×
//! capacity) grids for file/byte hit rate, file/byte write rate and mean
//! response time.

use crate::common::{capacity_grid, f4, standard_trace, Table};
use otae_core::reaccess::ReaccessIndex;
use otae_core::sweep::{grid, sweep};
use otae_core::{Mode, PolicyKind, RunConfig, RunResult};

/// Metric plotted by one figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Figure 6.
    FileHitRate,
    /// Figure 7.
    ByteHitRate,
    /// Figure 8.
    FileWriteRate,
    /// Figure 9.
    ByteWriteRate,
    /// Figure 10 (µs).
    ResponseTime,
}

impl Metric {
    /// Extract the metric from a run result.
    pub fn of(&self, r: &RunResult) -> f64 {
        match self {
            Metric::FileHitRate => r.stats.file_hit_rate(),
            Metric::ByteHitRate => r.stats.byte_hit_rate(),
            Metric::FileWriteRate => r.stats.file_write_rate(),
            Metric::ByteWriteRate => r.stats.byte_write_rate(),
            Metric::ResponseTime => r.mean_latency_us,
        }
    }

    /// Figure title fragment.
    pub fn title(&self) -> &'static str {
        match self {
            Metric::FileHitRate => "file hit rate",
            Metric::ByteHitRate => "byte hit rate",
            Metric::FileWriteRate => "file write rate",
            Metric::ByteWriteRate => "byte write rate",
            Metric::ResponseTime => "mean response time (us)",
        }
    }

    /// Larger is better (hit rates) vs smaller is better (writes, latency).
    pub fn higher_is_better(&self) -> bool {
        matches!(self, Metric::FileHitRate | Metric::ByteHitRate)
    }
}

/// All sweep results needed by Figures 6–10, computed once.
pub struct FigureGrid {
    /// Capacity axis as (paper GB, bytes).
    pub caps: Vec<(f64, u64)>,
    /// Per-policy, per-mode, per-capacity results.
    pub results: Vec<RunResult>,
    /// Belady baseline per capacity.
    pub belady: Vec<RunResult>,
}

const MODES: [Mode; 3] = [Mode::Original, Mode::Proposal, Mode::Ideal];

impl FigureGrid {
    /// Run the full grid (the expensive part, shared by all five figures).
    pub fn compute() -> Self {
        let trace = standard_trace();
        let index = ReaccessIndex::build(&trace);
        let caps = capacity_grid(&trace);
        let cap_bytes: Vec<u64> = caps.iter().map(|c| c.1).collect();
        let base = RunConfig::new(PolicyKind::Lru, Mode::Original, cap_bytes[0]);

        let points = grid(&PolicyKind::PAPER_SET, &MODES, &cap_bytes);
        let results = sweep(&trace, &index, &points, &base, 0);
        let belady_points = grid(&[PolicyKind::Belady], &[Mode::Original], &cap_bytes);
        let belady = sweep(&trace, &index, &belady_points, &base, 0);
        Self { caps, results, belady }
    }

    /// Result for (policy index into PAPER_SET, mode index, capacity index).
    pub fn at(&self, policy: usize, mode: usize, cap: usize) -> &RunResult {
        let n_caps = self.caps.len();
        &self.results[(policy * MODES.len() + mode) * n_caps + cap]
    }

    /// Emit one figure's tables (one panel per policy, as in the paper).
    pub fn emit(&self, metric: Metric, fig_no: u8, csv_name: &str) {
        for (pi, policy) in PolicyKind::PAPER_SET.iter().enumerate() {
            let mut t = Table::new(
                &format!("Figure {fig_no}: {} — {}", metric.title(), policy.name()),
                &["capacity (GB)", "Belady", "Original", "Proposal", "Ideal"],
            );
            for (ci, (gb, _)) in self.caps.iter().enumerate() {
                t.push_row(vec![
                    format!("{gb}"),
                    f4(metric.of(&self.belady[ci])),
                    f4(metric.of(self.at(pi, 0, ci))),
                    f4(metric.of(self.at(pi, 1, ci))),
                    f4(metric.of(self.at(pi, 2, ci))),
                ]);
            }
            t.emit(&format!("{csv_name}_{}", policy.name().to_lowercase()));
        }
        self.emit_summary(metric, fig_no);
    }

    /// Print the paper's headline deltas for the figure.
    fn emit_summary(&self, metric: Metric, fig_no: u8) {
        let mut s = Table::new(
            &format!("Figure {fig_no} summary: Proposal vs Original across capacities"),
            &["policy", "min delta", "max delta"],
        );
        for (pi, policy) in PolicyKind::PAPER_SET.iter().enumerate() {
            let mut deltas: Vec<f64> = Vec::new();
            for ci in 0..self.caps.len() {
                let orig = metric.of(self.at(pi, 0, ci));
                let prop = metric.of(self.at(pi, 1, ci));
                let d = if metric.higher_is_better() {
                    prop - orig
                } else if orig.abs() > 1e-12 {
                    (orig - prop) / orig // relative reduction
                } else {
                    0.0
                };
                deltas.push(d);
            }
            let (lo, hi) = deltas
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &d| (l.min(d), h.max(d)));
            s.push_row(vec![
                policy.name().to_string(),
                format!("{:+.1}%", lo * 100.0),
                format!("{:+.1}%", hi * 100.0),
            ]);
        }
        s.emit(&format!("fig{fig_no}_summary"));
    }
}

//! Extension experiment: the OC layer as a real fleet (§2.1 "many cache
//! servers") — partitioning cost, load balance, and failure behaviour.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::cluster::{run_cluster, ClusterConfig};
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};

/// Run the cluster experiments.
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let total_cap = gb_to_bytes(&trace, 8.0);

    // Partitioning sweep at fixed total capacity.
    let mut t = Table::new(
        "Cache fleet: partitioning cost at fixed total capacity (8GB-equiv)",
        &["servers", "admission", "hit rate", "write rate", "load max/mean"],
    );
    for n in [1u16, 4, 16] {
        for mode in [Mode::Original, Mode::Proposal] {
            let (hit, writes, imbalance) = if n == 1 {
                let r = run_with_index(
                    &trace,
                    &index,
                    &RunConfig::new(PolicyKind::Lru, mode, total_cap),
                );
                (r.stats.file_hit_rate(), r.stats.file_write_rate(), 1.0)
            } else {
                let r =
                    run_cluster(&trace, &index, &ClusterConfig::new(n, total_cap / n as u64, mode));
                (r.total.file_hit_rate(), r.total.file_write_rate(), r.load_imbalance)
            };
            t.push_row(vec![
                n.to_string(),
                mode.name().into(),
                f4(hit),
                f4(writes),
                format!("{imbalance:.2}"),
            ]);
        }
    }
    t.emit("cluster_partitioning");

    // Mid-trace server failure: remapped objects arrive cold.
    let mut f = Table::new(
        "Cache fleet: one of 8 servers dies at half-trace",
        &["admission", "hit rate (overall)", "hit rate (after failure)", "SSD writes"],
    );
    for mode in [Mode::Original, Mode::Proposal, Mode::Ideal] {
        let mut cfg = ClusterConfig::new(8, total_cap / 8, mode);
        cfg.failure = Some((3, (trace.len() / 2) as u64));
        let r = run_cluster(&trace, &index, &cfg);
        f.push_row(vec![
            mode.name().into(),
            f4(r.total.file_hit_rate()),
            f4(r.post_failure_hit_rate),
            r.total.files_written.to_string(),
        ]);
    }
    f.emit("cluster_failure");
}

//! Extension experiment: concept drift vs retraining cadence.
//!
//! §4.4.3 retrains daily because "classifying performance drops down
//! significantly over time". On a stationary synthetic trace that decay is
//! mild; this experiment turns on explicit concept drift (the owner-activity
//! axis of one-time propensity rotates every day) and shows the static
//! model collapsing while daily retraining tracks the moving target.

use crate::common::{f4, standard_objects, Table};
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};
use otae_trace::{generate, TraceConfig};

/// Run the drift comparison.
pub fn run() {
    for (label, drift) in [("stationary", 0.0f64), ("drifting (0.12/day)", 0.12)] {
        let trace = generate(&TraceConfig {
            n_objects: standard_objects(),
            seed: 42,
            daily_drift: drift,
            ..Default::default()
        });
        let index = ReaccessIndex::build(&trace);
        let cap = (trace.unique_bytes() as f64 * 6.0 / 448.0) as u64;

        let mut daily_cfg = RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap);
        daily_cfg.training.train_once = false;
        let daily = run_with_index(&trace, &index, &daily_cfg);
        let mut once_cfg = RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap);
        once_cfg.training.train_once = true;
        let once = run_with_index(&trace, &index, &once_cfg);

        let mut t = Table::new(
            &format!("Drift ablation — {label}: per-day classifier accuracy"),
            &["day", "daily retrain", "train once"],
        );
        let dr = daily.classifier.expect("proposal reports");
        let or = once.classifier.expect("proposal reports");
        for (a, b) in dr.per_day.iter().zip(&or.per_day) {
            if a.confusion.total() == 0 && b.confusion.total() == 0 {
                continue;
            }
            t.push_row(vec![
                a.day.to_string(),
                f4(a.confusion.accuracy()),
                f4(b.confusion.accuracy()),
            ]);
        }
        t.push_row(vec!["all".into(), f4(dr.overall.accuracy()), f4(or.overall.accuracy())]);
        t.push_row(vec![
            "hit rate".into(),
            f4(daily.stats.file_hit_rate()),
            f4(once.stats.file_hit_rate()),
        ]);
        t.emit(&format!("ablation_drift_{}", if drift == 0.0 { "stationary" } else { "drifting" }));
    }
}

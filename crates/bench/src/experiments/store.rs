//! Extension: segment-store throughput and recovery cost — grouped vs
//! ungrouped append ops/s at several queue depths, the allocation-free
//! read path, compaction reported in *explicit units* (reclaimed MB/s and
//! live-record rewrite throughput — the old `store_compact` "ops_per_s"
//! was really compaction passes/s), parallel vs sequential recovery wall
//! time, and the *measured* write amplification of an overwrite-churn
//! workload. The `store_*` numbers are merged into the repo-root
//! `BENCH_serve.json` next to the serve trajectory (the store lives under
//! the same service), including `store_speedup_vs_pr6` — grouped append
//! throughput over the committed PR-6 baseline.
//!
//! Wall-clock timing is deliberate here: `otae-serve` is barred from
//! timing anything (otae-lint: no-wall-clock), so the store's
//! `store_recovery_ms` acceptance number is measured in this crate.

use crate::common::{f4, smoke_mode, BenchJson, Table};
use otae_serve::fill_payload;
use otae_store::{MemBackend, NoStoreFaults, SegmentStore, StoreConfig};
use std::sync::Arc;
use std::time::Instant;

/// Queue depths swept for the append path (the bounded-channel seam).
const QUEUE_DEPTHS: [usize; 3] = [1, 16, 64];

/// The committed PR-6 `store_append_q64` throughput (ops/s) — the
/// denominator of the `store_speedup_vs_pr6` acceptance metric.
const PR6_APPEND_OPS: f64 = 261_263.193091;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bench store config: 1 MB segments, optional auto-compaction, and an
/// explicit group-commit size (`group_records == 1` disables batching to
/// reproduce the PR-6 per-record write path).
fn bench_cfg(queue_depth: usize, compact: bool, group_records: usize) -> StoreConfig {
    StoreConfig {
        segment_bytes: 1 << 20,
        queue_depth,
        compact_trigger: if compact { Some(0.5) } else { None },
        group_records,
        ..StoreConfig::default()
    }
}

fn open_mem(backend: &MemBackend, cfg: StoreConfig) -> SegmentStore {
    let (store, _) = SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults))
        .expect("in-memory store open cannot fail");
    store
}

/// Append `n` puts over `keys` distinct keys (deterministic payload sizes
/// 64..1088 bytes) and flush; returns elapsed seconds.
fn append_run(store: &SegmentStore, n: usize, keys: u64) -> f64 {
    let mut state = 0x5EED_0A11u64;
    let mut buf = Vec::new();
    let t0 = Instant::now();
    for _ in 0..n {
        let r = splitmix(&mut state);
        let key = r % keys;
        fill_payload(key, 64 + (r % 1024) as usize, &mut buf);
        store.put(key, &buf).expect("bench put");
    }
    store.flush().expect("bench flush");
    t0.elapsed().as_secs_f64()
}

/// Run the store sweep; prints the table, writes
/// `results/store_throughput.csv`, and merges `store_*` stages and the
/// acceptance metrics (`store_append_ops`, `store_read_ops`,
/// `store_recovery_ms`, `store_speedup_vs_pr6`, `write_amplification`,
/// and the explicit-unit compaction rates) into `BENCH_serve.json`.
pub fn run() {
    let smoke = smoke_mode();
    // `OTAE_STORE_OPS` overrides the op count in either mode — the bench
    // guard uses it to get steady-state rates out of a smoke run (which
    // never writes CSVs) without paying for the full sweep.
    let n_ops = std::env::var("OTAE_STORE_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2_000 } else { 200_000 });
    let n_appends = n_ops;
    let n_reads = n_ops;
    let keys = (n_appends / 4).max(16) as u64;

    let mut table = Table::new(
        "segment store — append/read/compact throughput, recovery, measured WA",
        &["stage", "queue_depth", "ops", "wall_s", "rate", "unit"],
    );
    let mut json = BenchJson::new("store_throughput");
    let mut best_append = 0.0f64;

    // Group-commit append path at each queue depth: same op stream,
    // fresh device, default group size.
    for &qd in &QUEUE_DEPTHS {
        let backend = MemBackend::new();
        let store = open_mem(&backend, bench_cfg(qd, false, StoreConfig::default().group_records));
        let wall = append_run(&store, n_appends, keys);
        let ops = n_appends as f64 / wall;
        best_append = best_append.max(ops);
        json.stage(&format!("store_append_q{qd}"), wall, ops);
        table.push_row(vec![
            "append".into(),
            qd.to_string(),
            n_appends.to_string(),
            f4(wall),
            format!("{ops:.0}"),
            "ops/s".into(),
        ]);
    }

    // Ungrouped baseline (group of 1 == the PR-6 per-record write path)
    // at the deepest queue, so the group-commit win is visible in the
    // same artifact.
    let backend = MemBackend::new();
    let store = open_mem(&backend, bench_cfg(64, false, 1));
    let wall = append_run(&store, n_appends, keys);
    let ungrouped_ops = n_appends as f64 / wall;
    json.stage("store_append_ungrouped", wall, ungrouped_ops);
    table.push_row(vec![
        "append (group=1)".into(),
        "64".into(),
        n_appends.to_string(),
        f4(wall),
        format!("{ungrouped_ops:.0}"),
        "ops/s".into(),
    ]);
    drop(store);

    // A churned device shared by the read / compact / recovery stages:
    // every key overwritten ~4× so sealed segments carry dead bytes.
    let backend = MemBackend::new();
    let store = open_mem(&backend, bench_cfg(64, false, StoreConfig::default().group_records));
    append_run(&store, n_appends, keys);

    // Read path: `get_into` with one reused buffer — zero allocations
    // per hit once the buffer reaches the max payload size.
    let mut state = 0xBEEFu64;
    let mut val = Vec::new();
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..n_reads {
        let key = splitmix(&mut state) % keys;
        if store.get_into(key, &mut val).expect("bench get") {
            hits += 1;
        }
    }
    let read_wall = t0.elapsed().as_secs_f64();
    let read_ops = n_reads as f64 / read_wall;
    assert!(hits > 0, "read stage must actually hit live records");
    json.stage("store_read", read_wall, read_ops);
    table.push_row(vec![
        "read".into(),
        "64".into(),
        n_reads.to_string(),
        f4(read_wall),
        format!("{read_ops:.0}"),
        "ops/s".into(),
    ]);

    // Compaction: rewrite live records out of the deadest segments until
    // progress stops. Reported in explicit units — reclaimed MB/s and
    // live records rewritten per second — because the old "ops_per_s"
    // here was actually compaction *passes*/s, a near-meaningless rate.
    let t0 = Instant::now();
    let mut passes = 0u64;
    let mut reclaimed_bytes = 0u64;
    let mut rewritten_records = 0u64;
    loop {
        let report = store.compact().expect("bench compact");
        if report.victim.is_none() {
            break;
        }
        passes += 1;
        reclaimed_bytes += report.reclaimed_bytes;
        rewritten_records += report.rewritten_records;
        if passes >= 64 {
            break;
        }
    }
    let compact_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let reclaimed_mb_per_s = reclaimed_bytes as f64 / (1 << 20) as f64 / compact_wall;
    let live_rec_per_s = rewritten_records as f64 / compact_wall;
    json.stage("store_compact_reclaim", compact_wall, live_rec_per_s);
    table.push_row(vec![
        "compact".into(),
        "64".into(),
        rewritten_records.to_string(),
        f4(compact_wall),
        format!("{live_rec_per_s:.0}"),
        "live rec/s".into(),
    ]);
    table.push_row(vec![
        "compact".into(),
        "64".into(),
        format!("{passes} passes"),
        f4(compact_wall),
        f4(reclaimed_mb_per_s),
        "reclaimed MB/s".into(),
    ]);

    let stats = store.stats();
    let wa = stats.write_amplification();
    let live = stats.live_records;
    drop(store); // clean shutdown; the device's bytes survive

    // Recovery: reopen the churned + compacted device and time the scan,
    // once with the parallel scanner (threads = cores) and once pinned
    // to a single thread, so the artifact shows both the acceptance
    // number and the algorithmic (slice-by-8 CRC + batched decode) win.
    let mut recovery_ms_by_mode = [0.0f64; 2];
    for (slot, (stage, threads)) in
        [("store_recovery", 0usize), ("store_recovery_seq", 1usize)].into_iter().enumerate()
    {
        let cfg = StoreConfig { recovery_threads: threads, ..bench_cfg(64, false, 128) };
        let t0 = Instant::now();
        let (recovered, report) =
            SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults))
                .expect("recovery open");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        recovery_ms_by_mode[slot] = recovery_ms;
        assert_eq!(report.live_records, live, "recovery must rebuild the same index");
        let recovered_per_s =
            if recovery_ms > 0.0 { report.records as f64 / (recovery_ms / 1e3) } else { 0.0 };
        json.stage(stage, recovery_ms / 1e3, recovered_per_s);
        table.push_row(vec![
            if threads == 0 { "recovery".into() } else { "recovery (1 thread)".into() },
            "-".into(),
            report.records.to_string(),
            f4(recovery_ms / 1e3),
            format!("{recovered_per_s:.0}"),
            "rec/s".into(),
        ]);
        drop(recovered);
    }
    let [recovery_ms, recovery_seq_ms] = recovery_ms_by_mode;

    json.metric("store_append_ops", best_append);
    json.metric("store_read_ops", read_ops);
    json.metric("store_recovery_ms", recovery_ms);
    json.metric("store_recovery_seq_ms", recovery_seq_ms);
    json.metric("store_compact_reclaimed_mb_per_s", reclaimed_mb_per_s);
    json.metric("store_compact_live_records_per_s", live_rec_per_s);
    json.metric("store_speedup_vs_pr6", best_append / PR6_APPEND_OPS);
    json.metric("write_amplification", wa);
    println!(
        "store: best append {best_append:.0} ops/s ({:.2}x vs PR-6, ungrouped {ungrouped_ops:.0}), \
         read {read_ops:.0} ops/s, recovery {recovery_ms:.2} ms (seq {recovery_seq_ms:.2} ms), \
         compact {reclaimed_mb_per_s:.1} MB/s reclaimed, measured WA {wa:.3} \
         (GC {} of {} physical bytes)",
        best_append / PR6_APPEND_OPS,
        stats.gc_bytes,
        stats.physical_bytes()
    );
    table.emit("store_throughput");
    json.merge_write("BENCH_serve.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_recovery_paths_report_sane_numbers() {
        let backend = MemBackend::new();
        let store = open_mem(&backend, bench_cfg(16, false, 8));
        let wall = append_run(&store, 500, 64);
        assert!(wall > 0.0);
        let s = store.stats();
        assert_eq!(s.acked_puts, 500);
        assert!(s.write_amplification() >= 1.0);
        drop(store);
        let (_, report) = SegmentStore::open(
            Arc::new(backend.clone()),
            bench_cfg(16, false, 8),
            Arc::new(NoStoreFaults),
        )
        .expect("reopen");
        assert_eq!(report.records, 500);
    }

    #[test]
    fn grouped_and_ungrouped_appends_land_identical_bytes() {
        let grouped = MemBackend::new();
        let ungrouped = MemBackend::new();
        let gs = open_mem(&grouped, bench_cfg(16, false, 32));
        let us = open_mem(&ungrouped, bench_cfg(16, false, 1));
        append_run(&gs, 400, 64);
        append_run(&us, 400, 64);
        let (ge, ue) = (gs.live_entries(), us.live_entries());
        assert_eq!(ge, ue, "group commit must not change the on-device layout");
    }
}

//! Extension: segment-store throughput and recovery cost — append, read
//! and compaction ops/s at several queue depths, the wall time of the
//! recovery scan, and the *measured* write amplification of an
//! overwrite-churn workload. The `store_*` numbers are merged into the
//! repo-root `BENCH_serve.json` next to the serve trajectory (the store
//! lives under the same service).
//!
//! Wall-clock timing is deliberate here: `otae-serve` is barred from
//! timing anything (otae-lint: no-wall-clock), so the store's
//! `store_recovery_ms` acceptance number is measured in this crate.

use crate::common::{f4, smoke_mode, BenchJson, Table};
use otae_serve::fill_payload;
use otae_store::{MemBackend, NoStoreFaults, SegmentStore, StoreConfig};
use std::sync::Arc;
use std::time::Instant;

/// Queue depths swept for the append path (the bounded-channel seam).
const QUEUE_DEPTHS: [usize; 3] = [1, 16, 64];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn open_mem(backend: &MemBackend, queue_depth: usize, compact: bool) -> SegmentStore {
    let cfg = StoreConfig {
        segment_bytes: 1 << 20,
        queue_depth,
        compact_trigger: if compact { Some(0.5) } else { None },
    };
    let (store, _) = SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults))
        .expect("in-memory store open cannot fail");
    store
}

/// Append `n` puts over `keys` distinct keys (deterministic payload sizes
/// 64..1088 bytes) and flush; returns elapsed seconds.
fn append_run(store: &SegmentStore, n: usize, keys: u64) -> f64 {
    let mut state = 0x5EED_0A11u64;
    let mut buf = Vec::new();
    let t0 = Instant::now();
    for _ in 0..n {
        let r = splitmix(&mut state);
        let key = r % keys;
        fill_payload(key, 64 + (r % 1024) as usize, &mut buf);
        store.put(key, &buf).expect("bench put");
    }
    store.flush().expect("bench flush");
    t0.elapsed().as_secs_f64()
}

/// Run the store sweep; prints the table, writes
/// `results/store_throughput.csv`, and merges `store_*` stages and the
/// acceptance metrics (`store_append_ops`, `store_recovery_ms`,
/// `write_amplification`) into `BENCH_serve.json`.
pub fn run() {
    let smoke = smoke_mode();
    let n_appends = if smoke { 2_000 } else { 200_000 };
    let n_reads = if smoke { 2_000 } else { 200_000 };
    let keys = (n_appends / 4).max(16) as u64;

    let mut table = Table::new(
        "segment store — append/read/compact throughput, recovery, measured WA",
        &["stage", "queue_depth", "ops", "wall_s", "ops_per_s"],
    );
    let mut json = BenchJson::new("store_throughput");
    let mut best_append = 0.0f64;

    // Append path at each queue depth: same op stream, fresh device.
    for &qd in &QUEUE_DEPTHS {
        let backend = MemBackend::new();
        let store = open_mem(&backend, qd, false);
        let wall = append_run(&store, n_appends, keys);
        let ops = n_appends as f64 / wall;
        best_append = best_append.max(ops);
        json.stage(&format!("store_append_q{qd}"), wall, ops);
        table.push_row(vec![
            "append".into(),
            qd.to_string(),
            n_appends.to_string(),
            f4(wall),
            format!("{ops:.0}"),
        ]);
    }

    // A churned device shared by the read / compact / recovery stages:
    // every key overwritten ~4× so sealed segments carry dead bytes.
    let backend = MemBackend::new();
    let store = open_mem(&backend, 64, false);
    append_run(&store, n_appends, keys);

    let mut state = 0xBEEFu64;
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..n_reads {
        let key = splitmix(&mut state) % keys;
        if store.get(key).expect("bench get").is_some() {
            hits += 1;
        }
    }
    let read_wall = t0.elapsed().as_secs_f64();
    let read_ops = n_reads as f64 / read_wall;
    assert!(hits > 0, "read stage must actually hit live records");
    json.stage("store_read", read_wall, read_ops);
    table.push_row(vec![
        "read".into(),
        "64".into(),
        n_reads.to_string(),
        f4(read_wall),
        format!("{read_ops:.0}"),
    ]);

    // Compaction: rewrite live records out of the deadest segments until
    // progress stops. Ops here are compaction passes.
    let t0 = Instant::now();
    let mut passes = 0u64;
    loop {
        let report = store.compact().expect("bench compact");
        if report.victim.is_none() {
            break;
        }
        passes += 1;
        if passes >= 64 {
            break;
        }
    }
    let compact_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let compact_ops = passes as f64 / compact_wall;
    json.stage("store_compact", compact_wall, compact_ops);
    table.push_row(vec![
        "compact".into(),
        "64".into(),
        passes.to_string(),
        f4(compact_wall),
        format!("{compact_ops:.0}"),
    ]);

    let stats = store.stats();
    let wa = stats.write_amplification();
    let live = stats.live_records;
    drop(store); // clean shutdown; the device's bytes survive

    // Recovery: reopen the churned + compacted device and time the scan.
    let t0 = Instant::now();
    let (recovered, report) = SegmentStore::open(
        Arc::new(backend.clone()),
        StoreConfig { segment_bytes: 1 << 20, queue_depth: 64, compact_trigger: None },
        Arc::new(NoStoreFaults),
    )
    .expect("recovery open");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.live_records, live, "recovery must rebuild the same index");
    let recovered_per_s =
        if recovery_ms > 0.0 { report.records as f64 / (recovery_ms / 1e3) } else { 0.0 };
    json.stage("store_recovery", recovery_ms / 1e3, recovered_per_s);
    table.push_row(vec![
        "recovery".into(),
        "-".into(),
        report.records.to_string(),
        f4(recovery_ms / 1e3),
        format!("{recovered_per_s:.0}"),
    ]);
    drop(recovered);

    json.metric("store_append_ops", best_append);
    json.metric("store_recovery_ms", recovery_ms);
    json.metric("write_amplification", wa);
    println!(
        "store: best append {best_append:.0} ops/s, recovery {recovery_ms:.2} ms, \
         measured WA {wa:.3} (GC {} of {} physical bytes)",
        stats.gc_bytes,
        stats.physical_bytes()
    );
    table.emit("store_throughput");
    json.merge_write("BENCH_serve.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_recovery_paths_report_sane_numbers() {
        let backend = MemBackend::new();
        let store = open_mem(&backend, 16, false);
        let wall = append_run(&store, 500, 64);
        assert!(wall > 0.0);
        let s = store.stats();
        assert_eq!(s.acked_puts, 500);
        assert!(s.write_amplification() >= 1.0);
        drop(store);
        let (_, report) = SegmentStore::open(
            Arc::new(backend.clone()),
            StoreConfig { segment_bytes: 1 << 20, queue_depth: 16, compact_trigger: None },
            Arc::new(NoStoreFaults),
        )
        .expect("reopen");
        assert_eq!(report.records, 500);
    }
}

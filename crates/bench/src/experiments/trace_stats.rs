//! §2.2 trace characterisation + Figure 3 (requests per photo type).

use crate::common::{f4, pct, standard_trace, Table};

/// Print the §2.2 statistics and the Figure-3 type distribution.
pub fn run() {
    let trace = standard_trace();
    let stats = trace.characterize();

    let mut t = Table::new("Trace characterisation (paper §2.2)", &["statistic", "value", "paper"]);
    t.push_row(vec!["requests".into(), stats.accesses.to_string(), "5.86 B".into()]);
    t.push_row(vec!["distinct objects".into(), stats.objects.to_string(), "1.48 B".into()]);
    t.push_row(vec![
        "one-time objects".into(),
        pct(stats.one_time_object_fraction),
        "61.5%".into(),
    ]);
    t.push_row(vec![
        "one-time accesses".into(),
        pct(stats.one_time_access_fraction),
        "(objects/accesses)".into(),
    ]);
    t.push_row(vec!["max hit rate".into(), pct(stats.max_hit_rate), "74.5%".into()]);
    t.push_row(vec![
        "mean accesses/object".into(),
        f4(stats.mean_accesses_per_object),
        "3.95".into(),
    ]);
    t.push_row(vec![
        "mean object size".into(),
        format!("{:.1} KB", stats.mean_object_size / 1024.0),
        "~32 KB".into(),
    ]);
    t.emit("trace_stats");

    let mut f3 = Table::new(
        "Figure 3: request share per photo type (l5 dominates, ~45% in paper)",
        &["type", "request share"],
    );
    for (label, share) in stats.type_share_rows() {
        f3.push_row(vec![label.to_string(), pct(share)]);
    }
    f3.emit("fig3_photo_types");

    let pop = otae_trace::analyze_popularity(&trace);
    let mut z =
        Table::new("Popularity profile (related work [4]: Zipf-like)", &["metric", "value"]);
    z.push_row(vec!["zipf alpha (head fit)".into(), f4(pop.zipf_alpha)]);
    z.push_row(vec!["log-log fit r^2".into(), f4(pop.r_squared)]);
    z.push_row(vec!["top 1% objects' access share".into(), pct(pop.top_1pct_share)]);
    z.push_row(vec!["top 10% objects' access share".into(), pct(pop.top_10pct_share)]);
    z.emit("popularity_profile");

    let mut diurnal = Table::new(
        "Requests per hour of day (peak 20:00, trough 05:00; §4.4.3)",
        &["hour", "requests"],
    );
    for (h, &n) in stats.requests_per_hour.iter().enumerate() {
        diurnal.push_row(vec![format!("{h:02}"), n.to_string()]);
    }
    diurnal.emit("diurnal_profile");
}

//! Table 1: performance comparison of seven classifiers on the sampled
//! one-time-access dataset, plus the §3.1.2 tree-shape checks.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::reaccess::ReaccessIndex;
use otae_core::{solve_criteria, FeatureExtractor, FEATURE_NAMES, N_FEATURES};
use otae_ml::{
    predict_all, roc_auc, score_all, AdaBoost, Classifier, ConfusionMatrix, Dataset, DecisionTree,
    Knn, LogisticRegression, Mlp, NaiveBayes, RandomForest, TreeParams,
};
use otae_trace::Trace;

/// Paper's Table 1 reference values: (name, precision, recall, accuracy, AUC).
pub const PAPER_TABLE1: [(&str, f64, f64, f64, f64); 7] = [
    ("Naive Bayes", 0.377596, 0.99272, 0.459069, 0.688827),
    ("Decision Tree", 0.800459, 0.765024, 0.859903, 0.898646),
    ("BP NN", 0.625511, 0.158107, 0.691771, 0.721861),
    ("KNN", 0.686851, 0.544037, 0.768306, 0.826307),
    ("AdaBoost", 0.80709, 0.785428, 0.867597, 0.935989),
    ("Random Forest", 0.801581, 0.77895, 0.863792, 0.932453),
    ("Logistic Regression", 0.893082, 0.173785, 0.721236, 0.834967),
];

/// Build the labelled classification dataset from a trace: features from the
/// online extractor, labels from the one-time-access criteria at the given
/// paper-GB capacity, capped at `max_rows` by even striding.
pub fn build_dataset(trace: &Trace, gb: f64, max_rows: usize) -> Dataset {
    let index = ReaccessIndex::build(trace);
    let criteria =
        solve_criteria(&index, gb_to_bytes(trace, gb), trace.avg_object_size().max(1.0), 3);
    let stride = (trace.len() / max_rows).max(1);
    let mut extractor = FeatureExtractor::new(trace);
    let mut data = Dataset::new(N_FEATURES).with_feature_names(&FEATURE_NAMES);
    for (i, req) in trace.requests.iter().enumerate() {
        let features = extractor.extract(trace, req);
        if i % stride == 0 {
            data.push(&features, index.is_one_time(i, criteria.m));
        }
        extractor.update(trace, req);
    }
    data
}

/// Evaluate one classifier; returns (precision, recall, accuracy, auc).
pub fn evaluate(clf: &mut dyn Classifier, train: &Dataset, test: &Dataset) -> (f64, f64, f64, f64) {
    clf.fit(train);
    let preds = predict_all(clf, test);
    let scores = score_all(clf, test);
    let cm = ConfusionMatrix::from_predictions(test.labels(), &preds);
    let auc = roc_auc(&scores, test.labels());
    (cm.precision(), cm.recall(), cm.accuracy(), auc)
}

/// Run the Table-1 comparison.
pub fn run() {
    let trace = standard_trace();
    let data = build_dataset(&trace, 10.0, 24_000);
    println!(
        "dataset: {} rows, {} features, {:.1}% one-time",
        data.len(),
        data.n_features(),
        data.positive_fraction() * 100.0
    );
    let (train, test) = data.train_test_split(0.7, 7);

    let mut classifiers: Vec<Box<dyn Classifier>> = vec![
        Box::new(NaiveBayes::new()),
        Box::new(DecisionTree::new(TreeParams::default())),
        Box::new(Mlp::new(16, 11)),
        Box::new(Knn::new(15)),
        Box::new(AdaBoost::new(30)),
        Box::new(RandomForest::new(30, 13)),
        Box::new(LogisticRegression::new()),
    ];

    let mut t = Table::new(
        "Table 1: classifier comparison (paper values in parentheses)",
        &["algorithm", "precision", "recall", "accuracy", "AUC"],
    );
    for clf in classifiers.iter_mut() {
        let name = clf.name();
        let start = std::time::Instant::now();
        let (p, r, a, auc) = evaluate(clf.as_mut(), &train, &test);
        let elapsed = start.elapsed();
        let paper = PAPER_TABLE1.iter().find(|row| {
            row.0 == name || (name == "Logistic Regression" && row.0.starts_with("Logistic"))
        });
        let with_ref = |ours: f64, theirs: Option<f64>| match theirs {
            Some(v) => format!("{} ({:.3})", f4(ours), v),
            None => f4(ours),
        };
        t.push_row(vec![
            name.to_string(),
            with_ref(p, paper.map(|x| x.1)),
            with_ref(r, paper.map(|x| x.2)),
            with_ref(a, paper.map(|x| x.3)),
            with_ref(auc, paper.map(|x| x.4)),
        ]);
        eprintln!("  {name}: fit+eval in {elapsed:?}");
    }
    t.emit("table1_classifiers");

    // §3.1.2: tree shape under the 30-split budget.
    let mut tree = DecisionTree::new(TreeParams::default());
    tree.fit(&train);
    let mean_path: f64 =
        (0..test.len().min(2000)).map(|i| tree.decision_path_len(test.row(i)) as f64).sum::<f64>()
            / test.len().min(2000) as f64;
    let mut shape = Table::new(
        "Tree shape (§3.1.2: <=30 splits, height ~5, <=5 comparisons typical)",
        &["metric", "value"],
    );
    shape.push_row(vec!["splits".into(), tree.n_splits().to_string()]);
    shape.push_row(vec!["depth".into(), tree.depth().to_string()]);
    shape.push_row(vec!["mean decision path".into(), format!("{mean_path:.2}")]);
    shape.emit("tree_shape");

    // What the deployed model actually uses (complements §3.2.2's ranking).
    let mut imp = Table::new(
        "Deployed-tree feature importance (split-count weighted)",
        &["feature", "importance"],
    );
    let importances = tree.feature_importance();
    let mut ranked: Vec<(usize, f64)> = importances.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("importance not NaN"));
    for (c, v) in ranked {
        imp.push_row(vec![FEATURE_NAMES[c].to_string(), f4(v)]);
    }
    imp.emit("tree_feature_importance");
}

//! Perf trajectory: training throughput of the exact vs histogram-binned
//! split engines, for a single cost-sensitive CART tree (the model the
//! paper deploys), a random forest and AdaBoost (the Table-1 ensembles,
//! which bin once and share codes across members).
//!
//! Emits `results/train_throughput.csv` and the machine-readable
//! `BENCH_training.json` at the repo root so successive PRs can chart the
//! trajectory. `OTAE_BENCH_SMOKE=1` shrinks the run to a sanity check and
//! skips the root JSON.

use crate::common::{smoke_mode, BenchJson, Table};
use otae_ml::{AdaBoost, Classifier, Dataset, DecisionTree, RandomForest, SplitEngine, TreeParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Synthetic admission-style dataset: 8 features, mixed informative and
/// noise columns, ~40 % positive class.
pub fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut d = Dataset::new(8);
    for _ in 0..n {
        let mut row = [0.0f32; 8];
        for v in row.iter_mut() {
            *v = rng.gen();
        }
        let label = row[0] + 0.5 * row[3] + 0.3 * rng.gen::<f32>() > 0.9;
        d.push(&row, label);
    }
    d
}

fn time_fit(engine: SplitEngine, data: &Dataset) -> f64 {
    let mut tree = DecisionTree::new(TreeParams { engine, cost_fp: 2.0, ..TreeParams::default() });
    let t0 = Instant::now();
    tree.fit(data);
    let dt = t0.elapsed().as_secs_f64();
    assert!(tree.n_splits() > 0, "benchmark tree must actually split");
    dt
}

fn time_forest(engine: SplitEngine, data: &Dataset, n_trees: usize) -> f64 {
    let mut rf = RandomForest::new(n_trees, 7);
    rf.engine = engine;
    let t0 = Instant::now();
    rf.fit(data);
    t0.elapsed().as_secs_f64()
}

fn time_boost(engine: SplitEngine, data: &Dataset, rounds: usize) -> f64 {
    let mut ab = AdaBoost::new(rounds);
    ab.engine = engine;
    let t0 = Instant::now();
    ab.fit(data);
    t0.elapsed().as_secs_f64()
}

/// Run the training-throughput sweep.
pub fn run() {
    let smoke = smoke_mode();
    // 50 k × 8 is the acceptance dataset; 144 k is the paper's day of
    // samples at 100 records/minute.
    let sizes: &[usize] = if smoke { &[2_000] } else { &[10_000, 50_000, 144_000] };
    let (n_trees, rounds) = if smoke { (3, 3) } else { (10, 10) };

    let mut table = Table::new(
        "training throughput — exact vs histogram-binned split engine (8 features)",
        &["model", "rows", "exact_s", "binned_s", "speedup", "binned_rows_per_s"],
    );
    let mut json = BenchJson::new("training_throughput");

    for &n in sizes {
        let data = synthetic_dataset(n, 42);
        let exact_s = time_fit(SplitEngine::Exact, &data);
        let binned_s = time_fit(SplitEngine::default(), &data);
        json.stage(&format!("tree_exact_{n}x8"), exact_s, n as f64 / exact_s);
        json.stage(&format!("tree_binned_{n}x8"), binned_s, n as f64 / binned_s);
        json.metric(&format!("tree_speedup_{n}x8"), exact_s / binned_s);
        table.push_row(vec![
            "cart_tree".into(),
            n.to_string(),
            format!("{exact_s:.4}"),
            format!("{binned_s:.4}"),
            format!("{:.2}x", exact_s / binned_s),
            format!("{:.0}", n as f64 / binned_s),
        ]);
    }

    // Ensembles at the mid size: binned members share one BinnedDataset.
    let n = if smoke { 2_000 } else { 50_000 };
    let data = synthetic_dataset(n, 43);
    let fe = time_forest(SplitEngine::Exact, &data, n_trees);
    let fb = time_forest(SplitEngine::default(), &data, n_trees);
    json.stage(&format!("forest{n_trees}_exact_{n}x8"), fe, n as f64 / fe);
    json.stage(&format!("forest{n_trees}_binned_{n}x8"), fb, n as f64 / fb);
    table.push_row(vec![
        format!("forest_{n_trees}"),
        n.to_string(),
        format!("{fe:.4}"),
        format!("{fb:.4}"),
        format!("{:.2}x", fe / fb),
        format!("{:.0}", n as f64 / fb),
    ]);
    let be = time_boost(SplitEngine::Exact, &data, rounds);
    let bb = time_boost(SplitEngine::default(), &data, rounds);
    json.stage(&format!("adaboost{rounds}_exact_{n}x8"), be, n as f64 / be);
    json.stage(&format!("adaboost{rounds}_binned_{n}x8"), bb, n as f64 / bb);
    table.push_row(vec![
        format!("adaboost_{rounds}"),
        n.to_string(),
        format!("{be:.4}"),
        format!("{bb:.4}"),
        format!("{:.2}x", be / bb),
        format!("{:.0}", n as f64 / bb),
    ]);

    table.emit("train_throughput");
    json.write("BENCH_training.json");
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_ml::predict_all;

    #[test]
    fn synthetic_dataset_is_learnable_and_two_class() {
        let data = synthetic_dataset(3000, 1);
        let frac = data.positive_fraction();
        assert!(frac > 0.1 && frac < 0.9, "positive fraction {frac}");
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&data);
        let test = synthetic_dataset(800, 2);
        let acc =
            predict_all(&tree, &test).iter().zip(test.labels()).filter(|(p, y)| *p == *y).count()
                as f64
                / test.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn engines_time_successfully_on_small_data() {
        let data = synthetic_dataset(1500, 3);
        assert!(time_fit(SplitEngine::Exact, &data) > 0.0);
        assert!(time_fit(SplitEngine::default(), &data) > 0.0);
        assert!(time_forest(SplitEngine::default(), &data, 2) > 0.0);
        assert!(time_boost(SplitEngine::default(), &data, 2) > 0.0);
    }
}

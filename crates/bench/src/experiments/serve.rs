//! Extension: throughput scaling of the sharded concurrent service
//! (`otae-serve`) — requests/second and modeled latency tails as the
//! shard × worker topology grows, for the paper's Proposal admission and
//! the Original (admit-everything) baseline.

use crate::common::{f4, gb_to_bytes, smoke_mode, standard_trace, BenchJson, Table};
use otae_core::pipeline::{Mode, PolicyKind};
use otae_core::ReaccessIndex;
use otae_serve::{serve_trace_with_index, LoadConfig, ServeConfig, TrainerMode};
use std::time::Instant;

/// Shard × worker topologies swept (clients scale with workers).
const TOPOLOGIES: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 4), (8, 8)];

/// The `proposal_8x8` ops/s recorded when this benchmark first landed
/// (per-request gate resolution, unbatched scoring) — the denominator of
/// the `proposal_speedup_vs_pr1` metric tracking the hot-path rework.
const PR1_PROPOSAL_8X8_OPS: f64 = 352_854.128_037;

/// The `proposal_8x8` ops/s recorded after the batching + memoization
/// rework but before compiled inference — the denominator of the
/// `compiled_speedup_vs_pr5` metric isolating what the branchless compiled
/// scorer buys on top of batching.
const PR5_PROPOSAL_8X8_OPS: f64 = 760_627.277_892;

/// Measured replays per stage; the best (shortest wall) one is reported so
/// a scheduler hiccup on one replay cannot masquerade as a topology effect.
/// Five runs because single-replay walls on a loaded host wobble by ~10%,
/// and the gate-overhead ratios divide two of them.
const MEASURED_RUNS: usize = 5;

/// Run the serve-throughput sweep; emits `results/serve_throughput.csv` and
/// the machine-readable `BENCH_serve.json` perf trajectory at the repo
/// root. `OTAE_BENCH_SMOKE=1` runs a single 1×1 tick and skips the JSON.
pub fn run() {
    let smoke = smoke_mode();
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let capacity = gb_to_bytes(&trace, 10.0);
    let topologies: &[(usize, usize)] = if smoke { &TOPOLOGIES[..1] } else { &TOPOLOGIES };

    let mut table = Table::new(
        "serve throughput — sharded service, unthrottled replay (10 GB paper-equivalent)",
        &[
            "mode",
            "shards",
            "workers",
            "throughput_rps",
            "file_hit_rate",
            "file_write_rate",
            "p50_us",
            "p99_us",
            "p999_us",
            "swaps",
        ],
    );
    let mut json = BenchJson::new("serve_throughput");
    let mut throughput: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (mode_idx, mode) in [Mode::Original, Mode::Proposal].into_iter().enumerate() {
        for &(shards, workers) in topologies {
            let mut cfg = ServeConfig::new(PolicyKind::Lru, mode, capacity);
            cfg.shards = shards;
            cfg.workers = workers;
            cfg.trainer = TrainerMode::Background;
            let load = LoadConfig { clients: workers.min(4), target_qps: 0.0, duration: None };
            // One discarded warmup replay, then best-of-N measured replays.
            // The first replay at a topology pays one-time costs (page
            // faults, lazy allocations, branch-predictor training) that
            // earlier versions of this sweep charged entirely to whichever
            // rung ran first — the source of the old 8×8-faster-than-4×4
            // anomaly. Smoke mode keeps the single-run tick.
            let runs = if smoke { 1 } else { MEASURED_RUNS };
            if !smoke {
                let _ = serve_trace_with_index(&trace, &index, &cfg, &load);
            }
            let mut best: Option<(f64, otae_serve::ServeReport)> = None;
            for _ in 0..runs {
                let t0 = Instant::now();
                let r = serve_trace_with_index(&trace, &index, &cfg, &load);
                let wall = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                    best = Some((wall, r));
                }
            }
            let (wall, r) = best.expect("at least one measured run");
            json.stage(
                &format!("{}_{}x{}", mode.name().to_lowercase(), shards, workers),
                wall,
                r.throughput_rps,
            );
            throughput[mode_idx].push(r.throughput_rps);
            let s = &r.snapshot.stats;
            table.push_row(vec![
                mode.name().to_string(),
                shards.to_string(),
                workers.to_string(),
                format!("{:.0}", r.throughput_rps),
                f4(s.file_hit_rate()),
                f4(s.file_write_rate()),
                format!("{:.1}", r.latency_p50_us),
                format!("{:.1}", r.latency_p99_us),
                format!("{:.1}", r.latency_p999_us),
                r.model_swaps.to_string(),
            ]);
        }
    }
    // Headline metrics: how much the admission gate costs relative to the
    // admit-everything baseline at each topology, and the Proposal 8×8
    // trajectory against the number recorded when this benchmark landed.
    for (i, &(shards, workers)) in topologies.iter().enumerate() {
        let (orig, prop) = (throughput[0][i], throughput[1][i]);
        if prop > 0.0 {
            json.metric(&format!("gate_overhead_{shards}x{workers}"), orig / prop);
        }
    }
    if let Some(&prop_last) = throughput[1].last() {
        if topologies.len() == TOPOLOGIES.len() {
            json.metric("proposal_speedup_vs_pr1", prop_last / PR1_PROPOSAL_8X8_OPS);
            json.metric("compiled_speedup_vs_pr5", prop_last / PR5_PROPOSAL_8X8_OPS);
        }
    }
    table.emit("serve_throughput");
    // Merge rather than overwrite: the store experiment shares this
    // artifact, and regenerating only the serve sweep must not lose it.
    json.merge_write("BENCH_serve.json");
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{generate, TraceConfig};

    #[test]
    fn four_worker_topology_reports_throughput_and_p99() {
        let trace = generate(&TraceConfig { n_objects: 2_000, seed: 5, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let mut cfg = ServeConfig::new(
            PolicyKind::Lru,
            Mode::Proposal,
            (trace.unique_bytes() as f64 * 0.02) as u64,
        );
        cfg.shards = 4;
        cfg.workers = 4;
        cfg.trainer = TrainerMode::Background;
        let load = LoadConfig { clients: 2, target_qps: 0.0, duration: None };
        let r = serve_trace_with_index(&trace, &index, &cfg, &load);
        assert_eq!(r.replayed as usize, trace.len());
        assert!(r.throughput_rps > 0.0);
        assert!(r.latency_p99_us > 0.0);
    }
}

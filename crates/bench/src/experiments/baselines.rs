//! Extension experiment: ML admission vs the classic non-ML alternative.
//!
//! CDNs have long filtered "one-hit wonders" with cache-on-second-request:
//! a miss is admitted only when a bloom-filter doorkeeper has seen the
//! object before. This quantifies what the paper's classifier buys over
//! that baseline — the doorkeeper must *waste one miss per object* to learn
//! and cannot bypass objects whose next access lies beyond eviction.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};

/// Compare admission strategies across capacities (LRU replacement).
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let mut t = Table::new(
        "Admission baselines: ML classifier vs cache-on-second-request",
        &["cache (GB)", "admission", "hit rate", "file write rate", "latency (us)"],
    );
    for gb in [2.0, 6.0, 12.0, 20.0] {
        let cap = gb_to_bytes(&trace, gb);
        for (policy, mode, label) in [
            (PolicyKind::Lru, Mode::Original, "LRU, always admit"),
            (PolicyKind::TwoQ, Mode::Original, "2Q replacement (no admission)"),
            (PolicyKind::Lru, Mode::SecondHit, "LRU + second-hit doorkeeper"),
            (PolicyKind::Lru, Mode::Proposal, "LRU + ML classifier (paper)"),
            (PolicyKind::Lru, Mode::Ideal, "LRU + oracle"),
        ] {
            let r = run_with_index(&trace, &index, &RunConfig::new(policy, mode, cap));
            t.push_row(vec![
                format!("{gb}"),
                label.into(),
                f4(r.stats.file_hit_rate()),
                f4(r.stats.file_write_rate()),
                format!("{:.1}", r.mean_latency_us),
            ]);
        }
    }
    t.emit("ablation_baselines");
}

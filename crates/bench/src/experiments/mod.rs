//! One module per experiment; each exposes a `run()` that prints its tables
//! and writes CSVs into `results/`. The mapping to the paper's tables and
//! figures is documented in `DESIGN.md` §4.

pub mod ablations;
pub mod baselines;
pub mod cluster;
pub mod drift;
pub mod fig2;
pub mod fig5;
pub mod figures;
pub mod ftl_wear;
pub mod online;
pub mod policy_sweep;
pub mod serve;
pub mod store;
pub mod table1;
pub mod tails;
pub mod tiered;
pub mod trace_stats;
pub mod train;

//! Extension experiment: latency *tails* and cache warm-up.
//!
//! Figure 10 plots mean response time; production photo services are judged
//! by percentiles. The distribution is bimodal (SSD hit ≈ 100 µs vs HDD
//! miss ≈ 3 ms), so a percentile only moves once the hit rate crosses it:
//! admission control improves the mean and the lower percentiles, while the
//! p99 stays a miss for every policy at these hit rates — tail latency needs
//! a hit rate above 99 %, which no admission policy alone delivers. The warm-up table shows per-day hit rate: day 0 is cold for
//! everyone, and the Proposal's classifier additionally only comes online
//! after the first 05:00 training.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::pipeline::run_with_index;
use otae_core::reaccess::ReaccessIndex;
use otae_core::{Mode, PolicyKind, RunConfig};

/// Run the tail-latency and warm-up report.
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    let cap = gb_to_bytes(&trace, 6.0);

    let mut t = Table::new(
        "Latency distribution (LRU, 6GB-equiv): the tail view Figure 10 omits",
        &["admission", "hit rate", "mean (us)", "p25 (us)", "p50 (us)", "p99 (us)"],
    );
    let mut runs = Vec::new();
    for mode in [Mode::Original, Mode::SecondHit, Mode::Proposal, Mode::Ideal] {
        let r = run_with_index(&trace, &index, &RunConfig::new(PolicyKind::Lru, mode, cap));
        t.push_row(vec![
            mode.name().into(),
            f4(r.stats.file_hit_rate()),
            format!("{:.1}", r.mean_latency_us),
            format!("{:.1}", r.latency_p25_us),
            format!("{:.1}", r.latency_p50_us),
            format!("{:.1}", r.latency_p99_us),
        ]);
        runs.push(r);
    }
    t.emit("latency_tails");

    let mut w = Table::new(
        "Warm-up: per-day file hit rate (LRU, 6GB-equiv)",
        &["day", "Original", "SecondHit", "Proposal", "Ideal"],
    );
    let days = runs.iter().map(|r| r.per_day_hit_rate.len()).max().unwrap_or(0);
    for d in 0..days {
        let mut row = vec![d.to_string()];
        for r in &runs {
            row.push(f4(r.per_day_hit_rate.get(d).copied().unwrap_or(0.0)));
        }
        w.push_row(row);
    }
    w.emit("warmup_timeline");
}

//! Extension experiment: the paper's OC → DC production topology (§2.1)
//! with per-tier one-time-access-exclusion.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::reaccess::ReaccessIndex;
use otae_core::tiered::{run_tiered_with_index, TierConfig, TieredConfig};
use otae_core::{Mode, PolicyKind};
use otae_device::LatencyModel;

/// Run the tiered comparison: admission off / OC-only / DC-only / both.
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    // OC is an order of magnitude smaller than DC, as in production edge
    // caches; the WAN hop makes OC hits precious.
    let oc_cap = gb_to_bytes(&trace, 1.0);
    let dc_cap = gb_to_bytes(&trace, 10.0);

    let mut t = Table::new(
        "Tiered OC->DC cache (§2.1 topology): where to deploy the classifier",
        &[
            "OC admission",
            "DC admission",
            "OC hit",
            "combined hit",
            "backend rate",
            "latency (us)",
            "SSD GB written",
        ],
    );
    for (oc_mode, dc_mode) in [
        (Mode::Original, Mode::Original),
        (Mode::Proposal, Mode::Original),
        (Mode::Original, Mode::Proposal),
        (Mode::Proposal, Mode::Proposal),
        (Mode::Ideal, Mode::Ideal),
    ] {
        let cfg = TieredConfig {
            oc: TierConfig { policy: PolicyKind::Lru, mode: oc_mode, capacity: oc_cap },
            dc: TierConfig { policy: PolicyKind::Lru, mode: dc_mode, capacity: dc_cap },
            wan_hop_us: 10_000.0,
            latency: LatencyModel::default(),
        };
        let r = run_tiered_with_index(&trace, &index, &cfg);
        t.push_row(vec![
            oc_mode.name().into(),
            dc_mode.name().into(),
            f4(r.oc_hit_rate),
            f4(r.combined_hit_rate),
            f4(r.backend_fetch_rate),
            format!("{:.1}", r.mean_latency_us),
            format!("{:.2}", r.total_bytes_written as f64 / 1e9),
        ]);
    }
    t.emit("tiered_cache");
}

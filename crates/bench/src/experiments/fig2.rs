//! Figure 2: hit rate under different cache capacities for LRU, S3LRU, ARC,
//! LIRS and Belady (all with traditional always-admit).
//!
//! The paper's observations to reproduce: an inflection point X after which
//! Belady flattens; the three advanced algorithms beating LRU by only ~1 %;
//! the Belady gap shrinking from ~9 % at X to ~4 % at 4X.

use crate::common::{f4, gb_to_bytes, standard_trace, Table};
use otae_core::reaccess::ReaccessIndex;
use otae_core::sweep::{grid, sweep};
use otae_core::{Mode, PolicyKind, RunConfig};

const POLICIES: [PolicyKind; 5] =
    [PolicyKind::Lru, PolicyKind::S3Lru, PolicyKind::Arc, PolicyKind::Lirs, PolicyKind::Belady];

/// Run the capacity sweep and print the hit-rate matrix.
pub fn run() {
    let trace = standard_trace();
    let index = ReaccessIndex::build(&trace);
    // Wide sweep around the inflection: 1–64 paper-GB, doubling.
    let gbs = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let caps: Vec<u64> = gbs.iter().map(|&g| gb_to_bytes(&trace, g)).collect();
    let points = grid(&POLICIES, &[Mode::Original], &caps);
    let base = RunConfig::new(PolicyKind::Lru, Mode::Original, caps[0]);
    let results = sweep(&trace, &index, &points, &base, 0);

    let mut headers = vec!["capacity (GB)".to_string()];
    headers.extend(POLICIES.iter().map(|p| p.name().to_string()));
    let mut t = Table::new(
        "Figure 2: file hit rate vs cache capacity (always-admit)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (gi, &gb) in gbs.iter().enumerate() {
        let mut row = vec![format!("{gb}")];
        for (pi, _) in POLICIES.iter().enumerate() {
            let r = &results[pi * caps.len() + gi];
            row.push(f4(r.stats.file_hit_rate()));
        }
        t.push_row(row);
    }
    t.emit("fig2_capacity_sweep");

    // The paper's two observations, quantified.
    let hit = |policy: usize, cap: usize| results[policy * caps.len() + cap].stats.file_hit_rate();
    let mut obs = Table::new("Figure 2 observations", &["observation", "value"]);
    let adv_gain = (hit(1, 3) + hit(2, 3) + hit(3, 3)) / 3.0 - hit(0, 3);
    obs.push_row(vec![
        "advanced algorithms vs LRU at 8GB (paper ~1%)".into(),
        format!("{:+.2}%", adv_gain * 100.0),
    ]);
    obs.push_row(vec![
        "Belady - LRU gap at 8GB".into(),
        format!("{:.2}%", (hit(4, 3) - hit(0, 3)) * 100.0),
    ]);
    obs.push_row(vec![
        "Belady - LRU gap at 32GB (must shrink)".into(),
        format!("{:.2}%", (hit(4, 5) - hit(0, 5)) * 100.0),
    ]);
    obs.emit("fig2_observations");
}

//! §5.3.5 timing constants: the paper measures `t_classify = 0.4 µs` (tree
//! traversal + history table) and `t_query = 1 µs`. This bench verifies our
//! implementation is in the same order of magnitude.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use otae_core::{FeatureExtractor, HistoryTable, N_FEATURES};
use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
use otae_trace::{generate, ObjectId, TraceConfig};

fn trained_tree() -> DecisionTree {
    let mut data = Dataset::new(N_FEATURES);
    let mut state = 1u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f32) / (u32::MAX >> 2) as f32
    };
    for _ in 0..20_000 {
        let mut row = [0.0f32; N_FEATURES];
        for v in row.iter_mut() {
            *v = next();
        }
        let label = row[0] + 0.3 * row[4] + 0.2 * next() > 0.7;
        data.push(&row, label);
    }
    let mut tree = DecisionTree::new(TreeParams::default());
    tree.fit(&data);
    tree
}

fn bench_classify(c: &mut Criterion) {
    let tree = trained_tree();
    let row = [0.4f32; N_FEATURES];
    // t_classify: one tree prediction (paper: ~0.4 µs including table).
    c.bench_function("tree_predict (t_classify core)", |b| {
        b.iter(|| tree.predict(black_box(&row)))
    });

    let mut history = HistoryTable::new(4096);
    for i in 0..4096u32 {
        history.record_one_time(ObjectId(i), i as u64);
    }
    let mut i = 0u32;
    c.bench_function("history_table record+check", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            history.record_one_time(ObjectId(i % 10_000), i as u64);
            black_box(history.check_and_rectify(ObjectId((i * 7) % 10_000), i as u64, 1000))
        })
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let trace = generate(&TraceConfig { n_objects: 5_000, seed: 5, ..Default::default() });
    let mut fx = FeatureExtractor::new(&trace);
    let mut i = 0usize;
    c.bench_function("feature_extract+update", |b| {
        b.iter(|| {
            let req = &trace.requests[i % trace.len()];
            let f = fx.extract(black_box(&trace), req);
            fx.update(&trace, req);
            i += 1;
            black_box(f)
        })
    });
}

criterion_group!(benches, bench_classify, bench_feature_extraction);
criterion_main!(benches);

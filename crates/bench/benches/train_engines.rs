//! Split-engine comparison: exact sorted splitter vs histogram-binned
//! engine on the acceptance dataset (50 k rows × 8 features) and smaller
//! sizes. The binned engine must come out ≥ 3× faster at 50 k — the
//! `train_throughput` experiment records the same ratio machine-readably.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use otae_bench::experiments::train::synthetic_dataset;
use otae_ml::{Classifier, DecisionTree, SplitEngine, TreeParams};

fn fit_with(engine: SplitEngine, data: &otae_ml::Dataset) -> usize {
    let mut tree = DecisionTree::new(TreeParams { engine, cost_fp: 2.0, ..TreeParams::default() });
    tree.fit(data);
    tree.n_splits()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_engines");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let data = synthetic_dataset(n, 42);
        group.bench_function(format!("exact_{n}x8"), |b| {
            b.iter(|| fit_with(SplitEngine::Exact, black_box(&data)))
        });
        group.bench_function(format!("binned_{n}x8"), |b| {
            b.iter(|| fit_with(SplitEngine::default(), black_box(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

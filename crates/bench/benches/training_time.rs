//! Daily-training cost (§4.4.3: "the entire training procedure takes only a
//! few minutes" on a day of 144 k sampled records; our CART on the same
//! volume should be far below that).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use otae_core::daily::{train_tree, Sample};
use otae_core::N_FEATURES;

fn day_of_samples(n: usize) -> Vec<Sample> {
    let mut state = 7u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f32) / (u32::MAX >> 2) as f32
    };
    (0..n)
        .map(|i| {
            let mut features = [0.0f32; N_FEATURES];
            for v in features.iter_mut() {
                *v = next();
            }
            let one_time = features[0] + 0.4 * features[4] + 0.3 * next() > 0.8;
            Sample { ts: i as u64, features, one_time }
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("daily_training");
    group.sample_size(10);
    for n in [14_400usize, 144_000] {
        let samples = day_of_samples(n);
        group.bench_function(format!("cart_{n}_records"), |b| {
            b.iter(|| train_tree(black_box(&samples), 2.0, 30))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);

//! Segment-store operation latency: append batches at queue depths
//! {1, 16, 64}, indexed reads against a populated store, and a full
//! compaction pass over a churned device. Complements the
//! `store_throughput` experiment bin (which records the `store_*`
//! trajectory in `BENCH_serve.json`) with Criterion's statistical view.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use otae_serve::fill_payload;
use otae_store::{MemBackend, NoStoreFaults, SegmentStore, StoreConfig};
use std::sync::Arc;

const APPENDS_PER_ITER: usize = 1_000;
const KEYS: u64 = 256;

fn open_mem(queue_depth: usize, compact: bool, group_records: usize) -> SegmentStore {
    let cfg = StoreConfig {
        segment_bytes: 1 << 20,
        queue_depth,
        compact_trigger: if compact { Some(0.5) } else { None },
        group_records,
        ..StoreConfig::default()
    };
    let (store, _) = SegmentStore::open(Arc::new(MemBackend::new()), cfg, Arc::new(NoStoreFaults))
        .expect("open");
    store
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Put `n` deterministic records and flush — the measured unit of the
/// append benchmarks.
fn append_batch(store: &SegmentStore, n: usize) {
    let mut state = 0x5EEDu64;
    let mut buf = Vec::new();
    for _ in 0..n {
        let r = splitmix(&mut state);
        let key = r % KEYS;
        fill_payload(key, 64 + (r % 512) as usize, &mut buf);
        store.put(key, &buf).expect("put");
    }
    store.flush().expect("flush");
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_append_1k");
    group.sample_size(10);
    for qd in [1usize, 16, 64] {
        group.bench_function(BenchmarkId::new("queue_depth", qd), |b| {
            // The vendored criterion stub has no iter_batched: a fresh
            // store per iteration is built inside the measured closure
            // (open cost is constant across queue depths, so relative
            // numbers still isolate the queue).
            b.iter(|| {
                let store = open_mem(qd, false, 128);
                append_batch(&store, APPENDS_PER_ITER);
                black_box(store)
            })
        });
    }
    // Group-commit axis at the deepest queue: group of 1 reproduces the
    // per-record write path, larger groups amortize write + CRC cost.
    for group_records in [1usize, 16, 128] {
        group.bench_function(BenchmarkId::new("group_records", group_records), |b| {
            b.iter(|| {
                let store = open_mem(64, false, group_records);
                append_batch(&store, APPENDS_PER_ITER);
                black_box(store)
            })
        });
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let store = open_mem(64, false, 128);
    append_batch(&store, 10_000);
    let mut state = 0xBEEFu64;
    c.bench_function("store_get", |b| {
        b.iter(|| {
            let key = splitmix(&mut state) % KEYS;
            black_box(store.get(black_box(key)).expect("get"))
        })
    });
    // Allocation-free variant: one caller buffer reused across reads.
    let mut val = Vec::new();
    c.bench_function("store_get_into", |b| {
        b.iter(|| {
            let key = splitmix(&mut state) % KEYS;
            black_box(store.get_into(black_box(key), &mut val).expect("get_into"))
        })
    });
}

fn bench_compact(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_compact_pass");
    group.sample_size(10);
    group.bench_function("churned_10k", |b| {
        b.iter(|| {
            // Overwrite churn: ~40 versions per key leave most sealed
            // bytes dead, so a pass has real relocation work. Setup runs
            // inside the measured closure (no iter_batched in the
            // vendored criterion stub).
            let store = open_mem(64, false, 128);
            append_batch(&store, 10_000);
            black_box(store.compact().expect("compact"));
            black_box(store)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_append, bench_read, bench_compact);
criterion_main!(benches);

//! Compiled-inference microbench: the interpreted tree walk vs the
//! compiled level-synchronous branchless walk vs compiled scoring behind
//! the epoch-keyed decision memo, at the micro-batch sizes the serve
//! workers actually drain ({1, 8, 32, 128} rows).
//!
//! The three arms make the same admission decisions bit-for-bit (the
//! oracle and proptests enforce that); this bench measures what each
//! representation costs per verdict. `OTAE_BENCH_SMOKE=1` shrinks the
//! stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use otae_bench::common::smoke_mode;
use otae_core::N_FEATURES;
use otae_ml::{Classifier, CompiledTree, Dataset, DecisionTree, TreeParams};
use otae_serve::{feature_bits, DecisionCache, FeatureBits};
use otae_trace::ObjectId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

struct Workload {
    tree: DecisionTree,
    compiled: CompiledTree,
    /// Request stream over a bounded object population (repeats exist).
    objects: Vec<ObjectId>,
    /// One fixed-width row per request, as the shard scratch stages them.
    rows: Vec<[f32; N_FEATURES]>,
    /// Precomputed bit patterns, one per request.
    bits: Vec<FeatureBits>,
}

fn workload(n_requests: usize, n_objects: usize, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut train = Dataset::new(N_FEATURES);
    for _ in 0..4_000 {
        let mut row = [0.0f32; N_FEATURES];
        for v in row.iter_mut() {
            *v = rng.gen();
        }
        let label = row[0] + 0.5 * row[3] > 0.9;
        train.push(&row, label);
    }
    let mut tree = DecisionTree::new(TreeParams::default());
    tree.fit(&train);
    let compiled = CompiledTree::compile(&tree).expect("fitted tree compiles");

    let pool: Vec<[f32; N_FEATURES]> = (0..n_objects)
        .map(|_| {
            let mut row = [0.0f32; N_FEATURES];
            for v in row.iter_mut() {
                *v = rng.gen();
            }
            row
        })
        .collect();
    let mut objects = Vec::with_capacity(n_requests);
    let mut rows = Vec::with_capacity(n_requests);
    let mut bits = Vec::with_capacity(n_requests);
    for i in 0..n_requests {
        let obj = (i * i + i / 3) % n_objects;
        objects.push(ObjectId(obj as u32));
        rows.push(pool[obj]);
        bits.push(feature_bits(&pool[obj]));
    }
    Workload { tree, compiled, objects, rows, bits }
}

fn bench_compiled_inference(c: &mut Criterion) {
    let n_requests = if smoke_mode() { 1_024 } else { 16_384 };
    let w = workload(n_requests, 512, 42);
    let mut group = c.benchmark_group("compiled_inference");
    group.sample_size(10);

    for k in BATCH_SIZES {
        group.bench_function(format!("interpreted_b{k}"), |b| {
            // The reference arm: one pointer-chasing walk per row.
            b.iter(|| {
                let mut admitted = 0usize;
                for chunk in w.rows.chunks(k) {
                    for row in chunk {
                        if w.tree.score(black_box(row)) < 0.5 {
                            admitted += 1;
                        }
                    }
                }
                admitted
            })
        });
        group.bench_function(format!("compiled_b{k}"), |b| {
            let mut scores = Vec::with_capacity(k);
            b.iter(|| {
                let mut admitted = 0usize;
                for chunk in w.rows.chunks(k) {
                    scores.clear();
                    w.compiled.score_rows_fixed(black_box(chunk), &mut scores);
                    admitted += scores.iter().filter(|&&s| s < 0.5).count();
                }
                admitted
            })
        });
        group.bench_function(format!("compiled_memo_b{k}"), |b| {
            // The full shard resolve pass: memo lookups first, then one
            // compiled sweep over the batch's misses. The cache persists
            // across iterations, so after warm-up repeat objects answer
            // from the memo and only evicted ones pay the compiled walk.
            let mut cache = DecisionCache::new(1_024);
            cache.ensure_epoch(1);
            let mut miss_rows: Vec<[f32; N_FEATURES]> = Vec::with_capacity(k);
            let mut miss_idx: Vec<usize> = Vec::with_capacity(k);
            let mut scores: Vec<f32> = Vec::with_capacity(k);
            b.iter(|| {
                let mut admitted = 0usize;
                let mut start = 0;
                while start < w.objects.len() {
                    let end = (start + k).min(w.objects.len());
                    miss_rows.clear();
                    miss_idx.clear();
                    for i in start..end {
                        match cache.lookup(w.objects[i], &w.bits[i]) {
                            Some(v) => {
                                if !v {
                                    admitted += 1;
                                }
                            }
                            None => {
                                miss_idx.push(i);
                                miss_rows.push(w.rows[i]);
                            }
                        }
                    }
                    if !miss_idx.is_empty() {
                        scores.clear();
                        w.compiled.score_rows_fixed(black_box(&miss_rows), &mut scores);
                        for (&i, &s) in miss_idx.iter().zip(&scores) {
                            let v = s >= 0.5;
                            cache.insert(w.objects[i], w.bits[i], v);
                            if !v {
                                admitted += 1;
                            }
                        }
                    }
                    start = end;
                }
                admitted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compiled_inference);
criterion_main!(benches);

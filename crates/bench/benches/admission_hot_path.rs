//! Admission hot-path microbench: classifier verdict resolution per
//! request vs micro-batched (`score_rows` over a flat buffer) vs memoized
//! (the serve crate's epoch-keyed `DecisionCache`), at the worker batch
//! sizes the service actually drains ({1, 8, 32, 128}).
//!
//! The workload mirrors the serve hot path: a stream over a bounded object
//! population (so repeats exist for the memo to exploit), each object with
//! a stable feature row. `OTAE_BENCH_SMOKE=1` shrinks the stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use otae_bench::common::smoke_mode;
use otae_core::N_FEATURES;
use otae_ml::{Classifier, Dataset, DecisionTree, TreeParams};
use otae_serve::{feature_bits, DecisionCache, FeatureBits};
use otae_trace::ObjectId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

struct Workload {
    tree: DecisionTree,
    /// Request stream: (object, position of its feature row).
    objects: Vec<ObjectId>,
    /// Flat row-major feature buffer, one row per request.
    flat: Vec<f32>,
    /// Precomputed bit patterns, one per request.
    bits: Vec<FeatureBits>,
}

fn workload(n_requests: usize, n_objects: usize, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut train = Dataset::new(N_FEATURES);
    for _ in 0..4_000 {
        let mut row = [0.0f32; N_FEATURES];
        for v in row.iter_mut() {
            *v = rng.gen();
        }
        let label = row[0] + 0.5 * row[3] > 0.9;
        train.push(&row, label);
    }
    let mut tree = DecisionTree::new(TreeParams::default());
    tree.fit(&train);

    // Stable per-object rows, Zipf-ish repetition via modular striding.
    let rows: Vec<[f32; N_FEATURES]> = (0..n_objects)
        .map(|_| {
            let mut row = [0.0f32; N_FEATURES];
            for v in row.iter_mut() {
                *v = rng.gen();
            }
            row
        })
        .collect();
    let mut objects = Vec::with_capacity(n_requests);
    let mut flat = Vec::with_capacity(n_requests * N_FEATURES);
    let mut bits = Vec::with_capacity(n_requests);
    for i in 0..n_requests {
        let obj = (i * i + i / 3) % n_objects;
        objects.push(ObjectId(obj as u32));
        flat.extend_from_slice(&rows[obj]);
        bits.push(feature_bits(&rows[obj]));
    }
    Workload { tree, objects, flat, bits }
}

fn bench_hot_path(c: &mut Criterion) {
    let n_requests = if smoke_mode() { 1_024 } else { 16_384 };
    let w = workload(n_requests, 512, 42);
    let mut group = c.benchmark_group("admission_hot_path");
    group.sample_size(10);

    for k in BATCH_SIZES {
        group.bench_function(format!("per_request_b{k}"), |b| {
            // Per-request reference: one tree walk per request, batch size
            // only changes the chunking (it has no effect here — that is
            // the point of the comparison).
            b.iter(|| {
                let mut admitted = 0usize;
                for chunk in w.flat.chunks(k * N_FEATURES) {
                    for row in chunk.chunks_exact(N_FEATURES) {
                        if !w.tree.predict(black_box(row)) {
                            admitted += 1;
                        }
                    }
                }
                admitted
            })
        });
        group.bench_function(format!("batched_b{k}"), |b| {
            let mut scores = Vec::with_capacity(k);
            b.iter(|| {
                let mut admitted = 0usize;
                for chunk in w.flat.chunks(k * N_FEATURES) {
                    scores.clear();
                    w.tree.score_rows(black_box(chunk), N_FEATURES, &mut scores);
                    admitted += scores.iter().filter(|&&s| s < 0.5).count();
                }
                admitted
            })
        });
        group.bench_function(format!("memoized_b{k}"), |b| {
            // The serve shard's resolve pass: memo lookups first, then one
            // `score_rows` call over the batch's misses. The cache persists
            // across iterations, so after warm-up the repeat population
            // answers from the memo and only evicted objects pay tree walks.
            let mut cache = DecisionCache::new(1_024);
            cache.ensure_epoch(1);
            let mut rows: Vec<f32> = Vec::with_capacity(k * N_FEATURES);
            let mut miss_idx: Vec<usize> = Vec::with_capacity(k);
            let mut scores: Vec<f32> = Vec::with_capacity(k);
            b.iter(|| {
                let mut admitted = 0usize;
                let mut start = 0;
                while start < w.objects.len() {
                    let end = (start + k).min(w.objects.len());
                    rows.clear();
                    miss_idx.clear();
                    for i in start..end {
                        match cache.lookup(w.objects[i], &w.bits[i]) {
                            Some(v) => {
                                if !v {
                                    admitted += 1;
                                }
                            }
                            None => {
                                miss_idx.push(i);
                                rows.extend_from_slice(
                                    &w.flat[i * N_FEATURES..(i + 1) * N_FEATURES],
                                );
                            }
                        }
                    }
                    if !miss_idx.is_empty() {
                        scores.clear();
                        w.tree.score_rows(black_box(&rows), N_FEATURES, &mut scores);
                        for (&i, &s) in miss_idx.iter().zip(&scores) {
                            let v = s >= 0.5;
                            cache.insert(w.objects[i], w.bits[i], v);
                            if !v {
                                admitted += 1;
                            }
                        }
                    }
                    start = end;
                }
                admitted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);

//! Synthetic-workload generation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use otae_trace::{generate, sample_objects, TraceConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("generate_20k_objects", |b| {
        b.iter(|| {
            generate(black_box(&TraceConfig { n_objects: 20_000, seed: 42, ..Default::default() }))
        })
    });
    let trace = generate(&TraceConfig { n_objects: 20_000, seed: 42, ..Default::default() });
    group.bench_function("sample_1_in_100", |b| {
        b.iter(|| sample_objects(black_box(&trace), 0.01, 9))
    });
    group.bench_function("characterize", |b| b.iter(|| black_box(&trace).characterize()));
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);

//! Cache-operation throughput per replacement policy (t_query in §5.3.5 is
//! ~1 µs on the paper's hardware; ours should be comparable or better).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use otae_cache::{ArcCache, Cache, Evicted, Fifo, Lfu, Lirs, Lru, S3Lru};

/// Deterministic zipf-ish key stream.
fn keystream(n: usize) -> Vec<(u64, u64)> {
    let mut state = 0xDEADBEEFu64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (state >> 33) as f64 / (u32::MAX >> 1) as f64;
            // Approximate zipf by squashing the uniform sample.
            let key = (r * r * 10_000.0) as u64;
            (key, 32 * 1024)
        })
        .collect()
}

fn drive<C: Cache<u64>>(cache: &mut C, stream: &[(u64, u64)]) -> u64 {
    let mut evicted: Vec<Evicted<u64>> = Vec::new();
    let mut hits = 0u64;
    for (now, &(k, s)) in stream.iter().enumerate() {
        if cache.contains(&k) {
            cache.on_hit(&k, now as u64);
            hits += 1;
        } else {
            evicted.clear();
            cache.insert(k, s, now as u64, &mut evicted);
        }
    }
    hits
}

fn bench_policies(c: &mut Criterion) {
    let stream = keystream(100_000);
    let cap: u64 = 1000 * 32 * 1024; // ~1000 resident objects
    let mut group = c.benchmark_group("cache_100k_accesses");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("LRU", cap), |b| {
        b.iter(|| drive(&mut Lru::new(cap), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("FIFO", cap), |b| {
        b.iter(|| drive(&mut Fifo::new(cap), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("LFU", cap), |b| {
        b.iter(|| drive(&mut Lfu::new(cap), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("S3LRU", cap), |b| {
        b.iter(|| drive(&mut S3Lru::new(cap), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("ARC", cap), |b| {
        b.iter(|| drive(&mut ArcCache::new(cap), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("LIRS", cap), |b| {
        b.iter(|| drive(&mut Lirs::new(cap), black_box(&stream)))
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);

//! Property suite for the record codec, mirroring the hardening rules the
//! trace codec is held to: any payload round-trips bit-exactly, every
//! single-bit corruption is caught by one of the two checksums, truncation
//! at *every* byte offset is rejected (never a partial or garbage decode),
//! and bytes past the framed payload are never consumed.

use otae_store::{
    crc32, decode_record, encode_record, Record, RecordError, RecordKind, HEADER_LEN,
};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → decode is the identity, and the consumed length is exactly
    /// the encoded length.
    #[test]
    fn round_trip_is_exact(key in any::<u64>(), payload in arb_payload()) {
        let mut buf = Vec::new();
        let n = encode_record(key, RecordKind::Put, &payload, &mut buf);
        prop_assert_eq!(n, HEADER_LEN as u64 + payload.len() as u64);
        prop_assert_eq!(n as usize, buf.len());
        let (record, consumed) = decode_record(&buf).expect("clean record");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(
            record,
            Record { key, kind: RecordKind::Put, payload: &payload }
        );
    }

    /// Tombstones round-trip too (payload always empty).
    #[test]
    fn tombstone_round_trip(key in any::<u64>()) {
        let mut buf = Vec::new();
        let n = encode_record(key, RecordKind::Tombstone, &[], &mut buf);
        prop_assert_eq!(n, HEADER_LEN as u64);
        let (record, consumed) = decode_record(&buf).expect("clean tombstone");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(record.key, key);
        prop_assert_eq!(record.kind, RecordKind::Tombstone);
        prop_assert!(record.payload.is_empty());
    }

    /// Flipping any single bit anywhere in the record is detected: a
    /// header flip trips the header CRC (or a field validator under a
    /// forged CRC — but a flip cannot forge), a payload flip trips the
    /// payload CRC.
    #[test]
    fn any_single_bit_flip_is_detected(
        key in any::<u64>(),
        payload in arb_payload(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_record(key, RecordKind::Put, &payload, &mut buf);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= 1 << bit;
        let err = decode_record(&buf).expect_err("corrupted record must not decode");
        if pos < HEADER_LEN {
            // The header CRC covers bytes 0..17 and is stored at 17..21,
            // so a flip on either side of that line mismatches it.
            prop_assert_eq!(err, RecordError::BadHeaderCrc);
        } else {
            prop_assert_eq!(err, RecordError::BadPayloadCrc);
        }
    }

    /// Truncation at every byte offset short of the full record is
    /// rejected as Truncated or BadHeaderCrc (when the cut lands inside
    /// the header there are not enough bytes to even checksum) — never a
    /// successful decode, never a panic.
    #[test]
    fn truncation_at_every_offset_is_rejected(key in any::<u64>(), payload in arb_payload()) {
        let mut buf = Vec::new();
        let n = encode_record(key, RecordKind::Put, &payload, &mut buf) as usize;
        for cut in 0..n {
            let err = decode_record(&buf[..cut]).expect_err("truncated input must fail");
            prop_assert!(
                matches!(err, RecordError::Truncated { .. }),
                "cut at {} of {}: unexpected error {:?}", cut, n, err
            );
            if let RecordError::Truncated { needed, have } = err {
                prop_assert_eq!(have, cut as u64);
                prop_assert!(needed > have);
            }
        }
    }

    /// Trailing garbage after a record is never consumed: the decode
    /// returns exactly the framed length and leaves the rest alone, and
    /// random garbage does not itself decode as a record.
    #[test]
    fn trailing_garbage_is_left_alone(
        key in any::<u64>(),
        payload in arb_payload(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut buf = Vec::new();
        let n = encode_record(key, RecordKind::Put, &payload, &mut buf);
        buf.extend_from_slice(&garbage);
        let (record, consumed) = decode_record(&buf).expect("leading record intact");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(record.payload, &payload[..]);
        // The garbage is either too short, fails a checksum, or — with
        // probability ~2^-32 — decodes; what it must never do is panic or
        // read past its buffer. Treat an accidental decode as vanishingly
        // unlikely and assert failure.
        prop_assert!(decode_record(&buf[n as usize..]).is_err());
    }

    /// Two records appended back-to-back decode in sequence with exact
    /// framing (the log-scan invariant recovery depends on).
    #[test]
    fn back_to_back_records_frame_exactly(
        k1 in any::<u64>(), p1 in arb_payload(),
        k2 in any::<u64>(), p2 in arb_payload(),
    ) {
        let mut buf = Vec::new();
        let n1 = encode_record(k1, RecordKind::Put, &p1, &mut buf);
        let n2 = encode_record(k2, RecordKind::Put, &p2, &mut buf);
        let (r1, c1) = decode_record(&buf).expect("first");
        prop_assert_eq!(c1, n1);
        prop_assert_eq!(r1.key, k1);
        let (r2, c2) = decode_record(&buf[c1 as usize..]).expect("second");
        prop_assert_eq!(c2, n2);
        prop_assert_eq!(r2.key, k2);
        prop_assert_eq!(r2.payload, &p2[..]);
        prop_assert_eq!(c1 + c2, buf.len() as u64);
    }

    /// The CRC32 implementation matches its defining properties: stable
    /// under recomputation and sensitive to any flip.
    #[test]
    fn crc32_detects_flips(data in proptest::collection::vec(any::<u8>(), 1..256),
                           pos_seed in any::<u64>(), bit in 0u8..8) {
        let clean = crc32(&data);
        prop_assert_eq!(clean, crc32(&data), "crc must be a pure function");
        let mut bad = data.clone();
        let pos = (pos_seed % bad.len() as u64) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert_ne!(clean, crc32(&bad), "single-bit flip must change the crc");
    }
}

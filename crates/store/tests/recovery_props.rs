//! Property suite for recovery equivalence: the parallel segment scanner
//! must rebuild an index **byte-identical** to the sequential one across
//! random segment layouts, group-commit sizes, torn tails, compaction
//! relocations, and tombstone shadowing. Two devices are built
//! *independently* through the same deterministic op stream (never cloned
//! — opening a store repairs torn tails and creates a fresh active
//! segment, so a shared device would let the first open perturb the
//! second), then one is recovered with a single scan thread and the other
//! with several.

use otae_store::{
    Backend, MemBackend, NoStoreFaults, SegmentStore, StoreConfig, SEGMENT_HEADER_LEN,
};
use proptest::prelude::*;
use std::sync::Arc;

/// One workload step: `true` is a put of `len` deterministic bytes, keyed
/// into a small space so overwrites and tombstone shadowing are common.
type Op = (bool, u8, u16);

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((any::<bool>(), 0u8..24, 0u16..400), 1..120)
}

fn payload(key: u64, step: usize, len: u16) -> Vec<u8> {
    (0..len as usize).map(|i| (key as usize ^ step.wrapping_mul(31) ^ i) as u8).collect()
}

fn cfg(segment_bytes: u64, group_records: usize, recovery_threads: usize) -> StoreConfig {
    StoreConfig {
        segment_bytes,
        group_records,
        recovery_threads,
        queue_depth: 16,
        compact_trigger: None,
        ..StoreConfig::default()
    }
}

/// Drive `ops` (plus `compact_passes` explicit compactions) into a fresh
/// in-memory device and return it with the store dropped — the on-device
/// bytes a crashed process would leave behind, optionally with `chop`
/// bytes torn off the newest segment's tail.
fn build_device(
    ops: &[Op],
    segment_bytes: u64,
    group_records: usize,
    compact_passes: usize,
    chop: u64,
) -> MemBackend {
    let backend = MemBackend::new();
    let (store, _) = SegmentStore::open(
        Arc::new(backend.clone()),
        cfg(segment_bytes, group_records, 1),
        Arc::new(NoStoreFaults),
    )
    .expect("build open");
    for (step, &(is_put, key, len)) in ops.iter().enumerate() {
        if is_put {
            store.put(key as u64, &payload(key as u64, step, len)).expect("put");
        } else {
            store.remove(key as u64).expect("remove");
        }
    }
    store.flush().expect("flush");
    for _ in 0..compact_passes {
        store.compact().expect("compact");
    }
    drop(store);

    if chop > 0 {
        let segs = backend.list().expect("list");
        if let Some(&newest) = segs.iter().max() {
            let len = backend.len(newest).expect("len");
            let cut = chop.min(len.saturating_sub(SEGMENT_HEADER_LEN));
            backend.truncate(newest, len - cut).expect("tear tail");
        }
    }
    backend
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential (1 thread) and parallel (4 threads) recovery over
    /// identical devices produce identical reports, identical live
    /// indexes, and identical readable bytes.
    #[test]
    fn parallel_recovery_is_byte_identical_to_sequential(
        ops in arb_ops(),
        segment_bytes in 400u64..4_000,
        group_records in 1usize..33,
        compact_passes in 0usize..3,
        chop in 0u64..600,
    ) {
        let seq_dev = build_device(&ops, segment_bytes, group_records, compact_passes, chop);
        let par_dev = build_device(&ops, segment_bytes, group_records, compact_passes, chop);

        let (seq_store, seq_report) = SegmentStore::open(
            Arc::new(seq_dev.clone()),
            cfg(segment_bytes, group_records, 1),
            Arc::new(NoStoreFaults),
        ).expect("sequential recovery");
        let (par_store, par_report) = SegmentStore::open(
            Arc::new(par_dev.clone()),
            cfg(segment_bytes, group_records, 4),
            Arc::new(NoStoreFaults),
        ).expect("parallel recovery");

        prop_assert_eq!(seq_report, par_report, "recovery reports must match");

        let seq_entries = seq_store.live_entries();
        let par_entries = par_store.live_entries();
        prop_assert_eq!(
            &seq_entries, &par_entries,
            "live index (keys and locations) must be byte-identical"
        );

        // The indexes agree on *where* records live; confirm they agree on
        // the bytes too by reading every live key through both stores.
        for &(key, _) in &seq_entries {
            let a = seq_store.get(key).expect("seq get");
            let b = par_store.get(key).expect("par get");
            prop_assert_eq!(a, b, "payload mismatch for key {}", key);
        }
    }

    /// Thread-count sweep: every thread count from 1 to 8 (more threads
    /// than segments included) rebuilds the same index.
    #[test]
    fn any_thread_count_recovers_the_same_index(
        ops in arb_ops(),
        segment_bytes in 400u64..2_000,
    ) {
        let reference = {
            let dev = build_device(&ops, segment_bytes, 8, 0, 0);
            let (store, report) = SegmentStore::open(
                Arc::new(dev),
                cfg(segment_bytes, 8, 1),
                Arc::new(NoStoreFaults),
            ).expect("reference recovery");
            (report, store.live_entries())
        };
        for threads in 2usize..9 {
            let dev = build_device(&ops, segment_bytes, 8, 0, 0);
            let (store, report) = SegmentStore::open(
                Arc::new(dev),
                cfg(segment_bytes, 8, threads),
                Arc::new(NoStoreFaults),
            ).expect("sweep recovery");
            prop_assert_eq!(&reference.0, &report, "report differs at {} threads", threads);
            prop_assert_eq!(
                &reference.1, &store.live_entries(),
                "index differs at {} threads", threads
            );
        }
    }
}

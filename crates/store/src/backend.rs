//! Segment storage backends: where segment bytes physically live.
//!
//! Two implementations ship:
//!
//! - [`FileBackend`] — real files under a root directory, hash-prefixed
//!   into 256 subdirectories (`<root>/<xx>/seg-<id>.seg`) so a large store
//!   never piles every segment into one directory.
//! - [`MemBackend`] — an `Arc`-shared in-memory map with identical
//!   semantics. Because the bytes live in the shared handle rather than the
//!   [`SegmentStore`](crate::SegmentStore), a harness can "crash" a store
//!   (drop it mid-write) and reopen the same backend to exercise the
//!   recovery scan deterministically, with no filesystem, wall clock, or
//!   entropy involved.

use crate::handles::HandleCache;
use crate::StoreError;
use otae_fxhash::FxHashMap;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Identifier of one segment file (monotonically increasing).
pub type SegmentId = u32;

/// Byte-level operations on segment files. Implementations must be safe to
/// call concurrently (append from the writer thread, reads from shard
/// threads).
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Create an empty segment. Fails if it already exists.
    fn create(&self, seg: SegmentId) -> Result<(), StoreError>;
    /// Append bytes to a segment's tail.
    fn append(&self, seg: SegmentId, data: &[u8]) -> Result<(), StoreError>;
    /// Read `len` bytes at `offset`.
    fn read_at(&self, seg: SegmentId, offset: u64, len: usize) -> Result<Vec<u8>, StoreError>;
    /// Read `len` bytes at `offset` into `buf` (cleared first). The
    /// default delegates to [`Backend::read_at`]; backends override it to
    /// serve the hot read path without a per-call allocation.
    fn read_into(
        &self,
        seg: SegmentId,
        offset: u64,
        len: usize,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let bytes = self.read_at(seg, offset, len)?;
        buf.clear();
        buf.extend_from_slice(&bytes);
        Ok(())
    }
    /// Read a whole segment (recovery / compaction scans).
    fn read_all(&self, seg: SegmentId) -> Result<Vec<u8>, StoreError>;
    /// Current length of a segment in bytes.
    fn len(&self, seg: SegmentId) -> Result<u64, StoreError>;
    /// Truncate a segment to `len` bytes (recovery repair, fault injection).
    fn truncate(&self, seg: SegmentId, len: u64) -> Result<(), StoreError>;
    /// Delete a segment (compaction reclaim).
    fn delete(&self, seg: SegmentId) -> Result<(), StoreError>;
    /// All existing segment ids, sorted ascending.
    fn list(&self) -> Result<Vec<SegmentId>, StoreError>;
}

/// In-memory backend; clone the handle to share the same "device".
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    segments: Arc<Mutex<FxHashMap<SegmentId, Vec<u8>>>>,
}

impl MemBackend {
    /// Fresh empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all segments (test/diagnostic helper).
    pub fn total_bytes(&self) -> u64 {
        self.segments.lock().values().map(|v| v.len() as u64).sum()
    }
}

impl Backend for MemBackend {
    fn create(&self, seg: SegmentId) -> Result<(), StoreError> {
        let mut map = self.segments.lock();
        if map.contains_key(&seg) {
            return Err(StoreError::Corrupt(format!("segment {seg} already exists")));
        }
        map.insert(seg, Vec::new());
        Ok(())
    }

    fn append(&self, seg: SegmentId, data: &[u8]) -> Result<(), StoreError> {
        let mut map = self.segments.lock();
        match map.get_mut(&seg) {
            Some(bytes) => {
                bytes.extend_from_slice(data);
                Ok(())
            }
            None => Err(StoreError::MissingSegment(seg)),
        }
    }

    fn read_at(&self, seg: SegmentId, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let map = self.segments.lock();
        let bytes = map.get(&seg).ok_or(StoreError::MissingSegment(seg))?;
        let end = offset
            .checked_add(len as u64)
            .ok_or_else(|| StoreError::Corrupt("read range overflows".into()))?;
        if end > bytes.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "read past end of segment {seg}: {end} > {}",
                bytes.len()
            )));
        }
        Ok(bytes[offset as usize..end as usize].to_vec())
    }

    fn read_into(
        &self,
        seg: SegmentId,
        offset: u64,
        len: usize,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let map = self.segments.lock();
        let bytes = map.get(&seg).ok_or(StoreError::MissingSegment(seg))?;
        let end = offset
            .checked_add(len as u64)
            .ok_or_else(|| StoreError::Corrupt("read range overflows".into()))?;
        if end > bytes.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "read past end of segment {seg}: {end} > {}",
                bytes.len()
            )));
        }
        buf.clear();
        buf.extend_from_slice(&bytes[offset as usize..end as usize]);
        Ok(())
    }

    fn read_all(&self, seg: SegmentId) -> Result<Vec<u8>, StoreError> {
        let map = self.segments.lock();
        map.get(&seg).cloned().ok_or(StoreError::MissingSegment(seg))
    }

    fn len(&self, seg: SegmentId) -> Result<u64, StoreError> {
        let map = self.segments.lock();
        map.get(&seg).map(|b| b.len() as u64).ok_or(StoreError::MissingSegment(seg))
    }

    fn truncate(&self, seg: SegmentId, len: u64) -> Result<(), StoreError> {
        let mut map = self.segments.lock();
        let bytes = map.get_mut(&seg).ok_or(StoreError::MissingSegment(seg))?;
        if len < bytes.len() as u64 {
            bytes.truncate(len as usize);
        }
        Ok(())
    }

    fn delete(&self, seg: SegmentId) -> Result<(), StoreError> {
        let mut map = self.segments.lock();
        map.remove(&seg).map(|_| ()).ok_or(StoreError::MissingSegment(seg))
    }

    fn list(&self) -> Result<Vec<SegmentId>, StoreError> {
        let map = self.segments.lock();
        let mut ids: Vec<SegmentId> = map.keys().copied().collect();
        ids.sort_unstable();
        Ok(ids)
    }
}

/// Real-file backend rooted at a directory, with segments hash-prefixed
/// into 256 two-hex-digit subdirectories. Hot paths run over cached
/// per-segment handles: reads are positioned (`pread`-style, no seek
/// syscall, no shared cursor) and appends reuse one `O_APPEND` handle
/// instead of reopening the file per write group.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
    handles: HandleCache,
}

/// Cap on distinct segments with cached handles; beyond this the cache
/// resets wholesale (segment populations stay far below this in practice).
const MAX_CACHED_SEGMENTS: usize = 256;

/// Positioned read of exactly `buf.len()` bytes at `offset`, leaving the
/// handle's cursor untouched so concurrent readers never interleave.
#[cfg(unix)]
fn pread_exact(f: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, offset)
}

/// Portable fallback: seek + read on a borrowed handle. Only reached off
/// unix; the store's `io` lock already serializes reads against segment
/// deletion, and `&File` reads are independent per call.
#[cfg(not(unix))]
fn pread_exact(f: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = f;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// SplitMix64 finalizer — the same mix the serve layer shards with, reused
/// here to spread sequential segment ids across prefix directories.
fn mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FileBackend {
    /// Open (creating the root directory if needed).
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root, handles: HandleCache::new(MAX_CACHED_SEGMENTS) })
    }

    /// Root directory of this backend.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path_of(&self, seg: SegmentId) -> PathBuf {
        let prefix = (mix(seg as u64) & 0xFF) as u8;
        self.root.join(format!("{prefix:02x}")).join(format!("seg-{seg:08}.seg"))
    }

    fn open_existing(&self, seg: SegmentId) -> Result<File, StoreError> {
        match File::open(self.path_of(seg)) {
            Ok(f) => Ok(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::MissingSegment(seg))
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    fn open_append(&self, seg: SegmentId) -> Result<File, StoreError> {
        match OpenOptions::new().append(true).open(self.path_of(seg)) {
            Ok(f) => Ok(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::MissingSegment(seg))
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }
}

impl Backend for FileBackend {
    fn create(&self, seg: SegmentId) -> Result<(), StoreError> {
        let path = self.path_of(seg);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // A fresh segment id must never serve bytes through handles cached
        // for a previously deleted incarnation.
        self.handles.invalidate(seg);
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(StoreError::Corrupt(format!("segment {seg} already exists")))
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    fn append(&self, seg: SegmentId, data: &[u8]) -> Result<(), StoreError> {
        let f = self.handles.append_handle(seg, || self.open_append(seg))?;
        // O_APPEND positions every write at the tail, so the shared handle
        // needs no cursor management.
        (&*f).write_all(data)?;
        Ok(())
    }

    fn read_at(&self, seg: SegmentId, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let mut buf = Vec::new();
        self.read_into(seg, offset, len, &mut buf)?;
        Ok(buf)
    }

    fn read_into(
        &self,
        seg: SegmentId,
        offset: u64,
        len: usize,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let f = self.handles.read_handle(seg, || self.open_existing(seg))?;
        if buf.len() < len {
            buf.resize(len, 0);
        } else {
            buf.truncate(len);
        }
        pread_exact(&f, offset, buf)?;
        Ok(())
    }

    fn read_all(&self, seg: SegmentId) -> Result<Vec<u8>, StoreError> {
        let f = self.handles.read_handle(seg, || self.open_existing(seg))?;
        let len = f.metadata()?.len();
        let mut buf = vec![0u8; len as usize];
        pread_exact(&f, 0, &mut buf)?;
        Ok(buf)
    }

    fn len(&self, seg: SegmentId) -> Result<u64, StoreError> {
        let f = self.handles.read_handle(seg, || self.open_existing(seg))?;
        Ok(f.metadata()?.len())
    }

    fn truncate(&self, seg: SegmentId, len: u64) -> Result<(), StoreError> {
        let path = self.path_of(seg);
        let f = match OpenOptions::new().write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingSegment(seg))
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        if f.metadata()?.len() > len {
            f.set_len(len)?;
        }
        Ok(())
    }

    fn delete(&self, seg: SegmentId) -> Result<(), StoreError> {
        // Drop cached handles first so no later lookup revives the dead
        // segment through a stale `Arc<File>`.
        self.handles.invalidate(seg);
        match fs::remove_file(self.path_of(seg)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::MissingSegment(seg))
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    fn list(&self) -> Result<Vec<SegmentId>, StoreError> {
        let mut ids = Vec::new();
        for prefix in fs::read_dir(&self.root)? {
            let prefix = prefix?;
            if !prefix.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(prefix.path())? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(id) = name.strip_prefix("seg-").and_then(|n| n.strip_suffix(".seg"))
                else {
                    continue;
                };
                if let Ok(id) = id.parse::<SegmentId>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn Backend) {
        backend.create(3).unwrap();
        assert!(backend.create(3).is_err(), "double create must fail");
        backend.append(3, b"hello ").unwrap();
        backend.append(3, b"world").unwrap();
        assert_eq!(backend.len(3).unwrap(), 11);
        assert_eq!(backend.read_at(3, 6, 5).unwrap(), b"world");
        assert_eq!(backend.read_all(3).unwrap(), b"hello world");
        assert!(backend.read_at(3, 8, 10).is_err(), "read past end must fail");

        backend.create(1).unwrap();
        backend.create(10).unwrap();
        assert_eq!(backend.list().unwrap(), vec![1, 3, 10]);

        backend.truncate(3, 5).unwrap();
        assert_eq!(backend.read_all(3).unwrap(), b"hello");
        backend.truncate(3, 100).unwrap(); // growing truncate is a no-op
        assert_eq!(backend.len(3).unwrap(), 5);

        backend.delete(1).unwrap();
        assert!(backend.delete(1).is_err());
        assert!(backend.append(1, b"x").is_err());
        assert_eq!(backend.list().unwrap(), vec![3, 10]);
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn file_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("otae-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = FileBackend::new(&dir).unwrap();
        exercise(&backend);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backend_clones_share_the_device() {
        let a = MemBackend::new();
        let b = a.clone();
        a.create(0).unwrap();
        a.append(0, b"persisted").unwrap();
        drop(a); // "crash": the handle dies, the device survives
        assert_eq!(b.read_all(0).unwrap(), b"persisted");
    }
}

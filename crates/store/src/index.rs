//! The in-memory key index and per-segment liveness accounting.
//!
//! The index is the single source of truth for "which bytes are live": a
//! key maps to exactly one `(segment, offset, len)` location, and every
//! insert/remove keeps the owning segments' live-byte counters in step, so
//! compaction can pick its victim (the *deadest* sealed segment — lowest
//! live fraction) in O(segments) with no disk scan.

use crate::backend::SegmentId;
use otae_fxhash::FxHashMap;

/// Where a key's current record lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Owning segment.
    pub segment: SegmentId,
    /// Byte offset of the record header within the segment.
    pub offset: u64,
    /// Total encoded record length (header + payload).
    pub len: u64,
}

/// Per-segment byte accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Bytes appended to the segment (records only, excluding the segment
    /// header).
    pub total_bytes: u64,
    /// Bytes belonging to records the index still points at.
    pub live_bytes: u64,
    /// Records appended (puts + tombstones).
    pub records: u64,
    /// Whether the segment is sealed (no longer the append target).
    pub sealed: bool,
}

/// Key → location map plus segment liveness and on-disk put counts.
#[derive(Debug, Default)]
pub struct StoreIndex {
    entries: FxHashMap<u64, Location>,
    segments: FxHashMap<SegmentId, SegmentInfo>,
    /// Put records physically present per key, across *all* segments —
    /// including stale versions the index no longer points at. Compaction
    /// uses this to decide whether a tombstone still shadows an older put
    /// in some other segment and must be rewritten, or can be dropped.
    puts_on_disk: FxHashMap<u64, u32>,
}

impl StoreIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live key count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total live bytes across all segments.
    pub fn live_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.live_bytes).sum()
    }

    /// Total appended bytes across all tracked segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.total_bytes).sum()
    }

    /// Location of a key's current record.
    pub fn get(&self, key: u64) -> Option<Location> {
        self.entries.get(&key).copied()
    }

    /// Register a segment (idempotent).
    pub fn add_segment(&mut self, seg: SegmentId) {
        self.segments.entry(seg).or_default();
    }

    /// Mark a segment sealed (eligible as a compaction victim).
    pub fn seal_segment(&mut self, seg: SegmentId) {
        self.segments.entry(seg).or_default().sealed = true;
    }

    /// Account a put record appended at `loc` and point the key at it.
    /// Any previous location's bytes go dead.
    pub fn apply_put(&mut self, key: u64, loc: Location) {
        let info = self.segments.entry(loc.segment).or_default();
        info.total_bytes += loc.len;
        info.records += 1;
        info.live_bytes += loc.len;
        *self.puts_on_disk.entry(key).or_insert(0) += 1;
        if let Some(old) = self.entries.insert(key, loc) {
            if let Some(info) = self.segments.get_mut(&old.segment) {
                info.live_bytes = info.live_bytes.saturating_sub(old.len);
            }
        }
    }

    /// Account a tombstone record of `len` bytes appended to `seg` and
    /// remove the key. Tombstone bytes are dead on arrival — they are never
    /// pointed at by the index — which makes delete-heavy segments
    /// naturally attractive compaction victims.
    pub fn apply_tombstone(&mut self, key: u64, seg: SegmentId, len: u64) {
        let info = self.segments.entry(seg).or_default();
        info.total_bytes += len;
        info.records += 1;
        if let Some(old) = self.entries.remove(&key) {
            if let Some(info) = self.segments.get_mut(&old.segment) {
                info.live_bytes = info.live_bytes.saturating_sub(old.len);
            }
        }
    }

    /// Re-point a key at a rewritten location (compaction). Only moves the
    /// key if it still points at `from` — a concurrent newer put wins.
    pub fn relocate(&mut self, key: u64, from: Location, to: Location) -> bool {
        match self.entries.get_mut(&key) {
            Some(cur) if *cur == from => {
                *cur = to;
                if let Some(info) = self.segments.get_mut(&from.segment) {
                    info.live_bytes = info.live_bytes.saturating_sub(from.len);
                }
                true
            }
            _ => false,
        }
    }

    /// Drop a segment's accounting after compaction deleted it, adjusting
    /// the on-disk put counts by `puts_in_segment` (key → count scanned
    /// from the segment during the rewrite pass).
    pub fn forget_segment(&mut self, seg: SegmentId, puts_in_segment: &FxHashMap<u64, u32>) {
        self.segments.remove(&seg);
        for (&key, &n) in puts_in_segment {
            if let Some(count) = self.puts_on_disk.get_mut(&key) {
                *count = count.saturating_sub(n);
                if *count == 0 {
                    self.puts_on_disk.remove(&key);
                }
            }
        }
    }

    /// Put records physically on disk for `key` (all versions).
    pub fn puts_on_disk(&self, key: u64) -> u32 {
        self.puts_on_disk.get(&key).copied().unwrap_or(0)
    }

    /// Accounting for one segment.
    pub fn segment_info(&self, seg: SegmentId) -> Option<SegmentInfo> {
        self.segments.get(&seg).copied()
    }

    /// Number of tracked segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The sealed segment with the lowest live fraction, if any sealed
    /// segment exists. Ties break toward the lowest id so victim selection
    /// is deterministic.
    pub fn deadest_segment(&self) -> Option<(SegmentId, SegmentInfo)> {
        self.segments
            .iter()
            .filter(|(_, info)| info.sealed)
            .min_by(|(ida, a), (idb, b)| {
                // live/total compared as cross-multiplied integers: no
                // float, no divide-by-zero (empty sealed segments sort
                // first, as fully dead).
                (a.live_bytes * b.total_bytes.max(1))
                    .cmp(&(b.live_bytes * a.total_bytes.max(1)))
                    .then(ida.cmp(idb))
            })
            .map(|(&id, &info)| (id, info))
    }

    /// Dead bytes across sealed segments (reclaimable by compaction).
    pub fn sealed_dead_bytes(&self) -> u64 {
        self.segments
            .values()
            .filter(|s| s.sealed)
            .map(|s| s.total_bytes.saturating_sub(s.live_bytes))
            .sum()
    }

    /// Sorted live entries `(key, payload location)` — the deterministic
    /// digest the recovery oracle compares against acknowledged writes.
    pub fn live_entries(&self) -> Vec<(u64, Location)> {
        let mut v: Vec<(u64, Location)> = self.entries.iter().map(|(&k, &l)| (k, l)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(segment: SegmentId, offset: u64, len: u64) -> Location {
        Location { segment, offset, len }
    }

    #[test]
    fn puts_track_liveness_and_displacement() {
        let mut ix = StoreIndex::new();
        ix.add_segment(0);
        ix.apply_put(1, loc(0, 0, 100));
        ix.apply_put(2, loc(0, 100, 50));
        assert_eq!(ix.live_bytes(), 150);
        // Overwrite key 1 in segment 1: segment 0's copy goes dead.
        ix.apply_put(1, loc(1, 0, 80));
        assert_eq!(ix.segment_info(0).unwrap().live_bytes, 50);
        assert_eq!(ix.segment_info(1).unwrap().live_bytes, 80);
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.puts_on_disk(1), 2);
    }

    #[test]
    fn tombstones_kill_liveness_but_occupy_bytes() {
        let mut ix = StoreIndex::new();
        ix.apply_put(7, loc(0, 0, 100));
        ix.apply_tombstone(7, 0, 21);
        assert_eq!(ix.len(), 0);
        let info = ix.segment_info(0).unwrap();
        assert_eq!(info.total_bytes, 121);
        assert_eq!(info.live_bytes, 0);
        assert_eq!(ix.puts_on_disk(7), 1, "the dead put still exists on disk");
    }

    #[test]
    fn deadest_segment_prefers_lowest_live_fraction() {
        let mut ix = StoreIndex::new();
        ix.apply_put(1, loc(0, 0, 100)); // seg 0: 100/100 live
        ix.apply_put(2, loc(1, 0, 100));
        ix.apply_put(3, loc(1, 100, 100));
        ix.apply_put(2, loc(2, 0, 100)); // seg 1 drops to 100/200 live
        ix.seal_segment(0);
        ix.seal_segment(1);
        // Seg 2 is unsealed (active) and never a victim.
        let (victim, info) = ix.deadest_segment().unwrap();
        assert_eq!(victim, 1);
        assert_eq!(info.live_bytes, 100);
        assert_eq!(ix.sealed_dead_bytes(), 100);
    }

    #[test]
    fn relocate_respects_newer_puts() {
        let mut ix = StoreIndex::new();
        let old = loc(0, 0, 100);
        ix.apply_put(1, old);
        // A newer put lands before the compactor gets to the key.
        ix.apply_put(1, loc(2, 0, 90));
        assert!(!ix.relocate(1, old, loc(3, 0, 100)), "stale relocation must lose");
        assert_eq!(ix.get(1).unwrap().segment, 2);
    }
}

//! The group-commit staging buffer.
//!
//! The writer thread stages encoded records contiguously here and lands
//! the whole group with **one** backend append and **one** index-lock
//! pass, instead of a syscall + lock round-trip per record. Records keep
//! their staging order, so every staged record's final on-disk location is
//! known at stage time: the group always lands at the current active
//! segment's tail, and `buf_offset` is the record's displacement within
//! the group.

use crate::index::Location;
use crate::record::{encode_record, RecordKind};

/// What a staged record is, beyond its wire bytes: host traffic (the
/// fault-seam clock ticks once per host record) or a compaction rewrite
/// (no seam, no ack, counted as GC bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StagedKind {
    /// A caller put or remove: seam-clocked, acked after the group lands.
    Host,
    /// A live put rewritten out of a compaction victim; `from` is the
    /// victim location the index relocation supersedes at flush time.
    GcPut {
        /// Victim location this rewrite replaces.
        from: Location,
    },
    /// A still-shadowing tombstone rewritten out of a victim (appended,
    /// never indexed — tombstone bytes are dead on arrival).
    GcTombstone,
}

/// One record staged in the group, with enough metadata to index and
/// account for it after the group's single append lands.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Staged {
    /// Record key.
    pub key: u64,
    /// Put or tombstone.
    pub kind: RecordKind,
    /// Byte offset of this record within the group buffer.
    pub buf_offset: u64,
    /// Encoded record length (header + payload).
    pub len: u64,
    /// Host vs. GC provenance.
    pub meta: StagedKind,
}

impl Staged {
    /// Whether this record is compaction traffic (no fault seam, no ack).
    pub fn is_gc(&self) -> bool {
        !matches!(self.meta, StagedKind::Host)
    }
}

/// Contiguous encode buffer + per-record metadata for one write group.
/// Cleared (capacity kept) after each flush, so the steady-state append
/// path allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct GroupBuffer {
    buf: Vec<u8>,
    staged: Vec<Staged>,
}

impl GroupBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode one record onto the group's tail; returns its encoded
    /// length.
    pub fn stage(&mut self, key: u64, kind: RecordKind, payload: &[u8], meta: StagedKind) -> u64 {
        let buf_offset = self.buf.len() as u64;
        let len = encode_record(key, kind, payload, &mut self.buf);
        self.staged.push(Staged { key, kind, buf_offset, len, meta });
        len
    }

    /// Total staged bytes.
    pub fn bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Staged record count.
    pub fn records(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// The group's wire bytes (all records, in staging order).
    pub fn data(&self) -> &[u8] {
        &self.buf
    }

    /// Per-record metadata, in staging order.
    pub fn staged(&self) -> &[Staged] {
        &self.staged
    }

    /// Drop the staged group, keeping allocations for the next one.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.staged.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{decode_record, HEADER_LEN};

    #[test]
    fn staged_records_decode_back_at_their_offsets() {
        let mut g = GroupBuffer::new();
        g.stage(1, RecordKind::Put, b"abc", StagedKind::Host);
        g.stage(2, RecordKind::Tombstone, &[], StagedKind::Host);
        g.stage(3, RecordKind::Put, b"defgh", StagedKind::Host);
        assert_eq!(g.records(), 3);
        assert_eq!(g.bytes(), 3 * HEADER_LEN as u64 + 3 + 5);
        for s in g.staged() {
            let (rec, consumed) = decode_record(&g.data()[s.buf_offset as usize..]).unwrap();
            assert_eq!(rec.key, s.key);
            assert_eq!(rec.kind, s.kind);
            assert_eq!(consumed, s.len);
        }
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.bytes(), 0);
    }
}

//! The segment store proper: a bounded-queue background writer, an
//! in-memory index rebuilt by a recovery scan, and deadest-first
//! compaction that reports rewritten bytes as measured write
//! amplification.

use crate::backend::{Backend, SegmentId};
use crate::fault::StoreFaultPlan;
use crate::index::{Location, StoreIndex};
use crate::intake::Intake;
use crate::record::{decode_record, RecordKind, MAX_PAYLOAD};
use crate::write_buffer::{GroupBuffer, StagedKind};
use crossbeam::channel::{bounded, Receiver, Sender};
use otae_device::WearLedger;
use otae_fxhash::FxHashMap;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Magic + version prefix of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"OSEG";
/// On-disk format version.
pub const SEGMENT_VERSION: u16 = 1;
/// Bytes of segment header preceding the first record.
pub const SEGMENT_HEADER_LEN: u64 = 6;

/// Store failure modes.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// On-disk state that violates the format (bad magic, impossible
    /// offsets, mid-log corruption).
    Corrupt(String),
    /// A segment the index or a scan expected is gone.
    MissingSegment(SegmentId),
    /// The writer thread crashed (injected fault or unrecoverable backend
    /// error); the store accepts no further writes.
    Crashed,
    /// Payload exceeds the per-record cap.
    PayloadTooLarge(u64),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
            StoreError::MissingSegment(s) => write!(f, "missing segment {s}"),
            StoreError::Crashed => write!(f, "store writer crashed; no further writes accepted"),
            StoreError::PayloadTooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds cap {MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Seal the active segment and roll to a new one once its record bytes
    /// reach this threshold.
    pub segment_bytes: u64,
    /// Capacity of the command intake between callers and the writer
    /// thread — the explicit backpressure bound: a caller blocks while
    /// this many commands sit staged and unstolen (otae-lint:
    /// bounded-channel; the wake channel beside the intake is
    /// `bounded(1)`).
    pub queue_depth: usize,
    /// Auto-compact when dead bytes across sealed segments exceed this
    /// fraction of their total bytes. `None` disables auto-compaction
    /// (explicit [`SegmentStore::compact`] still works).
    pub compact_trigger: Option<f64>,
    /// Group-commit: land the staged write group once it holds this many
    /// records (treated as at least 1). The writer also flushes whenever
    /// its queue runs dry, so ack latency never waits for a full group.
    pub group_records: usize,
    /// Group-commit: land the staged group once it reaches this many
    /// bytes (treated as at least 1).
    pub group_bytes: u64,
    /// Recovery scan threads; 0 means one per available core. Segment
    /// scans are independent, and the index rebuild merges them in
    /// segment-id order, so the thread count never changes the result.
    pub recovery_threads: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 8 << 20,
            queue_depth: 64,
            compact_trigger: Some(0.5),
            group_records: 128,
            group_bytes: 256 << 10,
            recovery_threads: 0,
        }
    }
}

/// Cumulative store statistics. Byte counters are *measured* — they count
/// bytes actually handed to the backend, so `write_amplification` is an
/// observation, not a model parameter.
// lint: merge-exhaustive
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Record bytes appended on behalf of callers (puts + tombstones).
    pub host_bytes: u64,
    /// Record bytes appended by compaction rewrites (GC traffic).
    pub gc_bytes: u64,
    /// Put records appended for callers.
    pub put_records: u64,
    /// Tombstone records appended for callers.
    pub tombstone_records: u64,
    /// Puts acknowledged (index updated after a durable append).
    pub acked_puts: u64,
    /// Removes acknowledged.
    pub acked_removes: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Records rewritten live out of compaction victims.
    pub rewritten_records: u64,
    /// Segments created (including the initial active segment).
    pub segments_created: u64,
    /// Segments deleted by compaction.
    pub segments_deleted: u64,
    /// Live keys in the index at snapshot time.
    pub live_records: u64,
    /// Live record bytes at snapshot time.
    pub live_bytes: u64,
    /// Segments existing at snapshot time.
    pub segments: u64,
}

impl StoreStats {
    /// Bytes physically appended to segments (host + GC).
    pub fn physical_bytes(&self) -> u64 {
        self.host_bytes + self.gc_bytes
    }

    /// Measured write amplification: physical bytes per host byte (1.0
    /// before any host write).
    pub fn write_amplification(&self) -> f64 {
        if self.host_bytes == 0 {
            1.0
        } else {
            self.physical_bytes() as f64 / self.host_bytes as f64
        }
    }

    /// The byte stream as a wear-model ledger (host vs. GC split).
    pub fn wear_ledger(&self) -> WearLedger {
        let mut ledger = WearLedger::default();
        ledger.record_host_write(self.host_bytes);
        ledger.record_gc_write(self.gc_bytes);
        ledger
    }

    /// Fold another store's counters into this one (per-shard merge). The
    /// full destructure means a new counter cannot be added without this
    /// merge accounting for it.
    pub fn merge(&mut self, other: &StoreStats) {
        let StoreStats {
            host_bytes,
            gc_bytes,
            put_records,
            tombstone_records,
            acked_puts,
            acked_removes,
            compactions,
            rewritten_records,
            segments_created,
            segments_deleted,
            live_records,
            live_bytes,
            segments,
        } = *other;
        self.host_bytes += host_bytes;
        self.gc_bytes += gc_bytes;
        self.put_records += put_records;
        self.tombstone_records += tombstone_records;
        self.acked_puts += acked_puts;
        self.acked_removes += acked_removes;
        self.compactions += compactions;
        self.rewritten_records += rewritten_records;
        self.segments_created += segments_created;
        self.segments_deleted += segments_deleted;
        self.live_records += live_records;
        self.live_bytes += live_bytes;
        self.segments += segments;
    }
}

/// What a recovery scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments scanned.
    pub segments: u64,
    /// Records replayed into the index (puts + tombstones).
    pub records: u64,
    /// Live keys after the replay.
    pub live_records: u64,
    /// Whether a torn tail record was found (and truncated away).
    pub torn_tail: bool,
    /// Bytes discarded by the torn-tail repair.
    pub truncated_bytes: u64,
}

/// One compaction pass's outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// The victim segment, if any sealed segment existed.
    pub victim: Option<SegmentId>,
    /// Live record bytes rewritten into the active segment (GC writes).
    pub rewritten_bytes: u64,
    /// Records rewritten (live puts + still-shadowing tombstones).
    pub rewritten_records: u64,
    /// Bytes reclaimed (victim file size minus rewritten bytes).
    pub reclaimed_bytes: u64,
}

struct Counters {
    host_bytes: AtomicU64,
    gc_bytes: AtomicU64,
    put_records: AtomicU64,
    tombstone_records: AtomicU64,
    acked_puts: AtomicU64,
    acked_removes: AtomicU64,
    compactions: AtomicU64,
    rewritten_records: AtomicU64,
    segments_created: AtomicU64,
    segments_deleted: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Self {
            host_bytes: AtomicU64::new(0),
            gc_bytes: AtomicU64::new(0),
            put_records: AtomicU64::new(0),
            tombstone_records: AtomicU64::new(0),
            acked_puts: AtomicU64::new(0),
            acked_removes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            rewritten_records: AtomicU64::new(0),
            segments_created: AtomicU64::new(0),
            segments_deleted: AtomicU64::new(0),
        }
    }
}

struct Shared {
    index: Mutex<StoreIndex>,
    /// Readers hold this shared across index-lookup + backend-read so a
    /// compaction cannot delete a segment out from under an in-flight
    /// `get`; the compactor takes it exclusively only for the final
    /// delete-and-forget step. Lock order is always `io` before `index`.
    io: RwLock<()>,
    counters: Counters,
    crashed: AtomicBool,
}

enum Cmd {
    Put { key: u64, payload: Vec<u8> },
    Remove { key: u64 },
    Flush(Sender<()>),
    Compact(Sender<Result<CompactReport, StoreError>>),
}

thread_local! {
    /// Per-thread record-decode scratch for the read path: `get_into`
    /// reuses it across calls so reads stop allocating.
    static READ_SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Append-only segment store with a background writer.
///
/// `put`/`remove` stage onto a bounded command intake (blocking when full
/// — the backpressure seam); the writer thread steals staged commands in
/// batches, appends framed records to the active segment, rolls segments
/// at the configured size, updates the index only after the append
/// succeeded, and compacts the deadest sealed segment when enough dead
/// bytes accumulate. Dropping the store shuts the writer down after
/// draining the intake.
pub struct SegmentStore {
    shared: Arc<Shared>,
    backend: Arc<dyn Backend>,
    intake: Arc<Intake<Cmd>>,
    wake: Option<Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("crashed", &self.is_crashed())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SegmentStore {
    /// Open a store over `backend`: scan existing segments to rebuild the
    /// index (repairing at most one torn tail record in the newest
    /// segment), then start the writer on a fresh active segment.
    pub fn open(
        backend: Arc<dyn Backend>,
        cfg: StoreConfig,
        faults: Arc<dyn StoreFaultPlan>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let existing = backend.list()?;
        let scans = scan_segments(&backend, &existing, recovery_threads(cfg.recovery_threads))?;
        let mut index = StoreIndex::new();
        let mut report = RecoveryReport::default();
        for scan in &scans {
            merge_scan(scan, &mut index, &mut report);
        }
        report.live_records = index.len() as u64;

        let active = existing.last().map_or(0, |&s| s + 1);
        create_segment(backend.as_ref(), active)?;
        index.add_segment(active);

        let shared = Arc::new(Shared {
            index: Mutex::new(index),
            io: RwLock::new(()),
            counters: Counters::new(),
            crashed: AtomicBool::new(false),
        });
        shared.counters.segments_created.store(1, Ordering::Relaxed);

        let intake = Arc::new(Intake::new(cfg.queue_depth.max(1)));
        // The wake channel never carries data — one token at most is in
        // flight (the idle flag flips writer→set, producer→clear), so
        // bounded(1) can never block a producer.
        let (wake_tx, wake_rx) = bounded::<()>(1);
        let writer = Writer {
            backend: Arc::clone(&backend),
            shared: Arc::clone(&shared),
            intake: Arc::clone(&intake),
            cfg,
            faults,
            active,
            active_bytes: 0,
            seq: 0,
            group: GroupBuffer::new(),
        };
        let handle = std::thread::spawn(move || writer.run(wake_rx));
        Ok((Self { shared, backend, intake, wake: Some(wake_tx), handle: Some(handle) }, report))
    }

    /// Stage one command on the intake (blocking while it is full) and
    /// wake the writer if it idled. The one cross-thread message per
    /// *batch* — not per command — is what the append path's throughput
    /// rests on; see the [`crate::intake`] module docs.
    fn enqueue(&self, cmd: Cmd) -> Result<(), StoreError> {
        if self.is_crashed() {
            return Err(StoreError::Crashed);
        }
        let wake = self.wake.as_ref().ok_or(StoreError::Crashed)?;
        if self.intake.push(cmd) {
            wake.send(()).map_err(|_| StoreError::Crashed)?;
        }
        Ok(())
    }

    /// Enqueue a value write. Blocks while the command intake is full;
    /// the write is acknowledged (visible to `get`, counted in
    /// `acked_puts`) only after the writer has durably appended it and
    /// updated the index.
    pub fn put(&self, key: u64, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(StoreError::PayloadTooLarge(payload.len() as u64));
        }
        self.enqueue(Cmd::Put { key, payload: payload.to_vec() })
    }

    /// Enqueue a deletion (a durable tombstone record).
    pub fn remove(&self, key: u64) -> Result<(), StoreError> {
        self.enqueue(Cmd::Remove { key })
    }

    /// Block until every operation enqueued before this call has been
    /// applied (or the writer crashed).
    pub fn flush(&self) -> Result<(), StoreError> {
        let (done_tx, done_rx) = bounded::<()>(1);
        self.enqueue(Cmd::Flush(done_tx))?;
        done_rx.recv().map_err(|_| StoreError::Crashed)
    }

    /// Run one compaction pass on the writer thread (after draining the
    /// commands staged ahead of it) and return its report.
    pub fn compact(&self) -> Result<CompactReport, StoreError> {
        let (done_tx, done_rx) = bounded::<Result<CompactReport, StoreError>>(1);
        self.enqueue(Cmd::Compact(done_tx))?;
        done_rx.recv().map_err(|_| StoreError::Crashed)?
    }

    /// Read a key's current payload. Reflects acknowledged writes only; an
    /// enqueued-but-unapplied put is not yet visible.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let mut out = Vec::new();
        Ok(if self.get_into(key, &mut out)? { Some(out) } else { None })
    }

    /// Read a key's current payload into `out` (cleared first), returning
    /// whether the key was present. The allocation-free twin of
    /// [`SegmentStore::get`]: record bytes land in a thread-local scratch
    /// buffer and the payload is copied straight into the caller's buffer,
    /// so a steady-state read loop performs zero allocations.
    pub fn get_into(&self, key: u64, out: &mut Vec<u8>) -> Result<bool, StoreError> {
        out.clear();
        let _io = self.shared.io.read();
        let loc = match self.shared.index.lock().get(key) {
            Some(loc) => loc,
            None => return Ok(false),
        };
        READ_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // The io RwLock *is* the I/O gate: data reads deliberately hold
            // it so compaction's exclusive (write) acquisition serializes
            // against in-flight reads while segments are rewritten
            // underneath them.
            // otae-lint: allow(no-blocking-under-lock)
            self.backend.read_into(loc.segment, loc.offset, loc.len as usize, &mut scratch)?;
            let (record, _) = decode_record(&scratch)
                .map_err(|e| StoreError::Corrupt(format!("indexed record unreadable: {e}")))?;
            if record.key != key || record.kind != RecordKind::Put {
                return Err(StoreError::Corrupt(format!(
                    "index pointed key {key} at a record for key {} ({:?})",
                    record.key, record.kind
                )));
            }
            out.extend_from_slice(record.payload);
            Ok(true)
        })
    }

    /// Whether the writer has crashed (injected fault or backend failure).
    pub fn is_crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::Acquire)
    }

    /// Snapshot of cumulative statistics plus current index occupancy.
    pub fn stats(&self) -> StoreStats {
        let c = &self.shared.counters;
        let (live_records, live_bytes, segments) = {
            let ix = self.shared.index.lock();
            (ix.len() as u64, ix.live_bytes(), ix.segment_count() as u64)
        };
        StoreStats {
            host_bytes: c.host_bytes.load(Ordering::Relaxed),
            gc_bytes: c.gc_bytes.load(Ordering::Relaxed),
            put_records: c.put_records.load(Ordering::Relaxed),
            tombstone_records: c.tombstone_records.load(Ordering::Relaxed),
            acked_puts: c.acked_puts.load(Ordering::Relaxed),
            acked_removes: c.acked_removes.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            rewritten_records: c.rewritten_records.load(Ordering::Relaxed),
            segments_created: c.segments_created.load(Ordering::Relaxed),
            segments_deleted: c.segments_deleted.load(Ordering::Relaxed),
            live_records,
            live_bytes,
            segments,
        }
    }

    /// Sorted `(key, location)` pairs of every live record — the
    /// deterministic index digest the recovery oracle compares.
    pub fn live_entries(&self) -> Vec<(u64, Location)> {
        self.shared.index.lock().live_entries()
    }

    /// The backend handle (a harness reopens the same backend after a
    /// simulated crash).
    pub fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        // Closing the wake channel lets the writer drain the intake and
        // exit.
        drop(self.wake.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn create_segment(backend: &dyn Backend, seg: SegmentId) -> Result<(), StoreError> {
    backend.create(seg)?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    header.extend_from_slice(&SEGMENT_MAGIC);
    header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    backend.append(seg, &header)
}

/// Effective recovery thread count: a configured value, or one per
/// available core when `configured` is 0.
fn recovery_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// What one segment scan found: record metadata in file order, plus any
/// torn-tail repair. Segments are independent by construction (a record
/// never spans segments), so scans can run concurrently and the index
/// rebuild replays `SegmentScan`s in ascending segment-id order — the
/// result is identical to the sequential scan, whatever the thread count.
struct SegmentScan {
    seg: SegmentId,
    /// `(key, kind, offset, len)` per decoded record.
    records: Vec<(u64, RecordKind, u64, u64)>,
    torn_tail: bool,
    truncated_bytes: u64,
}

/// Scan one segment's records. `tolerate_tail` is true only for the
/// newest segment: a decode failure there is the torn tail a crash
/// legitimately leaves behind and is truncated away; anywhere else it is
/// corruption and fails the scan.
fn scan_one(
    backend: &dyn Backend,
    seg: SegmentId,
    tolerate_tail: bool,
) -> Result<SegmentScan, StoreError> {
    let bytes = backend.read_all(seg)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize
        || bytes[..4] != SEGMENT_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != SEGMENT_VERSION
    {
        return Err(StoreError::Corrupt(format!("segment {seg}: bad or short header")));
    }
    let mut scan = SegmentScan { seg, records: Vec::new(), torn_tail: false, truncated_bytes: 0 };
    let mut offset = SEGMENT_HEADER_LEN;
    while (offset as usize) < bytes.len() {
        match decode_record(&bytes[offset as usize..]) {
            Ok((record, consumed)) => {
                scan.records.push((record.key, record.kind, offset, consumed));
                offset += consumed;
            }
            Err(err) => {
                if !tolerate_tail {
                    return Err(StoreError::Corrupt(format!(
                        "segment {seg}: record at offset {offset} unreadable mid-log: {err}"
                    )));
                }
                let torn = bytes.len() as u64 - offset;
                backend.truncate(seg, offset)?;
                scan.torn_tail = true;
                scan.truncated_bytes += torn;
                break;
            }
        }
    }
    Ok(scan)
}

/// Scan every segment, concurrently when `threads > 1`. Results come back
/// ordered by position in `segs` (ascending segment id), and on failure
/// the error for the lowest-id failing segment is returned — both
/// independent of scheduling, so parallel and sequential recovery are
/// indistinguishable from the outside.
fn scan_segments(
    backend: &Arc<dyn Backend>,
    segs: &[SegmentId],
    threads: usize,
) -> Result<Vec<SegmentScan>, StoreError> {
    let last = segs.len().saturating_sub(1);
    let threads = threads.min(segs.len()).max(1);
    if threads == 1 {
        return segs
            .iter()
            .enumerate()
            .map(|(i, &seg)| scan_one(backend.as_ref(), seg, i == last))
            .collect();
    }
    let mut slots: Vec<Option<Result<SegmentScan, StoreError>>> =
        segs.iter().map(|_| None).collect();
    let mut panicked = false;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let backend = Arc::clone(backend);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < segs.len() {
                        out.push((i, scan_one(backend.as_ref(), segs[i], i == last)));
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (i, res) in results {
                        slots[i] = Some(res);
                    }
                }
                Err(_) => panicked = true,
            }
        }
    });
    if panicked {
        return Err(StoreError::Corrupt("recovery scan thread panicked".into()));
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| Err(StoreError::Corrupt("recovery scan slot missing".into())))
        })
        .collect()
}

/// Replay one segment scan into the index (the deterministic merge step —
/// callers feed scans in ascending segment-id order).
fn merge_scan(scan: &SegmentScan, index: &mut StoreIndex, report: &mut RecoveryReport) {
    index.add_segment(scan.seg);
    report.segments += 1;
    for &(key, kind, offset, len) in &scan.records {
        match kind {
            RecordKind::Put => index.apply_put(key, Location { segment: scan.seg, offset, len }),
            RecordKind::Tombstone => index.apply_tombstone(key, scan.seg, len),
        }
        report.records += 1;
    }
    report.torn_tail |= scan.torn_tail;
    report.truncated_bytes += scan.truncated_bytes;
    index.seal_segment(scan.seg);
}

struct Writer {
    backend: Arc<dyn Backend>,
    shared: Arc<Shared>,
    intake: Arc<Intake<Cmd>>,
    cfg: StoreConfig,
    faults: Arc<dyn StoreFaultPlan>,
    active: SegmentId,
    /// Record bytes landed in the active segment (excludes the segment
    /// header and anything still staged in `group`).
    active_bytes: u64,
    /// Host append sequence (puts + tombstones), the fault-seam clock.
    seq: u64,
    /// Group-commit staging buffer: encoded records accumulate here and
    /// land with one backend append + one index pass per group.
    group: GroupBuffer,
}

enum WriterStep {
    Ok,
    Crashed,
}

/// How a group flush ended (distinct from an I/O error: a seam-scheduled
/// crash still landed and accounted the acked prefix).
enum FlushOutcome {
    Done,
    Crashed,
}

impl Writer {
    fn run(mut self, rx: Receiver<()>) {
        let mut batch: Vec<Cmd> = Vec::new();
        loop {
            // Steal everything staged since the last pass and apply it in
            // push order (staging flushes the group whenever size limits
            // are hit).
            if self.intake.steal_or_idle(&mut batch) {
                if matches!(self.handle_batch(&mut batch), WriterStep::Crashed) {
                    return self.crash(rx);
                }
                continue;
            }
            // Intake ran dry (and the idle flag is now set, so the next
            // push owes us a wake token): land the partial group now so
            // ack latency is bounded by queue idleness, not group fill.
            if matches!(self.flush_host(), WriterStep::Crashed) {
                return self.crash(rx);
            }
            if matches!(self.auto_compact(), WriterStep::Crashed) {
                return self.crash(rx);
            }
            if rx.recv().is_err() {
                // Handle dropped: apply anything staged after our last
                // steal, land it, and exit.
                batch = self.intake.drain();
                if matches!(self.handle_batch(&mut batch), WriterStep::Crashed)
                    || matches!(self.flush_host(), WriterStep::Crashed)
                {
                    return self.crash(rx);
                }
                return;
            }
        }
    }

    /// Apply one stolen batch in order, leaving it empty. On a crash the
    /// remaining commands are dropped here — disconnecting any `Flush`
    /// or `Compact` reply senders so their callers error instead of
    /// hanging — before the caller enters the crash drain.
    fn handle_batch(&mut self, batch: &mut Vec<Cmd>) -> WriterStep {
        let mut crashed = false;
        for cmd in batch.drain(..) {
            if crashed {
                continue; // dropped: reply senders disconnect
            }
            crashed = matches!(self.handle(cmd), WriterStep::Crashed);
        }
        if crashed {
            WriterStep::Crashed
        } else {
            WriterStep::Ok
        }
    }

    /// Run one compaction pass if the dead-byte trigger is due.
    fn auto_compact(&mut self) -> WriterStep {
        if let Some(trigger) = self.cfg.compact_trigger {
            if self.should_auto_compact(trigger) && self.compact_once().is_err() {
                return WriterStep::Crashed;
            }
        }
        WriterStep::Ok
    }

    fn handle(&mut self, cmd: Cmd) -> WriterStep {
        match cmd {
            Cmd::Put { key, payload } => self.stage_host(key, RecordKind::Put, &payload),
            Cmd::Remove { key } => self.stage_host(key, RecordKind::Tombstone, &[]),
            Cmd::Flush(done) => {
                // Dropping `done` on the crash paths disconnects the
                // caller's recv, which maps to `StoreError::Crashed` —
                // same as the crash drain. Auto-compaction due at flush
                // time completes before the reply, so "flush returned"
                // keeps implying the store has absorbed every consequence
                // of the enqueued operations.
                if matches!(self.flush_host(), WriterStep::Crashed) {
                    return WriterStep::Crashed;
                }
                if matches!(self.auto_compact(), WriterStep::Crashed) {
                    return WriterStep::Crashed;
                }
                let _ = done.send(());
                WriterStep::Ok
            }
            Cmd::Compact(done) => match self.flush_host() {
                WriterStep::Ok => {
                    let _ = done.send(self.compact_once());
                    WriterStep::Ok
                }
                WriterStep::Crashed => WriterStep::Crashed,
            },
        }
    }

    /// Terminal crash state: mark the store crashed, then keep draining
    /// and dropping staged commands until the handle side hangs up.
    /// Returning without the drain would strand commands already staged
    /// on the intake — a `Cmd::Flush` there would keep its reply sender
    /// alive forever and the caller's `recv()` would deadlock instead of
    /// seeing `Crashed`. The steal/idle protocol is the same as the live
    /// loop's, so producers blocked on a full intake are released and
    /// late pushers still know when to send the wake token.
    fn crash(self, rx: Receiver<()>) {
        self.shared.crashed.store(true, Ordering::Release);
        let mut batch = Vec::new();
        loop {
            if self.intake.steal_or_idle(&mut batch) {
                batch.clear(); // dropped: reply senders disconnect
                continue;
            }
            if rx.recv().is_err() {
                // Handle dropped; nothing can stage after this.
                drop(self.intake.drain());
                return;
            }
        }
    }

    fn should_auto_compact(&self, trigger: f64) -> bool {
        let ix = self.shared.index.lock();
        let dead = ix.sealed_dead_bytes();
        if dead == 0 {
            return false;
        }
        let sealed_total: u64 = (0..=self.active)
            .filter_map(|s| ix.segment_info(s))
            .filter(|i| i.sealed)
            .map(|i| i.total_bytes)
            .sum();
        sealed_total > 0 && dead as f64 > trigger * sealed_total as f64
    }

    /// Seal the active segment and start the next one. Only legal with an
    /// empty group (staged records always land in the segment they were
    /// staged against).
    fn roll(&mut self) -> Result<(), StoreError> {
        debug_assert!(self.group.is_empty(), "roll with staged records would split the group");
        let next = self.active + 1;
        create_segment(self.backend.as_ref(), next)?;
        {
            let mut ix = self.shared.index.lock();
            ix.seal_segment(self.active);
            ix.add_segment(next);
        }
        self.shared.counters.segments_created.fetch_add(1, Ordering::Relaxed);
        self.active = next;
        self.active_bytes = 0;
        Ok(())
    }

    /// Whether the staged group has reached its configured size limits.
    fn group_full(&self) -> bool {
        self.group.records() >= self.cfg.group_records.max(1)
            || self.group.bytes() >= self.cfg.group_bytes.max(1)
    }

    /// Stage one caller record, flushing and/or rolling first when limits
    /// or the segment size threshold demand it. The record's location is
    /// fixed here (active segment tail + staged bytes), identically to the
    /// record-at-a-time path this replaced.
    fn stage_host(&mut self, key: u64, kind: RecordKind, payload: &[u8]) -> WriterStep {
        if self.group_full() && matches!(self.flush_host(), WriterStep::Crashed) {
            return WriterStep::Crashed;
        }
        if self.active_bytes + self.group.bytes() >= self.cfg.segment_bytes {
            if matches!(self.flush_host(), WriterStep::Crashed) {
                return WriterStep::Crashed;
            }
            if self.roll().is_err() {
                return WriterStep::Crashed;
            }
        }
        self.group.stage(key, kind, payload, StagedKind::Host);
        WriterStep::Ok
    }

    /// Flush the staged group on the host path: I/O failures and
    /// seam-scheduled crashes both take the writer down.
    fn flush_host(&mut self) -> WriterStep {
        match self.flush_group() {
            Ok(FlushOutcome::Done) => WriterStep::Ok,
            Ok(FlushOutcome::Crashed) | Err(_) => WriterStep::Crashed,
        }
    }

    /// Land the staged group: consult the fault seam once per host record
    /// (in staging order), append everything up to and including any crash
    /// record with **one** backend write, then apply the acked prefix to
    /// the index under **one** lock acquisition.
    ///
    /// Crash semantics are bit-identical to the per-record path: the crash
    /// record is durably appended (minus any torn tail) but never acked or
    /// indexed, records staged after it are dropped entirely, and recovery
    /// therefore sees exactly the acked prefix plus the crash record (when
    /// its tail survives whole) — regardless of how commands were batched
    /// into groups.
    fn flush_group(&mut self) -> Result<FlushOutcome, StoreError> {
        if self.group.is_empty() {
            return Ok(FlushOutcome::Done);
        }
        // Tick the seam clock for each host record; the first scheduled
        // crash cuts the group after that record.
        let mut cut: Option<(usize, u64)> = None;
        for (i, r) in self.group.staged().iter().enumerate() {
            if r.is_gc() {
                continue;
            }
            let seq = self.seq;
            self.seq += 1;
            if self.faults.crash_after_append(seq) {
                cut = Some((i, self.faults.torn_tail_bytes(seq).min(r.len)));
                break;
            }
        }
        let staged = self.group.staged();
        let (appended, acked, torn) = match cut {
            None => (staged.len(), staged.len(), 0),
            Some((i, torn)) => (i + 1, i, torn),
        };
        let end = staged[appended - 1].buf_offset + staged[appended - 1].len;
        self.backend.append(self.active, &self.group.data()[..end as usize])?;
        if torn > 0 {
            let keep = SEGMENT_HEADER_LEN + self.active_bytes + (end - torn);
            let _ = self.backend.truncate(self.active, keep);
        }

        // One index pass over the acked prefix.
        let base = SEGMENT_HEADER_LEN + self.active_bytes;
        {
            let mut ix = self.shared.index.lock();
            for r in &staged[..acked] {
                let loc =
                    Location { segment: self.active, offset: base + r.buf_offset, len: r.len };
                match r.meta {
                    StagedKind::Host => match r.kind {
                        RecordKind::Put => ix.apply_put(r.key, loc),
                        RecordKind::Tombstone => ix.apply_tombstone(r.key, self.active, r.len),
                    },
                    StagedKind::GcPut { from } => {
                        ix.relocate(r.key, from, loc);
                    }
                    StagedKind::GcTombstone => {}
                }
            }
        }

        // Counters: the appended prefix is physical traffic (the crash
        // record included), the acked prefix is acknowledgements.
        let (mut host, mut gc, mut puts, mut tombs) = (0u64, 0u64, 0u64, 0u64);
        for r in &staged[..appended] {
            if r.is_gc() {
                gc += r.len;
            } else {
                host += r.len;
                match r.kind {
                    RecordKind::Put => puts += 1,
                    RecordKind::Tombstone => tombs += 1,
                }
            }
        }
        let (mut acked_puts, mut acked_removes) = (0u64, 0u64);
        for r in &staged[..acked] {
            match (r.is_gc(), r.kind) {
                (false, RecordKind::Put) => acked_puts += 1,
                (false, RecordKind::Tombstone) => acked_removes += 1,
                (true, _) => {}
            }
        }
        let c = &self.shared.counters;
        c.host_bytes.fetch_add(host, Ordering::Relaxed);
        c.gc_bytes.fetch_add(gc, Ordering::Relaxed);
        c.put_records.fetch_add(puts, Ordering::Relaxed);
        c.tombstone_records.fetch_add(tombs, Ordering::Relaxed);
        c.acked_puts.fetch_add(acked_puts, Ordering::Relaxed);
        c.acked_removes.fetch_add(acked_removes, Ordering::Relaxed);

        if cut.is_some() {
            return Ok(FlushOutcome::Crashed);
        }
        self.active_bytes += self.group.bytes();
        self.group.clear();
        Ok(FlushOutcome::Done)
    }

    /// Stage one GC rewrite (compaction traffic: no fault seam, no ack;
    /// put relocations are applied when its group lands).
    fn stage_gc(
        &mut self,
        key: u64,
        kind: RecordKind,
        payload: &[u8],
        meta: StagedKind,
    ) -> Result<(), StoreError> {
        if self.group_full() {
            self.flush_gc()?;
        }
        if self.active_bytes + self.group.bytes() >= self.cfg.segment_bytes {
            self.flush_gc()?;
            self.roll()?;
        }
        self.group.stage(key, kind, payload, meta);
        Ok(())
    }

    /// Flush on the compaction path, where the group holds only GC
    /// records: the fault seam never ticks, so `Crashed` is unreachable
    /// and I/O errors surface to the compaction caller.
    fn flush_gc(&mut self) -> Result<(), StoreError> {
        match self.flush_group()? {
            FlushOutcome::Done => Ok(()),
            FlushOutcome::Crashed => Err(StoreError::Crashed),
        }
    }

    /// One compaction pass: pick the deadest sealed segment, rewrite what
    /// is still needed from it (live puts; tombstones that still shadow an
    /// older put elsewhere), then delete it. Rewritten bytes are the GC
    /// half of the measured write amplification.
    fn compact_once(&mut self) -> Result<CompactReport, StoreError> {
        let victim = {
            let ix = self.shared.index.lock();
            ix.deadest_segment()
        };
        let Some((victim, _)) = victim else {
            return Ok(CompactReport::default());
        };
        let bytes = self.backend.read_all(victim)?;
        if bytes.len() < SEGMENT_HEADER_LEN as usize || bytes[..4] != SEGMENT_MAGIC {
            return Err(StoreError::Corrupt(format!("compaction victim {victim}: bad header")));
        }

        // Pass 1: how many put records for each key live *in this segment*
        // (any version), so pass 2 can tell whether a tombstone still
        // shadows a put in some other segment.
        let mut puts_here: FxHashMap<u64, u32> = FxHashMap::default();
        let mut offset = SEGMENT_HEADER_LEN;
        while (offset as usize) < bytes.len() {
            let (record, consumed) = decode_record(&bytes[offset as usize..]).map_err(|e| {
                StoreError::Corrupt(format!(
                    "compaction victim {victim}: record at {offset} unreadable: {e}"
                ))
            })?;
            if record.kind == RecordKind::Put {
                *puts_here.entry(record.key).or_insert(0) += 1;
            }
            offset += consumed;
        }

        // Pass 2: rewrite what must survive, streamed through the same
        // group-commit buffer as the host path. Relocations are applied
        // when each group lands — safe because this writer thread is the
        // only index mutator, so the stage-time liveness decisions cannot
        // go stale before the flush.
        let mut report = CompactReport { victim: Some(victim), ..CompactReport::default() };
        let mut offset = SEGMENT_HEADER_LEN;
        while (offset as usize) < bytes.len() {
            let (record, consumed) = decode_record(&bytes[offset as usize..])
                .map_err(|e| StoreError::Corrupt(format!("victim {victim} reread: {e}")))?;
            let from = Location { segment: victim, offset, len: consumed };
            match record.kind {
                RecordKind::Put => {
                    let is_current = self.shared.index.lock().get(record.key) == Some(from);
                    if is_current {
                        self.stage_gc(
                            record.key,
                            RecordKind::Put,
                            record.payload,
                            StagedKind::GcPut { from },
                        )?;
                        report.rewritten_bytes += consumed;
                        report.rewritten_records += 1;
                    }
                }
                RecordKind::Tombstone => {
                    let shadows_elsewhere = {
                        let ix = self.shared.index.lock();
                        ix.get(record.key).is_none()
                            && ix.puts_on_disk(record.key)
                                > puts_here.get(&record.key).copied().unwrap_or(0)
                    };
                    if shadows_elsewhere {
                        self.stage_gc(
                            record.key,
                            RecordKind::Tombstone,
                            &[],
                            StagedKind::GcTombstone,
                        )?;
                        report.rewritten_bytes += consumed;
                        report.rewritten_records += 1;
                    }
                }
            }
            offset += consumed;
        }
        // Land the tail group (and its relocations) before the victim can
        // be deleted out from under still-pointing index entries.
        self.flush_gc()?;

        // Reclaim: exclusive `io` so no reader holds a location into the
        // victim across its deletion.
        {
            let _io = self.shared.io.write();
            self.backend.delete(victim)?;
            self.shared.index.lock().forget_segment(victim, &puts_here);
        }
        report.reclaimed_bytes = (bytes.len() as u64).saturating_sub(report.rewritten_bytes);
        let c = &self.shared.counters;
        c.compactions.fetch_add(1, Ordering::Relaxed);
        c.segments_deleted.fetch_add(1, Ordering::Relaxed);
        c.rewritten_records.fetch_add(report.rewritten_records, Ordering::Relaxed);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::fault::{CrashAt, NoStoreFaults};

    fn cfg(segment_bytes: u64) -> StoreConfig {
        StoreConfig { segment_bytes, queue_depth: 8, compact_trigger: None, ..Default::default() }
    }

    fn open_mem(backend: &MemBackend, cfg: StoreConfig) -> (SegmentStore, RecoveryReport) {
        SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults)).expect("open")
    }

    fn payload(key: u64, len: usize) -> Vec<u8> {
        let word = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes();
        (0..len).map(|i| word[i % 8]).collect()
    }

    #[test]
    fn put_get_remove_round_trip() {
        let backend = MemBackend::new();
        let (store, rec) = open_mem(&backend, cfg(1 << 20));
        assert_eq!(rec, RecoveryReport::default());
        for k in 0..100u64 {
            store.put(k, &payload(k, 64 + (k as usize % 32))).unwrap();
        }
        store.remove(17).unwrap();
        store.flush().unwrap();
        assert_eq!(store.get(3).unwrap().unwrap(), payload(3, 67));
        assert_eq!(store.get(17).unwrap(), None);
        assert_eq!(store.get(1000).unwrap(), None);
        let s = store.stats();
        assert_eq!(s.acked_puts, 100);
        assert_eq!(s.acked_removes, 1);
        assert_eq!(s.live_records, 99);
        assert_eq!(s.gc_bytes, 0);
        assert!((s.write_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segments_roll_and_recovery_rebuilds_the_index() {
        let backend = MemBackend::new();
        let entries = {
            let (store, _) = open_mem(&backend, cfg(2_000));
            for k in 0..200u64 {
                store.put(k, &payload(k, 100)).unwrap();
            }
            for k in 0..50u64 {
                store.remove(k).unwrap();
            }
            store.flush().unwrap();
            assert!(store.stats().segments > 3, "tiny segments must roll");
            store.live_entries()
        }; // store dropped = clean shutdown

        let (reopened, rec) = open_mem(&backend, cfg(2_000));
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 150);
        assert_eq!(reopened.live_entries(), entries, "recovery must rebuild the exact index");
        assert_eq!(reopened.get(10).unwrap(), None, "tombstones survive recovery");
        assert_eq!(reopened.get(60).unwrap().unwrap(), payload(60, 100));
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_reports_wa() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(4_000));
        for k in 0..200u64 {
            store.put(k, &payload(k, 100)).unwrap();
        }
        // Overwrite the first half: their old records go dead.
        for k in 0..100u64 {
            store.put(k, &payload(k, 80)).unwrap();
        }
        store.flush().unwrap();
        let before = store.stats();
        assert!(before.segments > 2);

        let mut rewritten = 0u64;
        let mut compactions = 0;
        while compactions < 10 {
            let r = store.compact().unwrap();
            let Some(_) = r.victim else { break };
            rewritten += r.rewritten_bytes;
            compactions += 1;
            if store.stats().segments <= 2 {
                break;
            }
        }
        let after = store.stats();
        assert!(after.compactions > 0);
        assert_eq!(after.gc_bytes, rewritten);
        assert!(after.write_amplification() > 1.0, "rewrites must show up as WA");
        // Every key still readable with its latest value.
        for k in 0..200u64 {
            let want = if k < 100 { payload(k, 80) } else { payload(k, 100) };
            assert_eq!(store.get(k).unwrap().unwrap(), want, "key {k}");
        }
        // And the store still recovers cleanly after compaction.
        let entries = store.live_entries();
        drop(store);
        let (reopened, rec) = open_mem(&backend, cfg(4_000));
        assert!(!rec.torn_tail);
        assert_eq!(reopened.live_entries().len(), entries.len());
        for k in 0..200u64 {
            let want = if k < 100 { payload(k, 80) } else { payload(k, 100) };
            assert_eq!(reopened.get(k).unwrap().unwrap(), want, "post-recovery key {k}");
        }
    }

    #[test]
    fn tombstones_still_shadowing_older_puts_are_rewritten() {
        let backend = MemBackend::new();
        // Tiny segments: each handful of records rolls a segment.
        let (store, _) = open_mem(&backend, cfg(300));
        store.put(1, &payload(1, 100)).unwrap(); // seg A
        store.put(2, &payload(2, 100)).unwrap();
        store.put(3, &payload(3, 100)).unwrap(); // rolls
        store.remove(1).unwrap(); // tombstone lands in a later segment
        store.put(4, &payload(4, 100)).unwrap();
        store.put(5, &payload(5, 100)).unwrap();
        store.flush().unwrap();

        // Compact until only the active segment remains (or progress stops);
        // at every intermediate state key 1 must stay deleted.
        for _ in 0..20 {
            let r = store.compact().unwrap();
            if r.victim.is_none() {
                break;
            }
            assert_eq!(store.get(1).unwrap(), None, "tombstone must not be lost");
        }
        let entries = store.live_entries();
        drop(store);
        let (reopened, _) = open_mem(&backend, cfg(300));
        assert_eq!(reopened.get(1).unwrap(), None, "deletion survives recovery after GC");
        assert_eq!(reopened.live_entries().len(), entries.len());
    }

    #[test]
    fn auto_compaction_triggers_on_dead_fraction() {
        let backend = MemBackend::new();
        let cfg = StoreConfig {
            segment_bytes: 2_000,
            queue_depth: 8,
            compact_trigger: Some(0.5),
            ..Default::default()
        };
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults))
                .expect("open");
        // Heavy overwrite churn on a small key range: most sealed bytes
        // die. One unique pin key per round stays live forever, so every
        // sealed segment (17 records at this size) holds at least one live
        // record and any compaction victim must rewrite something.
        for round in 0..20u64 {
            store.put(1_000 + round, &payload(round, 100)).unwrap();
            for k in 0..10u64 {
                store.put(k, &payload(k ^ round, 100)).unwrap();
            }
        }
        store.flush().unwrap();
        let s = store.stats();
        assert!(s.compactions > 0, "auto-compaction must have fired: {s:?}");
        assert!(s.segments_deleted > 0);
        assert!(s.write_amplification() > 1.0);
        assert!(
            s.segments < s.segments_created,
            "space must be reclaimed: {} segments of {} created",
            s.segments,
            s.segments_created
        );
    }

    #[test]
    fn crash_between_append_and_index_update_loses_only_the_ack() {
        let backend = MemBackend::new();
        let plan = CrashAt { seq: 10, torn_tail: 0 };
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), cfg(1 << 20), Arc::new(plan))
                .expect("open");
        for k in 0..100u64 {
            if store.put(k, &payload(k, 50)).is_err() {
                break;
            }
        }
        // Wait for the writer to die; puts eventually fail.
        while !store.is_crashed() {
            std::thread::yield_now();
        }
        assert!(store.put(999, b"x").is_err());
        let stats = store.stats();
        assert_eq!(stats.acked_puts, 10, "exactly the pre-crash appends are acked");
        drop(store);

        // Recovery sees the 11th record (durably appended, never acked).
        let (reopened, rec) = open_mem(&backend, cfg(1 << 20));
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 11);
        assert_eq!(reopened.get(10).unwrap().unwrap(), payload(10, 50));
    }

    #[test]
    fn flush_enqueued_around_a_crash_errors_instead_of_hanging() {
        // Regression: a `Cmd::Flush` buffered in the channel when the
        // writer crashes must have its reply sender dropped by the crash
        // drain — otherwise the caller's recv() waits forever on a reply
        // that can never come.
        for seq in 0..6u64 {
            let backend = MemBackend::new();
            let plan = CrashAt { seq, torn_tail: 0 };
            let (store, _) =
                SegmentStore::open(Arc::new(backend.clone()), cfg(1 << 20), Arc::new(plan))
                    .expect("open");
            // Fill the queue past the crash point, then race a flush in.
            for k in 0..8u64 {
                if store.put(k, &payload(k, 40)).is_err() {
                    break;
                }
            }
            assert!(store.flush().is_err(), "flush after crash at seq {seq}");
            assert!(matches!(store.compact(), Err(StoreError::Crashed)));
            assert!(store.is_crashed());
        }
    }

    #[test]
    fn removing_a_key_that_was_never_put_is_a_durable_no_op() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(1 << 20));
        store.remove(42).unwrap();
        store.put(1, &payload(1, 30)).unwrap();
        store.remove(42).unwrap();
        store.flush().unwrap();
        assert_eq!(store.get(42).unwrap(), None);
        let s = store.stats();
        assert_eq!(s.acked_removes, 2);
        assert_eq!(s.live_records, 1);
        drop(store);
        // The tombstones are real records: recovery replays them cleanly.
        let (reopened, rec) = open_mem(&backend, cfg(1 << 20));
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 1);
        assert_eq!(reopened.get(42).unwrap(), None);
        assert_eq!(reopened.get(1).unwrap().unwrap(), payload(1, 30));
    }

    #[test]
    fn torn_tail_record_is_truncated_on_recovery() {
        let backend = MemBackend::new();
        let plan = CrashAt { seq: 5, torn_tail: 7 }; // tear 7 bytes off record 5
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), cfg(1 << 20), Arc::new(plan))
                .expect("open");
        for k in 0..100u64 {
            if store.put(k, &payload(k, 50)).is_err() {
                break;
            }
        }
        while !store.is_crashed() {
            std::thread::yield_now();
        }
        drop(store);

        let (reopened, rec) = open_mem(&backend, cfg(1 << 20));
        assert!(rec.torn_tail, "the partial record must be detected");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.live_records, 5, "torn record 5 is gone; 0..=4 survive");
        assert_eq!(reopened.get(4).unwrap().unwrap(), payload(4, 50));
        assert_eq!(reopened.get(5).unwrap(), None);
        // The repaired log is clean: a third open sees no tear.
        drop(reopened);
        let (_, rec2) = open_mem(&backend, cfg(1 << 20));
        assert!(!rec2.torn_tail);
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_silent_truncation() {
        let backend = MemBackend::new();
        {
            let (store, _) = open_mem(&backend, cfg(500));
            for k in 0..50u64 {
                store.put(k, &payload(k, 60)).unwrap();
            }
            store.flush().unwrap();
        }
        // Flip a byte in the middle of the FIRST segment (not the newest).
        let segments = backend.list().unwrap();
        assert!(segments.len() > 2);
        let first = segments[0];
        let mut bytes = backend.read_all(first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        backend.truncate(first, 0).unwrap();
        backend.append(first, &bytes).unwrap();

        let err = SegmentStore::open(Arc::new(backend.clone()), cfg(500), Arc::new(NoStoreFaults))
            .expect_err("mid-log corruption must fail the scan");
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn oversized_payload_is_rejected_at_the_door() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(1 << 20));
        let big = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(store.put(1, &big), Err(StoreError::PayloadTooLarge(_))));
    }

    #[test]
    fn mid_group_crash_recovers_exactly_the_acked_prefix() {
        // Whatever way the queue batches commands into write groups, a
        // crash at seam tick `seq` must ack exactly `seq` records and
        // recovery must see `seq + 1` (the crash record lands but is
        // never acked). Exercise crash points that fall at group
        // boundaries and strictly inside groups.
        for &seq in &[0u64, 1, 7, 8, 9, 20, 33] {
            let backend = MemBackend::new();
            let plan = CrashAt { seq, torn_tail: 0 };
            let grouped = StoreConfig {
                segment_bytes: 1 << 20,
                queue_depth: 16,
                compact_trigger: None,
                group_records: 8,
                ..Default::default()
            };
            let (store, _) = SegmentStore::open(Arc::new(backend.clone()), grouped, Arc::new(plan))
                .expect("open");
            for k in 0..40u64 {
                if store.put(k, &payload(k, 48)).is_err() {
                    break;
                }
            }
            while !store.is_crashed() {
                std::thread::yield_now();
            }
            assert_eq!(store.stats().acked_puts, seq, "acked prefix at seq {seq}");
            drop(store);

            let (reopened, rec) = open_mem(&backend, grouped);
            assert!(!rec.torn_tail);
            assert_eq!(rec.live_records, seq + 1, "recovered records at seq {seq}");
            if seq > 0 {
                assert_eq!(reopened.get(seq - 1).unwrap().unwrap(), payload(seq - 1, 48));
            }
        }
    }

    #[test]
    fn mid_group_torn_tail_drops_only_the_crash_record() {
        let backend = MemBackend::new();
        let plan = CrashAt { seq: 11, torn_tail: u64::MAX }; // full tear inside a group
        let grouped = StoreConfig {
            segment_bytes: 1 << 20,
            queue_depth: 16,
            compact_trigger: None,
            group_records: 8,
            ..Default::default()
        };
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), grouped, Arc::new(plan)).expect("open");
        for k in 0..40u64 {
            if store.put(k, &payload(k, 48)).is_err() {
                break;
            }
        }
        while !store.is_crashed() {
            std::thread::yield_now();
        }
        drop(store);
        let (reopened, rec) = open_mem(&backend, grouped);
        // A whole-record tear leaves a clean log: no torn tail to repair.
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 11, "crash record fully torn away");
        assert_eq!(reopened.get(10).unwrap().unwrap(), payload(10, 48));
        assert_eq!(reopened.get(11).unwrap(), None);
    }

    #[test]
    fn get_into_reuses_the_caller_buffer() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(1 << 20));
        store.put(1, &payload(1, 100)).unwrap();
        store.put(2, &payload(2, 40)).unwrap();
        store.flush().unwrap();
        let mut out = Vec::new();
        assert!(store.get_into(1, &mut out).unwrap());
        assert_eq!(out, payload(1, 100));
        // A shorter payload must not leave stale tail bytes behind.
        assert!(store.get_into(2, &mut out).unwrap());
        assert_eq!(out, payload(2, 40));
        assert!(!store.get_into(3, &mut out).unwrap());
        assert!(out.is_empty(), "missing key clears the buffer");
    }

    #[test]
    fn parallel_recovery_matches_sequential() {
        let backend = MemBackend::new();
        {
            let (store, _) = open_mem(&backend, cfg(1_500));
            for k in 0..300u64 {
                store.put(k % 80, &payload(k, 64)).unwrap();
                if k % 7 == 0 {
                    store.remove(k % 40).unwrap();
                }
            }
            store.flush().unwrap();
        }
        let seq_cfg = StoreConfig { recovery_threads: 1, ..cfg(1_500) };
        let par_cfg = StoreConfig { recovery_threads: 4, ..cfg(1_500) };
        let (seq_store, seq_rec) = open_mem(&backend, seq_cfg);
        let seq_entries = seq_store.live_entries();
        drop(seq_store);
        let (par_store, par_rec) = open_mem(&backend, par_cfg);
        // The two opens each add a fresh active segment, so reports line
        // up one segment apart; everything else must be identical.
        assert_eq!(par_rec.records, seq_rec.records);
        assert_eq!(par_rec.live_records, seq_rec.live_records);
        assert_eq!(par_rec.torn_tail, seq_rec.torn_tail);
        assert_eq!(par_store.live_entries(), seq_entries, "index must be byte-identical");
    }
}

//! The segment store proper: a bounded-queue background writer, an
//! in-memory index rebuilt by a recovery scan, and deadest-first
//! compaction that reports rewritten bytes as measured write
//! amplification.

use crate::backend::{Backend, SegmentId};
use crate::fault::StoreFaultPlan;
use crate::index::{Location, StoreIndex};
use crate::record::{decode_record, encode_record, Record, RecordKind, MAX_PAYLOAD};
use crossbeam::channel::{bounded, Receiver, Sender};
use otae_device::WearLedger;
use otae_fxhash::FxHashMap;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Magic + version prefix of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"OSEG";
/// On-disk format version.
pub const SEGMENT_VERSION: u16 = 1;
/// Bytes of segment header preceding the first record.
pub const SEGMENT_HEADER_LEN: u64 = 6;

/// Store failure modes.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// On-disk state that violates the format (bad magic, impossible
    /// offsets, mid-log corruption).
    Corrupt(String),
    /// A segment the index or a scan expected is gone.
    MissingSegment(SegmentId),
    /// The writer thread crashed (injected fault or unrecoverable backend
    /// error); the store accepts no further writes.
    Crashed,
    /// Payload exceeds the per-record cap.
    PayloadTooLarge(u64),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
            StoreError::MissingSegment(s) => write!(f, "missing segment {s}"),
            StoreError::Crashed => write!(f, "store writer crashed; no further writes accepted"),
            StoreError::PayloadTooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds cap {MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Seal the active segment and roll to a new one once its record bytes
    /// reach this threshold.
    pub segment_bytes: u64,
    /// Depth of the bounded write queue between callers and the writer
    /// thread — the explicit backpressure bound (otae-lint:
    /// bounded-channel).
    pub queue_depth: usize,
    /// Auto-compact when dead bytes across sealed segments exceed this
    /// fraction of their total bytes. `None` disables auto-compaction
    /// (explicit [`SegmentStore::compact`] still works).
    pub compact_trigger: Option<f64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { segment_bytes: 8 << 20, queue_depth: 64, compact_trigger: Some(0.5) }
    }
}

/// Cumulative store statistics. Byte counters are *measured* — they count
/// bytes actually handed to the backend, so `write_amplification` is an
/// observation, not a model parameter.
// lint: merge-exhaustive
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Record bytes appended on behalf of callers (puts + tombstones).
    pub host_bytes: u64,
    /// Record bytes appended by compaction rewrites (GC traffic).
    pub gc_bytes: u64,
    /// Put records appended for callers.
    pub put_records: u64,
    /// Tombstone records appended for callers.
    pub tombstone_records: u64,
    /// Puts acknowledged (index updated after a durable append).
    pub acked_puts: u64,
    /// Removes acknowledged.
    pub acked_removes: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Records rewritten live out of compaction victims.
    pub rewritten_records: u64,
    /// Segments created (including the initial active segment).
    pub segments_created: u64,
    /// Segments deleted by compaction.
    pub segments_deleted: u64,
    /// Live keys in the index at snapshot time.
    pub live_records: u64,
    /// Live record bytes at snapshot time.
    pub live_bytes: u64,
    /// Segments existing at snapshot time.
    pub segments: u64,
}

impl StoreStats {
    /// Bytes physically appended to segments (host + GC).
    pub fn physical_bytes(&self) -> u64 {
        self.host_bytes + self.gc_bytes
    }

    /// Measured write amplification: physical bytes per host byte (1.0
    /// before any host write).
    pub fn write_amplification(&self) -> f64 {
        if self.host_bytes == 0 {
            1.0
        } else {
            self.physical_bytes() as f64 / self.host_bytes as f64
        }
    }

    /// The byte stream as a wear-model ledger (host vs. GC split).
    pub fn wear_ledger(&self) -> WearLedger {
        let mut ledger = WearLedger::default();
        ledger.record_host_write(self.host_bytes);
        ledger.record_gc_write(self.gc_bytes);
        ledger
    }

    /// Fold another store's counters into this one (per-shard merge). The
    /// full destructure means a new counter cannot be added without this
    /// merge accounting for it.
    pub fn merge(&mut self, other: &StoreStats) {
        let StoreStats {
            host_bytes,
            gc_bytes,
            put_records,
            tombstone_records,
            acked_puts,
            acked_removes,
            compactions,
            rewritten_records,
            segments_created,
            segments_deleted,
            live_records,
            live_bytes,
            segments,
        } = *other;
        self.host_bytes += host_bytes;
        self.gc_bytes += gc_bytes;
        self.put_records += put_records;
        self.tombstone_records += tombstone_records;
        self.acked_puts += acked_puts;
        self.acked_removes += acked_removes;
        self.compactions += compactions;
        self.rewritten_records += rewritten_records;
        self.segments_created += segments_created;
        self.segments_deleted += segments_deleted;
        self.live_records += live_records;
        self.live_bytes += live_bytes;
        self.segments += segments;
    }
}

/// What a recovery scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments scanned.
    pub segments: u64,
    /// Records replayed into the index (puts + tombstones).
    pub records: u64,
    /// Live keys after the replay.
    pub live_records: u64,
    /// Whether a torn tail record was found (and truncated away).
    pub torn_tail: bool,
    /// Bytes discarded by the torn-tail repair.
    pub truncated_bytes: u64,
}

/// One compaction pass's outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// The victim segment, if any sealed segment existed.
    pub victim: Option<SegmentId>,
    /// Live record bytes rewritten into the active segment (GC writes).
    pub rewritten_bytes: u64,
    /// Records rewritten (live puts + still-shadowing tombstones).
    pub rewritten_records: u64,
    /// Bytes reclaimed (victim file size minus rewritten bytes).
    pub reclaimed_bytes: u64,
}

struct Counters {
    host_bytes: AtomicU64,
    gc_bytes: AtomicU64,
    put_records: AtomicU64,
    tombstone_records: AtomicU64,
    acked_puts: AtomicU64,
    acked_removes: AtomicU64,
    compactions: AtomicU64,
    rewritten_records: AtomicU64,
    segments_created: AtomicU64,
    segments_deleted: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Self {
            host_bytes: AtomicU64::new(0),
            gc_bytes: AtomicU64::new(0),
            put_records: AtomicU64::new(0),
            tombstone_records: AtomicU64::new(0),
            acked_puts: AtomicU64::new(0),
            acked_removes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            rewritten_records: AtomicU64::new(0),
            segments_created: AtomicU64::new(0),
            segments_deleted: AtomicU64::new(0),
        }
    }
}

struct Shared {
    index: Mutex<StoreIndex>,
    /// Readers hold this shared across index-lookup + backend-read so a
    /// compaction cannot delete a segment out from under an in-flight
    /// `get`; the compactor takes it exclusively only for the final
    /// delete-and-forget step. Lock order is always `io` before `index`.
    io: RwLock<()>,
    counters: Counters,
    crashed: AtomicBool,
}

enum Cmd {
    Put { key: u64, payload: Vec<u8> },
    Remove { key: u64 },
    Flush(Sender<()>),
    Compact(Sender<Result<CompactReport, StoreError>>),
}

/// Append-only segment store with a background writer.
///
/// `put`/`remove` enqueue onto a bounded queue (blocking when full — the
/// backpressure seam); the writer thread appends framed records to the
/// active segment, rolls segments at the configured size, updates the
/// index only after the append succeeded, and compacts the deadest sealed
/// segment when enough dead bytes accumulate. Dropping the store shuts the
/// writer down after draining the queue.
pub struct SegmentStore {
    shared: Arc<Shared>,
    backend: Arc<dyn Backend>,
    tx: Option<Sender<Cmd>>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("crashed", &self.is_crashed())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SegmentStore {
    /// Open a store over `backend`: scan existing segments to rebuild the
    /// index (repairing at most one torn tail record in the newest
    /// segment), then start the writer on a fresh active segment.
    pub fn open(
        backend: Arc<dyn Backend>,
        cfg: StoreConfig,
        faults: Arc<dyn StoreFaultPlan>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let mut index = StoreIndex::new();
        let mut report = RecoveryReport::default();
        let existing = backend.list()?;
        let last = existing.last().copied();
        for &seg in &existing {
            scan_segment(backend.as_ref(), seg, &mut index, &mut report, last == Some(seg))?;
            index.seal_segment(seg);
        }
        report.live_records = index.len() as u64;

        let active = existing.last().map_or(0, |&s| s + 1);
        create_segment(backend.as_ref(), active)?;
        index.add_segment(active);

        let shared = Arc::new(Shared {
            index: Mutex::new(index),
            io: RwLock::new(()),
            counters: Counters::new(),
            crashed: AtomicBool::new(false),
        });
        shared.counters.segments_created.store(1, Ordering::Relaxed);

        let (tx, rx) = bounded::<Cmd>(cfg.queue_depth.max(1));
        let writer = Writer {
            backend: Arc::clone(&backend),
            shared: Arc::clone(&shared),
            cfg,
            faults,
            active,
            active_bytes: 0,
            seq: 0,
            buf: Vec::new(),
        };
        let handle = std::thread::spawn(move || writer.run(rx));
        Ok((Self { shared, backend, tx: Some(tx), handle: Some(handle) }, report))
    }

    fn sender(&self) -> Result<&Sender<Cmd>, StoreError> {
        if self.is_crashed() {
            return Err(StoreError::Crashed);
        }
        self.tx.as_ref().ok_or(StoreError::Crashed)
    }

    /// Enqueue a value write. Blocks while the write queue is full; the
    /// write is acknowledged (visible to `get`, counted in `acked_puts`)
    /// only after the writer has durably appended it and updated the
    /// index.
    pub fn put(&self, key: u64, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(StoreError::PayloadTooLarge(payload.len() as u64));
        }
        self.sender()?
            .send(Cmd::Put { key, payload: payload.to_vec() })
            .map_err(|_| StoreError::Crashed)
    }

    /// Enqueue a deletion (a durable tombstone record).
    pub fn remove(&self, key: u64) -> Result<(), StoreError> {
        self.sender()?.send(Cmd::Remove { key }).map_err(|_| StoreError::Crashed)
    }

    /// Block until every operation enqueued before this call has been
    /// applied (or the writer crashed).
    pub fn flush(&self) -> Result<(), StoreError> {
        let (done_tx, done_rx) = bounded::<()>(1);
        self.sender()?.send(Cmd::Flush(done_tx)).map_err(|_| StoreError::Crashed)?;
        done_rx.recv().map_err(|_| StoreError::Crashed)
    }

    /// Run one compaction pass on the writer thread (after draining the
    /// queue ahead of it) and return its report.
    pub fn compact(&self) -> Result<CompactReport, StoreError> {
        let (done_tx, done_rx) = bounded::<Result<CompactReport, StoreError>>(1);
        self.sender()?.send(Cmd::Compact(done_tx)).map_err(|_| StoreError::Crashed)?;
        done_rx.recv().map_err(|_| StoreError::Crashed)?
    }

    /// Read a key's current payload. Reflects acknowledged writes only; an
    /// enqueued-but-unapplied put is not yet visible.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let _io = self.shared.io.read();
        let loc = match self.shared.index.lock().get(key) {
            Some(loc) => loc,
            None => return Ok(None),
        };
        // The io RwLock *is* the I/O gate: data reads deliberately hold it
        // so compaction's exclusive (write) acquisition serializes against
        // in-flight reads while segments are rewritten underneath them.
        // otae-lint: allow(no-blocking-under-lock)
        let bytes = self.backend.read_at(loc.segment, loc.offset, loc.len as usize)?;
        let (record, _) = decode_record(&bytes)
            .map_err(|e| StoreError::Corrupt(format!("indexed record unreadable: {e}")))?;
        if record.key != key || record.kind != RecordKind::Put {
            return Err(StoreError::Corrupt(format!(
                "index pointed key {key} at a record for key {} ({:?})",
                record.key, record.kind
            )));
        }
        Ok(Some(record.payload.to_vec()))
    }

    /// Whether the writer has crashed (injected fault or backend failure).
    pub fn is_crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::Acquire)
    }

    /// Snapshot of cumulative statistics plus current index occupancy.
    pub fn stats(&self) -> StoreStats {
        let c = &self.shared.counters;
        let (live_records, live_bytes, segments) = {
            let ix = self.shared.index.lock();
            (ix.len() as u64, ix.live_bytes(), ix.segment_count() as u64)
        };
        StoreStats {
            host_bytes: c.host_bytes.load(Ordering::Relaxed),
            gc_bytes: c.gc_bytes.load(Ordering::Relaxed),
            put_records: c.put_records.load(Ordering::Relaxed),
            tombstone_records: c.tombstone_records.load(Ordering::Relaxed),
            acked_puts: c.acked_puts.load(Ordering::Relaxed),
            acked_removes: c.acked_removes.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            rewritten_records: c.rewritten_records.load(Ordering::Relaxed),
            segments_created: c.segments_created.load(Ordering::Relaxed),
            segments_deleted: c.segments_deleted.load(Ordering::Relaxed),
            live_records,
            live_bytes,
            segments,
        }
    }

    /// Sorted `(key, location)` pairs of every live record — the
    /// deterministic index digest the recovery oracle compares.
    pub fn live_entries(&self) -> Vec<(u64, Location)> {
        self.shared.index.lock().live_entries()
    }

    /// The backend handle (a harness reopens the same backend after a
    /// simulated crash).
    pub fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        // Closing the channel lets the writer drain the queue and exit.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn create_segment(backend: &dyn Backend, seg: SegmentId) -> Result<(), StoreError> {
    backend.create(seg)?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    header.extend_from_slice(&SEGMENT_MAGIC);
    header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    backend.append(seg, &header)
}

/// Replay one segment's records into the index. `tolerate_tail` is true
/// only for the newest segment: a decode failure there is the torn tail a
/// crash legitimately leaves behind and is truncated away; anywhere else
/// it is corruption and fails the scan.
fn scan_segment(
    backend: &dyn Backend,
    seg: SegmentId,
    index: &mut StoreIndex,
    report: &mut RecoveryReport,
    tolerate_tail: bool,
) -> Result<(), StoreError> {
    let bytes = backend.read_all(seg)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize
        || bytes[..4] != SEGMENT_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != SEGMENT_VERSION
    {
        return Err(StoreError::Corrupt(format!("segment {seg}: bad or short header")));
    }
    index.add_segment(seg);
    report.segments += 1;
    let mut offset = SEGMENT_HEADER_LEN;
    while (offset as usize) < bytes.len() {
        match decode_record(&bytes[offset as usize..]) {
            Ok((record, consumed)) => {
                apply_record(index, seg, offset, &record, consumed);
                report.records += 1;
                offset += consumed;
            }
            Err(err) => {
                if !tolerate_tail {
                    return Err(StoreError::Corrupt(format!(
                        "segment {seg}: record at offset {offset} unreadable mid-log: {err}"
                    )));
                }
                let torn = bytes.len() as u64 - offset;
                backend.truncate(seg, offset)?;
                report.torn_tail = true;
                report.truncated_bytes += torn;
                break;
            }
        }
    }
    Ok(())
}

fn apply_record(
    index: &mut StoreIndex,
    seg: SegmentId,
    offset: u64,
    record: &Record<'_>,
    len: u64,
) {
    match record.kind {
        RecordKind::Put => index.apply_put(record.key, Location { segment: seg, offset, len }),
        RecordKind::Tombstone => index.apply_tombstone(record.key, seg, len),
    }
}

struct Writer {
    backend: Arc<dyn Backend>,
    shared: Arc<Shared>,
    cfg: StoreConfig,
    faults: Arc<dyn StoreFaultPlan>,
    active: SegmentId,
    /// Record bytes in the active segment (excludes the segment header).
    active_bytes: u64,
    /// Host append sequence (puts + tombstones), the fault-seam clock.
    seq: u64,
    buf: Vec<u8>,
}

enum WriterStep {
    Ok,
    Crashed,
}

impl Writer {
    fn run(mut self, rx: Receiver<Cmd>) {
        while let Ok(cmd) = rx.recv() {
            let step = match cmd {
                Cmd::Put { key, payload } => self.append_host(key, RecordKind::Put, &payload),
                Cmd::Remove { key } => self.append_host(key, RecordKind::Tombstone, &[]),
                Cmd::Flush(done) => {
                    let _ = done.send(());
                    WriterStep::Ok
                }
                Cmd::Compact(done) => {
                    let _ = done.send(self.compact_once());
                    WriterStep::Ok
                }
            };
            if matches!(step, WriterStep::Crashed) {
                return self.crash(rx);
            }
            if let Some(trigger) = self.cfg.compact_trigger {
                if self.should_auto_compact(trigger) && self.compact_once().is_err() {
                    return self.crash(rx);
                }
            }
        }
    }

    /// Terminal crash state: mark the store crashed, then drain and drop
    /// every remaining command until the handle side hangs up. Returning
    /// without the drain would strand commands already buffered in the
    /// channel — the store handle still holds `tx`, so a queued
    /// `Cmd::Flush` would keep its reply sender alive forever and the
    /// caller's `recv()` would deadlock instead of seeing `Crashed`.
    fn crash(self, rx: Receiver<Cmd>) {
        self.shared.crashed.store(true, Ordering::Release);
        while rx.recv().is_ok() {}
    }

    fn should_auto_compact(&self, trigger: f64) -> bool {
        let ix = self.shared.index.lock();
        let dead = ix.sealed_dead_bytes();
        if dead == 0 {
            return false;
        }
        let sealed_total: u64 = (0..=self.active)
            .filter_map(|s| ix.segment_info(s))
            .filter(|i| i.sealed)
            .map(|i| i.total_bytes)
            .sum();
        sealed_total > 0 && dead as f64 > trigger * sealed_total as f64
    }

    /// Roll the active segment if it reached the size threshold.
    fn maybe_roll(&mut self) -> Result<(), StoreError> {
        if self.active_bytes < self.cfg.segment_bytes {
            return Ok(());
        }
        let next = self.active + 1;
        create_segment(self.backend.as_ref(), next)?;
        {
            let mut ix = self.shared.index.lock();
            ix.seal_segment(self.active);
            ix.add_segment(next);
        }
        self.shared.counters.segments_created.fetch_add(1, Ordering::Relaxed);
        self.active = next;
        self.active_bytes = 0;
        Ok(())
    }

    /// Append one caller record: roll if due, append, consult the crash
    /// seam, then index + acknowledge. Unrecoverable backend errors crash
    /// the store rather than silently dropping writes.
    fn append_host(&mut self, key: u64, kind: RecordKind, payload: &[u8]) -> WriterStep {
        if self.maybe_roll().is_err() {
            return WriterStep::Crashed;
        }
        self.buf.clear();
        let len = encode_record(key, kind, payload, &mut self.buf);
        if self.backend.append(self.active, &self.buf).is_err() {
            return WriterStep::Crashed;
        }
        let offset = SEGMENT_HEADER_LEN + self.active_bytes;
        let c = &self.shared.counters;
        c.host_bytes.fetch_add(len, Ordering::Relaxed);
        match kind {
            RecordKind::Put => c.put_records.fetch_add(1, Ordering::Relaxed),
            RecordKind::Tombstone => c.tombstone_records.fetch_add(1, Ordering::Relaxed),
        };

        let seq = self.seq;
        self.seq += 1;
        if self.faults.crash_after_append(seq) {
            let torn = self.faults.torn_tail_bytes(seq).min(len);
            if torn > 0 {
                let keep = SEGMENT_HEADER_LEN + self.active_bytes + (len - torn);
                let _ = self.backend.truncate(self.active, keep);
            }
            return WriterStep::Crashed;
        }

        {
            let mut ix = self.shared.index.lock();
            match kind {
                RecordKind::Put => {
                    ix.apply_put(key, Location { segment: self.active, offset, len })
                }
                RecordKind::Tombstone => ix.apply_tombstone(key, self.active, len),
            }
        }
        match kind {
            RecordKind::Put => c.acked_puts.fetch_add(1, Ordering::Relaxed),
            RecordKind::Tombstone => c.acked_removes.fetch_add(1, Ordering::Relaxed),
        };
        self.active_bytes += len;
        WriterStep::Ok
    }

    /// Append one GC rewrite into the active segment (no fault seam, no
    /// host accounting) and return its location.
    fn append_gc(
        &mut self,
        key: u64,
        kind: RecordKind,
        payload: &[u8],
    ) -> Result<Location, StoreError> {
        self.maybe_roll()?;
        self.buf.clear();
        let len = encode_record(key, kind, payload, &mut self.buf);
        self.backend.append(self.active, &self.buf)?;
        let loc =
            Location { segment: self.active, offset: SEGMENT_HEADER_LEN + self.active_bytes, len };
        self.active_bytes += len;
        self.shared.counters.gc_bytes.fetch_add(len, Ordering::Relaxed);
        Ok(loc)
    }

    /// One compaction pass: pick the deadest sealed segment, rewrite what
    /// is still needed from it (live puts; tombstones that still shadow an
    /// older put elsewhere), then delete it. Rewritten bytes are the GC
    /// half of the measured write amplification.
    fn compact_once(&mut self) -> Result<CompactReport, StoreError> {
        let victim = {
            let ix = self.shared.index.lock();
            ix.deadest_segment()
        };
        let Some((victim, _)) = victim else {
            return Ok(CompactReport::default());
        };
        let bytes = self.backend.read_all(victim)?;
        if bytes.len() < SEGMENT_HEADER_LEN as usize || bytes[..4] != SEGMENT_MAGIC {
            return Err(StoreError::Corrupt(format!("compaction victim {victim}: bad header")));
        }

        // Pass 1: how many put records for each key live *in this segment*
        // (any version), so pass 2 can tell whether a tombstone still
        // shadows a put in some other segment.
        let mut puts_here: FxHashMap<u64, u32> = FxHashMap::default();
        let mut offset = SEGMENT_HEADER_LEN;
        while (offset as usize) < bytes.len() {
            let (record, consumed) = decode_record(&bytes[offset as usize..]).map_err(|e| {
                StoreError::Corrupt(format!(
                    "compaction victim {victim}: record at {offset} unreadable: {e}"
                ))
            })?;
            if record.kind == RecordKind::Put {
                *puts_here.entry(record.key).or_insert(0) += 1;
            }
            offset += consumed;
        }

        // Pass 2: rewrite what must survive.
        let mut report = CompactReport { victim: Some(victim), ..CompactReport::default() };
        let mut offset = SEGMENT_HEADER_LEN;
        while (offset as usize) < bytes.len() {
            let (record, consumed) = decode_record(&bytes[offset as usize..])
                .map_err(|e| StoreError::Corrupt(format!("victim {victim} reread: {e}")))?;
            let from = Location { segment: victim, offset, len: consumed };
            match record.kind {
                RecordKind::Put => {
                    let is_current = self.shared.index.lock().get(record.key) == Some(from);
                    if is_current {
                        let to = self.append_gc(record.key, RecordKind::Put, record.payload)?;
                        report.rewritten_bytes += consumed;
                        report.rewritten_records += 1;
                        self.shared.index.lock().relocate(record.key, from, to);
                    }
                }
                RecordKind::Tombstone => {
                    let shadows_elsewhere = {
                        let ix = self.shared.index.lock();
                        ix.get(record.key).is_none()
                            && ix.puts_on_disk(record.key)
                                > puts_here.get(&record.key).copied().unwrap_or(0)
                    };
                    if shadows_elsewhere {
                        self.append_gc(record.key, RecordKind::Tombstone, &[])?;
                        report.rewritten_bytes += consumed;
                        report.rewritten_records += 1;
                    }
                }
            }
            offset += consumed;
        }

        // Reclaim: exclusive `io` so no reader holds a location into the
        // victim across its deletion.
        {
            let _io = self.shared.io.write();
            self.backend.delete(victim)?;
            self.shared.index.lock().forget_segment(victim, &puts_here);
        }
        report.reclaimed_bytes = (bytes.len() as u64).saturating_sub(report.rewritten_bytes);
        let c = &self.shared.counters;
        c.compactions.fetch_add(1, Ordering::Relaxed);
        c.segments_deleted.fetch_add(1, Ordering::Relaxed);
        c.rewritten_records.fetch_add(report.rewritten_records, Ordering::Relaxed);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::fault::{CrashAt, NoStoreFaults};

    fn cfg(segment_bytes: u64) -> StoreConfig {
        StoreConfig { segment_bytes, queue_depth: 8, compact_trigger: None }
    }

    fn open_mem(backend: &MemBackend, cfg: StoreConfig) -> (SegmentStore, RecoveryReport) {
        SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults)).expect("open")
    }

    fn payload(key: u64, len: usize) -> Vec<u8> {
        let word = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes();
        (0..len).map(|i| word[i % 8]).collect()
    }

    #[test]
    fn put_get_remove_round_trip() {
        let backend = MemBackend::new();
        let (store, rec) = open_mem(&backend, cfg(1 << 20));
        assert_eq!(rec, RecoveryReport::default());
        for k in 0..100u64 {
            store.put(k, &payload(k, 64 + (k as usize % 32))).unwrap();
        }
        store.remove(17).unwrap();
        store.flush().unwrap();
        assert_eq!(store.get(3).unwrap().unwrap(), payload(3, 67));
        assert_eq!(store.get(17).unwrap(), None);
        assert_eq!(store.get(1000).unwrap(), None);
        let s = store.stats();
        assert_eq!(s.acked_puts, 100);
        assert_eq!(s.acked_removes, 1);
        assert_eq!(s.live_records, 99);
        assert_eq!(s.gc_bytes, 0);
        assert!((s.write_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segments_roll_and_recovery_rebuilds_the_index() {
        let backend = MemBackend::new();
        let entries = {
            let (store, _) = open_mem(&backend, cfg(2_000));
            for k in 0..200u64 {
                store.put(k, &payload(k, 100)).unwrap();
            }
            for k in 0..50u64 {
                store.remove(k).unwrap();
            }
            store.flush().unwrap();
            assert!(store.stats().segments > 3, "tiny segments must roll");
            store.live_entries()
        }; // store dropped = clean shutdown

        let (reopened, rec) = open_mem(&backend, cfg(2_000));
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 150);
        assert_eq!(reopened.live_entries(), entries, "recovery must rebuild the exact index");
        assert_eq!(reopened.get(10).unwrap(), None, "tombstones survive recovery");
        assert_eq!(reopened.get(60).unwrap().unwrap(), payload(60, 100));
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_reports_wa() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(4_000));
        for k in 0..200u64 {
            store.put(k, &payload(k, 100)).unwrap();
        }
        // Overwrite the first half: their old records go dead.
        for k in 0..100u64 {
            store.put(k, &payload(k, 80)).unwrap();
        }
        store.flush().unwrap();
        let before = store.stats();
        assert!(before.segments > 2);

        let mut rewritten = 0u64;
        let mut compactions = 0;
        while compactions < 10 {
            let r = store.compact().unwrap();
            let Some(_) = r.victim else { break };
            rewritten += r.rewritten_bytes;
            compactions += 1;
            if store.stats().segments <= 2 {
                break;
            }
        }
        let after = store.stats();
        assert!(after.compactions > 0);
        assert_eq!(after.gc_bytes, rewritten);
        assert!(after.write_amplification() > 1.0, "rewrites must show up as WA");
        // Every key still readable with its latest value.
        for k in 0..200u64 {
            let want = if k < 100 { payload(k, 80) } else { payload(k, 100) };
            assert_eq!(store.get(k).unwrap().unwrap(), want, "key {k}");
        }
        // And the store still recovers cleanly after compaction.
        let entries = store.live_entries();
        drop(store);
        let (reopened, rec) = open_mem(&backend, cfg(4_000));
        assert!(!rec.torn_tail);
        assert_eq!(reopened.live_entries().len(), entries.len());
        for k in 0..200u64 {
            let want = if k < 100 { payload(k, 80) } else { payload(k, 100) };
            assert_eq!(reopened.get(k).unwrap().unwrap(), want, "post-recovery key {k}");
        }
    }

    #[test]
    fn tombstones_still_shadowing_older_puts_are_rewritten() {
        let backend = MemBackend::new();
        // Tiny segments: each handful of records rolls a segment.
        let (store, _) = open_mem(&backend, cfg(300));
        store.put(1, &payload(1, 100)).unwrap(); // seg A
        store.put(2, &payload(2, 100)).unwrap();
        store.put(3, &payload(3, 100)).unwrap(); // rolls
        store.remove(1).unwrap(); // tombstone lands in a later segment
        store.put(4, &payload(4, 100)).unwrap();
        store.put(5, &payload(5, 100)).unwrap();
        store.flush().unwrap();

        // Compact until only the active segment remains (or progress stops);
        // at every intermediate state key 1 must stay deleted.
        for _ in 0..20 {
            let r = store.compact().unwrap();
            if r.victim.is_none() {
                break;
            }
            assert_eq!(store.get(1).unwrap(), None, "tombstone must not be lost");
        }
        let entries = store.live_entries();
        drop(store);
        let (reopened, _) = open_mem(&backend, cfg(300));
        assert_eq!(reopened.get(1).unwrap(), None, "deletion survives recovery after GC");
        assert_eq!(reopened.live_entries().len(), entries.len());
    }

    #[test]
    fn auto_compaction_triggers_on_dead_fraction() {
        let backend = MemBackend::new();
        let cfg = StoreConfig { segment_bytes: 2_000, queue_depth: 8, compact_trigger: Some(0.5) };
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), cfg, Arc::new(NoStoreFaults))
                .expect("open");
        // Heavy overwrite churn on a small key range: most sealed bytes die.
        for round in 0..20u64 {
            for k in 0..20u64 {
                store.put(k, &payload(k ^ round, 100)).unwrap();
            }
        }
        store.flush().unwrap();
        let s = store.stats();
        assert!(s.compactions > 0, "auto-compaction must have fired: {s:?}");
        assert!(s.segments_deleted > 0);
        assert!(s.write_amplification() > 1.0);
        assert!(
            s.segments < s.segments_created,
            "space must be reclaimed: {} segments of {} created",
            s.segments,
            s.segments_created
        );
    }

    #[test]
    fn crash_between_append_and_index_update_loses_only_the_ack() {
        let backend = MemBackend::new();
        let plan = CrashAt { seq: 10, torn_tail: 0 };
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), cfg(1 << 20), Arc::new(plan))
                .expect("open");
        for k in 0..100u64 {
            if store.put(k, &payload(k, 50)).is_err() {
                break;
            }
        }
        // Wait for the writer to die; puts eventually fail.
        while !store.is_crashed() {
            std::thread::yield_now();
        }
        assert!(store.put(999, b"x").is_err());
        let stats = store.stats();
        assert_eq!(stats.acked_puts, 10, "exactly the pre-crash appends are acked");
        drop(store);

        // Recovery sees the 11th record (durably appended, never acked).
        let (reopened, rec) = open_mem(&backend, cfg(1 << 20));
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 11);
        assert_eq!(reopened.get(10).unwrap().unwrap(), payload(10, 50));
    }

    #[test]
    fn flush_enqueued_around_a_crash_errors_instead_of_hanging() {
        // Regression: a `Cmd::Flush` buffered in the channel when the
        // writer crashes must have its reply sender dropped by the crash
        // drain — otherwise the caller's recv() waits forever on a reply
        // that can never come.
        for seq in 0..6u64 {
            let backend = MemBackend::new();
            let plan = CrashAt { seq, torn_tail: 0 };
            let (store, _) =
                SegmentStore::open(Arc::new(backend.clone()), cfg(1 << 20), Arc::new(plan))
                    .expect("open");
            // Fill the queue past the crash point, then race a flush in.
            for k in 0..8u64 {
                if store.put(k, &payload(k, 40)).is_err() {
                    break;
                }
            }
            assert!(store.flush().is_err(), "flush after crash at seq {seq}");
            assert!(matches!(store.compact(), Err(StoreError::Crashed)));
            assert!(store.is_crashed());
        }
    }

    #[test]
    fn removing_a_key_that_was_never_put_is_a_durable_no_op() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(1 << 20));
        store.remove(42).unwrap();
        store.put(1, &payload(1, 30)).unwrap();
        store.remove(42).unwrap();
        store.flush().unwrap();
        assert_eq!(store.get(42).unwrap(), None);
        let s = store.stats();
        assert_eq!(s.acked_removes, 2);
        assert_eq!(s.live_records, 1);
        drop(store);
        // The tombstones are real records: recovery replays them cleanly.
        let (reopened, rec) = open_mem(&backend, cfg(1 << 20));
        assert!(!rec.torn_tail);
        assert_eq!(rec.live_records, 1);
        assert_eq!(reopened.get(42).unwrap(), None);
        assert_eq!(reopened.get(1).unwrap().unwrap(), payload(1, 30));
    }

    #[test]
    fn torn_tail_record_is_truncated_on_recovery() {
        let backend = MemBackend::new();
        let plan = CrashAt { seq: 5, torn_tail: 7 }; // tear 7 bytes off record 5
        let (store, _) =
            SegmentStore::open(Arc::new(backend.clone()), cfg(1 << 20), Arc::new(plan))
                .expect("open");
        for k in 0..100u64 {
            if store.put(k, &payload(k, 50)).is_err() {
                break;
            }
        }
        while !store.is_crashed() {
            std::thread::yield_now();
        }
        drop(store);

        let (reopened, rec) = open_mem(&backend, cfg(1 << 20));
        assert!(rec.torn_tail, "the partial record must be detected");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.live_records, 5, "torn record 5 is gone; 0..=4 survive");
        assert_eq!(reopened.get(4).unwrap().unwrap(), payload(4, 50));
        assert_eq!(reopened.get(5).unwrap(), None);
        // The repaired log is clean: a third open sees no tear.
        drop(reopened);
        let (_, rec2) = open_mem(&backend, cfg(1 << 20));
        assert!(!rec2.torn_tail);
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_silent_truncation() {
        let backend = MemBackend::new();
        {
            let (store, _) = open_mem(&backend, cfg(500));
            for k in 0..50u64 {
                store.put(k, &payload(k, 60)).unwrap();
            }
            store.flush().unwrap();
        }
        // Flip a byte in the middle of the FIRST segment (not the newest).
        let segments = backend.list().unwrap();
        assert!(segments.len() > 2);
        let first = segments[0];
        let mut bytes = backend.read_all(first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        backend.truncate(first, 0).unwrap();
        backend.append(first, &bytes).unwrap();

        let err = SegmentStore::open(Arc::new(backend.clone()), cfg(500), Arc::new(NoStoreFaults))
            .expect_err("mid-log corruption must fail the scan");
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn oversized_payload_is_rejected_at_the_door() {
        let backend = MemBackend::new();
        let (store, _) = open_mem(&backend, cfg(1 << 20));
        let big = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(store.put(1, &big), Err(StoreError::PayloadTooLarge(_))));
    }
}

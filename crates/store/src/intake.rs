//! Producer-side command intake: a mutex-staged batch queue between
//! store callers and the single writer thread.
//!
//! The per-record channel this replaced paid one cross-thread message
//! per command — on a single hardware thread that handoff (enqueue,
//! futex wake, reschedule) dominated the append path. Here callers push
//! commands under one short mutex hold and the writer steals the entire
//! staged vector in one lock acquisition, so the cross-thread machinery
//! is paid once per *batch*. A bounded(1) token channel carries only
//! wakeups: the writer marks itself idle under the staging lock just
//! before it blocks, and the first producer to push into an idle intake
//! clears the flag and owns sending the single token. Because the flag
//! only ever flips writer→set, producer→clear, at most one token is in
//! flight and `bounded(1)` can never block a producer.
//!
//! Ordering: the staging mutex gives commands a total order (push order
//! is lock-acquisition order) and the writer consumes strictly in that
//! order — no producer can reorder around another, which the fault-seam
//! clock and per-key index correctness both rely on.
//!
//! Backpressure: `cap` bounds the staged-and-unstolen commands; a
//! producer blocks on the `space` condvar while the intake is full and
//! is released by the writer's next steal (or drain, on the crash and
//! shutdown paths).

use parking_lot::{Condvar, Mutex};

pub(crate) struct Intake<T> {
    state: Mutex<IntakeState<T>>,
    /// Signalled on every steal/drain: producers blocked on a full
    /// intake re-check capacity.
    space: Condvar,
    cap: usize,
}

struct IntakeState<T> {
    cmds: Vec<T>,
    /// Set by the writer (under the lock, with `cmds` empty) just before
    /// it blocks on the wake channel; cleared by the producer that takes
    /// responsibility for waking it.
    writer_idle: bool,
}

impl<T> Intake<T> {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(IntakeState { cmds: Vec::new(), writer_idle: false }),
            space: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Stage one command, blocking while the intake is at capacity.
    /// Returns whether the caller must send the wake token (the writer
    /// declared itself idle and is blocking — or about to block — on the
    /// wake channel).
    #[must_use]
    pub(crate) fn push(&self, cmd: T) -> bool {
        let mut st = self.state.lock();
        while st.cmds.len() >= self.cap {
            // A condvar wait atomically releases the guard for its whole
            // sleep; the textual rule cannot see that, so this is the
            // pattern's one sanctioned blocking point.
            // otae-lint: allow(no-blocking-under-lock)
            self.space.wait(&mut st);
        }
        st.cmds.push(cmd);
        std::mem::take(&mut st.writer_idle)
    }

    /// Writer side: swap the whole staged batch into `into` (which must
    /// be empty) and return true, or — when nothing is staged — set the
    /// idle flag, telling the next producer to wake us, and return
    /// false. Setting the flag and observing emptiness under one guard
    /// is what makes the sleep race-free: any push after this call sees
    /// the flag and sends the token.
    pub(crate) fn steal_or_idle(&self, into: &mut Vec<T>) -> bool {
        debug_assert!(into.is_empty(), "steal target must be drained first");
        let mut st = self.state.lock();
        if st.cmds.is_empty() {
            st.writer_idle = true;
            return false;
        }
        std::mem::swap(&mut st.cmds, into);
        self.space.notify_all();
        true
    }

    /// Writer side: unconditionally take whatever is staged (crash and
    /// shutdown drains), releasing any producer blocked on capacity.
    pub(crate) fn drain(&self) -> Vec<T> {
        let mut st = self.state.lock();
        self.space.notify_all();
        std::mem::take(&mut st.cmds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_reports_the_idle_transition_exactly_once() {
        let intake = Intake::new(8);
        let mut batch = Vec::new();
        assert!(!intake.steal_or_idle(&mut batch), "empty intake idles the writer");
        assert!(intake.push(1), "first push after idle owns the wake");
        assert!(!intake.push(2), "second push sees the flag already cleared");
        assert!(intake.steal_or_idle(&mut batch));
        assert_eq!(batch, [1, 2]);
    }

    #[test]
    fn steal_preserves_push_order_and_recycles_the_buffer() {
        let intake = Intake::new(16);
        for i in 0..10 {
            let _ = intake.push(i);
        }
        let mut batch = Vec::with_capacity(16);
        assert!(intake.steal_or_idle(&mut batch));
        assert_eq!(batch, (0..10).collect::<Vec<_>>());
        batch.clear();
        assert!(!intake.steal_or_idle(&mut batch), "stolen-empty intake idles");
    }

    #[test]
    fn full_intake_blocks_until_the_writer_steals() {
        let intake = Arc::new(Intake::new(2));
        let _ = intake.push(1);
        let _ = intake.push(2);
        let producer = {
            let intake = Arc::clone(&intake);
            std::thread::spawn(move || {
                let _ = intake.push(3); // blocks until a steal frees space
            })
        };
        let mut seen = Vec::new();
        let mut batch = Vec::new();
        while seen.len() < 3 {
            if intake.steal_or_idle(&mut batch) {
                seen.append(&mut batch);
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, [1, 2, 3]);
    }

    #[test]
    fn drain_takes_everything_and_never_idles() {
        let intake = Intake::new(4);
        let _ = intake.push("a");
        assert_eq!(intake.drain(), ["a"]);
        assert!(intake.drain().is_empty());
        // A drain on an empty intake must not set the idle flag: the
        // next push owes no token.
        assert!(!intake.push("b"));
    }
}

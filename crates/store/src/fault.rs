//! Crash-fault seams for the segment writer.
//!
//! The writer consults the plan at exactly one point: *after* a host record
//! has been durably appended to the active segment and *before* the index
//! is updated and the write acknowledged. That is the only window in which
//! an append-only store can disagree with its index, and therefore the
//! window every recovery invariant is stated against (DESIGN.md §12).

/// Scripted crash behaviour, consulted once per appended host record.
/// `seq` is the 0-based append sequence number (puts and tombstones share
/// the counter), so schedules replay bit-exactly from the operation order.
pub trait StoreFaultPlan: std::fmt::Debug + Send + Sync {
    /// Return `true` to kill the writer after record `seq` hit the segment
    /// but before the index/acknowledgement update. The store is then
    /// permanently crashed: queued and future operations fail with
    /// [`StoreError::Crashed`](crate::StoreError::Crashed).
    fn crash_after_append(&self, seq: u64) -> bool {
        let _ = seq;
        false
    }

    /// When the crash at `seq` fires, how many tail bytes of the active
    /// segment are torn away (simulating a record that never fully reached
    /// the medium). Capped at the just-appended record's length: an
    /// append-only store may lose its in-flight record but never an
    /// acknowledged one.
    fn torn_tail_bytes(&self, seq: u64) -> u64 {
        let _ = seq;
        0
    }
}

/// The default plan: no crashes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoStoreFaults;

impl StoreFaultPlan for NoStoreFaults {}

/// Crash once at a fixed sequence number, optionally tearing tail bytes.
#[derive(Debug, Clone, Copy)]
pub struct CrashAt {
    /// Sequence number of the fatal append.
    pub seq: u64,
    /// Tail bytes to tear off the active segment when the crash fires
    /// (clamped to the in-flight record).
    pub torn_tail: u64,
}

impl StoreFaultPlan for CrashAt {
    fn crash_after_append(&self, seq: u64) -> bool {
        seq == self.seq
    }

    fn torn_tail_bytes(&self, seq: u64) -> u64 {
        if seq == self.seq {
            self.torn_tail
        } else {
            0
        }
    }
}

//! Per-segment file-handle cache for the [`FileBackend`].
//!
//! The PR-6 read path opened, seeked, and read a file per `get`, and the
//! append path reopened the active segment per record — three syscalls of
//! pure overhead around every positioned read. This cache keeps one shared
//! read handle and one `O_APPEND` write handle per segment so the hot
//! paths reduce to a single `pread`/`write`.
//!
//! Lock discipline (enforced by otae-lint's no-blocking-under-lock rule):
//! the cache map's mutex is held only for lookup/insert of `Arc<File>`
//! clones — file opens always happen **outside** the lock, and a lost
//! insert race simply drops the loser's handle and adopts the winner's.
//!
//! [`FileBackend`]: crate::backend::FileBackend

use crate::backend::SegmentId;
use crate::StoreError;
use otae_fxhash::FxHashMap;
use parking_lot::Mutex;
use std::fs::File;
use std::sync::Arc;

/// Cached handles for one segment. Read and append handles are separate
/// because they carry different open modes; either may be populated
/// lazily.
#[derive(Debug, Default)]
struct SegmentHandles {
    read: Option<Arc<File>>,
    append: Option<Arc<File>>,
}

/// Bounded per-segment handle cache. When the map would exceed `cap`
/// distinct segments it is cleared wholesale — segment counts are small
/// (compaction deletes trail the roll rate), so eviction is a rare reset,
/// not a hot-path policy.
#[derive(Debug)]
pub(crate) struct HandleCache {
    map: Mutex<FxHashMap<SegmentId, SegmentHandles>>,
    cap: usize,
}

impl HandleCache {
    /// Empty cache holding at most `cap` segments' handles.
    pub fn new(cap: usize) -> Self {
        Self { map: Mutex::new(FxHashMap::default()), cap: cap.max(1) }
    }

    /// The shared read handle for `seg`, opening via `open` on first use.
    pub fn read_handle(
        &self,
        seg: SegmentId,
        open: impl FnOnce() -> Result<File, StoreError>,
    ) -> Result<Arc<File>, StoreError> {
        if let Some(h) = self.map.lock().get(&seg).and_then(|s| s.read.clone()) {
            return Ok(h);
        }
        // Open with no lock held; re-lock only to publish the handle.
        let opened = Arc::new(open()?);
        let mut map = self.map.lock();
        self.make_room(&mut map, seg);
        Ok(map.entry(seg).or_default().read.get_or_insert(opened).clone())
    }

    /// The shared append handle for `seg`, opening via `open` on first
    /// use. Callers open in append mode so the kernel positions every
    /// write at the tail regardless of handle sharing.
    pub fn append_handle(
        &self,
        seg: SegmentId,
        open: impl FnOnce() -> Result<File, StoreError>,
    ) -> Result<Arc<File>, StoreError> {
        if let Some(h) = self.map.lock().get(&seg).and_then(|s| s.append.clone()) {
            return Ok(h);
        }
        let opened = Arc::new(open()?);
        let mut map = self.map.lock();
        self.make_room(&mut map, seg);
        Ok(map.entry(seg).or_default().append.get_or_insert(opened).clone())
    }

    /// Drop any cached handles for `seg` (segment deleted or recreated).
    pub fn invalidate(&self, seg: SegmentId) {
        self.map.lock().remove(&seg);
    }

    fn make_room(&self, map: &mut FxHashMap<SegmentId, SegmentHandles>, seg: SegmentId) {
        if map.len() >= self.cap && !map.contains_key(&seg) {
            map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("otae-handles-{}-{tag}", std::process::id()))
    }

    #[test]
    fn handles_are_shared_and_invalidation_drops_them() {
        let path = temp_file("share");
        std::fs::write(&path, b"hello").unwrap();
        let cache = HandleCache::new(8);
        let a = cache.read_handle(3, || Ok(File::open(&path).unwrap())).unwrap();
        let b = cache.read_handle(3, || panic!("second lookup must hit the cache")).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same segment shares one handle");
        cache.invalidate(3);
        let c = cache.read_handle(3, || Ok(File::open(&path).unwrap())).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "invalidation forces a reopen");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_is_bounded() {
        let path = temp_file("bound");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"x").unwrap();
        drop(f);
        let cache = HandleCache::new(2);
        for seg in 0..10u32 {
            cache.read_handle(seg, || Ok(File::open(&path).unwrap())).unwrap();
            assert!(cache.map.lock().len() <= 2, "cap must hold at seg {seg}");
        }
        let _ = std::fs::remove_file(&path);
    }
}

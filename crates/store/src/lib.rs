//! # otae-store — append-only SSD-backed segment store
//!
//! The value store under `otae-serve`'s shards: what actually absorbs the
//! byte stream the paper's admission gate is trying to shrink. Objects are
//! framed as checksummed records ([`record`]) appended to hash-prefixed
//! segment files ([`backend`]); a background [`SegmentStore`] writer
//! steals batches off a **bounded** command intake (`intake.rs` — explicit
//! backpressure, one cross-thread wakeup per batch), rolls segments at a
//! size threshold, and compacts the deadest sealed segment when dead bytes
//! pile up. The in-memory index ([`index`]) is rebuilt on open by a
//! recovery scan that tolerates one torn tail record — the only damage a
//! crash can legitimately leave behind.
//!
//! ```text
//!   put/remove ──staged intake──▶ writer thread ──append──▶ seg-N (active)
//!                                   │   ▲                   seg-… (sealed)
//!                            index update                     │
//!                          (ack after append)            compaction:
//!                                                     rewrite live records,
//!                                                     delete victim
//! ```
//!
//! Every byte handed to the backend is counted: `host_bytes` (caller puts
//! and tombstones) and `gc_bytes` (compaction rewrites) make
//! [`StoreStats::write_amplification`] a *measured* quantity, exported as
//! an [`otae_device::WearLedger`] so SSD-lifetime projections run on the
//! real write stream instead of a synthetic counter.
//!
//! Determinism seams: the [`Backend`] trait has an `Arc`-shared in-memory
//! implementation ([`MemBackend`]) whose bytes survive a dropped store, so
//! harness oracles can crash (via a scripted [`StoreFaultPlan`]) and
//! reopen the same "device" with no filesystem, wall clock, or entropy
//! involved.

#![warn(missing_docs)]

pub mod backend;
pub mod fault;
pub(crate) mod handles;
pub mod index;
pub(crate) mod intake;
pub mod record;
pub mod store;
pub(crate) mod write_buffer;

pub use backend::{Backend, FileBackend, MemBackend, SegmentId};
pub use fault::{CrashAt, NoStoreFaults, StoreFaultPlan};
pub use index::{Location, SegmentInfo, StoreIndex};
pub use record::{
    crc32, decode_record, encode_record, Record, RecordError, RecordKind, HEADER_LEN, MAX_PAYLOAD,
};
pub use store::{
    CompactReport, RecoveryReport, SegmentStore, StoreConfig, StoreError, StoreStats,
    SEGMENT_HEADER_LEN, SEGMENT_MAGIC, SEGMENT_VERSION,
};

/// Compile-time thread-safety guarantees: the store is shared across shard
/// threads and its writer; a `!Send` type slipping into the store fails
/// compilation here rather than at a distant spawn site.
#[allow(dead_code)]
mod thread_safety_assertions {
    use super::*;

    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}

    const _: () = {
        assert_send_sync::<SegmentStore>();
        assert_send_sync::<MemBackend>();
        assert_send_sync::<FileBackend>();
        assert_send_sync::<NoStoreFaults>();
        assert_send_sync::<std::sync::Arc<dyn Backend>>();
        assert_send_sync::<std::sync::Arc<dyn StoreFaultPlan>>();
        assert_send::<StoreStats>();
    };
}

//! Per-record framing for segment files: fixed header with independent
//! header and payload checksums.
//!
//! Layout of one record (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  key
//!      8     4  payload length
//!     12     1  kind (0 = put, 1 = tombstone)
//!     13     4  CRC32 of the payload
//!     17     4  CRC32 of bytes 0..17 (the header)
//!     21     n  payload
//! ```
//!
//! The header checksum makes a torn header distinguishable from garbage;
//! the payload checksum makes a torn or bit-flipped payload detectable even
//! when the header survived intact. Decoding follows the hardening rules of
//! `otae_trace::codec`: every length is validated with widened arithmetic
//! before any slice is taken, truncation at *any* byte offset is rejected,
//! and trailing bytes after the framed payload are the next record's
//! problem, never silently consumed.

/// Bytes in a record header.
pub const HEADER_LEN: usize = 21;

/// Sanity cap on a single payload (64 MiB). A valid-header record claiming
/// more than this is treated as corruption, bounding what a recovery scan
/// will attempt to buffer.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Record type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A value write for the key.
    Put,
    /// A deletion marker for the key.
    Tombstone,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Put => 0,
            RecordKind::Tombstone => 1,
        }
    }
}

/// Why a record failed to decode. `Truncated` is the only variant a clean
/// crash can produce (a torn tail); the others indicate bit rot or a
/// foreign byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than the header + payload the header declares. The
    /// payload field carries how many bytes were needed.
    Truncated {
        /// Bytes required to finish decoding.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// Header checksum mismatch: the header bytes themselves are damaged.
    BadHeaderCrc,
    /// Payload checksum mismatch under an intact header.
    BadPayloadCrc,
    /// Unknown record kind byte under an intact header checksum.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    OversizedPayload(u32),
    /// Tombstones carry no payload; a nonzero length is corruption.
    TombstoneWithPayload(u32),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated { needed, have } => {
                write!(f, "truncated record: need {needed} bytes, have {have}")
            }
            RecordError::BadHeaderCrc => write!(f, "record header checksum mismatch"),
            RecordError::BadPayloadCrc => write!(f, "record payload checksum mismatch"),
            RecordError::BadKind(k) => write!(f, "unknown record kind {k}"),
            RecordError::OversizedPayload(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            RecordError::TombstoneWithPayload(n) => {
                write!(f, "tombstone with nonzero payload length {n}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// One decoded record, borrowing its payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    /// The record's key.
    pub key: u64,
    /// Put or tombstone.
    pub kind: RecordKind,
    /// Payload bytes (empty for tombstones).
    pub payload: &'a [u8],
}

impl Record<'_> {
    /// Total encoded length of this record (header + payload).
    pub fn encoded_len(&self) -> u64 {
        HEADER_LEN as u64 + self.payload.len() as u64
    }
}

// CRC32 (IEEE 802.3 polynomial, reflected), slicing-by-8: eight derived
// tables generated at compile time so the hot paths (append encode, read
// verify, recovery scan) fold 8 input bytes per iteration instead of 1.
// Table 0 is the classic byte-at-a-time table; table k maps "byte fed k
// steps earlier", so one round combines eight lookups with XOR. The
// produced values are bit-identical to the byte-wise walk (the known-vector
// test below pins them).
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append the framed record to `out`, returning the encoded length. The
/// only failure is an oversized or misshapen record, which callers
/// construct — so the signature stays infallible and the invariants are
/// asserted in debug builds only (release appends a clamped record rather
/// than unwinding a writer thread).
pub fn encode_record(key: u64, kind: RecordKind, payload: &[u8], out: &mut Vec<u8>) -> u64 {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64, "payload exceeds cap");
    debug_assert!(
        kind == RecordKind::Put || payload.is_empty(),
        "tombstones must carry no payload"
    );
    let len = (payload.len() as u64).min(MAX_PAYLOAD as u64) as u32;
    let payload = &payload[..len as usize];
    let start = out.len();
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind.to_byte());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out[start..start + HEADER_LEN - 4]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    (out.len() - start) as u64
}

/// Decode one record from the front of `buf`, returning it and the number
/// of bytes consumed. Never reads past the framed payload: bytes after it
/// belong to the next record.
pub fn decode_record(buf: &[u8]) -> Result<(Record<'_>, u64), RecordError> {
    if buf.len() < HEADER_LEN {
        return Err(RecordError::Truncated { needed: HEADER_LEN as u64, have: buf.len() as u64 });
    }
    let header = &buf[..HEADER_LEN];
    let stored_header_crc = u32::from_le_bytes([header[17], header[18], header[19], header[20]]);
    if crc32(&header[..HEADER_LEN - 4]) != stored_header_crc {
        return Err(RecordError::BadHeaderCrc);
    }
    let key = u64::from_le_bytes([
        header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7],
    ]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let kind = match header[12] {
        0 => RecordKind::Put,
        1 => RecordKind::Tombstone,
        k => return Err(RecordError::BadKind(k)),
    };
    if len > MAX_PAYLOAD {
        return Err(RecordError::OversizedPayload(len));
    }
    if kind == RecordKind::Tombstone && len != 0 {
        return Err(RecordError::TombstoneWithPayload(len));
    }
    // Widened total so `header + payload` cannot wrap on 32-bit targets.
    let total = HEADER_LEN as u64 + len as u64;
    if (buf.len() as u64) < total {
        return Err(RecordError::Truncated { needed: total, have: buf.len() as u64 });
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len as usize];
    let stored_payload_crc = u32::from_le_bytes([header[13], header[14], header[15], header[16]]);
    if crc32(payload) != stored_payload_crc {
        return Err(RecordError::BadPayloadCrc);
    }
    Ok((Record { key, kind, payload }, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_crc_equals_bytewise_at_every_length() {
        // The slicing-by-8 fold must agree with the reference byte walk on
        // every remainder length (0..8) and across chunk boundaries.
        fn bytewise(data: &[u8]) -> u32 {
            let mut crc = u32::MAX;
            for &b in data {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn round_trip_put_and_tombstone() {
        let mut buf = Vec::new();
        let n1 = encode_record(42, RecordKind::Put, b"hello", &mut buf);
        let n2 = encode_record(7, RecordKind::Tombstone, b"", &mut buf);
        assert_eq!(n1, HEADER_LEN as u64 + 5);
        assert_eq!(n2, HEADER_LEN as u64);

        let (r1, c1) = decode_record(&buf).expect("first record");
        assert_eq!(r1, Record { key: 42, kind: RecordKind::Put, payload: b"hello" });
        assert_eq!(c1, n1);
        let (r2, c2) = decode_record(&buf[c1 as usize..]).expect("second record");
        assert_eq!(r2, Record { key: 7, kind: RecordKind::Tombstone, payload: b"" });
        assert_eq!(c2, n2);
    }

    #[test]
    fn truncation_at_every_offset_is_rejected() {
        let mut buf = Vec::new();
        encode_record(99, RecordKind::Put, b"payload bytes", &mut buf);
        for cut in 0..buf.len() {
            let err = decode_record(&buf[..cut]).expect_err("truncated input must fail");
            assert!(
                matches!(err, RecordError::Truncated { .. } | RecordError::BadHeaderCrc),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
        assert!(decode_record(&buf).is_ok());
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut clean = Vec::new();
        encode_record(5, RecordKind::Put, b"abcdef", &mut clean);
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            assert!(decode_record(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_record() {
        let mut buf = Vec::new();
        let n = encode_record(1, RecordKind::Put, b"xy", &mut buf);
        buf.extend_from_slice(&[0xAB; 7]); // garbage after the record
        let (r, consumed) = decode_record(&buf).expect("leading record intact");
        assert_eq!(consumed, n);
        assert_eq!(r.payload, b"xy");
        // The garbage itself fails as the next record.
        assert!(decode_record(&buf[consumed as usize..]).is_err());
    }

    #[test]
    fn bad_kind_and_oversized_len_are_corruption_not_truncation() {
        // Hand-build a header with a valid header CRC but a bad kind.
        let mut buf = Vec::new();
        encode_record(3, RecordKind::Put, b"", &mut buf);
        buf[12] = 9; // kind
        let crc = crc32(&buf[..HEADER_LEN - 4]);
        buf[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_record(&buf), Err(RecordError::BadKind(9)));

        let mut buf = Vec::new();
        encode_record(3, RecordKind::Put, b"", &mut buf);
        buf[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let crc = crc32(&buf[..HEADER_LEN - 4]);
        buf[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_record(&buf), Err(RecordError::OversizedPayload(MAX_PAYLOAD + 1)));
    }
}

//! Parallel experiment grids.
//!
//! The paper's figures sweep (policy × mode × capacity); runs are
//! independent, so they fan out over crossbeam scoped threads sharing one
//! reaccess index. Results return in the order of the input points,
//! regardless of scheduling.
//!
//! Proposal points additionally share the expensive capacity-independent
//! work: the feature stream is extracted once for the whole grid, and the
//! classifier is trained once per distinct `(M, v)` pair — points differing
//! only in capacity replay the same [`ModelSchedule`] instead of re-fitting
//! identical trees.

use crate::criteria::solve_criteria;
use crate::features::FeatureExtractor;
use crate::pipeline::{
    run_with_plan, Mode, ModelSchedule, PolicyKind, RunConfig, RunPlan, RunResult,
};
use crate::reaccess::ReaccessIndex;
use otae_trace::Trace;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Admission mode.
    pub mode: Mode,
    /// Cache capacity in bytes.
    pub capacity: u64,
}

/// Cartesian helper: all (policy × mode × capacity) combinations.
pub fn grid(policies: &[PolicyKind], modes: &[Mode], capacities: &[u64]) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(policies.len() * modes.len() * capacities.len());
    for &policy in policies {
        for &mode in modes {
            for &capacity in capacities {
                out.push(SweepPoint { policy, mode, capacity });
            }
        }
    }
    out
}

/// Run `job(i)` for every `i < n` across scoped worker threads and return
/// the results in index order. Each index has exactly one producer, so
/// results travel over a bounded channel sized to hold them all (sends
/// never block) and land in their slot with no per-slot locking.
fn indexed_parallel<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::bounded::<(usize, T)>(n);
    crossbeam::thread::scope(|scope| {
        let next = &next;
        let job = &job;
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Infallible: the receiver outlives the scope and the
                // channel holds all n results without blocking.
                let _ = tx.send((i, job(i)));
            });
        }
    })
    .expect("sweep worker panicked");
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    while let Ok((i, result)) = rx.try_recv() {
        slots[i] = Some(result);
    }
    slots.into_iter().map(|s| s.expect("every point completed")).collect()
}

/// Run every point in parallel (`threads = 0` uses available parallelism).
/// `base` supplies training/latency/criteria settings; its policy, mode and
/// capacity fields are overridden per point.
pub fn sweep(
    trace: &Trace,
    index: &ReaccessIndex,
    points: &[SweepPoint],
    base: &RunConfig,
    threads: usize,
) -> Vec<RunResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(points.len().max(1));

    // Capacity-independent shared inputs for Proposal points.
    let features = points
        .iter()
        .any(|p| p.mode == Mode::Proposal)
        .then(|| FeatureExtractor::extract_all(trace));
    let avg_size = trace.avg_object_size().max(1.0);
    let unique_bytes = trace.unique_bytes();
    // `(M, v)` fully determines training: labels come from `M`, tree costs
    // from `v`. Mirror exactly how a run resolves both.
    let key_of = |p: &SweepPoint| -> (u64, u32) {
        let solved = solve_criteria(index, p.capacity, avg_size, base.criteria_iterations);
        let criteria = if p.policy == PolicyKind::Lirs {
            solved.for_lirs(p.policy.stack_ratio())
        } else {
            solved
        };
        let m = base.m_override.unwrap_or(criteria.m);
        let v = base.training.cost.resolve(p.capacity, unique_bytes);
        (m, v.to_bits())
    };
    let mut keys: Vec<(u64, u32)> = Vec::new();
    let point_key: Vec<Option<usize>> = points
        .iter()
        .map(|p| {
            (p.mode == Mode::Proposal).then(|| {
                let key = key_of(p);
                keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                    keys.push(key);
                    keys.len() - 1
                })
            })
        })
        .collect();
    let schedules: Vec<ModelSchedule> = indexed_parallel(keys.len(), threads, |i| {
        let (m, v_bits) = keys[i];
        let feats = features.as_ref().expect("proposal points imply a feature stream");
        ModelSchedule::build(trace, index, feats, m, f32::from_bits(v_bits), &base.training)
    });

    indexed_parallel(points.len(), threads, |i| {
        let p = points[i];
        let cfg =
            RunConfig { policy: p.policy, mode: p.mode, capacity: p.capacity, ..base.clone() };
        let plan = RunPlan {
            features: point_key[i].and(features.as_deref()),
            schedule: point_key[i].map(|k| &schedules[k]),
        };
        run_with_plan(trace, index, &cfg, &plan)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_with_index;
    use otae_trace::{generate, TraceConfig};

    #[test]
    fn grid_enumerates_cartesian_product() {
        let g = grid(
            &[PolicyKind::Lru, PolicyKind::Fifo],
            &[Mode::Original, Mode::Ideal],
            &[100, 200, 300],
        );
        assert_eq!(g.len(), 12);
        assert_eq!(
            g[0],
            SweepPoint { policy: PolicyKind::Lru, mode: Mode::Original, capacity: 100 }
        );
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let trace = generate(&TraceConfig { n_objects: 2_000, seed: 17, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let cap = (trace.unique_bytes() as f64 * 0.03) as u64;
        let points = grid(
            &[PolicyKind::Lru, PolicyKind::Fifo],
            &[Mode::Original, Mode::Ideal],
            &[cap, cap * 2],
        );
        let base = RunConfig::new(PolicyKind::Lru, Mode::Original, cap);
        let par = sweep(&trace, &index, &points, &base, 4);
        assert_eq!(par.len(), points.len());
        for (point, result) in points.iter().zip(&par) {
            let cfg = RunConfig {
                policy: point.policy,
                mode: point.mode,
                capacity: point.capacity,
                ..base.clone()
            };
            let seq = run_with_index(&trace, &index, &cfg);
            assert_eq!(seq.stats, result.stats, "point {point:?} must be deterministic");
            assert_eq!(seq.policy, result.policy);
            assert_eq!(seq.capacity, result.capacity);
        }
    }

    #[test]
    fn proposal_sweep_shares_training_and_matches_sequential_runs() {
        // Proposal points across two capacities and a LIRS point (different
        // M, hence a distinct schedule) — every fingerprint must be
        // bit-identical to a standalone run that trains inline.
        let trace = generate(&TraceConfig { n_objects: 2_000, seed: 23, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let cap = (trace.unique_bytes() as f64 * 0.03) as u64;
        let mut points = grid(&[PolicyKind::Lru], &[Mode::Proposal], &[cap, cap * 2]);
        points.push(SweepPoint { policy: PolicyKind::Lirs, mode: Mode::Proposal, capacity: cap });
        let base = RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap);
        let par = sweep(&trace, &index, &points, &base, 4);
        for (point, result) in points.iter().zip(&par) {
            let cfg = RunConfig {
                policy: point.policy,
                mode: point.mode,
                capacity: point.capacity,
                ..base.clone()
            };
            let seq = run_with_index(&trace, &index, &cfg);
            assert_eq!(
                seq.fingerprint(),
                result.fingerprint(),
                "point {point:?} must match the inline-training run exactly"
            );
        }

        // With M pinned, every point resolves to the same (M, v) key: the
        // whole grid replays a single schedule. Results must still match
        // per-point inline training bit for bit.
        let mut pinned = base.clone();
        pinned.m_override = Some(200);
        let par = sweep(&trace, &index, &points, &pinned, 4);
        for (point, result) in points.iter().zip(&par) {
            let cfg = RunConfig {
                policy: point.policy,
                mode: point.mode,
                capacity: point.capacity,
                ..pinned.clone()
            };
            let seq = run_with_index(&trace, &index, &cfg);
            assert_eq!(
                seq.fingerprint(),
                result.fingerprint(),
                "pinned-M point {point:?} must match the inline-training run exactly"
            );
        }
    }

    #[test]
    fn sweep_handles_empty_points() {
        let trace = generate(&TraceConfig { n_objects: 100, seed: 1, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let base = RunConfig::new(PolicyKind::Lru, Mode::Original, 1000);
        assert!(sweep(&trace, &index, &[], &base, 2).is_empty());
    }
}

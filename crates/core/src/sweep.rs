//! Parallel experiment grids.
//!
//! The paper's figures sweep (policy × mode × capacity); runs are
//! independent, so they fan out over crossbeam scoped threads sharing one
//! reaccess index. Results return in the order of the input points,
//! regardless of scheduling.

use crate::pipeline::{run_with_index, Mode, PolicyKind, RunConfig, RunResult};
use crate::reaccess::ReaccessIndex;
use otae_trace::Trace;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Admission mode.
    pub mode: Mode,
    /// Cache capacity in bytes.
    pub capacity: u64,
}

/// Cartesian helper: all (policy × mode × capacity) combinations.
pub fn grid(policies: &[PolicyKind], modes: &[Mode], capacities: &[u64]) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(policies.len() * modes.len() * capacities.len());
    for &policy in policies {
        for &mode in modes {
            for &capacity in capacities {
                out.push(SweepPoint { policy, mode, capacity });
            }
        }
    }
    out
}

/// Run every point in parallel (`threads = 0` uses available parallelism).
/// `base` supplies training/latency/criteria settings; its policy, mode and
/// capacity fields are overridden per point.
pub fn sweep(
    trace: &Trace,
    index: &ReaccessIndex,
    points: &[SweepPoint],
    base: &RunConfig,
    threads: usize,
) -> Vec<RunResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(points.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunResult>>> =
        (0..points.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let p = points[i];
                let cfg = RunConfig {
                    policy: p.policy,
                    mode: p.mode,
                    capacity: p.capacity,
                    ..base.clone()
                };
                let result = run_with_index(trace, index, &cfg);
                *results[i].lock() = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");

    results.into_iter().map(|m| m.into_inner().expect("every point completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{generate, TraceConfig};

    #[test]
    fn grid_enumerates_cartesian_product() {
        let g = grid(
            &[PolicyKind::Lru, PolicyKind::Fifo],
            &[Mode::Original, Mode::Ideal],
            &[100, 200, 300],
        );
        assert_eq!(g.len(), 12);
        assert_eq!(
            g[0],
            SweepPoint { policy: PolicyKind::Lru, mode: Mode::Original, capacity: 100 }
        );
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let trace = generate(&TraceConfig { n_objects: 2_000, seed: 17, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let cap = (trace.unique_bytes() as f64 * 0.03) as u64;
        let points = grid(
            &[PolicyKind::Lru, PolicyKind::Fifo],
            &[Mode::Original, Mode::Ideal],
            &[cap, cap * 2],
        );
        let base = RunConfig::new(PolicyKind::Lru, Mode::Original, cap);
        let par = sweep(&trace, &index, &points, &base, 4);
        assert_eq!(par.len(), points.len());
        for (point, result) in points.iter().zip(&par) {
            let cfg = RunConfig {
                policy: point.policy,
                mode: point.mode,
                capacity: point.capacity,
                ..base.clone()
            };
            let seq = run_with_index(&trace, &index, &cfg);
            assert_eq!(seq.stats, result.stats, "point {point:?} must be deterministic");
            assert_eq!(seq.policy, result.policy);
            assert_eq!(seq.capacity, result.capacity);
        }
    }

    #[test]
    fn sweep_handles_empty_points() {
        let trace = generate(&TraceConfig { n_objects: 100, seed: 1, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let base = RunConfig::new(PolicyKind::Lru, Mode::Original, 1000);
        assert!(sweep(&trace, &index, &[], &base, 2).is_empty());
    }
}

//! Multi-server cache cluster — §2.1's "the Outside Cache layer consists of
//! many cache servers", made concrete.
//!
//! Objects are partitioned over `n` cache servers with a consistent-hash
//! ring (virtual nodes for balance); each server runs its own replacement
//! policy and its own admission state (per-server classifiers, as a fleet
//! would train locally). The module answers deployment questions the paper
//! leaves implicit:
//!
//! * how much hit rate does partitioning cost versus one big cache of the
//!   same total capacity (per-server `M` shrinks with per-server capacity);
//! * how uneven is the load across servers;
//! * what a mid-trace server failure costs, with and without
//!   one-time-access exclusion (remapped objects are all cold misses — a
//!   flood of effectively-one-time traffic into the surviving servers).

use crate::admission::{AdmissionPolicy, ClassifierAdmission};
use crate::criteria::solve_criteria;
use crate::daily::{DailyTrainer, MinuteSampler, TrainingConfig};
use crate::features::{FeatureExtractor, N_FEATURES};
use crate::pipeline::{Mode, PolicyKind};
use crate::reaccess::ReaccessIndex;
use otae_cache::{Cache, CacheStats, Evicted};
use otae_trace::{ObjectId, Trace};

/// Consistent-hash ring over cache servers.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (hash, node) points.
    points: Vec<(u64, u16)>,
    vnodes: u16,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl HashRing {
    /// Ring over nodes `0..n_nodes` with `vnodes` virtual points each.
    pub fn new(n_nodes: u16, vnodes: u16) -> Self {
        assert!(n_nodes > 0 && vnodes > 0);
        let mut ring = Self { points: Vec::new(), vnodes };
        for node in 0..n_nodes {
            ring.insert_points(node);
        }
        ring.points.sort_unstable();
        ring
    }

    fn insert_points(&mut self, node: u16) {
        for v in 0..self.vnodes {
            let h = splitmix(((node as u64) << 32) | v as u64);
            self.points.push((h, node));
        }
    }

    /// Node owning `obj`.
    pub fn node_of(&self, obj: ObjectId) -> u16 {
        let h = splitmix(obj.0 as u64 ^ 0xA5A5_5A5A_DEAD_BEEF);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }

    /// Remove a node; its arc is absorbed by ring successors.
    pub fn remove_node(&mut self, node: u16) {
        self.points.retain(|&(_, n)| n != node);
        assert!(!self.points.is_empty(), "cannot remove the last node");
    }

    /// Add a node back (or a new one).
    pub fn add_node(&mut self, node: u16) {
        self.insert_points(node);
        self.points.sort_unstable();
    }

    /// Distinct nodes currently on the ring.
    pub fn nodes(&self) -> Vec<u16> {
        let mut nodes: Vec<u16> = self.points.iter().map(|&(_, n)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of cache servers.
    pub n_nodes: u16,
    /// Virtual points per server on the ring.
    pub vnodes: u16,
    /// Per-server capacity in bytes (total = `n_nodes × capacity`).
    pub node_capacity: u64,
    /// Replacement policy on every server.
    pub policy: PolicyKind,
    /// Admission mode on every server.
    pub mode: Mode,
    /// Kill this server at this request index (simulated failure), if set.
    pub failure: Option<(u16, u64)>,
    /// Training settings for Proposal mode.
    pub training: TrainingConfig,
}

impl ClusterConfig {
    /// Cluster of `n_nodes` LRU servers with the given per-node capacity.
    pub fn new(n_nodes: u16, node_capacity: u64, mode: Mode) -> Self {
        Self {
            n_nodes,
            vnodes: 64,
            node_capacity,
            policy: PolicyKind::Lru,
            mode,
            failure: None,
            training: TrainingConfig::default(),
        }
    }
}

/// Aggregated outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-server statistics (dead servers keep their pre-failure counters).
    pub per_node: Vec<CacheStats>,
    /// Whole-cluster counters.
    pub total: CacheStats,
    /// max/mean accesses per surviving server (1.0 = perfectly balanced).
    pub load_imbalance: f64,
    /// Hit rate over the period after the failure (equals the overall hit
    /// rate when no failure is configured).
    pub post_failure_hit_rate: f64,
}

struct Node<'a> {
    cache: Box<dyn Cache<ObjectId>>,
    admission: AdmissionPolicy<'a>,
    trainer: DailyTrainer,
    sampler: MinuteSampler,
    stats: CacheStats,
    alive: bool,
}

/// Run a trace through the cluster.
pub fn run_cluster(trace: &Trace, index: &ReaccessIndex, cfg: &ClusterConfig) -> ClusterResult {
    assert_eq!(index.len(), trace.len());
    let avg = trace.avg_object_size().max(1.0);
    // Per-server criteria: each server holds node_capacity and sees ~1/n of
    // the stream, so M is solved from per-server capacity (request distances
    // remain global — a conservative, consistent choice).
    let criteria = solve_criteria(index, cfg.node_capacity, avg, 3);
    let m = criteria.m;
    let v = cfg.training.cost.resolve(cfg.node_capacity, trace.unique_bytes());

    let mut ring = HashRing::new(cfg.n_nodes, cfg.vnodes);
    let mut nodes: Vec<Node> = (0..cfg.n_nodes)
        .map(|_| Node {
            cache: cfg.policy.build(cfg.node_capacity, trace),
            admission: match cfg.mode {
                Mode::Original => AdmissionPolicy::Always,
                Mode::Ideal => AdmissionPolicy::Oracle { index, m },
                Mode::Proposal => AdmissionPolicy::Classifier(Box::new(ClassifierAdmission::new(
                    m,
                    criteria.history_table_capacity(),
                ))),
                // Filters are per-node: each server sizes its sketch for its
                // ~1/n share of the object population.
                filter_mode => AdmissionPolicy::Filter(
                    crate::zoo::MissFilter::for_run(
                        filter_mode,
                        trace.meta.len() / cfg.n_nodes as usize,
                        m,
                        cfg.training.max_splits,
                        0.5,
                    )
                    .expect("non-Original/Ideal/Proposal modes are filter modes"),
                ),
            },
            trainer: DailyTrainer::new(cfg.training.clone(), v),
            sampler: MinuteSampler::new(cfg.training.records_per_minute),
            stats: CacheStats::default(),
            alive: true,
        })
        .collect();

    let needs_features = cfg.mode == Mode::Proposal;
    let mut extractor = FeatureExtractor::new(trace);
    let mut evicted: Vec<Evicted<ObjectId>> = Vec::new();
    let (mut post_hits, mut post_total) = (0u64, 0u64);
    let failure_at = cfg.failure.map(|(_, at)| at).unwrap_or(u64::MAX);

    for (i, req) in trace.requests.iter().enumerate() {
        let now = i as u64;
        if let Some((node, at)) = cfg.failure {
            if now == at {
                ring.remove_node(node);
                nodes[node as usize].alive = false;
            }
        }
        let size = trace.photo(req.object).size as u64;
        let truth = index.is_one_time(i, m);
        let mut features = [0.0f32; N_FEATURES];
        if needs_features {
            features = extractor.extract(trace, req);
        }

        let node = &mut nodes[ring.node_of(req.object) as usize];
        debug_assert!(node.alive, "ring must not route to dead servers");
        if needs_features {
            if let AdmissionPolicy::Classifier(c) = &mut node.admission {
                if let Some(model) = node.trainer.maybe_retrain(req.ts, &mut node.sampler) {
                    c.model = Some(model);
                }
            }
            node.sampler.offer(req.ts, features, truth);
        }

        let hit = node.cache.contains(&req.object);
        if hit {
            node.cache.on_hit(&req.object, now);
            node.stats.record_hit(size);
        } else if node.admission.decide(req.object, &features, now, truth) {
            evicted.clear();
            node.cache.insert(req.object, size, now, &mut evicted);
            node.stats.record_admitted_miss(size);
            for e in &evicted {
                node.stats.record_eviction(e.size);
            }
        } else {
            node.cache.on_bypass(&req.object, size, now);
            node.stats.record_bypassed_miss(size);
        }
        if now >= failure_at {
            post_total += 1;
            post_hits += hit as u64;
        }
        if needs_features {
            extractor.update(trace, req);
        }
    }

    let mut total = CacheStats::default();
    for n in &nodes {
        total.merge(&n.stats);
    }
    let surviving: Vec<&Node> = nodes.iter().filter(|n| n.alive).collect();
    let mean = surviving.iter().map(|n| n.stats.accesses as f64).sum::<f64>()
        / surviving.len().max(1) as f64;
    let max = surviving.iter().map(|n| n.stats.accesses as f64).fold(0.0, f64::max);
    let post_failure_hit_rate =
        if post_total > 0 { post_hits as f64 / post_total as f64 } else { total.file_hit_rate() };
    ClusterResult {
        per_node: nodes.into_iter().map(|n| n.stats).collect(),
        total,
        load_imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        post_failure_hit_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_with_index, RunConfig};
    use otae_trace::{generate, TraceConfig};

    fn setup() -> (Trace, ReaccessIndex) {
        let t = generate(&TraceConfig { n_objects: 8_000, seed: 21, ..Default::default() });
        let i = ReaccessIndex::build(&t);
        (t, i)
    }

    #[test]
    fn ring_is_deterministic_and_balanced() {
        let ring = HashRing::new(8, 64);
        let mut counts = [0u32; 8];
        for k in 0..40_000u32 {
            counts[ring.node_of(ObjectId(k)) as usize] += 1;
        }
        let mean = 40_000.0 / 8.0;
        for (n, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / mean;
            assert!((0.6..1.5).contains(&ratio), "node {n} ratio {ratio}");
        }
        // Determinism.
        let ring2 = HashRing::new(8, 64);
        for k in 0..100u32 {
            assert_eq!(ring.node_of(ObjectId(k)), ring2.node_of(ObjectId(k)));
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys() {
        let mut ring = HashRing::new(8, 64);
        let before: Vec<u16> = (0..20_000).map(|k| ring.node_of(ObjectId(k))).collect();
        ring.remove_node(3);
        let mut moved = 0;
        for (k, &was) in before.iter().enumerate() {
            let now = ring.node_of(ObjectId(k as u32));
            if was == 3 {
                assert_ne!(now, 3, "keys of the dead node must move");
            } else {
                assert_eq!(now, was, "other keys must stay (consistent hashing)");
            }
            if now != was {
                moved += 1;
            }
        }
        // Roughly 1/8 of keys move.
        let frac = moved as f64 / before.len() as f64;
        assert!((0.05..0.25).contains(&frac), "moved fraction {frac}");
        assert_eq!(ring.nodes().len(), 7);
    }

    #[test]
    fn cluster_conserves_requests() {
        let (t, i) = setup();
        let cap = t.unique_bytes() / 100;
        let r = run_cluster(&t, &i, &ClusterConfig::new(4, cap / 4, Mode::Original));
        assert_eq!(r.total.accesses as usize, t.len());
        let per_node_sum: u64 = r.per_node.iter().map(|s| s.accesses).sum();
        assert_eq!(per_node_sum as usize, t.len());
        assert!(r.load_imbalance >= 1.0 && r.load_imbalance < 2.0, "{}", r.load_imbalance);
    }

    #[test]
    fn partitioning_costs_some_hit_rate_vs_one_big_cache() {
        let (t, i) = setup();
        let total_cap = t.unique_bytes() / 50;
        let single =
            run_with_index(&t, &i, &RunConfig::new(PolicyKind::Lru, Mode::Original, total_cap));
        let cluster = run_cluster(&t, &i, &ClusterConfig::new(8, total_cap / 8, Mode::Original));
        // Partitioning can only lose (no shared capacity), but not by much
        // with a balanced ring.
        assert!(cluster.total.file_hit_rate() <= single.stats.file_hit_rate() + 0.01);
        assert!(
            cluster.total.file_hit_rate() > single.stats.file_hit_rate() - 0.10,
            "cluster {} vs single {}",
            cluster.total.file_hit_rate(),
            single.stats.file_hit_rate()
        );
    }

    #[test]
    fn admission_helps_the_cluster_too() {
        let (t, i) = setup();
        let cap = t.unique_bytes() / 100;
        let orig = run_cluster(&t, &i, &ClusterConfig::new(4, cap / 4, Mode::Original));
        let ideal = run_cluster(&t, &i, &ClusterConfig::new(4, cap / 4, Mode::Ideal));
        assert!(ideal.total.file_hit_rate() > orig.total.file_hit_rate());
        assert!(ideal.total.files_written < orig.total.files_written / 2);
    }

    #[test]
    fn node_failure_redirects_and_costs_hits() {
        let (t, i) = setup();
        let cap = t.unique_bytes() / 50;
        let at = (t.len() / 2) as u64;
        let mut cfg = ClusterConfig::new(4, cap / 4, Mode::Original);
        cfg.failure = Some((2, at));
        let failed = run_cluster(&t, &i, &cfg);
        let healthy = run_cluster(&t, &i, &ClusterConfig::new(4, cap / 4, Mode::Original));
        assert_eq!(failed.total.accesses as usize, t.len(), "requests rerouted, not lost");
        assert!(
            failed.post_failure_hit_rate < healthy.post_failure_hit_rate + 1e-9,
            "failure must not help: {} vs {}",
            failed.post_failure_hit_rate,
            healthy.post_failure_hit_rate
        );
        // The dead node stops taking traffic.
        let dead = &failed.per_node[2];
        assert!(dead.accesses < healthy.per_node[2].accesses);
    }

    #[test]
    fn cluster_proposal_is_deterministic() {
        let (t, i) = setup();
        let cap = t.unique_bytes() / 100;
        let a = run_cluster(&t, &i, &ClusterConfig::new(3, cap / 3, Mode::Proposal));
        let b = run_cluster(&t, &i, &ClusterConfig::new(3, cap / 3, Mode::Proposal));
        assert_eq!(a.total, b.total);
    }
}

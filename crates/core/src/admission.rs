//! Cache admission policies.
//!
//! The paper's evaluation compares four configurations per replacement
//! algorithm (§5.3): *Original* (traditional always-admit), *Proposal*
//! (the trained classifier plus history table), and *Ideal* (a perfect
//! classifier), with Belady as the replacement-side upper bound. The first
//! three are admission policies and live here.

use crate::history::HistoryTable;
use crate::reaccess::ReaccessIndex;
use crate::zoo::MissFilter;
use otae_ml::{Classifier, ConfusionMatrix, DecisionTree};
use otae_trace::ObjectId;

/// Which admission policy a run uses (configuration-level tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Admit every miss (the paper's "Original").
    Always,
    /// Trained classifier + history table (the paper's "Proposal").
    Classifier,
    /// Ground-truth one-time-access oracle (the paper's "Ideal").
    Oracle,
    /// Non-ML miss filter from the policy zoo (SecondHit, TinyLFU, RejectX
    /// or CoinFlip — see [`crate::zoo`]).
    Filter,
}

/// The classifier-driven admission state (Figure 4's classification system):
/// the current decision-tree model (swapped daily) plus the history table.
#[derive(Debug)]
pub struct ClassifierAdmission {
    /// Current model; `None` until the first daily training completes, during
    /// which every miss is admitted (cold-start behaves like Original).
    pub model: Option<DecisionTree>,
    /// Rectification table (§4.4.2).
    pub history: HistoryTable,
    /// One-time-access threshold `M`.
    pub m: u64,
    /// Decisions tallied against ground truth (for Figure 5).
    pub confusion: ConfusionMatrix,
    /// When false, the history table never rectifies (ablation).
    pub use_history: bool,
}

impl ClassifierAdmission {
    /// New classifier admission with threshold `m` and the given history
    /// capacity.
    pub fn new(m: u64, history_capacity: usize) -> Self {
        Self {
            model: None,
            history: HistoryTable::new(history_capacity),
            m,
            confusion: ConfusionMatrix::default(),
            use_history: true,
        }
    }

    /// Decide a miss: returns `true` to admit. `truth` is the offline label
    /// (used only for metric accounting, never for the decision).
    pub fn decide(&mut self, obj: ObjectId, features: &[f32], now: u64, truth: bool) -> bool {
        classifier_decide(
            self.model.as_ref(),
            &mut self.history,
            &mut self.confusion,
            self.use_history,
            self.m,
            obj,
            features,
            now,
            truth,
        )
    }
}

/// The Proposal admission decision with its state borrowed piecewise.
///
/// This is [`ClassifierAdmission::decide`] exposed for callers that keep the
/// model somewhere other than inside the struct — e.g. a sharded service
/// whose shards each own a history table and confusion matrix but share one
/// hot-swappable model behind an `Arc`.
#[allow(clippy::too_many_arguments)]
pub fn classifier_decide(
    model: Option<&DecisionTree>,
    history: &mut HistoryTable,
    confusion: &mut ConfusionMatrix,
    use_history: bool,
    m: u64,
    obj: ObjectId,
    features: &[f32],
    now: u64,
    truth: bool,
) -> bool {
    classifier_apply(
        model.map(|model| model.predict(features)),
        history,
        confusion,
        use_history,
        m,
        obj,
        now,
        truth,
    )
}

/// The decision half of [`classifier_decide`], taking the model's verdict as
/// a precomputed input: `None` means no model is installed (untrained —
/// admit everything, record nothing), `Some(p)` is `model.predict(features)`.
///
/// Batched and memoized hot paths score up front (via
/// [`otae_ml::Classifier::score_rows`] or a decision cache) and feed the
/// prediction through here so that confusion/history bookkeeping stays in
/// exact per-request order.
#[allow(clippy::too_many_arguments)]
pub fn classifier_apply(
    predicted: Option<bool>,
    history: &mut HistoryTable,
    confusion: &mut ConfusionMatrix,
    use_history: bool,
    m: u64,
    obj: ObjectId,
    now: u64,
    truth: bool,
) -> bool {
    let Some(predicted_one_time) = predicted else {
        return true; // untrained: admit everything
    };
    confusion.record(truth, predicted_one_time);
    if !predicted_one_time {
        return true;
    }
    if !use_history {
        return false;
    }
    if history.check_and_rectify(obj, now, m) {
        return true; // §4.4.2: fast return rectifies the judgement
    }
    history.record_one_time(obj, now);
    false
}

/// Runtime admission policy driven by the pipeline.
#[derive(Debug)]
pub enum AdmissionPolicy<'a> {
    /// Admit every miss.
    Always,
    /// Perfect knowledge of reaccess distances: admit iff the object
    /// returns within `m` accesses.
    Oracle {
        /// Precomputed reaccess distances.
        index: &'a ReaccessIndex,
        /// One-time-access threshold.
        m: u64,
    },
    /// Trained classifier with history table (boxed: it dwarfs the other
    /// variants).
    Classifier(Box<ClassifierAdmission>),
    /// Non-ML miss filter from the policy zoo (SecondHit, TinyLFU, RejectX
    /// or CoinFlip).
    Filter(MissFilter),
}

impl AdmissionPolicy<'_> {
    /// Decide whether to admit the miss at position `now`.
    pub fn decide(&mut self, obj: ObjectId, features: &[f32], now: u64, truth: bool) -> bool {
        match self {
            AdmissionPolicy::Always => true,
            AdmissionPolicy::Oracle { index, m } => !index.is_one_time(now as usize, *m),
            AdmissionPolicy::Classifier(c) => c.decide(obj, features, now, truth),
            AdmissionPolicy::Filter(f) => f.decide(obj),
        }
    }

    /// Kind tag.
    pub fn kind(&self) -> AdmissionKind {
        match self {
            AdmissionPolicy::Always => AdmissionKind::Always,
            AdmissionPolicy::Oracle { .. } => AdmissionKind::Oracle,
            AdmissionPolicy::Classifier(_) => AdmissionKind::Classifier,
            AdmissionPolicy::Filter(_) => AdmissionKind::Filter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_ml::{Dataset, TreeParams};

    fn trained_tree() -> DecisionTree {
        // One feature; positive (one-time) iff x > 0.5.
        let mut d = Dataset::new(1);
        for i in 0..100 {
            let x = i as f32 / 100.0;
            d.push(&[x], x > 0.5);
        }
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        t
    }

    #[test]
    fn untrained_classifier_admits_everything() {
        let mut c = ClassifierAdmission::new(100, 16);
        assert!(c.decide(ObjectId(1), &[0.9], 0, true));
        assert_eq!(c.confusion.total(), 0, "no decisions recorded before training");
    }

    #[test]
    fn predicted_one_time_is_bypassed_and_remembered() {
        let mut c = ClassifierAdmission::new(100, 16);
        c.model = Some(trained_tree());
        assert!(!c.decide(ObjectId(1), &[0.9], 0, true), "one-time: bypass");
        assert_eq!(c.history.len(), 1);
        assert!(c.decide(ObjectId(2), &[0.1], 1, false), "non-one-time: admit");
    }

    #[test]
    fn history_rectifies_second_miss_within_m() {
        let mut c = ClassifierAdmission::new(100, 16);
        c.model = Some(trained_tree());
        assert!(!c.decide(ObjectId(1), &[0.9], 0, false));
        // Same object misses again soon: admitted despite the model.
        assert!(c.decide(ObjectId(1), &[0.9], 50, false), "history must rectify");
        assert_eq!(c.history.rectifications(), 1);
    }

    #[test]
    fn slow_second_miss_is_still_bypassed() {
        let mut c = ClassifierAdmission::new(100, 16);
        c.model = Some(trained_tree());
        assert!(!c.decide(ObjectId(1), &[0.9], 0, true));
        assert!(!c.decide(ObjectId(1), &[0.9], 500, true), "return after M: judgement stood");
    }

    #[test]
    fn confusion_tracks_truth() {
        let mut c = ClassifierAdmission::new(100, 16);
        c.model = Some(trained_tree());
        c.decide(ObjectId(1), &[0.9], 0, true); // TP
        c.decide(ObjectId(2), &[0.9], 1, false); // FP
        c.decide(ObjectId(3), &[0.1], 2, false); // TN
        c.decide(ObjectId(4), &[0.1], 3, true); // FN
        assert_eq!(c.confusion.tp, 1);
        assert_eq!(c.confusion.fp, 1);
        assert_eq!(c.confusion.tn, 1);
        assert_eq!(c.confusion.fn_, 1);
    }

    #[test]
    fn oracle_admits_exactly_non_one_time() {
        use otae_trace::{generate, TraceConfig};
        let trace = generate(&TraceConfig { n_objects: 500, seed: 3, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let mut oracle = AdmissionPolicy::Oracle { index: &index, m: 50 };
        for now in 0..trace.len().min(200) {
            let admit = oracle.decide(ObjectId(0), &[], now as u64, false);
            assert_eq!(admit, !index.is_one_time(now, 50));
        }
    }

    #[test]
    fn always_admits() {
        let mut a = AdmissionPolicy::Always;
        assert!(a.decide(ObjectId(0), &[], 0, true));
        assert_eq!(a.kind(), AdmissionKind::Always);
    }
}

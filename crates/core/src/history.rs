//! The history table (§4.4.2).
//!
//! A FIFO-evicted hash map of photos recently classified as one-time-access.
//! When such a photo misses *again* within the criteria threshold `M`, the
//! earlier judgement was wrong — the table "rectifies" it: the photo is
//! admitted this time and removed from the table. The table biases the whole
//! classification system toward admitting (a wrongly-bypassed photo costs a
//! subsequent miss, which is dearer than one wasted write).

use otae_fxhash::FxHashMap;
use otae_trace::ObjectId;
use std::collections::VecDeque;

/// FIFO-evicting table of recent one-time classifications.
#[derive(Debug, Clone)]
pub struct HistoryTable {
    capacity: usize,
    /// object → logical access index of the one-time judgement.
    map: FxHashMap<ObjectId, u64>,
    fifo: VecDeque<ObjectId>,
    rectifications: u64,
}

impl HistoryTable {
    /// Table holding at most `capacity` entries (§4.4.2 sizes this as
    /// `M(1−h)p × 0.05`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history table needs capacity");
        Self {
            capacity,
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            fifo: VecDeque::with_capacity(capacity),
            rectifications: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rectified misclassifications so far.
    pub fn rectifications(&self) -> u64 {
        self.rectifications
    }

    /// A photo was just classified one-time at access index `now`: remember
    /// it, evicting the oldest entry when full.
    pub fn record_one_time(&mut self, obj: ObjectId, now: u64) {
        if let Some(entry) = self.map.get_mut(&obj) {
            // Refresh the judgement time; FIFO position is kept (stale fifo
            // entries are skipped on eviction).
            *entry = now;
            return;
        }
        while self.map.len() >= self.capacity {
            match self.fifo.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.map.insert(obj, now);
        self.fifo.push_back(obj);
    }

    /// The photo misses again at access index `now`. Returns `true` when the
    /// earlier one-time judgement is rectified (the photo returned within
    /// `m` accesses) — the caller must then admit it. In either case the
    /// stale entry is dropped.
    pub fn check_and_rectify(&mut self, obj: ObjectId, now: u64, m: u64) -> bool {
        let Some(recorded) = self.map.remove(&obj) else {
            return false;
        };
        // Lazy fifo cleanup happens on eviction; just decide.
        let within = now.saturating_sub(recorded) <= m;
        if within {
            self.rectifications += 1;
        }
        within
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn rectifies_fast_returns() {
        let mut t = HistoryTable::new(8);
        t.record_one_time(obj(1), 100);
        assert!(t.check_and_rectify(obj(1), 150, 100), "returned within M");
        assert_eq!(t.rectifications(), 1);
        // Entry consumed.
        assert!(!t.check_and_rectify(obj(1), 160, 100));
    }

    #[test]
    fn slow_returns_are_not_rectified() {
        let mut t = HistoryTable::new(8);
        t.record_one_time(obj(1), 100);
        assert!(!t.check_and_rectify(obj(1), 100 + 101, 100), "returned after M");
        assert_eq!(t.rectifications(), 0);
    }

    #[test]
    fn fifo_eviction_drops_oldest() {
        let mut t = HistoryTable::new(2);
        t.record_one_time(obj(1), 0);
        t.record_one_time(obj(2), 1);
        t.record_one_time(obj(3), 2); // evicts 1
        assert_eq!(t.len(), 2);
        assert!(!t.check_and_rectify(obj(1), 3, 100), "evicted entry is gone");
        assert!(t.check_and_rectify(obj(2), 3, 100));
    }

    #[test]
    fn re_recording_refreshes_time() {
        let mut t = HistoryTable::new(4);
        t.record_one_time(obj(1), 0);
        t.record_one_time(obj(1), 500);
        assert_eq!(t.len(), 1);
        // Judged at 500; returning at 550 with m=100 rectifies.
        assert!(t.check_and_rectify(obj(1), 550, 100));
    }

    #[test]
    fn unknown_object_is_not_rectified() {
        let mut t = HistoryTable::new(4);
        assert!(!t.check_and_rectify(obj(9), 10, 1000));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        HistoryTable::new(0);
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut t = HistoryTable::new(10);
        for i in 0..1000 {
            t.record_one_time(obj(i), i as u64);
        }
        assert!(t.len() <= 10);
    }
}

//! The one-time-access criteria solver (§4.3).
//!
//! A photo is one-time-access w.r.t. a cache when its reaccess distance
//! exceeds `M`, the number of accesses a freshly-admitted object survives in
//! the cache. With capacity `C`, mean object size `S`, hit rate `h` and
//! one-time fraction `p`, Eq. 2 gives `M·(1−h)·(1−p) = C/S`, i.e.
//! `M = C / (S·(1−h)·(1−p))`.
//!
//! `p` and `h` themselves depend on `M` (`p↑ → M↑ → p↓`), so the paper
//! iterates from `p = 0` until the value settles — "empirically, we set the
//! iterations to be 3". We implement exactly that fixed-point iteration,
//! measuring `p(M)` and `h(M)` on the trace through [`ReaccessIndex`].

use crate::reaccess::ReaccessIndex;

/// Result of the criteria fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriteriaSolution {
    /// Reaccess-distance threshold (in accesses).
    pub m: u64,
    /// Converged one-time-access fraction `p`.
    pub p: f64,
    /// Converged hit-rate estimate `h`.
    pub h: f64,
}

impl CriteriaSolution {
    /// The LIRS variant (§5.2): `M_LIRS = M_LRU × R_s` where `R_s = C_s/C`
    /// is the LIR-stack share of the cache.
    pub fn for_lirs(&self, stack_ratio: f64) -> CriteriaSolution {
        assert!((0.0..=1.0).contains(&stack_ratio));
        CriteriaSolution { m: ((self.m as f64 * stack_ratio) as u64).max(1), ..*self }
    }

    /// History-table capacity per §4.4.2: `M(1−h)p × 0.05` entries
    /// (2–5 % of the SSD metadata table), at least 16.
    pub fn history_table_capacity(&self) -> usize {
        ((self.m as f64 * (1.0 - self.h) * self.p * 0.05) as usize).max(16)
    }
}

/// Solve the criteria on a trace.
///
/// * `index` — precomputed reaccess distances;
/// * `cache_bytes` — cache capacity `C`;
/// * `avg_object_size` — mean photo size `S`;
/// * `iterations` — fixed-point rounds (the paper uses 3).
pub fn solve_criteria(
    index: &ReaccessIndex,
    cache_bytes: u64,
    avg_object_size: f64,
    iterations: usize,
) -> CriteriaSolution {
    assert!(avg_object_size > 0.0, "mean object size must be positive");
    let c_over_s = cache_bytes as f64 / avg_object_size;
    // Initial round: p = 0 and h = 0 give M0 = C/S (Eq. 1 with h = 0).
    let (mut p, mut h) = (0.0f64, 0.0f64);
    let mut m = c_over_s.max(1.0);
    for _ in 0..iterations {
        let m_u = m.min(u64::MAX as f64) as u64;
        p = index.one_time_fraction(m_u);
        h = index.hit_fraction(m_u).min(0.99);
        m = c_over_s / ((1.0 - h).max(0.01) * (1.0 - p).max(0.01));
    }
    CriteriaSolution { m: m.min(u64::MAX as f64) as u64, p, h }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{generate, TraceConfig};

    fn index() -> ReaccessIndex {
        let trace = generate(&TraceConfig { n_objects: 10_000, seed: 21, ..Default::default() });
        ReaccessIndex::build(&trace)
    }

    #[test]
    fn m_grows_with_capacity() {
        let idx = index();
        let small = solve_criteria(&idx, 1 << 20, 32_768.0, 3);
        let large = solve_criteria(&idx, 1 << 26, 32_768.0, 3);
        assert!(large.m > small.m, "{} !> {}", large.m, small.m);
    }

    #[test]
    fn m_at_least_c_over_s() {
        let idx = index();
        let sol = solve_criteria(&idx, 1 << 24, 32_768.0, 3);
        let c_over_s = (1 << 24) as f64 / 32_768.0;
        assert!(sol.m as f64 >= c_over_s, "M must exceed C/S");
    }

    #[test]
    fn p_and_h_are_probabilities_and_consistent() {
        let idx = index();
        let sol = solve_criteria(&idx, 1 << 24, 32_768.0, 3);
        assert!((0.0..=1.0).contains(&sol.p));
        assert!((0.0..=1.0).contains(&sol.h));
        // One-time fraction of a social trace is substantial.
        assert!(sol.p > 0.2, "p = {}", sol.p);
    }

    #[test]
    fn fixed_point_settles_within_three_iterations() {
        let idx = index();
        let three = solve_criteria(&idx, 1 << 24, 32_768.0, 3);
        let six = solve_criteria(&idx, 1 << 24, 32_768.0, 6);
        let rel = (three.m as f64 - six.m as f64).abs() / six.m as f64;
        assert!(rel < 0.25, "3 vs 6 iterations differ by {rel}");
    }

    #[test]
    fn lirs_variant_shrinks_m() {
        let sol = CriteriaSolution { m: 1000, p: 0.5, h: 0.4 };
        let lirs = sol.for_lirs(0.8);
        assert_eq!(lirs.m, 800);
        assert_eq!(sol.for_lirs(0.0).m, 1); // clamped to at least 1
    }

    #[test]
    fn history_capacity_formula() {
        let sol = CriteriaSolution { m: 10_000, p: 0.5, h: 0.6 };
        // 10000 * 0.4 * 0.5 * 0.05 = 100.
        assert_eq!(sol.history_table_capacity(), 100);
        // Floor at 16.
        let tiny = CriteriaSolution { m: 10, p: 0.1, h: 0.9 };
        assert_eq!(tiny.history_table_capacity(), 16);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        solve_criteria(&index(), 1 << 20, 0.0, 3);
    }
}

//! Forward reaccess distances.
//!
//! The one-time-access criteria (§4.3) is defined on the **reaccess
//! distance**: "the number of successive accesses between the time when
//! [a photo] is brought into the cache and the time when it is accessed
//! again". This module precomputes, for every request position, the distance
//! (in requests) to the next access of the same object.

use otae_trace::Trace;

/// Distance marker for "never accessed again within the trace".
pub const NEVER: u64 = u64::MAX;

/// Per-request forward reaccess information over one trace.
#[derive(Debug, Clone)]
pub struct ReaccessIndex {
    /// `dist[i]` = number of requests until the object of request `i` is
    /// accessed again (1 = very next request), or [`NEVER`].
    dist: Vec<u64>,
    /// `first[i]` = true when request `i` is the first access of its object.
    first: Vec<bool>,
}

impl ReaccessIndex {
    /// Build the index with a single backward pass.
    ///
    /// Object ids are dense indices into `trace.meta`, so the next-position
    /// map is a flat `Vec<u64>` ([`NEVER`] = unseen) and the first-access
    /// set a bit vector — both O(1) with no hashing, turning the build into
    /// two cache-friendly linear sweeps.
    pub fn build(trace: &Trace) -> Self {
        let n = trace.len();
        let n_objects = trace
            .requests
            .iter()
            .map(|r| r.object.0 as usize + 1)
            .max()
            .unwrap_or(0)
            .max(trace.meta.len());
        let mut dist = vec![NEVER; n];
        let mut next_pos = vec![NEVER; n_objects];
        for (i, req) in trace.requests.iter().enumerate().rev() {
            let slot = &mut next_pos[req.object.0 as usize];
            if *slot != NEVER {
                dist[i] = *slot - i as u64;
            }
            *slot = i as u64;
        }
        let mut first = vec![false; n];
        let mut seen = vec![0u64; n_objects.div_ceil(64)];
        for (i, req) in trace.requests.iter().enumerate() {
            let id = req.object.0 as usize;
            let (word, bit) = (id / 64, 1u64 << (id % 64));
            if seen[word] & bit == 0 {
                seen[word] |= bit;
                first[i] = true;
            }
        }
        Self { dist, first }
    }

    /// Number of indexed requests.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True when the index covers no requests.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Forward distance of request `i` ([`NEVER`] if not reaccessed).
    pub fn distance(&self, i: usize) -> u64 {
        self.dist[i]
    }

    /// Whether request `i` is the first access of its object.
    pub fn is_first_access(&self, i: usize) -> bool {
        self.first[i]
    }

    /// The paper's label: request `i` is a **one-time access** w.r.t.
    /// threshold `m` when its object will not return within `m` requests.
    pub fn is_one_time(&self, i: usize, m: u64) -> bool {
        self.dist[i] > m
    }

    /// Fraction of requests that are one-time w.r.t. `m` (the criteria's `p`).
    pub fn one_time_fraction(&self, m: u64) -> f64 {
        if self.dist.is_empty() {
            return 0.0;
        }
        let ones = self.dist.iter().filter(|&&d| d > m).count();
        ones as f64 / self.dist.len() as f64
    }

    /// Fraction of accesses whose object returns within `m` requests — the
    /// criteria's hit-rate estimate `h` for a cache retaining roughly the
    /// last `m` accesses.
    pub fn hit_fraction(&self, m: u64) -> f64 {
        1.0 - self.one_time_fraction(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{ObjectId, Owner, OwnerId, PhotoMeta, PhotoType, Request, Terminal};

    fn trace_of(keys: &[u32]) -> Trace {
        let n_obj = keys.iter().max().map_or(0, |m| m + 1);
        Trace {
            requests: keys
                .iter()
                .enumerate()
                .map(|(i, &k)| Request {
                    ts: i as u64,
                    object: ObjectId(k),
                    terminal: Terminal::Pc,
                })
                .collect(),
            meta: (0..n_obj)
                .map(|_| PhotoMeta {
                    owner: OwnerId(0),
                    ptype: PhotoType::L5,
                    size: 1,
                    upload_ts: 0,
                })
                .collect(),
            owners: vec![Owner { activity: 0.5, active_friends: 1 }],
        }
    }

    #[test]
    fn distances_on_simple_trace() {
        // positions: 0:A 1:B 2:A 3:C 4:A
        let idx = ReaccessIndex::build(&trace_of(&[0, 1, 0, 2, 0]));
        assert_eq!(idx.distance(0), 2);
        assert_eq!(idx.distance(1), NEVER);
        assert_eq!(idx.distance(2), 2);
        assert_eq!(idx.distance(3), NEVER);
        assert_eq!(idx.distance(4), NEVER);
    }

    #[test]
    fn first_access_flags() {
        let idx = ReaccessIndex::build(&trace_of(&[0, 1, 0, 2, 0]));
        assert_eq!(
            (0..5).map(|i| idx.is_first_access(i)).collect::<Vec<_>>(),
            vec![true, true, false, true, false]
        );
    }

    #[test]
    fn one_time_labels_depend_on_m() {
        let idx = ReaccessIndex::build(&trace_of(&[0, 1, 0, 2, 0]));
        // With m = 1, even object 0's accesses (distance 2) are one-time.
        assert!(idx.is_one_time(0, 1));
        // With m = 2 they are not.
        assert!(!idx.is_one_time(0, 2));
        // Never-reaccessed requests are one-time for any m.
        assert!(idx.is_one_time(1, u64::MAX - 1));
    }

    #[test]
    fn fractions_sum_to_one() {
        let idx = ReaccessIndex::build(&trace_of(&[0, 1, 0, 2, 0, 1, 3, 3]));
        for m in [0u64, 1, 2, 5, 100] {
            let p = idx.one_time_fraction(m);
            let h = idx.hit_fraction(m);
            assert!((p + h - 1.0).abs() < 1e-12);
        }
        // p is non-increasing in m.
        let ps: Vec<f64> = [0u64, 1, 2, 4, 8].iter().map(|&m| idx.one_time_fraction(m)).collect();
        for w in ps.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn empty_trace() {
        let idx = ReaccessIndex::build(&trace_of(&[]));
        assert!(idx.is_empty());
        assert_eq!(idx.one_time_fraction(10), 0.0);
    }

    /// The dense-array build must reproduce the straightforward hash-map
    /// reference on a generated trace with skewed, gappy object ids.
    #[test]
    fn dense_build_matches_hashmap_reference() {
        use otae_fxhash::FxHashMap;
        use rand::{Rng, SeedableRng};

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        // Skewed popularity plus deliberate id gaps (ids are multiples of 3).
        let keys: Vec<u32> = (0..5000)
            .map(|_| {
                let hot = rng.gen::<f32>() < 0.7;
                let id: u32 = if hot { rng.gen_range(0..20) } else { rng.gen_range(0..800) };
                id * 3
            })
            .collect();
        let trace = trace_of(&keys);
        let idx = ReaccessIndex::build(&trace);

        let mut ref_dist = vec![NEVER; keys.len()];
        let mut next_pos: FxHashMap<u32, u64> = FxHashMap::default();
        for (i, &k) in keys.iter().enumerate().rev() {
            if let Some(&next) = next_pos.get(&k) {
                ref_dist[i] = next - i as u64;
            }
            next_pos.insert(k, i as u64);
        }
        let mut seen: FxHashMap<u32, ()> = FxHashMap::default();
        for (i, &k) in keys.iter().enumerate() {
            let ref_first = seen.insert(k, ()).is_none();
            assert_eq!(idx.distance(i), ref_dist[i], "distance at {i}");
            assert_eq!(idx.is_first_access(i), ref_first, "first flag at {i}");
        }
    }
}

//! End-to-end trace-driven simulation (Figure 4's workflow).
//!
//! One [`run`] drives a full trace through a replacement policy under one of
//! the paper's three admission configurations and returns every statistic
//! the evaluation section plots: file/byte hit rate, file/byte write rate
//! (Figures 6–9), mean response time via the Eqs. 3–6 model (Figure 10),
//! and per-day classifier quality (Figure 5).

use crate::admission::{classifier_apply, AdmissionPolicy, ClassifierAdmission};
use crate::criteria::{solve_criteria, CriteriaSolution};
use crate::daily::{DailyTrainer, MinuteSampler, TrainingConfig};
use crate::features::{FeatureExtractor, N_FEATURES};
use crate::reaccess::ReaccessIndex;
use crate::zoo::MissFilter;
use otae_cache::{
    ArcCache, Belady, Cache, CacheStats, Evicted, Fifo, Gdsf, Lfu, Lirs, Lru, S3Lru, TwoQ,
};
use otae_device::{HddProfile, LatencyModel, ResponseTime, ServiceTimeModel};
use otae_ml::{Classifier, CompiledTree, ConfusionMatrix, DecisionTree};
use otae_trace::diurnal::DAY;
use otae_trace::{ObjectId, Trace};
use std::sync::Arc;

/// Replacement policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// First in, first out.
    Fifo,
    /// Least frequently used (extra baseline).
    Lfu,
    /// Three-segment segmented LRU.
    S3Lru,
    /// Adaptive replacement cache.
    Arc,
    /// Low inter-reference recency set.
    Lirs,
    /// 2Q (extra baseline; filters one-hit wonders on the replacement side).
    TwoQ,
    /// Greedy-Dual-Size-Frequency (extra baseline; size-aware priorities).
    Gdsf,
    /// Offline-optimal Belady bound.
    Belady,
}

impl PolicyKind {
    /// The five policies of the paper's §5.3 figures.
    pub const PAPER_SET: [PolicyKind; 5] =
        [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::S3Lru, PolicyKind::Arc, PolicyKind::Lirs];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lfu => "LFU",
            PolicyKind::S3Lru => "S3LRU",
            PolicyKind::Arc => "ARC",
            PolicyKind::Lirs => "LIRS",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::Gdsf => "GDSF",
            PolicyKind::Belady => "Belady",
        }
    }

    /// LIR-stack share used by the LIRS criteria variant (`R_s`); 1 for
    /// other policies.
    pub fn stack_ratio(&self) -> f64 {
        match self {
            PolicyKind::Lirs => 0.99,
            _ => 1.0,
        }
    }

    /// Build the policy's cache over `capacity` bytes. The trace is needed
    /// only by Belady (future-knowledge next-access table). The trait object
    /// is `Send` so sharded services can move per-shard caches across
    /// worker threads.
    pub fn build(&self, capacity: u64, trace: &Trace) -> Box<dyn Cache<ObjectId> + Send> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(capacity)),
            PolicyKind::Fifo => Box::new(Fifo::new(capacity)),
            PolicyKind::Lfu => Box::new(Lfu::new(capacity)),
            PolicyKind::S3Lru => Box::new(S3Lru::new(capacity)),
            PolicyKind::Arc => Box::new(ArcCache::new(capacity)),
            PolicyKind::Lirs => Box::new(Lirs::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(capacity)),
            PolicyKind::Gdsf => Box::new(Gdsf::new(capacity)),
            PolicyKind::Belady => {
                let keys: Vec<ObjectId> = trace.requests.iter().map(|r| r.object).collect();
                Box::new(Belady::new(capacity, &keys))
            }
        }
    }
}

/// Admission configuration of a run (the curves in Figures 6–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Traditional caching: admit every miss.
    Original,
    /// The paper's classifier + history table.
    Proposal,
    /// Perfect classifier (100 % accuracy).
    Ideal,
    /// Cache-on-second-request doorkeeper (non-ML baseline; a miss is
    /// admitted only when the object was seen before, tracked in a bloom
    /// filter reset every `2M` misses).
    SecondHit,
    /// TinyLFU: count-min-sketch frequency with a doorkeeper bloom filter
    /// and periodic halving reset (non-ML baseline; see [`crate::zoo`]).
    TinyLfu,
    /// Reject-X: admit only after more than X sightings within the current
    /// window (non-ML baseline; X = 1).
    RejectX,
    /// Seeded coin flip with admit probability [`RunConfig::coin_p`]
    /// (uninformed null baseline).
    CoinFlip,
}

impl Mode {
    /// Every admission mode, in display order (the policy-sweep grid).
    pub const ALL: [Mode; 7] = [
        Mode::Original,
        Mode::SecondHit,
        Mode::TinyLfu,
        Mode::RejectX,
        Mode::CoinFlip,
        Mode::Proposal,
        Mode::Ideal,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Original => "Original",
            Mode::Proposal => "Proposal",
            Mode::Ideal => "Ideal",
            Mode::SecondHit => "SecondHit",
            Mode::TinyLfu => "TinyLFU",
            Mode::RejectX => "RejectX",
            Mode::CoinFlip => "CoinFlip",
        }
    }

    /// True for the non-ML miss-filter modes the zoo implements (the
    /// modes [`MissFilter::for_run`] builds a filter for).
    pub fn is_filter(&self) -> bool {
        matches!(self, Mode::SecondHit | Mode::TinyLfu | Mode::RejectX | Mode::CoinFlip)
    }

    /// True for the mode that trains and hot-swaps models (the only mode a
    /// retrainer is spawned for; every other mode's retrain hook is a
    /// no-op).
    pub fn is_learned(&self) -> bool {
        matches!(self, Mode::Proposal)
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Admission mode.
    pub mode: Mode,
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Classifier training configuration (Proposal only).
    pub training: TrainingConfig,
    /// Latency model for Figure 10.
    pub latency: LatencyModel,
    /// Criteria fixed-point rounds (§4.3; paper uses 3).
    pub criteria_iterations: usize,
    /// Override the computed one-time-access threshold `M` (ablations; e.g.
    /// `u64::MAX - 1` reproduces the naive "accessed once in the whole
    /// trace" criteria of §4.3's first paragraph).
    pub m_override: Option<u64>,
    /// Admit probability of the [`Mode::CoinFlip`] baseline (ignored by
    /// every other mode).
    pub coin_p: f32,
    /// HDD profile for the backend disk-head-time accounting.
    pub hdd: HddProfile,
}

impl RunConfig {
    /// Config with paper-default training, latency and criteria settings.
    pub fn new(policy: PolicyKind, mode: Mode, capacity: u64) -> Self {
        Self {
            policy,
            mode,
            capacity,
            training: TrainingConfig::default(),
            latency: LatencyModel::default(),
            criteria_iterations: 3,
            m_override: None,
            coin_p: 0.5,
            hdd: HddProfile::default(),
        }
    }
}

/// Classifier quality for one simulated day (Figure 5's x-axis).
#[derive(Debug, Clone, Copy)]
pub struct DayMetrics {
    /// Day index (0-based).
    pub day: u64,
    /// Decisions made during that day.
    pub confusion: ConfusionMatrix,
}

/// Classifier-side outcome of a Proposal run.
#[derive(Debug, Clone)]
pub struct ClassifierReport {
    /// All decisions over the whole run.
    pub overall: ConfusionMatrix,
    /// Per-day breakdown (Figure 5).
    pub per_day: Vec<DayMetrics>,
    /// History-table rectifications (§4.4.2).
    pub rectifications: u64,
    /// Completed daily trainings.
    pub trainings: u32,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Admission mode.
    pub mode: Mode,
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Cache counters (Figures 6–9).
    pub stats: CacheStats,
    /// Mean access latency in µs (Figure 10).
    pub mean_latency_us: f64,
    /// 25th-percentile access latency in µs (tail view; extension).
    pub latency_p25_us: f64,
    /// Median access latency in µs (tail view; extension).
    pub latency_p50_us: f64,
    /// 99th-percentile access latency in µs (tail view; extension).
    pub latency_p99_us: f64,
    /// File hit rate per calendar day (warm-up / steady-state view).
    pub per_day_hit_rate: Vec<f64>,
    /// Criteria solution used for labels/admission.
    pub criteria: CriteriaSolution,
    /// Classifier report (Proposal runs only).
    pub classifier: Option<ClassifierReport>,
    /// Backend disk-head-time accounting: every miss (admitted or
    /// bypassed) costs the HDD one seek + rotation + transfer.
    pub service_time: ServiceTimeModel,
}

/// Canonical digest of a run's observable outcome, for differential
/// testing between independent implementations of the same admission
/// pipeline (the single-threaded simulator vs. the sharded service).
///
/// Two runs over the same trace/config are *equivalent* when their
/// fingerprints are `==`: identical cache counters, identical resolved
/// criteria, and (for Proposal runs) identical classifier decisions,
/// rectifications and training count. Floating-point latency summaries are
/// deliberately excluded — they follow from the counters plus the latency
/// model and would only add rounding noise to an exact comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Cache counters (hits/misses/bypasses/evictions, file and byte).
    pub stats: CacheStats,
    /// Resolved one-time-access threshold `M`.
    pub m: u64,
    /// Overall classifier decisions (Proposal runs; `None` otherwise).
    pub confusion: Option<ConfusionMatrix>,
    /// History-table rectifications (Proposal runs; `None` otherwise).
    pub rectifications: Option<u64>,
    /// Completed daily trainings (Proposal runs; `None` otherwise).
    pub trainings: Option<u32>,
    /// Total backend disk-head time in µs (integer per-miss costs, so the
    /// sum is interleaving-independent and exactly comparable).
    pub service_time_us: u64,
    /// Peak windowed backend disk-head time in µs.
    pub service_peak_us: u64,
}

impl RunResult {
    /// The run's [`RunFingerprint`].
    pub fn fingerprint(&self) -> RunFingerprint {
        RunFingerprint {
            stats: self.stats,
            m: self.criteria.m,
            confusion: self.classifier.as_ref().map(|c| c.overall),
            rectifications: self.classifier.as_ref().map(|c| c.rectifications),
            trainings: self.classifier.as_ref().map(|c| c.trainings),
            service_time_us: self.service_time.total_us(),
            service_peak_us: self.service_time.peak_window_us(),
        }
    }
}

/// SSD-level event emitted while driving the cache (for device-layer
/// consumers such as the FTL simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// Object written into the SSD cache.
    Insert {
        /// Object id.
        object: ObjectId,
        /// Size in bytes.
        size: u64,
    },
    /// Object evicted from the SSD cache (its flash pages are invalidated).
    Evict {
        /// Object id.
        object: ObjectId,
        /// Size in bytes.
        size: u64,
    },
}

fn confusion_delta(cur: &ConfusionMatrix, prev: &ConfusionMatrix) -> ConfusionMatrix {
    ConfusionMatrix {
        tp: cur.tp - prev.tp,
        fp: cur.fp - prev.fp,
        fn_: cur.fn_ - prev.fn_,
        tn: cur.tn - prev.tn,
    }
}

/// Requests scored per block on the Proposal fast path. Blocks are cut
/// early at retrain boundaries so the model can never change mid-block.
const SCORE_BLOCK: usize = 1024;

/// The exact sequence of model installs an inline Proposal run performs:
/// `(request index, trained model)` pairs in ascending index order.
///
/// Training depends only on the request stream, the label threshold `M` and
/// the misprediction cost `v` — never on replacement-policy or capacity
/// state — so a schedule built once can be replayed across every sweep
/// point that shares `(m, v)` (e.g. the same policy at many capacities),
/// skipping the sampler and tree fitting entirely.
#[derive(Debug, Clone)]
pub struct ModelSchedule {
    /// One-time-access threshold the schedule's labels used.
    pub m: u64,
    /// Misprediction cost the trees were trained with.
    pub v: f32,
    /// `(request index, model)` install points, ascending by index.
    pub installs: Vec<(u64, Arc<DecisionTree>)>,
    /// Completed daily trainings.
    pub trainings: u32,
}

impl ModelSchedule {
    /// Record the install sequence by replaying the trainer/sampler half of
    /// a Proposal run over a precomputed feature stream (see
    /// [`FeatureExtractor::extract_all`]).
    pub fn build(
        trace: &Trace,
        index: &ReaccessIndex,
        features: &[[f32; N_FEATURES]],
        m: u64,
        v: f32,
        cfg: &TrainingConfig,
    ) -> Self {
        assert_eq!(features.len(), trace.len(), "feature stream must match the trace");
        let mut trainer = DailyTrainer::new(cfg.clone(), v);
        let mut sampler = MinuteSampler::new(cfg.records_per_minute);
        let mut installs = Vec::new();
        for (i, req) in trace.requests.iter().enumerate() {
            if let Some(model) = trainer.maybe_retrain(req.ts, &mut sampler) {
                installs.push((i as u64, Arc::new(model)));
            }
            sampler.offer(req.ts, features[i], index.is_one_time(i, m));
        }
        ModelSchedule { m, v, installs, trainings: trainer.trainings }
    }
}

/// Precomputed inputs a run may share with other runs over the same trace:
/// the feature stream and/or a model schedule. Both default to `None`
/// (compute inline); both are ignored outside Proposal mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunPlan<'a> {
    /// Per-request feature rows ([`FeatureExtractor::extract_all`]).
    pub features: Option<&'a [[f32; N_FEATURES]]>,
    /// Prerecorded model installs; must have been built with the `(m, v)`
    /// this run resolves to.
    pub schedule: Option<&'a ModelSchedule>,
}

/// Run a simulation, building the reaccess index internally. For sweeps use
/// [`run_with_index`] and share the index.
pub fn run(trace: &Trace, cfg: &RunConfig) -> RunResult {
    let index = ReaccessIndex::build(trace);
    run_with_index(trace, &index, cfg)
}

/// Run a simulation against a precomputed reaccess index.
pub fn run_with_index(trace: &Trace, index: &ReaccessIndex, cfg: &RunConfig) -> RunResult {
    run_with_observer(trace, index, cfg, &mut |_| {})
}

/// [`run_with_index`] against shared precomputed inputs (the sweep's fast
/// path). Produces results identical to [`run_with_index`].
pub fn run_with_plan(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &RunConfig,
    plan: &RunPlan<'_>,
) -> RunResult {
    run_inner(trace, index, cfg, plan, &mut |_| {})
}

/// [`run_with_index`] with an observer receiving every SSD insert/evict —
/// the seam the FTL wear experiments consume.
pub fn run_with_observer(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &RunConfig,
    observer: &mut dyn FnMut(CacheEvent),
) -> RunResult {
    run_inner(trace, index, cfg, &RunPlan::default(), observer)
}

fn run_inner(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &RunConfig,
    plan: &RunPlan<'_>,
    observer: &mut dyn FnMut(CacheEvent),
) -> RunResult {
    assert_eq!(index.len(), trace.len(), "index must match the trace");
    let avg_size = trace.avg_object_size().max(1.0);
    let base = solve_criteria(index, cfg.capacity, avg_size, cfg.criteria_iterations);
    let criteria =
        if cfg.policy == PolicyKind::Lirs { base.for_lirs(cfg.policy.stack_ratio()) } else { base };
    let m = cfg.m_override.unwrap_or(criteria.m);

    let mut cache = cfg.policy.build(cfg.capacity, trace);
    let classified = cfg.mode != Mode::Original;

    let mut stats = CacheStats::default();
    let mut response = ResponseTime::default();
    let mut service_time = ServiceTimeModel::new(cfg.hdd);
    let mut evicted: Vec<Evicted<ObjectId>> = Vec::new();
    let mut day_hits: Vec<(u64, u64)> = Vec::new(); // (hits, accesses) per day

    let classifier = if cfg.mode == Mode::Proposal {
        Some(run_proposal_blocks(
            trace,
            index,
            cfg,
            plan,
            &criteria,
            m,
            &mut *cache,
            &mut stats,
            &mut response,
            &mut service_time,
            &mut evicted,
            &mut day_hits,
            observer,
        ))
    } else {
        let mut admission = match cfg.mode {
            Mode::Original => AdmissionPolicy::Always,
            Mode::Ideal => AdmissionPolicy::Oracle { index, m },
            Mode::Proposal => unreachable!("handled above"),
            filter_mode => AdmissionPolicy::Filter(
                MissFilter::for_run(
                    filter_mode,
                    trace.meta.len(),
                    m,
                    cfg.training.max_splits,
                    cfg.coin_p,
                )
                .expect("non-Original/Ideal/Proposal modes are filter modes"),
            ),
        };

        for (i, req) in trace.requests.iter().enumerate() {
            let now = i as u64;
            let size = trace.photo(req.object).size as u64;
            let truth = index.is_one_time(i, m);

            let day = (req.ts / DAY) as usize;
            if day_hits.len() <= day {
                day_hits.resize(day + 1, (0, 0));
            }
            day_hits[day].1 += 1;
            if cache.contains(&req.object) {
                cache.on_hit(&req.object, now);
                stats.record_hit(size);
                day_hits[day].0 += 1;
                response.record(cfg.latency.request_latency_us(true, size, classified));
            } else {
                let admit = admission.decide(req.object, &[], now, truth);
                if admit {
                    evicted.clear();
                    cache.insert(req.object, size, now, &mut evicted);
                    stats.record_admitted_miss(size);
                    observer(CacheEvent::Insert { object: req.object, size });
                    for e in &evicted {
                        stats.record_eviction(e.size);
                        observer(CacheEvent::Evict { object: e.key, size: e.size });
                    }
                } else {
                    cache.on_bypass(&req.object, size, now);
                    stats.record_bypassed_miss(size);
                }
                service_time.record_miss(req.ts, size);
                response.record(cfg.latency.request_latency_us(false, size, classified));
            }
        }
        None
    };

    RunResult {
        policy: cfg.policy,
        mode: cfg.mode,
        capacity: cfg.capacity,
        stats,
        service_time,
        mean_latency_us: response.mean_us(),
        latency_p25_us: response.percentile_us(0.25),
        latency_p50_us: response.percentile_us(0.5),
        latency_p99_us: response.percentile_us(0.99),
        per_day_hit_rate: day_hits
            .iter()
            .map(|&(h, a)| if a == 0 { 0.0 } else { h as f64 / a as f64 })
            .collect(),
        criteria,
        classifier,
    }
}

/// The Proposal fast path: requests are processed in blocks that never span
/// a retrain boundary, so each block's features can be scored in one
/// [`Classifier::score_rows`] sweep over a flat reusable buffer instead of
/// one tree walk per request. Decisions, confusion/history bookkeeping and
/// Figure-5 day accounting still run in exact per-request order, which is
/// why the results are bit-identical to the per-request loop (the harness
/// differential oracle holds this to `RunFingerprint` equality).
#[allow(clippy::too_many_arguments)]
fn run_proposal_blocks(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &RunConfig,
    plan: &RunPlan<'_>,
    criteria: &CriteriaSolution,
    m: u64,
    cache: &mut (dyn Cache<ObjectId> + Send),
    stats: &mut CacheStats,
    response: &mut ResponseTime,
    service_time: &mut ServiceTimeModel,
    evicted: &mut Vec<Evicted<ObjectId>>,
    day_hits: &mut Vec<(u64, u64)>,
    observer: &mut dyn FnMut(CacheEvent),
) -> ClassifierReport {
    let mut c = ClassifierAdmission::new(m, criteria.history_table_capacity());
    c.use_history = cfg.training.use_history;

    let v = cfg.training.cost.resolve(cfg.capacity, trace.unique_bytes());
    let schedule = plan.schedule;
    if let Some(s) = schedule {
        assert_eq!(s.m, m, "model schedule was built for a different M");
        assert_eq!(s.v.to_bits(), v.to_bits(), "model schedule was built for a different v");
    }
    // The schedule replaces the trainer/sampler pair wholesale: installs
    // replay at their recorded request indices.
    let mut trainer = schedule.is_none().then(|| DailyTrainer::new(cfg.training.clone(), v));
    let mut sampler = MinuteSampler::new(cfg.training.records_per_minute);
    let mut next_install = 0usize;

    let planned_features = plan.features;
    if let Some(f) = planned_features {
        assert_eq!(f.len(), trace.len(), "feature stream must match the trace");
    }
    let mut extractor = planned_features.is_none().then(|| FeatureExtractor::new(trace));

    let mut per_day: Vec<DayMetrics> = Vec::new();
    let mut day_start_confusion = ConfusionMatrix::default();
    let mut current_day = 0u64;

    let mut block_feats: Vec<[f32; N_FEATURES]> = Vec::with_capacity(SCORE_BLOCK);
    let mut flat: Vec<f32> = Vec::with_capacity(SCORE_BLOCK * N_FEATURES);
    let mut scores: Vec<f32> = Vec::with_capacity(SCORE_BLOCK);
    // Branchless SoA twin of `c.model`, rebuilt at install boundaries only
    // (see [`otae_ml::compiled`]); scores are bit-identical, so decisions
    // cannot drift from the interpreted path.
    let mut compiled: Option<CompiledTree> = None;

    let n = trace.len();
    let mut i = 0usize;
    while i < n {
        // Retrains/installs due at the block head (§4.4.3).
        if let Some(tr) = trainer.as_mut() {
            if let Some(model) = tr.maybe_retrain_compiled(trace.requests[i].ts, &mut sampler) {
                compiled = model.compiled;
                c.model = Some(model.tree);
            }
        } else if let Some(s) = schedule {
            while next_install < s.installs.len() && s.installs[next_install].0 == i as u64 {
                let tree = (*s.installs[next_install].1).clone();
                compiled = tree.compile().and_then(otae_ml::CompiledModel::into_tree);
                c.model = Some(tree);
                next_install += 1;
            }
        }

        // Cut the block before the next retrain boundary so the model is
        // constant across it.
        let mut j = (i + SCORE_BLOCK).min(n);
        if let Some(tr) = trainer.as_ref() {
            for k in (i + 1)..j {
                if tr.would_fire(trace.requests[k].ts) {
                    j = k;
                    break;
                }
            }
        } else if let Some(s) = schedule {
            if next_install < s.installs.len() {
                j = j.min(s.installs[next_install].0 as usize);
            }
        }

        // Features for [i, j): from the shared stream or extracted now.
        let feats: &[[f32; N_FEATURES]] = match planned_features {
            Some(all) => &all[i..j],
            None => {
                let fx = extractor.as_mut().expect("extractor present without a feature plan");
                block_feats.clear();
                for req in &trace.requests[i..j] {
                    block_feats.push(fx.extract(trace, req));
                    fx.update(trace, req);
                }
                &block_feats
            }
        };
        if trainer.is_some() {
            for (k, f) in (i..j).zip(feats.iter()) {
                sampler.offer(trace.requests[k].ts, *f, index.is_one_time(k, m));
            }
        }

        // One batched scoring sweep for the whole block: the compiled
        // level-synchronous walk scores the fixed-width rows in place; the
        // interpreted fallback (a model that would not compile) still packs
        // the flat buffer.
        let has_model = c.model.is_some();
        if let Some(model) = &c.model {
            scores.clear();
            match &compiled {
                Some(ct) => ct.score_rows_fixed(feats, &mut scores),
                None => {
                    flat.clear();
                    for f in feats {
                        flat.extend_from_slice(f);
                    }
                    model.score_rows(&flat, N_FEATURES, &mut scores);
                }
            }
        }

        // Exact per-request decision pass.
        for k in i..j {
            let req = &trace.requests[k];
            let now = k as u64;
            let size = trace.photo(req.object).size as u64;
            let truth = index.is_one_time(k, m);

            // Day roll-over for Figure 5 accounting.
            let day = req.ts / DAY;
            if day != current_day {
                per_day.push(DayMetrics {
                    day: current_day,
                    confusion: confusion_delta(&c.confusion, &day_start_confusion),
                });
                day_start_confusion = c.confusion;
                current_day = day;
            }

            let day = day as usize;
            if day_hits.len() <= day {
                day_hits.resize(day + 1, (0, 0));
            }
            day_hits[day].1 += 1;
            if cache.contains(&req.object) {
                cache.on_hit(&req.object, now);
                stats.record_hit(size);
                day_hits[day].0 += 1;
                response.record(cfg.latency.request_latency_us(true, size, true));
            } else {
                let predicted = has_model.then(|| scores[k - i] >= 0.5);
                let admit = classifier_apply(
                    predicted,
                    &mut c.history,
                    &mut c.confusion,
                    c.use_history,
                    c.m,
                    req.object,
                    now,
                    truth,
                );
                if admit {
                    evicted.clear();
                    cache.insert(req.object, size, now, evicted);
                    stats.record_admitted_miss(size);
                    observer(CacheEvent::Insert { object: req.object, size });
                    for e in evicted.iter() {
                        stats.record_eviction(e.size);
                        observer(CacheEvent::Evict { object: e.key, size: e.size });
                    }
                } else {
                    cache.on_bypass(&req.object, size, now);
                    stats.record_bypassed_miss(size);
                }
                service_time.record_miss(req.ts, size);
                response.record(cfg.latency.request_latency_us(false, size, true));
            }
        }
        i = j;
    }

    per_day.push(DayMetrics {
        day: current_day,
        confusion: confusion_delta(&c.confusion, &day_start_confusion),
    });
    ClassifierReport {
        overall: c.confusion,
        per_day,
        rectifications: c.history.rectifications(),
        trainings: trainer
            .map(|t| t.trainings)
            .or_else(|| schedule.map(|s| s.trainings))
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{generate, TraceConfig};

    fn trace() -> Trace {
        generate(&TraceConfig { n_objects: 8_000, seed: 31, ..Default::default() })
    }

    fn cap_for(trace: &Trace, frac: f64) -> u64 {
        (trace.unique_bytes() as f64 * frac) as u64
    }

    #[test]
    fn original_lru_behaves_like_always_admit() {
        let t = trace();
        let r = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap_for(&t, 0.02)));
        assert_eq!(r.stats.accesses as usize, t.len());
        assert_eq!(r.stats.bypasses, 0);
        // Every miss is a write under Original.
        assert_eq!(r.stats.files_written, r.stats.accesses - r.stats.hits);
        assert!(r.classifier.is_none());
    }

    #[test]
    fn ideal_improves_hits_and_slashes_writes() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let ideal = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Ideal, cap));
        assert!(
            ideal.stats.file_hit_rate() >= orig.stats.file_hit_rate(),
            "ideal {} vs original {}",
            ideal.stats.file_hit_rate(),
            orig.stats.file_hit_rate()
        );
        assert!(
            (ideal.stats.files_written as f64) < 0.6 * orig.stats.files_written as f64,
            "ideal writes {} vs original {}",
            ideal.stats.files_written,
            orig.stats.files_written
        );
    }

    #[test]
    fn proposal_trains_daily_and_reduces_writes() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let prop = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap));
        let report = prop.classifier.expect("proposal must report classifier metrics");
        assert!(report.trainings >= 7, "9-day trace must retrain daily: {}", report.trainings);
        assert!(report.overall.total() > 0);
        assert!(
            (prop.stats.files_written as f64) < 0.7 * orig.stats.files_written as f64,
            "proposal writes {} vs original {}",
            prop.stats.files_written,
            orig.stats.files_written
        );
        assert!(
            prop.stats.file_hit_rate() > orig.stats.file_hit_rate() - 0.01,
            "proposal must not lose hit rate: {} vs {}",
            prop.stats.file_hit_rate(),
            orig.stats.file_hit_rate()
        );
    }

    #[test]
    fn belady_dominates_lru_hit_rate() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let lru = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let belady = run(&t, &RunConfig::new(PolicyKind::Belady, Mode::Original, cap));
        assert!(belady.stats.file_hit_rate() >= lru.stats.file_hit_rate());
    }

    #[test]
    fn latency_orders_with_hit_rate() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Fifo, Mode::Original, cap));
        let ideal = run(&t, &RunConfig::new(PolicyKind::Fifo, Mode::Ideal, cap));
        assert!(ideal.mean_latency_us < orig.mean_latency_us);
    }

    #[test]
    fn lirs_uses_smaller_m() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let lru = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Ideal, cap));
        let lirs = run(&t, &RunConfig::new(PolicyKind::Lirs, Mode::Ideal, cap));
        assert!(lirs.criteria.m < lru.criteria.m);
    }

    #[test]
    fn second_hit_baseline_filters_writes_and_beats_always_admit() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let second = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::SecondHit, cap));
        let prop = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap));
        assert!(second.stats.files_written < orig.stats.files_written);
        assert!(second.stats.bypasses > 0);
        assert!(second.classifier.is_none(), "doorkeeper is not a classifier");
        // Both admission filters beat always-admit on hit rate. Which of the
        // two wins depends on capacity (the doorkeeper wastes one miss per
        // popular object but filters one-times perfectly); the
        // ablation_baselines experiment charts the comparison.
        assert!(second.stats.file_hit_rate() > orig.stats.file_hit_rate());
        assert!(prop.stats.file_hit_rate() > orig.stats.file_hit_rate());
    }

    #[test]
    fn latency_percentiles_and_daily_timeline_are_sane() {
        let t = trace();
        let r = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap_for(&t, 0.02)));
        // Tails: p50 <= mean-ish region <= p99; with a 3ms miss penalty and
        // partial hit rate, p99 must be in miss territory and p50 below it.
        assert!(r.latency_p50_us > 0.0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        assert!(r.latency_p99_us > 2000.0, "p99 {} must reflect HDD misses", r.latency_p99_us);
        // Daily timeline: 9-day trace, rates in [0,1], warm-up below later days.
        assert_eq!(r.per_day_hit_rate.len(), 9);
        assert!(r.per_day_hit_rate.iter().all(|h| (0.0..=1.0).contains(h)));
        let late_avg: f64 = r.per_day_hit_rate[5..].iter().sum::<f64>() / 4.0;
        assert!(
            r.per_day_hit_rate[0] < late_avg,
            "day 0 is cold: {} vs steady {}",
            r.per_day_hit_rate[0],
            late_avg
        );
    }

    #[test]
    fn planned_run_matches_inline_run_exactly() {
        let t = trace();
        let index = ReaccessIndex::build(&t);
        let cfg = RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap_for(&t, 0.02));
        let inline = run_with_index(&t, &index, &cfg);

        let features = FeatureExtractor::extract_all(&t);
        let avg = t.avg_object_size().max(1.0);
        let criteria = solve_criteria(&index, cfg.capacity, avg, cfg.criteria_iterations);
        let v = cfg.training.cost.resolve(cfg.capacity, t.unique_bytes());
        let schedule = ModelSchedule::build(&t, &index, &features, criteria.m, v, &cfg.training);
        assert!(!schedule.installs.is_empty(), "9-day trace must install models");

        // Features alone, then features + prerecorded schedule: both must be
        // bit-identical to the inline run.
        let feats_only =
            run_with_plan(&t, &index, &cfg, &RunPlan { features: Some(&features), schedule: None });
        assert_eq!(feats_only.fingerprint(), inline.fingerprint());
        let planned = run_with_plan(
            &t,
            &index,
            &cfg,
            &RunPlan { features: Some(&features), schedule: Some(&schedule) },
        );
        assert_eq!(planned.fingerprint(), inline.fingerprint());
        assert_eq!(planned.per_day_hit_rate, inline.per_day_hit_rate);
        let (a, b) = (planned.classifier.unwrap(), inline.classifier.unwrap());
        assert_eq!(a.per_day.len(), b.per_day.len());
    }

    #[test]
    fn policy_names_cover_paper_set() {
        let names: Vec<&str> = PolicyKind::PAPER_SET.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["LRU", "FIFO", "S3LRU", "ARC", "LIRS"]);
    }
}

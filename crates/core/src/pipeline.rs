//! End-to-end trace-driven simulation (Figure 4's workflow).
//!
//! One [`run`] drives a full trace through a replacement policy under one of
//! the paper's three admission configurations and returns every statistic
//! the evaluation section plots: file/byte hit rate, file/byte write rate
//! (Figures 6–9), mean response time via the Eqs. 3–6 model (Figure 10),
//! and per-day classifier quality (Figure 5).

use crate::admission::{AdmissionPolicy, ClassifierAdmission};
use crate::baseline::SecondHitAdmission;
use crate::criteria::{solve_criteria, CriteriaSolution};
use crate::daily::{DailyTrainer, MinuteSampler, TrainingConfig};
use crate::features::{FeatureExtractor, N_FEATURES};
use crate::reaccess::ReaccessIndex;
use otae_cache::{
    ArcCache, Belady, Cache, CacheStats, Evicted, Fifo, Gdsf, Lfu, Lirs, Lru, S3Lru, TwoQ,
};
use otae_device::{LatencyModel, ResponseTime};
use otae_ml::ConfusionMatrix;
use otae_trace::diurnal::DAY;
use otae_trace::{ObjectId, Trace};

/// Replacement policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// First in, first out.
    Fifo,
    /// Least frequently used (extra baseline).
    Lfu,
    /// Three-segment segmented LRU.
    S3Lru,
    /// Adaptive replacement cache.
    Arc,
    /// Low inter-reference recency set.
    Lirs,
    /// 2Q (extra baseline; filters one-hit wonders on the replacement side).
    TwoQ,
    /// Greedy-Dual-Size-Frequency (extra baseline; size-aware priorities).
    Gdsf,
    /// Offline-optimal Belady bound.
    Belady,
}

impl PolicyKind {
    /// The five policies of the paper's §5.3 figures.
    pub const PAPER_SET: [PolicyKind; 5] =
        [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::S3Lru, PolicyKind::Arc, PolicyKind::Lirs];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lfu => "LFU",
            PolicyKind::S3Lru => "S3LRU",
            PolicyKind::Arc => "ARC",
            PolicyKind::Lirs => "LIRS",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::Gdsf => "GDSF",
            PolicyKind::Belady => "Belady",
        }
    }

    /// LIR-stack share used by the LIRS criteria variant (`R_s`); 1 for
    /// other policies.
    pub fn stack_ratio(&self) -> f64 {
        match self {
            PolicyKind::Lirs => 0.99,
            _ => 1.0,
        }
    }

    /// Build the policy's cache over `capacity` bytes. The trace is needed
    /// only by Belady (future-knowledge next-access table). The trait object
    /// is `Send` so sharded services can move per-shard caches across
    /// worker threads.
    pub fn build(&self, capacity: u64, trace: &Trace) -> Box<dyn Cache<ObjectId> + Send> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(capacity)),
            PolicyKind::Fifo => Box::new(Fifo::new(capacity)),
            PolicyKind::Lfu => Box::new(Lfu::new(capacity)),
            PolicyKind::S3Lru => Box::new(S3Lru::new(capacity)),
            PolicyKind::Arc => Box::new(ArcCache::new(capacity)),
            PolicyKind::Lirs => Box::new(Lirs::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(capacity)),
            PolicyKind::Gdsf => Box::new(Gdsf::new(capacity)),
            PolicyKind::Belady => {
                let keys: Vec<ObjectId> = trace.requests.iter().map(|r| r.object).collect();
                Box::new(Belady::new(capacity, &keys))
            }
        }
    }
}

/// Admission configuration of a run (the curves in Figures 6–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Traditional caching: admit every miss.
    Original,
    /// The paper's classifier + history table.
    Proposal,
    /// Perfect classifier (100 % accuracy).
    Ideal,
    /// Cache-on-second-request doorkeeper (non-ML baseline; a miss is
    /// admitted only when the object was seen before, tracked in a bloom
    /// filter reset every `2M` misses).
    SecondHit,
}

impl Mode {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Original => "Original",
            Mode::Proposal => "Proposal",
            Mode::Ideal => "Ideal",
            Mode::SecondHit => "SecondHit",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Admission mode.
    pub mode: Mode,
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Classifier training configuration (Proposal only).
    pub training: TrainingConfig,
    /// Latency model for Figure 10.
    pub latency: LatencyModel,
    /// Criteria fixed-point rounds (§4.3; paper uses 3).
    pub criteria_iterations: usize,
    /// Override the computed one-time-access threshold `M` (ablations; e.g.
    /// `u64::MAX - 1` reproduces the naive "accessed once in the whole
    /// trace" criteria of §4.3's first paragraph).
    pub m_override: Option<u64>,
}

impl RunConfig {
    /// Config with paper-default training, latency and criteria settings.
    pub fn new(policy: PolicyKind, mode: Mode, capacity: u64) -> Self {
        Self {
            policy,
            mode,
            capacity,
            training: TrainingConfig::default(),
            latency: LatencyModel::default(),
            criteria_iterations: 3,
            m_override: None,
        }
    }
}

/// Classifier quality for one simulated day (Figure 5's x-axis).
#[derive(Debug, Clone, Copy)]
pub struct DayMetrics {
    /// Day index (0-based).
    pub day: u64,
    /// Decisions made during that day.
    pub confusion: ConfusionMatrix,
}

/// Classifier-side outcome of a Proposal run.
#[derive(Debug, Clone)]
pub struct ClassifierReport {
    /// All decisions over the whole run.
    pub overall: ConfusionMatrix,
    /// Per-day breakdown (Figure 5).
    pub per_day: Vec<DayMetrics>,
    /// History-table rectifications (§4.4.2).
    pub rectifications: u64,
    /// Completed daily trainings.
    pub trainings: u32,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Admission mode.
    pub mode: Mode,
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Cache counters (Figures 6–9).
    pub stats: CacheStats,
    /// Mean access latency in µs (Figure 10).
    pub mean_latency_us: f64,
    /// 25th-percentile access latency in µs (tail view; extension).
    pub latency_p25_us: f64,
    /// Median access latency in µs (tail view; extension).
    pub latency_p50_us: f64,
    /// 99th-percentile access latency in µs (tail view; extension).
    pub latency_p99_us: f64,
    /// File hit rate per calendar day (warm-up / steady-state view).
    pub per_day_hit_rate: Vec<f64>,
    /// Criteria solution used for labels/admission.
    pub criteria: CriteriaSolution,
    /// Classifier report (Proposal runs only).
    pub classifier: Option<ClassifierReport>,
}

/// Canonical digest of a run's observable outcome, for differential
/// testing between independent implementations of the same admission
/// pipeline (the single-threaded simulator vs. the sharded service).
///
/// Two runs over the same trace/config are *equivalent* when their
/// fingerprints are `==`: identical cache counters, identical resolved
/// criteria, and (for Proposal runs) identical classifier decisions,
/// rectifications and training count. Floating-point latency summaries are
/// deliberately excluded — they follow from the counters plus the latency
/// model and would only add rounding noise to an exact comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Cache counters (hits/misses/bypasses/evictions, file and byte).
    pub stats: CacheStats,
    /// Resolved one-time-access threshold `M`.
    pub m: u64,
    /// Overall classifier decisions (Proposal runs; `None` otherwise).
    pub confusion: Option<ConfusionMatrix>,
    /// History-table rectifications (Proposal runs; `None` otherwise).
    pub rectifications: Option<u64>,
    /// Completed daily trainings (Proposal runs; `None` otherwise).
    pub trainings: Option<u32>,
}

impl RunResult {
    /// The run's [`RunFingerprint`].
    pub fn fingerprint(&self) -> RunFingerprint {
        RunFingerprint {
            stats: self.stats,
            m: self.criteria.m,
            confusion: self.classifier.as_ref().map(|c| c.overall),
            rectifications: self.classifier.as_ref().map(|c| c.rectifications),
            trainings: self.classifier.as_ref().map(|c| c.trainings),
        }
    }
}

/// SSD-level event emitted while driving the cache (for device-layer
/// consumers such as the FTL simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// Object written into the SSD cache.
    Insert {
        /// Object id.
        object: ObjectId,
        /// Size in bytes.
        size: u64,
    },
    /// Object evicted from the SSD cache (its flash pages are invalidated).
    Evict {
        /// Object id.
        object: ObjectId,
        /// Size in bytes.
        size: u64,
    },
}

fn confusion_delta(cur: &ConfusionMatrix, prev: &ConfusionMatrix) -> ConfusionMatrix {
    ConfusionMatrix {
        tp: cur.tp - prev.tp,
        fp: cur.fp - prev.fp,
        fn_: cur.fn_ - prev.fn_,
        tn: cur.tn - prev.tn,
    }
}

/// Run a simulation, building the reaccess index internally. For sweeps use
/// [`run_with_index`] and share the index.
pub fn run(trace: &Trace, cfg: &RunConfig) -> RunResult {
    let index = ReaccessIndex::build(trace);
    run_with_index(trace, &index, cfg)
}

/// Run a simulation against a precomputed reaccess index.
pub fn run_with_index(trace: &Trace, index: &ReaccessIndex, cfg: &RunConfig) -> RunResult {
    run_with_observer(trace, index, cfg, &mut |_| {})
}

/// [`run_with_index`] with an observer receiving every SSD insert/evict —
/// the seam the FTL wear experiments consume.
pub fn run_with_observer(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &RunConfig,
    observer: &mut dyn FnMut(CacheEvent),
) -> RunResult {
    assert_eq!(index.len(), trace.len(), "index must match the trace");
    let avg_size = trace.avg_object_size().max(1.0);
    let base = solve_criteria(index, cfg.capacity, avg_size, cfg.criteria_iterations);
    let criteria =
        if cfg.policy == PolicyKind::Lirs { base.for_lirs(cfg.policy.stack_ratio()) } else { base };
    let m = cfg.m_override.unwrap_or(criteria.m);

    let mut cache = cfg.policy.build(cfg.capacity, trace);
    let mut admission = match cfg.mode {
        Mode::Original => AdmissionPolicy::Always,
        Mode::Ideal => AdmissionPolicy::Oracle { index, m },
        Mode::Proposal => {
            let mut c = ClassifierAdmission::new(m, criteria.history_table_capacity());
            c.use_history = cfg.training.use_history;
            AdmissionPolicy::Classifier(Box::new(c))
        }
        Mode::SecondHit => AdmissionPolicy::SecondHit(SecondHitAdmission::new(
            trace.meta.len().max(1024),
            2 * m.min(u64::MAX / 2),
            cfg.training.max_splits as u64 ^ 0x5EED,
        )),
    };
    let is_proposal = cfg.mode == Mode::Proposal;
    let classified = cfg.mode != Mode::Original;

    let v = cfg.training.cost.resolve(cfg.capacity, trace.unique_bytes());
    let mut trainer = DailyTrainer::new(cfg.training.clone(), v);
    let mut sampler = MinuteSampler::new(cfg.training.records_per_minute);
    let mut extractor = FeatureExtractor::new(trace);

    let mut stats = CacheStats::default();
    let mut response = ResponseTime::default();
    let mut evicted: Vec<Evicted<ObjectId>> = Vec::new();

    let mut per_day: Vec<DayMetrics> = Vec::new();
    let mut day_start_confusion = ConfusionMatrix::default();
    let mut current_day = 0u64;
    let mut day_hits: Vec<(u64, u64)> = Vec::new(); // (hits, accesses) per day

    for (i, req) in trace.requests.iter().enumerate() {
        let now = i as u64;
        let size = trace.photo(req.object).size as u64;
        let truth = index.is_one_time(i, m);

        let mut features = [0.0f32; N_FEATURES];
        if is_proposal {
            // Daily retraining at the configured hour (§4.4.3).
            if let AdmissionPolicy::Classifier(c) = &mut admission {
                if let Some(model) = trainer.maybe_retrain(req.ts, &mut sampler) {
                    c.model = Some(model);
                }
                // Day roll-over for Figure 5 accounting.
                let day = req.ts / DAY;
                if day != current_day {
                    per_day.push(DayMetrics {
                        day: current_day,
                        confusion: confusion_delta(&c.confusion, &day_start_confusion),
                    });
                    day_start_confusion = c.confusion;
                    current_day = day;
                }
            }
            features = extractor.extract(trace, req);
            sampler.offer(req.ts, features, truth);
        }

        let day = (req.ts / DAY) as usize;
        if day_hits.len() <= day {
            day_hits.resize(day + 1, (0, 0));
        }
        day_hits[day].1 += 1;
        if cache.contains(&req.object) {
            cache.on_hit(&req.object, now);
            stats.record_hit(size);
            day_hits[day].0 += 1;
            response.record(cfg.latency.request_latency_us(true, size, classified));
        } else {
            let admit = admission.decide(req.object, &features, now, truth);
            if admit {
                evicted.clear();
                cache.insert(req.object, size, now, &mut evicted);
                stats.record_admitted_miss(size);
                observer(CacheEvent::Insert { object: req.object, size });
                for e in &evicted {
                    stats.record_eviction(e.size);
                    observer(CacheEvent::Evict { object: e.key, size: e.size });
                }
            } else {
                cache.on_bypass(&req.object, size, now);
                stats.record_bypassed_miss(size);
            }
            response.record(cfg.latency.request_latency_us(false, size, classified));
        }

        if is_proposal {
            extractor.update(trace, req);
        }
    }

    let classifier = if let AdmissionPolicy::Classifier(c) = &admission {
        per_day.push(DayMetrics {
            day: current_day,
            confusion: confusion_delta(&c.confusion, &day_start_confusion),
        });
        Some(ClassifierReport {
            overall: c.confusion,
            per_day,
            rectifications: c.history.rectifications(),
            trainings: trainer.trainings,
        })
    } else {
        None
    };

    RunResult {
        policy: cfg.policy,
        mode: cfg.mode,
        capacity: cfg.capacity,
        stats,
        mean_latency_us: response.mean_us(),
        latency_p25_us: response.percentile_us(0.25),
        latency_p50_us: response.percentile_us(0.5),
        latency_p99_us: response.percentile_us(0.99),
        per_day_hit_rate: day_hits
            .iter()
            .map(|&(h, a)| if a == 0 { 0.0 } else { h as f64 / a as f64 })
            .collect(),
        criteria,
        classifier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{generate, TraceConfig};

    fn trace() -> Trace {
        generate(&TraceConfig { n_objects: 8_000, seed: 31, ..Default::default() })
    }

    fn cap_for(trace: &Trace, frac: f64) -> u64 {
        (trace.unique_bytes() as f64 * frac) as u64
    }

    #[test]
    fn original_lru_behaves_like_always_admit() {
        let t = trace();
        let r = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap_for(&t, 0.02)));
        assert_eq!(r.stats.accesses as usize, t.len());
        assert_eq!(r.stats.bypasses, 0);
        // Every miss is a write under Original.
        assert_eq!(r.stats.files_written, r.stats.accesses - r.stats.hits);
        assert!(r.classifier.is_none());
    }

    #[test]
    fn ideal_improves_hits_and_slashes_writes() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let ideal = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Ideal, cap));
        assert!(
            ideal.stats.file_hit_rate() >= orig.stats.file_hit_rate(),
            "ideal {} vs original {}",
            ideal.stats.file_hit_rate(),
            orig.stats.file_hit_rate()
        );
        assert!(
            (ideal.stats.files_written as f64) < 0.6 * orig.stats.files_written as f64,
            "ideal writes {} vs original {}",
            ideal.stats.files_written,
            orig.stats.files_written
        );
    }

    #[test]
    fn proposal_trains_daily_and_reduces_writes() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let prop = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap));
        let report = prop.classifier.expect("proposal must report classifier metrics");
        assert!(report.trainings >= 7, "9-day trace must retrain daily: {}", report.trainings);
        assert!(report.overall.total() > 0);
        assert!(
            (prop.stats.files_written as f64) < 0.7 * orig.stats.files_written as f64,
            "proposal writes {} vs original {}",
            prop.stats.files_written,
            orig.stats.files_written
        );
        assert!(
            prop.stats.file_hit_rate() > orig.stats.file_hit_rate() - 0.01,
            "proposal must not lose hit rate: {} vs {}",
            prop.stats.file_hit_rate(),
            orig.stats.file_hit_rate()
        );
    }

    #[test]
    fn belady_dominates_lru_hit_rate() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let lru = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let belady = run(&t, &RunConfig::new(PolicyKind::Belady, Mode::Original, cap));
        assert!(belady.stats.file_hit_rate() >= lru.stats.file_hit_rate());
    }

    #[test]
    fn latency_orders_with_hit_rate() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Fifo, Mode::Original, cap));
        let ideal = run(&t, &RunConfig::new(PolicyKind::Fifo, Mode::Ideal, cap));
        assert!(ideal.mean_latency_us < orig.mean_latency_us);
    }

    #[test]
    fn lirs_uses_smaller_m() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let lru = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Ideal, cap));
        let lirs = run(&t, &RunConfig::new(PolicyKind::Lirs, Mode::Ideal, cap));
        assert!(lirs.criteria.m < lru.criteria.m);
    }

    #[test]
    fn second_hit_baseline_filters_writes_and_beats_always_admit() {
        let t = trace();
        let cap = cap_for(&t, 0.02);
        let orig = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        let second = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::SecondHit, cap));
        let prop = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap));
        assert!(second.stats.files_written < orig.stats.files_written);
        assert!(second.stats.bypasses > 0);
        assert!(second.classifier.is_none(), "doorkeeper is not a classifier");
        // Both admission filters beat always-admit on hit rate. Which of the
        // two wins depends on capacity (the doorkeeper wastes one miss per
        // popular object but filters one-times perfectly); the
        // ablation_baselines experiment charts the comparison.
        assert!(second.stats.file_hit_rate() > orig.stats.file_hit_rate());
        assert!(prop.stats.file_hit_rate() > orig.stats.file_hit_rate());
    }

    #[test]
    fn latency_percentiles_and_daily_timeline_are_sane() {
        let t = trace();
        let r = run(&t, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap_for(&t, 0.02)));
        // Tails: p50 <= mean-ish region <= p99; with a 3ms miss penalty and
        // partial hit rate, p99 must be in miss territory and p50 below it.
        assert!(r.latency_p50_us > 0.0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        assert!(r.latency_p99_us > 2000.0, "p99 {} must reflect HDD misses", r.latency_p99_us);
        // Daily timeline: 9-day trace, rates in [0,1], warm-up below later days.
        assert_eq!(r.per_day_hit_rate.len(), 9);
        assert!(r.per_day_hit_rate.iter().all(|h| (0.0..=1.0).contains(h)));
        let late_avg: f64 = r.per_day_hit_rate[5..].iter().sum::<f64>() / 4.0;
        assert!(
            r.per_day_hit_rate[0] < late_avg,
            "day 0 is cold: {} vs steady {}",
            r.per_day_hit_rate[0],
            late_avg
        );
    }

    #[test]
    fn policy_names_cover_paper_set() {
        let names: Vec<&str> = PolicyKind::PAPER_SET.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["LRU", "FIFO", "S3LRU", "ARC", "LIRS"]);
    }
}

//! Non-ML admission baselines.
//!
//! The paper's related work (§6.1, [17, 20, 25]) discusses bypass policies
//! that need no learning. The strongest practical one — what CDNs deploy as
//! a "one-hit-wonder" filter — is **cache-on-second-request**: a miss is
//! admitted only if the object has been seen before, tracked approximately
//! in a bloom-filter doorkeeper that is periodically reset to age out stale
//! history. Comparing it against the paper's classifier isolates what the
//! ML actually buys: the doorkeeper needs one wasted miss per object to
//! learn, and cannot skip objects that recur but only after eviction.

use otae_trace::ObjectId;

/// Seeded double-hashing bloom filter over object ids.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
    seed: u64,
}

impl BloomFilter {
    /// Filter sized for `expected_items` at roughly 1 % false positives.
    pub fn new(expected_items: usize, seed: u64) -> Self {
        // Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2; p = 0.01.
        let n = expected_items.max(64) as f64;
        let m = (-n * 0.01f64.ln() / (2f64.ln() * 2f64.ln())).ceil() as u64;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        let words = m.div_ceil(64).max(1);
        Self { bits: vec![0; words as usize], n_bits: words * 64, n_hashes: k, seed }
    }

    fn hash2(&self, key: ObjectId) -> (u64, u64) {
        // splitmix64 on (seed ^ key) gives two independent halves.
        let mut z = self.seed ^ ((key.0 as u64).wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let h1 = z;
        let h2 = z.rotate_left(32) | 1; // odd stride
        (h1, h2)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: ObjectId) {
        let (h1, h2) = self.hash2(key);
        for i in 0..self.n_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Probabilistic membership: false positives possible, negatives exact.
    pub fn contains(&self, key: ObjectId) -> bool {
        let (h1, h2) = self.hash2(key);
        (0..self.n_hashes as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Clear all bits (aging reset).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Fraction of set bits (load factor diagnostics).
    pub fn fill_ratio(&self) -> f64 {
        let ones: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        ones as f64 / self.n_bits as f64
    }
}

/// Cache-on-second-request admission with a periodically reset doorkeeper.
#[derive(Debug, Clone)]
pub struct SecondHitAdmission {
    doorkeeper: BloomFilter,
    /// Accesses between doorkeeper resets (aging window).
    reset_every: u64,
    since_reset: u64,
    admitted: u64,
    bypassed: u64,
}

impl SecondHitAdmission {
    /// Doorkeeper sized for `expected_objects`, reset every `reset_every`
    /// misses (0 = never reset).
    pub fn new(expected_objects: usize, reset_every: u64, seed: u64) -> Self {
        Self {
            doorkeeper: BloomFilter::new(expected_objects, seed),
            reset_every,
            since_reset: 0,
            admitted: 0,
            bypassed: 0,
        }
    }

    /// Decide a miss: admit iff the object was seen before (approximately).
    pub fn decide(&mut self, obj: ObjectId) -> bool {
        if self.reset_every > 0 {
            self.since_reset += 1;
            if self.since_reset >= self.reset_every {
                self.doorkeeper.clear();
                self.since_reset = 0;
            }
        }
        if self.doorkeeper.contains(obj) {
            self.admitted += 1;
            true
        } else {
            self.doorkeeper.insert(obj);
            self.bypassed += 1;
            false
        }
    }

    /// Misses admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Misses bypassed so far.
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = BloomFilter::new(1000, 7);
        for i in 0..1000u32 {
            b.insert(ObjectId(i));
        }
        for i in 0..1000u32 {
            assert!(b.contains(ObjectId(i)), "inserted key {i} must be present");
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low() {
        let mut b = BloomFilter::new(10_000, 3);
        for i in 0..10_000u32 {
            b.insert(ObjectId(i));
        }
        let fp = (10_000..110_000u32).filter(|&i| b.contains(ObjectId(i))).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn bloom_clear_resets() {
        let mut b = BloomFilter::new(100, 1);
        b.insert(ObjectId(5));
        assert!(b.contains(ObjectId(5)));
        b.clear();
        assert!(!b.contains(ObjectId(5)));
        assert_eq!(b.fill_ratio(), 0.0);
    }

    #[test]
    fn second_hit_bypasses_first_admits_second() {
        let mut a = SecondHitAdmission::new(1000, 0, 9);
        assert!(!a.decide(ObjectId(1)), "first sighting bypassed");
        assert!(a.decide(ObjectId(1)), "second sighting admitted");
        assert_eq!(a.bypassed(), 1);
        assert_eq!(a.admitted(), 1);
    }

    #[test]
    fn reset_forgets_history() {
        let mut a = SecondHitAdmission::new(1000, 2, 9);
        assert!(!a.decide(ObjectId(1)));
        assert!(!a.decide(ObjectId(2))); // triggers reset at 2 misses
                                         // History wiped: object 1 is "new" again.
        assert!(!a.decide(ObjectId(1)));
    }

    #[test]
    fn one_time_stream_is_fully_bypassed() {
        let mut a = SecondHitAdmission::new(100_000, 0, 11);
        let mut admitted = 0;
        for i in 0..50_000u32 {
            if a.decide(ObjectId(i)) {
                admitted += 1;
            }
        }
        // Only bloom false positives slip through.
        assert!(
            (admitted as f64) < 0.03 * 50_000.0,
            "one-time stream mostly bypassed, admitted {admitted}"
        );
    }
}

//! Online (incremental) learning — the alternative the paper mentions but
//! does not pursue.
//!
//! §4.4.3: *"There are two solutions to this problem. One is incrementally
//! updating classification model in a real-time manner. The other is an
//! offline learning manner … We choose the second one."* This module builds
//! the first one so the trade-off can actually be measured.
//!
//! Two pieces make it realistic:
//!
//! * [`DelayedLabelQueue`] — in production nobody hands the system oracle
//!   labels: whether a miss was one-time-access only becomes known `M`
//!   accesses later (either the object returned — label observed at the
//!   return — or it did not — label observed when the window expires). The
//!   queue implements exactly that feedback delay.
//! * [`OnlineLogistic`] — an always-on logistic regression with Welford
//!   online feature standardisation and class-weighted SGD, updated from
//!   the matured labels only.
//!
//! [`run_online`] drives a full simulation with this admission stack and is
//! compared against the paper's daily-batch training in the
//! `ablation_online` experiment.

use crate::criteria::solve_criteria;
use crate::features::{FeatureExtractor, N_FEATURES};
use crate::history::HistoryTable;
use crate::pipeline::{PolicyKind, RunConfig};
use crate::reaccess::ReaccessIndex;
use otae_cache::{CacheStats, Evicted};
use otae_device::ResponseTime;
use otae_fxhash::FxHashMap;
use otae_ml::ConfusionMatrix;
use otae_trace::{ObjectId, Trace};
use std::collections::VecDeque;

/// One decision whose true label has not matured yet.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Access index of the decision.
    idx: u64,
    /// Feature row at decision time.
    features: [f32; N_FEATURES],
}

/// A matured training observation.
#[derive(Debug, Clone, Copy)]
pub struct MaturedLabel {
    /// Feature row at decision time.
    pub features: [f32; N_FEATURES],
    /// True one-time-access label, observed without any oracle.
    pub one_time: bool,
}

/// Delayed label feedback: decisions mature into labels once the object
/// returns (non-one-time) or the `M`-access window expires (one-time).
#[derive(Debug)]
pub struct DelayedLabelQueue {
    m: u64,
    /// Latest undecided observation per object.
    pending: FxHashMap<ObjectId, Pending>,
    /// Expiry order: (decision idx, object).
    expiry: VecDeque<(u64, ObjectId)>,
    matured: Vec<MaturedLabel>,
}

impl DelayedLabelQueue {
    /// Queue for a one-time-access threshold of `m` accesses.
    pub fn new(m: u64) -> Self {
        Self { m, pending: FxHashMap::default(), expiry: VecDeque::new(), matured: Vec::new() }
    }

    /// Record a decision at access index `idx`.
    pub fn record(&mut self, obj: ObjectId, idx: u64, features: [f32; N_FEATURES]) {
        self.pending.insert(obj, Pending { idx, features });
        self.expiry.push_back((idx, obj));
    }

    /// The object was accessed again at index `now`: if a pending decision
    /// exists, its label matures immediately.
    pub fn on_access(&mut self, obj: ObjectId, now: u64) {
        if let Some(p) = self.pending.remove(&obj) {
            let one_time = now.saturating_sub(p.idx) > self.m;
            self.matured.push(MaturedLabel { features: p.features, one_time });
        }
    }

    /// Advance time to access index `now`, expiring windows that closed
    /// without a return (those mature as one-time).
    pub fn advance(&mut self, now: u64) {
        while let Some(&(idx, obj)) = self.expiry.front() {
            if now.saturating_sub(idx) <= self.m {
                break;
            }
            self.expiry.pop_front();
            // Only mature if this exact decision is still pending (a newer
            // access may have superseded or resolved it).
            if let Some(p) = self.pending.get(&obj) {
                if p.idx == idx {
                    let p = self.pending.remove(&obj).expect("just checked");
                    self.matured.push(MaturedLabel { features: p.features, one_time: true });
                }
            }
        }
    }

    /// Drain labels that matured since the last call.
    pub fn drain(&mut self) -> Vec<MaturedLabel> {
        std::mem::take(&mut self.matured)
    }

    /// Decisions still waiting for their label.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Welford-style online mean/variance per feature.
#[derive(Debug, Clone)]
struct OnlineStandardizer {
    n: f64,
    mean: [f64; N_FEATURES],
    m2: [f64; N_FEATURES],
}

impl OnlineStandardizer {
    fn new() -> Self {
        Self { n: 0.0, mean: [0.0; N_FEATURES], m2: [0.0; N_FEATURES] }
    }

    fn update(&mut self, row: &[f32; N_FEATURES]) {
        self.n += 1.0;
        for (j, &v) in row.iter().enumerate() {
            let x = v as f64;
            let d = x - self.mean[j];
            self.mean[j] += d / self.n;
            self.m2[j] += d * (x - self.mean[j]);
        }
    }

    fn transform(&self, row: &[f32; N_FEATURES]) -> [f32; N_FEATURES] {
        let mut out = [0.0f32; N_FEATURES];
        for j in 0..N_FEATURES {
            let var = if self.n > 1.0 { self.m2[j] / self.n } else { 1.0 };
            let std = var.sqrt().max(1e-6);
            out[j] = ((row[j] as f64 - self.mean[j]) / std) as f32;
        }
        out
    }
}

/// Incrementally-updated logistic regression for one-time-access prediction.
#[derive(Debug, Clone)]
pub struct OnlineLogistic {
    /// SGD learning rate.
    pub lr: f32,
    /// Weight applied to negative-class updates (Table 4's `v`).
    pub cost_fp: f32,
    weights: [f32; N_FEATURES],
    bias: f32,
    standardizer: OnlineStandardizer,
    observations: u64,
}

impl OnlineLogistic {
    /// Fresh model; `cost_fp` is the false-positive cost `v`.
    pub fn new(lr: f32, cost_fp: f32) -> Self {
        Self {
            lr,
            cost_fp,
            weights: [0.0; N_FEATURES],
            bias: 0.0,
            standardizer: OnlineStandardizer::new(),
            observations: 0,
        }
    }

    /// Labels consumed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Positive-class probability.
    pub fn score(&self, row: &[f32; N_FEATURES]) -> f32 {
        let x = self.standardizer.transform(row);
        let z: f32 = self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f32>() + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard one-time decision at 0.5.
    pub fn predict(&self, row: &[f32; N_FEATURES]) -> bool {
        self.score(row) >= 0.5
    }

    /// Consume one matured label.
    pub fn observe(&mut self, label: &MaturedLabel) {
        self.standardizer.update(&label.features);
        let x = self.standardizer.transform(&label.features);
        let p = {
            let z: f32 = self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f32>() + self.bias;
            1.0 / (1.0 + (-z).exp())
        };
        let y = if label.one_time { 1.0 } else { 0.0 };
        let w = if label.one_time { 1.0 } else { self.cost_fp };
        let err = (p - y) * w;
        for (wj, xj) in self.weights.iter_mut().zip(&x) {
            *wj -= self.lr * err * xj;
        }
        self.bias -= self.lr * err;
        self.observations += 1;
    }

    /// Warm-up threshold: predictions are unreliable before this many labels.
    pub fn is_warm(&self) -> bool {
        self.observations >= 500
    }
}

impl otae_ml::OnlineClassifier for OnlineLogistic {
    fn observe(&mut self, row: &[f32], label: bool) {
        let mut features = [0.0f32; N_FEATURES];
        features.copy_from_slice(row);
        OnlineLogistic::observe(self, &MaturedLabel { features, one_time: label });
    }

    fn score(&self, row: &[f32]) -> f32 {
        let mut features = [0.0f32; N_FEATURES];
        features.copy_from_slice(row);
        OnlineLogistic::score(self, &features)
    }

    fn observations(&self) -> u64 {
        self.observations
    }
}

/// Result of an online-admission run.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// Cache counters.
    pub stats: CacheStats,
    /// Mean latency (µs) under the classified miss penalty.
    pub mean_latency_us: f64,
    /// Decision quality against offline ground truth.
    pub confusion: ConfusionMatrix,
    /// Labels the model actually consumed (all from delayed feedback).
    pub labels_consumed: u64,
    /// One-time threshold used.
    pub m: u64,
}

/// Which incremental learner drives an online-admission run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineModelKind {
    /// Cost-weighted online logistic regression (linear).
    Logistic,
    /// Hoeffding (VFDT) incremental decision tree (non-linear).
    Hoeffding,
}

impl OnlineModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OnlineModelKind::Logistic => "online logistic",
            OnlineModelKind::Hoeffding => "Hoeffding tree",
        }
    }
}

/// Run a simulation where admission is driven by [`OnlineLogistic`] fed
/// exclusively from [`DelayedLabelQueue`] — no oracle labels anywhere on the
/// decision path.
pub fn run_online(trace: &Trace, index: &ReaccessIndex, cfg: &RunConfig) -> OnlineResult {
    run_online_with(trace, index, cfg, OnlineModelKind::Logistic)
}

/// [`run_online`] with an explicit incremental learner.
pub fn run_online_with(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &RunConfig,
    kind: OnlineModelKind,
) -> OnlineResult {
    assert_eq!(index.len(), trace.len());
    let avg = trace.avg_object_size().max(1.0);
    let base = solve_criteria(index, cfg.capacity, avg, cfg.criteria_iterations);
    let criteria =
        if cfg.policy == PolicyKind::Lirs { base.for_lirs(cfg.policy.stack_ratio()) } else { base };
    let m = cfg.m_override.unwrap_or(criteria.m);
    let v = cfg.training.cost.resolve(cfg.capacity, trace.unique_bytes());

    let mut cache = cfg.policy.build(cfg.capacity, trace);
    let mut model: Box<dyn otae_ml::OnlineClassifier> = match kind {
        OnlineModelKind::Logistic => Box::new(OnlineLogistic::new(0.05, v)),
        OnlineModelKind::Hoeffding => {
            let mut t = otae_ml::HoeffdingTree::new(N_FEATURES);
            t.cost_fp = v as f64;
            Box::new(t)
        }
    };
    let mut queue = DelayedLabelQueue::new(m);
    let mut history = HistoryTable::new(criteria.history_table_capacity());
    let mut extractor = FeatureExtractor::new(trace);
    let mut stats = CacheStats::default();
    let mut response = ResponseTime::default();
    let mut confusion = ConfusionMatrix::default();
    let mut evicted: Vec<Evicted<ObjectId>> = Vec::new();
    let mut labels = 0u64;

    // Feature rows are extracted in blocks (extraction depends only on the
    // request stream, never on decisions or matured labels), so the
    // extractor's sliding-window work stays off the per-request decision
    // path. Scoring itself cannot batch here: the model mutates on every
    // matured label, so each prediction must see the model state of its own
    // request — batching it would change results.
    const FEATURE_BLOCK: usize = 1024;
    let mut block_feats: Vec<[f32; N_FEATURES]> = Vec::with_capacity(FEATURE_BLOCK);

    let mut block_start = 0usize;
    while block_start < trace.len() {
        let block_end = (block_start + FEATURE_BLOCK).min(trace.len());
        block_feats.clear();
        for req in &trace.requests[block_start..block_end] {
            block_feats.push(extractor.extract(trace, req));
            extractor.update(trace, req);
        }

        for i in block_start..block_end {
            let req = &trace.requests[i];
            let now = i as u64;
            let size = trace.photo(req.object).size as u64;

            // Label maturation precedes the decision (strictly causal).
            queue.advance(now);
            queue.on_access(req.object, now);
            for label in queue.drain() {
                model.observe(&label.features, label.one_time);
                labels += 1;
            }

            let features = block_feats[i - block_start];
            if cache.contains(&req.object) {
                cache.on_hit(&req.object, now);
                stats.record_hit(size);
                response.record(cfg.latency.request_latency_us(true, size, true));
            } else {
                queue.record(req.object, now, features);
                let truth = index.is_one_time(i, m);
                let admit = if model.observations() < 500 {
                    true // cold start: admit everything until warmed up
                } else {
                    let one_time = model.predict(&features);
                    confusion.record(truth, one_time);
                    if !one_time || history.check_and_rectify(req.object, now, m) {
                        true
                    } else {
                        history.record_one_time(req.object, now);
                        false
                    }
                };
                if admit {
                    evicted.clear();
                    cache.insert(req.object, size, now, &mut evicted);
                    stats.record_admitted_miss(size);
                    for e in &evicted {
                        stats.record_eviction(e.size);
                    }
                } else {
                    cache.on_bypass(&req.object, size, now);
                    stats.record_bypassed_miss(size);
                }
                response.record(cfg.latency.request_latency_us(false, size, true));
            }
        }
        block_start = block_end;
    }

    OnlineResult {
        stats,
        mean_latency_us: response.mean_us(),
        confusion,
        labels_consumed: labels,
        m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_with_index, Mode};
    use otae_trace::{generate, TraceConfig};

    fn row(x: f32) -> [f32; N_FEATURES] {
        let mut f = [0.0f32; N_FEATURES];
        f[0] = x;
        f
    }

    #[test]
    fn queue_matures_on_return() {
        let mut q = DelayedLabelQueue::new(100);
        q.record(ObjectId(1), 0, row(0.5));
        q.on_access(ObjectId(1), 50);
        let labels = q.drain();
        assert_eq!(labels.len(), 1);
        assert!(!labels[0].one_time, "returned within M: not one-time");
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn queue_matures_on_expiry() {
        let mut q = DelayedLabelQueue::new(100);
        q.record(ObjectId(1), 0, row(0.5));
        q.advance(100);
        assert!(q.drain().is_empty(), "window still open at exactly M");
        q.advance(101);
        let labels = q.drain();
        assert_eq!(labels.len(), 1);
        assert!(labels[0].one_time, "no return within M: one-time");
    }

    #[test]
    fn late_return_labels_one_time() {
        let mut q = DelayedLabelQueue::new(100);
        q.record(ObjectId(1), 0, row(0.5));
        // Returns, but far beyond M and before any advance.
        q.on_access(ObjectId(1), 500);
        let labels = q.drain();
        assert_eq!(labels.len(), 1);
        assert!(labels[0].one_time);
    }

    #[test]
    fn superseded_decisions_do_not_double_mature() {
        let mut q = DelayedLabelQueue::new(100);
        q.record(ObjectId(1), 0, row(0.1));
        q.on_access(ObjectId(1), 10); // matures first decision
        q.record(ObjectId(1), 10, row(0.2));
        q.advance(200); // expires second decision; first expiry entry is stale
        let labels = q.drain();
        assert_eq!(labels.len(), 2);
        assert!(!labels[0].one_time);
        assert!(labels[1].one_time);
    }

    #[test]
    fn online_logistic_learns_a_threshold() {
        let mut model = OnlineLogistic::new(0.1, 1.0);
        let mut state = 1u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = ((state >> 33) % 1000) as f32 / 1000.0;
            model.observe(&MaturedLabel { features: row(x), one_time: x > 0.5 });
        }
        assert!(model.is_warm());
        assert!(model.predict(&row(0.9)));
        assert!(!model.predict(&row(0.1)));
        assert!(model.score(&row(0.9)) > model.score(&row(0.6)));
    }

    #[test]
    fn cost_weight_biases_against_positives() {
        let train = |v: f32| {
            let mut model = OnlineLogistic::new(0.1, v);
            let mut state = 9u64;
            for _ in 0..8000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = ((state >> 33) % 1000) as f32 / 1000.0;
                let noisy = ((state >> 13) % 100) as f32 / 100.0;
                let label = x + 0.4 * noisy > 0.7;
                model.observe(&MaturedLabel { features: row(x), one_time: label });
            }
            model
        };
        let neutral = train(1.0);
        let costly = train(4.0);
        // Count positive predictions over a grid: the costly model must be
        // more conservative.
        let pos =
            |m: &OnlineLogistic| (0..100).filter(|i| m.predict(&row(*i as f32 / 100.0))).count();
        assert!(pos(&costly) <= pos(&neutral));
    }

    #[test]
    fn run_online_improves_over_original_without_oracle_labels() {
        let trace = generate(&TraceConfig { n_objects: 8_000, seed: 99, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let cap = (trace.unique_bytes() as f64 * 0.02) as u64;
        let online =
            run_online(&trace, &index, &RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap));
        let orig =
            run_with_index(&trace, &index, &RunConfig::new(PolicyKind::Lru, Mode::Original, cap));
        assert!(online.labels_consumed > 1_000, "delayed labels must flow");
        assert!(
            online.stats.files_written < orig.stats.files_written,
            "online admission must cut writes: {} vs {}",
            online.stats.files_written,
            orig.stats.files_written
        );
        assert!(
            online.stats.file_hit_rate() > orig.stats.file_hit_rate() - 0.02,
            "online admission must not sink the hit rate: {} vs {}",
            online.stats.file_hit_rate(),
            orig.stats.file_hit_rate()
        );
    }

    #[test]
    fn run_online_is_deterministic() {
        let trace = generate(&TraceConfig { n_objects: 2_000, seed: 5, ..Default::default() });
        let index = ReaccessIndex::build(&trace);
        let cap = (trace.unique_bytes() as f64 * 0.02) as u64;
        let cfg = RunConfig::new(PolicyKind::Lru, Mode::Proposal, cap);
        let a = run_online(&trace, &index, &cfg);
        let b = run_online(&trace, &index, &cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.labels_consumed, b.labels_consumed);
    }
}

//! Online extraction of the paper's classifying features (§3.2).
//!
//! The classifier must judge a photo **at miss time with no per-object
//! history**, so every feature is computable from (a) upload-time metadata,
//! (b) the owner's aggregate behaviour so far, and (c) cache-system state:
//!
//! | # | feature | paper §3.2.1 |
//! |---|---------|--------------|
//! | 0 | owner's average views per photo | photo owner's social information |
//! | 1 | owner's active friends | photo owner's social information |
//! | 2 | photo type (1–12) | photo information |
//! | 3 | photo size (KiB) | photo information |
//! | 4 | photo age (10-minute units) | photo information |
//! | 5 | recency (10-minute units; since upload when never accessed) | photo information |
//! | 6 | terminal type (0 = PC, 1 = mobile) | cache system information |
//! | 7 | requests in the last minute | cache system information |
//! | 8 | hour of day (0–23) | cache system information |
//!
//! Discretisation follows §3.2.3: types map to 1–12, terminals to 0/1, time
//! intervals to 10-minute granularity and access time to the hour.

use otae_trace::{Request, Trace};
use std::collections::VecDeque;

/// Number of extracted features.
pub const N_FEATURES: usize = 9;

/// Feature names, aligned with the extraction order.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "avg_views",
    "active_friends",
    "photo_type",
    "photo_size_kb",
    "photo_age_10min",
    "recency_10min",
    "terminal",
    "recent_requests",
    "access_hour",
];

const TEN_MINUTES: f64 = 600.0;

/// Streaming feature extractor.
///
/// Call [`FeatureExtractor::extract`] *before* [`FeatureExtractor::update`]
/// for each request, so features reflect the state prior to the access —
/// exactly what the classifier would see in production.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    /// Per-owner (total observed views, distinct photos seen).
    owner_views: Vec<(u64, u32)>,
    /// Per-object timestamp of the last access (`u64::MAX` = never).
    last_access: Vec<u64>,
    /// Timestamps of requests in the trailing 60 s window.
    window: VecDeque<u64>,
}

impl FeatureExtractor {
    /// Extractor sized for `trace`'s object and owner populations.
    pub fn new(trace: &Trace) -> Self {
        Self {
            owner_views: vec![(0, 0); trace.owners.len()],
            last_access: vec![u64::MAX; trace.meta.len()],
            window: VecDeque::new(),
        }
    }

    /// Extract the feature row for `req` (state *before* the access).
    pub fn extract(&mut self, trace: &Trace, req: &Request) -> [f32; N_FEATURES] {
        let meta = trace.photo(req.object);
        let owner = &trace.owners[meta.owner.0 as usize];
        let (views, photos) = self.owner_views[meta.owner.0 as usize];
        let avg_views = if photos == 0 { 0.0 } else { views as f32 / photos as f32 };

        let age_s = (req.ts as i64 - meta.upload_ts).max(0) as f64;
        let last = self.last_access[req.object.0 as usize];
        let recency_s = if last == u64::MAX {
            age_s // never accessed: interval since upload (§3.2.1)
        } else {
            (req.ts - last) as f64
        };

        // Slide the 60 s window up to the current timestamp.
        while let Some(&front) = self.window.front() {
            if front + 60 <= req.ts {
                self.window.pop_front();
            } else {
                break;
            }
        }

        [
            avg_views,
            owner.active_friends as f32,
            meta.ptype.code() as f32,
            meta.size as f32 / 1024.0,
            (age_s / TEN_MINUTES) as f32,
            (recency_s / TEN_MINUTES) as f32,
            req.terminal as u8 as f32,
            self.window.len() as f32,
            ((req.ts % 86_400) / 3_600) as f32,
        ]
    }

    /// Extract the feature row for every request in the trace, in order.
    ///
    /// Feature extraction depends only on the request stream — never on
    /// admission or eviction decisions — so the stream can be computed once
    /// and shared across runs (the sweep does this across its whole grid).
    pub fn extract_all(trace: &Trace) -> Vec<[f32; N_FEATURES]> {
        let mut fx = FeatureExtractor::new(trace);
        trace
            .requests
            .iter()
            .map(|req| {
                let f = fx.extract(trace, req);
                fx.update(trace, req);
                f
            })
            .collect()
    }

    /// Fold the request into the running state (after extraction).
    pub fn update(&mut self, trace: &Trace, req: &Request) {
        let meta = trace.photo(req.object);
        let entry = &mut self.owner_views[meta.owner.0 as usize];
        if self.last_access[req.object.0 as usize] == u64::MAX {
            entry.1 += 1; // first sighting of this photo
        }
        entry.0 += 1;
        self.last_access[req.object.0 as usize] = req.ts;
        self.window.push_back(req.ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{ObjectId, Owner, OwnerId, PhotoMeta, PhotoType, Terminal};

    fn toy_trace() -> Trace {
        Trace {
            requests: vec![],
            meta: vec![
                PhotoMeta {
                    owner: OwnerId(0),
                    ptype: PhotoType::L5,
                    size: 32 * 1024,
                    upload_ts: 0,
                },
                PhotoMeta {
                    owner: OwnerId(0),
                    ptype: PhotoType::A0,
                    size: 4 * 1024,
                    upload_ts: -86_400,
                },
            ],
            owners: vec![Owner { activity: 0.9, active_friends: 42 }],
        }
    }

    fn req(ts: u64, obj: u32, terminal: Terminal) -> Request {
        Request { ts, object: ObjectId(obj), terminal }
    }

    #[test]
    fn static_features_come_from_metadata() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        let f = fx.extract(&t, &req(7_200, 0, Terminal::Mobile));
        assert_eq!(f[1], 42.0); // active friends
        assert_eq!(f[2], PhotoType::L5.code() as f32);
        assert_eq!(f[3], 32.0); // KiB
        assert_eq!(f[4], 7_200.0 / 600.0); // age in 10-min units
        assert_eq!(f[6], 1.0); // mobile
        assert_eq!(f[8], 2.0); // 02:00
    }

    #[test]
    fn recency_falls_back_to_age_for_unseen_objects() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        let f = fx.extract(&t, &req(3_000, 0, Terminal::Pc));
        assert_eq!(f[5], f[4], "unseen object: recency = age");
    }

    #[test]
    fn recency_tracks_last_access_after_update() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        let r1 = req(1_000, 0, Terminal::Pc);
        fx.extract(&t, &r1);
        fx.update(&t, &r1);
        let f = fx.extract(&t, &req(1_600, 0, Terminal::Pc));
        assert_eq!(f[5], 600.0 / 600.0);
    }

    #[test]
    fn avg_views_counts_distinct_photos() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        // Object 0 viewed twice, object 1 once: owner avg = 3 views / 2 photos.
        for r in [req(10, 0, Terminal::Pc), req(20, 0, Terminal::Pc), req(30, 1, Terminal::Pc)] {
            fx.extract(&t, &r);
            fx.update(&t, &r);
        }
        let f = fx.extract(&t, &req(40, 0, Terminal::Pc));
        assert!((f[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn recent_requests_window_slides() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        for ts in [0u64, 10, 20] {
            let r = req(ts, 0, Terminal::Pc);
            fx.extract(&t, &r);
            fx.update(&t, &r);
        }
        // At ts = 50 all three are within 60 s.
        assert_eq!(fx.extract(&t, &req(50, 1, Terminal::Pc))[7], 3.0);
        // At ts = 65 the ts = 0 request has aged out.
        assert_eq!(fx.extract(&t, &req(65, 1, Terminal::Pc))[7], 2.0);
    }

    #[test]
    fn feature_count_matches_names() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        let f = fx.extract(&t, &req(0, 0, Terminal::Pc));
        assert_eq!(f.len(), FEATURE_NAMES.len());
        assert_eq!(f.len(), N_FEATURES);
    }

    #[test]
    fn negative_upload_backlog_has_large_age() {
        let t = toy_trace();
        let mut fx = FeatureExtractor::new(&t);
        let f = fx.extract(&t, &req(0, 1, Terminal::Pc));
        assert_eq!(f[4], 86_400.0 / 600.0);
    }
}

//! Two-tier cache simulation — the paper's production topology (§2.1).
//!
//! Tencent's download path has an **Outside Cache** (OC, close to users,
//! latency-oriented) in front of a **Datacenter Cache** (DC, shields the
//! backend, bandwidth-oriented); both tiers are SSD caches. The paper
//! evaluates its admission policy on a single tier; this module extends the
//! reproduction to the full topology so the policy can be studied where it
//! is actually deployed:
//!
//! * a request first probes the OC; an OC hit returns immediately;
//! * an OC miss probes the DC; a DC hit backfills the OC (subject to the
//!   OC's admission policy);
//! * a DC miss fetches from backend storage and backfills both tiers,
//!   each subject to its own admission policy.
//!
//! Each tier can independently run `Original`, `Proposal`, `Ideal` or
//! `SecondHit` admission; the per-tier `M` is solved from that tier's own capacity
//! (§4.3's criteria is capacity-dependent, so the OC's threshold is much
//! smaller than the DC's).

use crate::admission::{AdmissionPolicy, ClassifierAdmission};
use crate::criteria::{solve_criteria, CriteriaSolution};
use crate::daily::{DailyTrainer, MinuteSampler};
use crate::features::{FeatureExtractor, N_FEATURES};
use crate::pipeline::{Mode, PolicyKind};
use crate::reaccess::ReaccessIndex;
use otae_cache::{Cache, CacheStats, Evicted};
use otae_device::{LatencyModel, ResponseTime};
use otae_trace::{ObjectId, Trace};

/// Configuration of one tier.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Replacement policy of the tier.
    pub policy: PolicyKind,
    /// Admission mode of the tier.
    pub mode: Mode,
    /// Capacity in bytes.
    pub capacity: u64,
}

/// Configuration of the OC → DC → backend path.
#[derive(Debug, Clone)]
pub struct TieredConfig {
    /// Outside Cache (small, close to the user).
    pub oc: TierConfig,
    /// Datacenter Cache (large, shields the backend).
    pub dc: TierConfig,
    /// Network hop from user to datacenter, in µs (an OC hit avoids it).
    pub wan_hop_us: f64,
    /// Device timing model.
    pub latency: LatencyModel,
}

/// Per-tier outcome of a tiered run.
#[derive(Debug, Clone)]
pub struct TierResult {
    /// Cache counters of the tier (accesses = requests that *reached* it).
    pub stats: CacheStats,
    /// Criteria solution used by the tier.
    pub criteria: CriteriaSolution,
}

/// Outcome of a tiered simulation.
#[derive(Debug, Clone)]
pub struct TieredResult {
    /// Outside Cache outcome.
    pub oc: TierResult,
    /// Datacenter Cache outcome.
    pub dc: TierResult,
    /// Fraction of all requests served by the OC.
    pub oc_hit_rate: f64,
    /// Fraction of all requests served by OC or DC (backend shielded).
    pub combined_hit_rate: f64,
    /// Fraction of requests that reached the backend.
    pub backend_fetch_rate: f64,
    /// Mean end-to-end latency (µs), including the WAN hop on OC misses.
    pub mean_latency_us: f64,
    /// Total SSD bytes written across both tiers.
    pub total_bytes_written: u64,
}

struct Tier<'a> {
    cache: Box<dyn Cache<ObjectId>>,
    admission: AdmissionPolicy<'a>,
    trainer: DailyTrainer,
    sampler: MinuteSampler,
    stats: CacheStats,
    criteria: CriteriaSolution,
    m: u64,
    is_proposal: bool,
}

impl<'a> Tier<'a> {
    fn build(cfg: &TierConfig, trace: &Trace, index: &'a ReaccessIndex) -> Self {
        let avg = trace.avg_object_size().max(1.0);
        let base = solve_criteria(index, cfg.capacity, avg, 3);
        let criteria = if cfg.policy == PolicyKind::Lirs {
            base.for_lirs(cfg.policy.stack_ratio())
        } else {
            base
        };
        let m = criteria.m;
        let admission = match cfg.mode {
            Mode::Original => AdmissionPolicy::Always,
            Mode::Ideal => AdmissionPolicy::Oracle { index, m },
            Mode::Proposal => AdmissionPolicy::Classifier(Box::new(ClassifierAdmission::new(
                m,
                criteria.history_table_capacity(),
            ))),
            filter_mode => AdmissionPolicy::Filter(
                crate::zoo::MissFilter::for_run(
                    filter_mode,
                    trace.meta.len(),
                    m,
                    crate::daily::TrainingConfig::default().max_splits,
                    0.5,
                )
                .expect("non-Original/Ideal/Proposal modes are filter modes"),
            ),
        };
        let training = crate::daily::TrainingConfig::default();
        let v = training.cost.resolve(cfg.capacity, trace.unique_bytes());
        Tier {
            cache: cfg.policy.build(cfg.capacity, trace),
            admission,
            trainer: DailyTrainer::new(training, v),
            sampler: MinuteSampler::new(100),
            stats: CacheStats::default(),
            criteria,
            m,
            is_proposal: cfg.mode == Mode::Proposal,
        }
    }

    /// Handle a request that reached this tier. Returns `true` on hit.
    #[allow(clippy::too_many_arguments)]
    fn access(
        &mut self,
        obj: ObjectId,
        size: u64,
        now: u64,
        ts: u64,
        features: &[f32; N_FEATURES],
        truth: bool,
        evicted: &mut Vec<Evicted<ObjectId>>,
    ) -> bool {
        if self.is_proposal {
            if let AdmissionPolicy::Classifier(c) = &mut self.admission {
                if let Some(model) = self.trainer.maybe_retrain(ts, &mut self.sampler) {
                    c.model = Some(model);
                }
            }
            self.sampler.offer(ts, *features, truth);
        }
        if self.cache.contains(&obj) {
            self.cache.on_hit(&obj, now);
            self.stats.record_hit(size);
            return true;
        }
        if self.admission.decide(obj, features, now, truth) {
            evicted.clear();
            self.cache.insert(obj, size, now, evicted);
            self.stats.record_admitted_miss(size);
            for e in evicted.iter() {
                self.stats.record_eviction(e.size);
            }
        } else {
            self.cache.on_bypass(&obj, size, now);
            self.stats.record_bypassed_miss(size);
        }
        false
    }
}

/// Run the full OC → DC → backend simulation over a trace.
pub fn run_tiered(trace: &Trace, cfg: &TieredConfig) -> TieredResult {
    let index = ReaccessIndex::build(trace);
    run_tiered_with_index(trace, &index, cfg)
}

/// [`run_tiered`] against a precomputed reaccess index.
pub fn run_tiered_with_index(
    trace: &Trace,
    index: &ReaccessIndex,
    cfg: &TieredConfig,
) -> TieredResult {
    assert_eq!(index.len(), trace.len(), "index must match the trace");
    let mut oc = Tier::build(&cfg.oc, trace, index);
    let mut dc = Tier::build(&cfg.dc, trace, index);
    let mut extractor = FeatureExtractor::new(trace);
    let needs_features = cfg.oc.mode == Mode::Proposal || cfg.dc.mode == Mode::Proposal;
    let classified = cfg.oc.mode != Mode::Original || cfg.dc.mode != Mode::Original;

    let mut response = ResponseTime::default();
    let mut evicted: Vec<Evicted<ObjectId>> = Vec::new();
    let (mut oc_hits, mut dc_hits, mut backend) = (0u64, 0u64, 0u64);

    for (i, req) in trace.requests.iter().enumerate() {
        let now = i as u64;
        let size = trace.photo(req.object).size as u64;
        let mut features = [0.0f32; N_FEATURES];
        if needs_features {
            features = extractor.extract(trace, req);
        }
        // Per-tier ground truth differs: each tier has its own M.
        let oc_truth = index.is_one_time(i, oc.m);
        let dc_truth = index.is_one_time(i, dc.m);

        let classify_us = if classified { cfg.latency.t_classify_us } else { 0.0 };
        if oc.access(req.object, size, now, req.ts, &features, oc_truth, &mut evicted) {
            oc_hits += 1;
            response.record(cfg.latency.t_query_us + cfg.latency.ssd_read_us(size));
        } else if dc.access(req.object, size, now, req.ts, &features, dc_truth, &mut evicted) {
            dc_hits += 1;
            response.record(
                cfg.wan_hop_us
                    + 2.0 * cfg.latency.t_query_us
                    + classify_us
                    + cfg.latency.ssd_read_us(size),
            );
        } else {
            backend += 1;
            response.record(
                cfg.wan_hop_us
                    + 2.0 * cfg.latency.t_query_us
                    + 2.0 * classify_us
                    + cfg.latency.hdd_read_us(size),
            );
        }
        if needs_features {
            extractor.update(trace, req);
        }
    }

    let n = trace.len().max(1) as f64;
    TieredResult {
        oc_hit_rate: oc_hits as f64 / n,
        combined_hit_rate: (oc_hits + dc_hits) as f64 / n,
        backend_fetch_rate: backend as f64 / n,
        mean_latency_us: response.mean_us(),
        total_bytes_written: oc.stats.bytes_written + dc.stats.bytes_written,
        oc: TierResult { stats: oc.stats, criteria: oc.criteria },
        dc: TierResult { stats: dc.stats, criteria: dc.criteria },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otae_trace::{generate, TraceConfig};

    fn trace() -> Trace {
        generate(&TraceConfig { n_objects: 6_000, seed: 77, ..Default::default() })
    }

    fn cfg(trace: &Trace, oc_mode: Mode, dc_mode: Mode) -> TieredConfig {
        let unique = trace.unique_bytes();
        TieredConfig {
            oc: TierConfig { policy: PolicyKind::Lru, mode: oc_mode, capacity: unique / 200 },
            dc: TierConfig { policy: PolicyKind::Lru, mode: dc_mode, capacity: unique / 30 },
            wan_hop_us: 10_000.0,
            latency: LatencyModel::default(),
        }
    }

    #[test]
    fn request_conservation_across_tiers() {
        let t = trace();
        let r = run_tiered(&t, &cfg(&t, Mode::Original, Mode::Original));
        // Every request is exactly one of: OC hit, DC hit, backend fetch.
        let total = r.oc_hit_rate + (r.combined_hit_rate - r.oc_hit_rate) + r.backend_fetch_rate;
        assert!((total - 1.0).abs() < 1e-9);
        // The DC only sees OC misses.
        assert_eq!(r.dc.stats.accesses, r.oc.stats.accesses - r.oc.stats.hits);
    }

    #[test]
    fn dc_shields_the_backend() {
        let t = trace();
        let r = run_tiered(&t, &cfg(&t, Mode::Original, Mode::Original));
        assert!(r.combined_hit_rate > r.oc_hit_rate, "DC must add hits");
        assert!(r.backend_fetch_rate < 1.0 - r.oc_hit_rate);
    }

    #[test]
    fn oc_criteria_is_tighter_than_dc() {
        let t = trace();
        let r = run_tiered(&t, &cfg(&t, Mode::Ideal, Mode::Ideal));
        assert!(
            r.oc.criteria.m < r.dc.criteria.m,
            "smaller tier must use a smaller M ({} vs {})",
            r.oc.criteria.m,
            r.dc.criteria.m
        );
    }

    #[test]
    fn admission_cuts_writes_on_both_tiers() {
        let t = trace();
        let orig = run_tiered(&t, &cfg(&t, Mode::Original, Mode::Original));
        let ideal = run_tiered(&t, &cfg(&t, Mode::Ideal, Mode::Ideal));
        assert!(ideal.oc.stats.files_written < orig.oc.stats.files_written);
        assert!(ideal.dc.stats.files_written < orig.dc.stats.files_written);
        assert!(ideal.total_bytes_written < orig.total_bytes_written / 2);
    }

    #[test]
    fn proposal_helps_the_combined_path() {
        let t = trace();
        let orig = run_tiered(&t, &cfg(&t, Mode::Original, Mode::Original));
        let prop = run_tiered(&t, &cfg(&t, Mode::Proposal, Mode::Proposal));
        assert!(
            prop.combined_hit_rate > orig.combined_hit_rate - 0.01,
            "proposal must not regress the combined hit rate: {} vs {}",
            prop.combined_hit_rate,
            orig.combined_hit_rate
        );
        assert!(prop.total_bytes_written < orig.total_bytes_written);
    }

    #[test]
    fn wan_hop_penalises_oc_misses() {
        let t = trace();
        let near = run_tiered(&t, &cfg(&t, Mode::Original, Mode::Original));
        let mut far_cfg = cfg(&t, Mode::Original, Mode::Original);
        far_cfg.wan_hop_us = 100_000.0;
        let far = run_tiered(&t, &far_cfg);
        assert!(far.mean_latency_us > near.mean_latency_us);
        assert_eq!(far.oc_hit_rate, near.oc_hit_rate, "caching unaffected by latency");
    }

    #[test]
    fn deterministic() {
        let t = trace();
        let a = run_tiered(&t, &cfg(&t, Mode::Proposal, Mode::Proposal));
        let b = run_tiered(&t, &cfg(&t, Mode::Proposal, Mode::Proposal));
        assert_eq!(a.oc.stats, b.oc.stats);
        assert_eq!(a.dc.stats, b.dc.stats);
        assert_eq!(a.mean_latency_us, b.mean_latency_us);
    }
}

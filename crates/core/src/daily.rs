//! Training-data sampling and the daily retraining cycle.
//!
//! §3.1.1: training data is sampled from the log at up to 100 records per
//! minute. §4.4.3: classification quality decays over time, so the model is
//! retrained every day at 05:00 (the load trough) on the previous 24 hours
//! of samples, using the Table-4 cost matrix; training a CART tree on the
//! sampled day takes well under a second at our scale.

use crate::features::N_FEATURES;
use otae_ml::{Classifier, CompiledTree, Dataset, DecisionTree, SplitEngine, TreeParams};
use otae_trace::diurnal::DAY;

/// Cost-matrix policy for Table 4's `v` (the false-positive cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostPolicy {
    /// Use a fixed `v`.
    Fixed(f32),
    /// The paper's rule scaled to our trace: `v = 2` for small caches,
    /// `v = 3` for large ones. The paper's boundary (12 GB of a ~450 GB
    /// working set) is a capacity:unique-bytes ratio of ≈ 2.7 %.
    Auto,
}

impl CostPolicy {
    /// Resolve `v` for a cache of `capacity` bytes over a working set of
    /// `unique_bytes`.
    pub fn resolve(self, capacity: u64, unique_bytes: u64) -> f32 {
        match self {
            CostPolicy::Fixed(v) => v,
            CostPolicy::Auto => {
                if unique_bytes == 0 || (capacity as f64) < 0.027 * unique_bytes as f64 {
                    2.0
                } else {
                    3.0
                }
            }
        }
    }
}

/// Classifier-training configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Cost matrix policy (Table 4).
    pub cost: CostPolicy,
    /// Sampling cap: records kept per minute (§3.1.1; paper uses 100).
    pub records_per_minute: usize,
    /// Hour of day at which retraining runs (§4.4.3; paper uses 05:00).
    pub retrain_hour: u8,
    /// Split budget of the tree (§3.1.2; paper uses 30).
    pub max_splits: usize,
    /// Enable the §4.4.2 history table (ablation knob; paper: enabled).
    pub use_history: bool,
    /// Train once (first boundary) and never refresh — the static-model
    /// baseline §4.4.3 argues against (ablation knob; paper: false).
    pub train_once: bool,
    /// Split-search engine for retraining. Defaults to the histogram-binned
    /// engine, which keeps the §4.4.3 daily retrain off the serving hot
    /// path's critical section for far less time than the exact splitter.
    pub engine: SplitEngine,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            cost: CostPolicy::Auto,
            records_per_minute: 100,
            retrain_hour: 5,
            max_splits: 30,
            use_history: true,
            train_once: false,
            engine: SplitEngine::default(),
        }
    }
}

/// One sampled training record.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Request timestamp (seconds since trace start).
    pub ts: u64,
    /// Feature row at access time.
    pub features: [f32; N_FEATURES],
    /// Offline one-time-access label.
    pub one_time: bool,
}

/// Per-minute-capped sampler over the live request stream (§3.1.1).
#[derive(Debug, Clone)]
pub struct MinuteSampler {
    cap_per_minute: usize,
    current_minute: u64,
    in_minute: usize,
    samples: Vec<Sample>,
}

impl MinuteSampler {
    /// Sampler keeping at most `cap_per_minute` records per minute.
    pub fn new(cap_per_minute: usize) -> Self {
        Self { cap_per_minute, current_minute: u64::MAX, in_minute: 0, samples: Vec::new() }
    }

    /// Offer one record; it is kept if the minute's budget allows.
    pub fn offer(&mut self, ts: u64, features: [f32; N_FEATURES], one_time: bool) {
        let minute = ts / 60;
        if minute != self.current_minute {
            self.current_minute = minute;
            self.in_minute = 0;
        }
        if self.in_minute < self.cap_per_minute {
            self.in_minute += 1;
            self.samples.push(Sample { ts, features, one_time });
        }
    }

    /// All samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Samples with `lo <= ts < hi`, relying on time-ordered offers.
    pub fn window(&self, lo: u64, hi: u64) -> &[Sample] {
        let start = self.samples.partition_point(|s| s.ts < lo);
        let end = self.samples.partition_point(|s| s.ts < hi);
        &self.samples[start..end]
    }

    /// Drop samples older than `lo` (keeps memory bounded on long runs).
    pub fn discard_before(&mut self, lo: u64) {
        let start = self.samples.partition_point(|s| s.ts < lo);
        self.samples.drain(..start);
    }
}

/// Train the paper's cost-sensitive CART tree on a sample window with the
/// default (histogram-binned) split engine. Returns `None` when the window
/// is empty or single-class.
pub fn train_tree(samples: &[Sample], v: f32, max_splits: usize) -> Option<DecisionTree> {
    train_tree_with(samples, v, max_splits, SplitEngine::default())
}

/// [`train_tree`] with an explicit split-search engine (the exact splitter
/// remains available for equivalence testing and benchmarking).
pub fn train_tree_with(
    samples: &[Sample],
    v: f32,
    max_splits: usize,
    engine: SplitEngine,
) -> Option<DecisionTree> {
    if samples.is_empty() {
        return None;
    }
    let mut data = Dataset::new(N_FEATURES);
    for s in samples {
        data.push(&s.features, s.one_time);
    }
    if data.positive_fraction() == 0.0 || data.positive_fraction() == 1.0 {
        return None;
    }
    let mut tree =
        DecisionTree::new(TreeParams { max_splits, cost_fp: v, engine, ..TreeParams::default() });
    tree.fit(&data);
    Some(tree)
}

/// A freshly trained tree together with its compiled form, built once at
/// the train boundary so no scoring path ever pays compilation latency.
/// `compiled` is `None` only when the tree cannot be packed into the
/// compact node table (impossible for `fit`-built trees at the paper's
/// split budget); consumers then keep the interpreted walk.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The interpreted tree (reference semantics; still serialized, still
    /// the source of truth for decisions).
    pub tree: DecisionTree,
    /// Branchless SoA form of the same tree, bit-identical scores.
    pub compiled: Option<CompiledTree>,
}

impl TrainedModel {
    /// Compile `tree` once and pair the two representations.
    pub fn new(tree: DecisionTree) -> Self {
        let compiled = tree.compile().and_then(otae_ml::CompiledModel::into_tree);
        Self { tree, compiled }
    }
}

/// Daily retraining driver (§4.4.3): retrains at `retrain_hour` each day on
/// the previous 24 hours of samples.
#[derive(Debug)]
pub struct DailyTrainer {
    cfg: TrainingConfig,
    v: f32,
    /// Next timestamp at which training fires.
    next_retrain_ts: u64,
    /// Number of completed trainings.
    pub trainings: u32,
}

impl DailyTrainer {
    /// New trainer; `v` resolved from the cost policy by the caller.
    pub fn new(cfg: TrainingConfig, v: f32) -> Self {
        let first = cfg.retrain_hour as u64 * 3600 + DAY; // 05:00 of day 1
        Self { cfg, v, next_retrain_ts: first, trainings: 0 }
    }

    /// Whether [`DailyTrainer::maybe_retrain`] would do any work at `ts` —
    /// i.e. a retrain boundary has passed and the trainer is still armed.
    /// Pure: lets block-scoring callers cut their blocks exactly at retrain
    /// boundaries without calling `maybe_retrain` per request.
    pub fn would_fire(&self, ts: u64) -> bool {
        ts >= self.next_retrain_ts && !(self.cfg.train_once && self.trainings > 0)
    }

    /// Called per request with the current timestamp; when a retrain
    /// boundary passes, fits a fresh tree on the trailing 24 h of samples
    /// and returns it.
    pub fn maybe_retrain(&mut self, ts: u64, sampler: &mut MinuteSampler) -> Option<DecisionTree> {
        if !self.would_fire(ts) {
            return None;
        }
        let boundary = self.next_retrain_ts;
        // Catch up if the stream skipped several days.
        while ts >= self.next_retrain_ts {
            self.next_retrain_ts += DAY;
        }
        let window = sampler.window(boundary.saturating_sub(DAY), boundary);
        let tree = train_tree_with(window, self.v, self.cfg.max_splits, self.cfg.engine);
        sampler.discard_before(boundary.saturating_sub(DAY));
        if tree.is_some() {
            self.trainings += 1;
        }
        tree
    }

    /// [`DailyTrainer::maybe_retrain`], but the fresh tree is compiled at
    /// the train boundary (amortized once per day, never per request).
    pub fn maybe_retrain_compiled(
        &mut self,
        ts: u64,
        sampler: &mut MinuteSampler,
    ) -> Option<TrainedModel> {
        self.maybe_retrain(ts, sampler).map(TrainedModel::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64, x: f32, one_time: bool) -> ([f32; N_FEATURES], u64, bool) {
        let mut f = [0.0f32; N_FEATURES];
        f[0] = x;
        (f, ts, one_time)
    }

    #[test]
    fn sampler_caps_per_minute() {
        let mut s = MinuteSampler::new(3);
        for i in 0..10 {
            let (f, ts, y) = sample(i, 0.0, false);
            s.offer(ts, f, y);
        }
        assert_eq!(s.samples().len(), 3, "same minute capped at 3");
        let (f, ts, y) = sample(61, 0.0, false);
        s.offer(ts, f, y);
        assert_eq!(s.samples().len(), 4, "new minute resets the budget");
    }

    #[test]
    fn window_selects_by_time() {
        let mut s = MinuteSampler::new(100);
        for ts in [10u64, 70, 130, 190] {
            let (f, t, y) = sample(ts, 0.0, false);
            s.offer(t, f, y);
        }
        assert_eq!(s.window(60, 140).len(), 2);
        assert_eq!(s.window(0, 1000).len(), 4);
        s.discard_before(100);
        assert_eq!(s.samples().len(), 2);
    }

    #[test]
    fn train_tree_learns_threshold() {
        let samples: Vec<Sample> = (0..200)
            .map(|i| {
                let (features, ts, one_time) = sample(i, i as f32 / 200.0, i >= 100);
                Sample { ts, features, one_time }
            })
            .collect();
        let tree = train_tree(&samples, 1.0, 30).expect("trainable");
        let mut hi = [0.0f32; N_FEATURES];
        hi[0] = 0.9;
        let mut lo = [0.0f32; N_FEATURES];
        lo[0] = 0.1;
        assert!(tree.predict(&hi));
        assert!(!tree.predict(&lo));
    }

    #[test]
    fn single_class_windows_yield_no_model() {
        let samples: Vec<Sample> = (0..50)
            .map(|i| {
                let (features, ts, one_time) = sample(i, 0.5, true);
                Sample { ts, features, one_time }
            })
            .collect();
        assert!(train_tree(&samples, 2.0, 30).is_none());
        assert!(train_tree(&[], 2.0, 30).is_none());
    }

    #[test]
    fn daily_trainer_fires_at_five_am() {
        let mut sampler = MinuteSampler::new(100);
        // Day 0 data: x > 0.5 means one-time.
        for i in 0..400u64 {
            let ts = i * 200; // spread over day 0
            let (f, t, y) = sample(ts, (i % 100) as f32 / 100.0, (i % 100) >= 50);
            sampler.offer(t, f, y);
        }
        let mut trainer = DailyTrainer::new(TrainingConfig::default(), 2.0);
        // Before 05:00 of day 1: nothing.
        assert!(trainer.maybe_retrain(DAY + 4 * 3600, &mut sampler).is_none());
        // At 05:00 of day 1: trains on day-0 window.
        let model = trainer.maybe_retrain(DAY + 5 * 3600, &mut sampler);
        assert!(model.is_some());
        assert_eq!(trainer.trainings, 1);
        // Does not retrain again within the same day.
        assert!(trainer.maybe_retrain(DAY + 6 * 3600, &mut sampler).is_none());
    }

    #[test]
    fn binned_and_exact_engines_agree_on_sampled_window() {
        // Feature values are 200 distinct grid points, so the binned engine
        // (256 bins) must reproduce the exact splitter's predictions.
        let samples: Vec<Sample> = (0..400)
            .map(|i| {
                let (features, ts, one_time) =
                    sample(i, (i % 200) as f32 / 200.0, (i % 200) >= 120);
                Sample { ts, features, one_time }
            })
            .collect();
        let exact = train_tree_with(&samples, 2.0, 30, SplitEngine::Exact).expect("trainable");
        let binned = train_tree_with(&samples, 2.0, 30, SplitEngine::Binned { max_bins: 256 })
            .expect("trainable");
        for s in &samples {
            assert_eq!(exact.predict(&s.features), binned.predict(&s.features));
        }
    }

    #[test]
    fn cost_policy_resolution() {
        assert_eq!(CostPolicy::Fixed(4.0).resolve(0, 0), 4.0);
        // 1% of working set -> small cache -> v = 2.
        assert_eq!(CostPolicy::Auto.resolve(1, 100), 2.0);
        // 10% -> large cache -> v = 3.
        assert_eq!(CostPolicy::Auto.resolve(10, 100), 3.0);
    }
}

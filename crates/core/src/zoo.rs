//! The non-ML admission-policy zoo: sketch- and chance-based miss filters.
//!
//! The paper compares classifier families; production flash caches compare
//! *policies*. This module adds the standard non-learned baselines the
//! admission literature measures against —
//!
//! * **TinyLFU** — a 4-row count-min sketch with periodic halving reset and
//!   a doorkeeper bloom filter absorbing first sightings; admits a miss
//!   when its (aged) frequency estimate says the object was seen before.
//!   Unlike the plain second-hit doorkeeper, frequency survives the aging
//!   reset halved rather than wiped, so a hot object keeps its admission
//!   ticket across windows.
//! * **RejectX** — admit only after the object has been seen more than `X`
//!   times within the current window (X = 1 reproduces cache-on-second-
//!   request, but counted exactly in a sketch rather than approximately in
//!   a bloom filter).
//! * **CoinFlip(p)** — admit each miss with probability `p` from a seeded
//!   RNG; the classic null baseline separating "any filtering" from
//!   "informed filtering".
//!
//! Everything here is deterministic from its construction seed (otae-lint's
//! no-unseeded-rng rule applies), allocation-free per decision, and shared
//! bit-exactly between the single-threaded pipeline and the sharded service
//! through [`MissFilter`], which both construct via [`MissFilter::for_run`].

use crate::baseline::{BloomFilter, SecondHitAdmission};
use crate::pipeline::Mode;
use otae_trace::ObjectId;

/// splitmix64: the seeded mixing primitive every sketch hash and the coin
/// RNG derive from.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded count-min sketch over object ids: `ROWS` rows of `width`
/// saturating counters; the estimate is the row-wise minimum, which can
/// overestimate (hash collisions) but never underestimate a key's true
/// increment count — the property the zoo proptests pin down.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// Flat row-major counter table (`ROWS * width`).
    counters: Vec<u32>,
    /// Power-of-two row width.
    width: usize,
    /// Per-row hash seeds, derived from the construction seed.
    row_seeds: [u64; Self::ROWS],
}

impl CountMinSketch {
    /// Rows in the sketch (TinyLFU's standard depth).
    pub const ROWS: usize = 4;

    /// Sketch sized for `expected_items` distinct keys: the row width is
    /// the next power of two at or above it (so collisions stay rare at the
    /// expected load), at least 64.
    pub fn new(expected_items: usize, seed: u64) -> Self {
        let width = expected_items.max(64).next_power_of_two();
        let mut row_seeds = [0u64; Self::ROWS];
        for (i, s) in row_seeds.iter_mut().enumerate() {
            *s = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        }
        Self { counters: vec![0; Self::ROWS * width], width, row_seeds }
    }

    #[inline]
    fn index(&self, row: usize, key: ObjectId) -> usize {
        let h = splitmix64(self.row_seeds[row] ^ key.0 as u64);
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Count one occurrence of `key` (saturating).
    pub fn increment(&mut self, key: ObjectId) {
        for row in 0..Self::ROWS {
            let i = self.index(row, key);
            self.counters[i] = self.counters[i].saturating_add(1);
        }
    }

    /// Estimated occurrence count: the minimum over rows. Never less than
    /// the true number of [`CountMinSketch::increment`] calls for `key`
    /// (short of counter saturation), possibly more.
    pub fn estimate(&self, key: ObjectId) -> u32 {
        (0..Self::ROWS).map(|row| self.counters[self.index(row, key)]).min().unwrap_or(0)
    }

    /// The aging reset: floor-halve every counter. Halving commutes with
    /// the row-wise minimum, so the relative (non-strict) order of any two
    /// keys' estimates is preserved.
    pub fn halve(&mut self) {
        for c in &mut self.counters {
            *c /= 2;
        }
    }

    /// Zero every counter (window reset; RejectX's forgetting model).
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }

    /// Sum of all counters (diagnostics; proportional to increments since
    /// the last halving).
    pub fn weight(&self) -> u64 {
        self.counters.iter().map(|&c| c as u64).sum()
    }
}

/// TinyLFU admission: doorkeeper bloom filter in front of a count-min
/// sketch, halved every `sample_period` decisions.
#[derive(Debug, Clone)]
pub struct TinyLfuAdmission {
    sketch: CountMinSketch,
    doorkeeper: BloomFilter,
    /// Decisions between halving resets (0 = never age).
    sample_period: u64,
    ops: u64,
    admitted: u64,
    bypassed: u64,
}

impl TinyLfuAdmission {
    /// Sketch and doorkeeper sized for `expected_objects`; the sketch is
    /// halved (and the doorkeeper cleared) every `sample_period` decisions.
    pub fn new(expected_objects: usize, sample_period: u64, seed: u64) -> Self {
        Self {
            sketch: CountMinSketch::new(expected_objects, seed),
            doorkeeper: BloomFilter::new(expected_objects, splitmix64(seed ^ 0xD00F)),
            sample_period,
            ops: 0,
            admitted: 0,
            bypassed: 0,
        }
    }

    /// The aged frequency the admission decision reads: the sketch estimate
    /// plus one if the doorkeeper holds the key (the doorkeeper absorbs
    /// each key's first post-reset sighting).
    pub fn frequency(&self, obj: ObjectId) -> u64 {
        self.sketch.estimate(obj) as u64 + u64::from(self.doorkeeper.contains(obj))
    }

    /// Decide a miss: admit iff the object's aged frequency says it has
    /// been seen before, then record this sighting (doorkeeper first,
    /// sketch once the doorkeeper already knows the key).
    pub fn decide(&mut self, obj: ObjectId) -> bool {
        if self.sample_period > 0 {
            self.ops += 1;
            if self.ops >= self.sample_period {
                self.sketch.halve();
                self.doorkeeper.clear();
                self.ops = 0;
            }
        }
        let admit = self.frequency(obj) >= 1;
        if self.doorkeeper.contains(obj) {
            self.sketch.increment(obj);
        } else {
            self.doorkeeper.insert(obj);
        }
        if admit {
            self.admitted += 1;
        } else {
            self.bypassed += 1;
        }
        admit
    }

    /// Misses admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Misses bypassed so far.
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }
}

/// Reject-X admission: admit a miss only once the object has been seen
/// more than `x` times in the current window, counted in a count-min
/// sketch that is cleared (not halved — RejectX has no frequency memory
/// across windows, that is TinyLFU's refinement) every `window` decisions.
#[derive(Debug, Clone)]
pub struct RejectXAdmission {
    sketch: CountMinSketch,
    /// Sightings (within the window) a key must exceed to be admitted.
    x: u32,
    /// Decisions between sketch clears (0 = never clear).
    window: u64,
    ops: u64,
    admitted: u64,
    bypassed: u64,
}

impl RejectXAdmission {
    /// Reject the first `x` sightings per window of `window` decisions.
    pub fn new(expected_objects: usize, x: u32, window: u64, seed: u64) -> Self {
        Self {
            sketch: CountMinSketch::new(expected_objects, seed),
            x,
            window,
            ops: 0,
            admitted: 0,
            bypassed: 0,
        }
    }

    /// Decide a miss: count the sighting, admit iff the key has now been
    /// seen more than `x` times this window.
    pub fn decide(&mut self, obj: ObjectId) -> bool {
        if self.window > 0 {
            self.ops += 1;
            if self.ops >= self.window {
                // Full clear: a fresh window owes every key its X rejects.
                self.sketch.clear();
                self.ops = 0;
            }
        }
        self.sketch.increment(obj);
        let admit = self.sketch.estimate(obj) > self.x;
        if admit {
            self.admitted += 1;
        } else {
            self.bypassed += 1;
        }
        admit
    }

    /// Misses admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Misses bypassed so far.
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }
}

/// Coin-flip admission: admit each miss independently with probability `p`
/// from a seeded splitmix64 stream. The null baseline: any policy that
/// cannot beat an uninformed coin at the same write rate is not earning its
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct CoinFlipAdmission {
    /// Admit iff the next draw lands at or below this threshold.
    threshold: u64,
    state: u64,
    admitted: u64,
    bypassed: u64,
}

impl CoinFlipAdmission {
    /// Coin with admit probability `p` (clamped to [0, 1]) and a seeded
    /// deterministic stream.
    pub fn new(p: f32, seed: u64) -> Self {
        let p = f64::from(p).clamp(0.0, 1.0);
        // Map p onto the full u64 range; p = 1 admits every draw.
        let threshold = (p * u64::MAX as f64) as u64;
        Self { threshold, state: splitmix64(seed ^ 0xC01F), admitted: 0, bypassed: 0 }
    }

    /// Decide a miss: one RNG draw, object identity ignored.
    pub fn decide(&mut self) -> bool {
        self.state = splitmix64(self.state);
        let admit = self.state <= self.threshold;
        if admit {
            self.admitted += 1;
        } else {
            self.bypassed += 1;
        }
        admit
    }

    /// Misses admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Misses bypassed so far.
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }
}

/// One shared construction + decision seam for every non-ML miss filter,
/// used bit-identically by `pipeline::run` and the sharded service so the
/// differential oracle can hold them to fingerprint equality.
#[derive(Debug, Clone)]
pub enum MissFilter {
    /// Cache-on-second-request doorkeeper.
    SecondHit(SecondHitAdmission),
    /// TinyLFU sketch + doorkeeper.
    TinyLfu(TinyLfuAdmission),
    /// Reject-first-X counting filter.
    RejectX(RejectXAdmission),
    /// Seeded coin flip.
    CoinFlip(CoinFlipAdmission),
}

impl MissFilter {
    /// Build the filter a run in `mode` uses, or `None` for the non-filter
    /// modes (Original/Ideal/Proposal). Sizing and seed derivation live
    /// here — and only here — so the pipeline and the service construct
    /// byte-identical filters from the same `(trace, M, training, p)`
    /// inputs:
    ///
    /// * doorkeeper/sketches are sized for the trace's distinct objects;
    /// * aging windows derive from the one-time threshold `M` (2M misses,
    ///   the span within which the paper's history table would rectify);
    /// * seeds fold `max_splits` in, mirroring the SecondHit convention
    ///   from the earlier baseline work.
    pub fn for_run(
        mode: Mode,
        trace_objects: usize,
        m: u64,
        max_splits: usize,
        coin_p: f32,
    ) -> Option<Self> {
        let expected = trace_objects.max(1024);
        let seed = max_splits as u64 ^ 0x5EED;
        let window = 2 * m.min(u64::MAX / 2);
        match mode {
            Mode::SecondHit => {
                Some(MissFilter::SecondHit(SecondHitAdmission::new(expected, window, seed)))
            }
            Mode::TinyLfu => Some(MissFilter::TinyLfu(TinyLfuAdmission::new(
                expected,
                // TinyLFU ages by halving, not wiping, so it can afford a
                // longer sample window than the doorkeeper baseline.
                2 * window.min(u64::MAX / 2),
                splitmix64(seed ^ 0x71F0),
            ))),
            Mode::RejectX => Some(MissFilter::RejectX(RejectXAdmission::new(
                expected,
                1,
                window,
                splitmix64(seed ^ 0x4EC7),
            ))),
            Mode::CoinFlip => Some(MissFilter::CoinFlip(CoinFlipAdmission::new(
                coin_p,
                splitmix64(seed ^ 0xF11B),
            ))),
            Mode::Original | Mode::Proposal | Mode::Ideal => None,
        }
    }

    /// Decide a miss.
    pub fn decide(&mut self, obj: ObjectId) -> bool {
        match self {
            MissFilter::SecondHit(f) => f.decide(obj),
            MissFilter::TinyLfu(f) => f.decide(obj),
            MissFilter::RejectX(f) => f.decide(obj),
            MissFilter::CoinFlip(f) => f.decide(),
        }
    }

    /// Display name of the wrapped filter.
    pub fn name(&self) -> &'static str {
        match self {
            MissFilter::SecondHit(_) => "SecondHit",
            MissFilter::TinyLfu(_) => "TinyLFU",
            MissFilter::RejectX(_) => "RejectX",
            MissFilter::CoinFlip(_) => "CoinFlip",
        }
    }

    /// Misses admitted so far.
    pub fn admitted(&self) -> u64 {
        match self {
            MissFilter::SecondHit(f) => f.admitted(),
            MissFilter::TinyLfu(f) => f.admitted(),
            MissFilter::RejectX(f) => f.admitted(),
            MissFilter::CoinFlip(f) => f.admitted(),
        }
    }

    /// Misses bypassed so far.
    pub fn bypassed(&self) -> u64 {
        match self {
            MissFilter::SecondHit(f) => f.bypassed(),
            MissFilter::TinyLfu(f) => f.bypassed(),
            MissFilter::RejectX(f) => f.bypassed(),
            MissFilter::CoinFlip(f) => f.bypassed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_counts_and_halves() {
        let mut s = CountMinSketch::new(1000, 7);
        for _ in 0..10 {
            s.increment(ObjectId(1));
        }
        s.increment(ObjectId(2));
        assert!(s.estimate(ObjectId(1)) >= 10);
        assert!(s.estimate(ObjectId(2)) >= 1);
        s.halve();
        assert!(s.estimate(ObjectId(1)) >= 5);
        assert!(s.estimate(ObjectId(1)) <= 10);
    }

    #[test]
    fn tinylfu_bypasses_first_sighting_admits_second() {
        let mut t = TinyLfuAdmission::new(1000, 0, 42);
        assert!(!t.decide(ObjectId(1)), "cold first sighting bypassed");
        assert!(t.decide(ObjectId(1)), "second sighting admitted");
        assert_eq!(t.bypassed(), 1);
        assert_eq!(t.admitted(), 1);
    }

    #[test]
    fn tinylfu_frequency_survives_halving_reset() {
        // Make object 1 hot, then age past the sample period: its sketch
        // count halves but survives, so the first post-reset sighting is
        // still admitted — the doorkeeper baseline would bypass it.
        let period = 64;
        let mut t = TinyLfuAdmission::new(1024, period, 42);
        for _ in 0..8 {
            t.decide(ObjectId(1));
        }
        // Burn through the rest of the window on one-time keys.
        let mut k = 1000u32;
        while t.ops != 0 {
            t.decide(ObjectId(k));
            k += 1;
        }
        assert!(t.frequency(ObjectId(1)) >= 1, "halved frequency must survive");
        assert!(t.decide(ObjectId(1)), "hot object admitted right after the reset");
    }

    #[test]
    fn rejectx_rejects_exactly_x_sightings() {
        let mut r = RejectXAdmission::new(1000, 2, 0, 9);
        assert!(!r.decide(ObjectId(5)));
        assert!(!r.decide(ObjectId(5)));
        assert!(r.decide(ObjectId(5)), "third sighting exceeds X = 2");
        assert_eq!(r.bypassed(), 2);
        assert_eq!(r.admitted(), 1);
    }

    #[test]
    fn rejectx_window_clear_forgets() {
        let mut r = RejectXAdmission::new(1000, 1, 3, 9);
        assert!(!r.decide(ObjectId(1)));
        assert!(r.decide(ObjectId(1)));
        assert!(!r.decide(ObjectId(1)), "window clear forgot the count");
    }

    #[test]
    fn coinflip_edges_are_exact() {
        let mut never = CoinFlipAdmission::new(0.0, 1);
        let mut always = CoinFlipAdmission::new(1.0, 1);
        for _ in 0..1000 {
            assert!(!never.decide());
            assert!(always.decide());
        }
    }

    #[test]
    fn coinflip_is_deterministic_from_its_seed() {
        let mut a = CoinFlipAdmission::new(0.3, 99);
        let mut b = CoinFlipAdmission::new(0.3, 99);
        let seq_a: Vec<bool> = (0..256).map(|_| a.decide()).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.decide()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = CoinFlipAdmission::new(0.3, 100);
        let seq_c: Vec<bool> = (0..256).map(|_| c.decide()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different stream");
    }

    #[test]
    fn for_run_builds_filters_only_for_filter_modes() {
        for mode in [Mode::Original, Mode::Proposal, Mode::Ideal] {
            assert!(MissFilter::for_run(mode, 1000, 100, 4, 0.5).is_none());
        }
        for (mode, name) in [
            (Mode::SecondHit, "SecondHit"),
            (Mode::TinyLfu, "TinyLFU"),
            (Mode::RejectX, "RejectX"),
            (Mode::CoinFlip, "CoinFlip"),
        ] {
            let f = MissFilter::for_run(mode, 1000, 100, 4, 0.5).expect("filter mode");
            assert_eq!(f.name(), name);
        }
    }

    #[test]
    fn identical_inputs_build_identical_filters() {
        // The construction seam the differential oracle leans on: two
        // filters built from the same inputs produce the same decision
        // stream.
        for mode in [Mode::SecondHit, Mode::TinyLfu, Mode::RejectX, Mode::CoinFlip] {
            let mut a = MissFilter::for_run(mode, 5000, 200, 4, 0.5).unwrap();
            let mut b = MissFilter::for_run(mode, 5000, 200, 4, 0.5).unwrap();
            for i in 0..4096u32 {
                let key = ObjectId(i % 257);
                assert_eq!(a.decide(key), b.decide(key), "{mode:?} diverged at {i}");
            }
        }
    }
}

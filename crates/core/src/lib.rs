//! # otae-core — the one-time-access-exclusion caching system
//!
//! This crate assembles the paper's contribution on top of the substrate
//! crates: an admission-controlled photo cache that predicts, at miss time
//! and with no per-object history, whether the missed photo is
//! **one-time-access** — and if so serves it around the SSD, avoiding the
//! write entirely (§4, Figure 4).
//!
//! Components, mapped to the paper:
//!
//! * [`reaccess`] — forward reaccess distances over a trace (the quantity
//!   the criteria is defined on);
//! * [`criteria`] — the one-time-access criteria `M = C/(S·(1−h)·(1−p))`
//!   solved by fixed-point iteration (§4.3), with the LIRS variant
//!   `M_LIRS = M_LRU · R_s` (§5.2);
//! * [`features`] — online extraction of the §3.2.1 features (owner's
//!   average views, active friends, photo type/size/age, recency, terminal,
//!   requests-in-last-minute, hour of day) with §3.2.3 discretisation;
//! * [`history`] — the FIFO history table that rectifies one-time
//!   misclassifications (§4.4.2), sized `M(1−h)p × 0.05`;
//! * [`admission`] — admission policies: always-admit (Original), the
//!   trained classifier with history table (Proposal), and the oracle
//!   (Ideal, 100 % accuracy);
//! * [`daily`] — per-minute training-data sampling (§3.1.1) and the daily
//!   05:00 retraining cycle (§4.4.3) with the Table-4 cost matrix;
//! * [`pipeline`] — the end-to-end trace-driven simulation producing every
//!   statistic of Figures 5–10;
//! * [`mod@sweep`] — parallel (policy × capacity × mode) grids via crossbeam;
//! * [`tiered`] — the production OC → DC → backend topology of §2.1 with
//!   per-tier admission;
//! * [`online`] — the incremental-learning alternative §4.4.3 mentions but
//!   does not pursue, with realistic delayed label feedback.

#![warn(missing_docs)]

pub mod admission;
pub mod baseline;
pub mod cluster;
pub mod criteria;
pub mod daily;
pub mod features;
pub mod history;
pub mod online;
pub mod pipeline;
pub mod reaccess;
pub mod sweep;
pub mod tiered;
pub mod zoo;

pub use admission::{
    classifier_apply, classifier_decide, AdmissionKind, AdmissionPolicy, ClassifierAdmission,
};
pub use baseline::{BloomFilter, SecondHitAdmission};
pub use cluster::{run_cluster, ClusterConfig, ClusterResult, HashRing};
pub use criteria::{solve_criteria, CriteriaSolution};
pub use daily::{DailyTrainer, MinuteSampler, TrainedModel, TrainingConfig};
pub use features::{FeatureExtractor, FEATURE_NAMES, N_FEATURES};
pub use history::HistoryTable;
pub use online::{run_online, run_online_with, OnlineModelKind};
pub use otae_ml::SplitEngine;
pub use pipeline::{
    run, CacheEvent, Mode, ModelSchedule, PolicyKind, RunConfig, RunFingerprint, RunPlan, RunResult,
};
pub use reaccess::ReaccessIndex;
pub use sweep::{sweep, SweepPoint};
pub use tiered::{run_tiered, TierConfig, TieredConfig, TieredResult};
pub use zoo::{CoinFlipAdmission, CountMinSketch, MissFilter, RejectXAdmission, TinyLfuAdmission};

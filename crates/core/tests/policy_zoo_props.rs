//! Property tests for the non-ML admission-policy zoo (`otae_core::zoo`).
//!
//! Pins the structural guarantees the policies are built on, over arbitrary
//! request streams rather than hand-picked ones:
//!
//! * a count-min estimate never underestimates a key's true increment count;
//! * the TinyLFU halving reset preserves the (non-strict) relative order of
//!   any two keys' estimates;
//! * the doorkeeper absorbs each key's first sighting (later sightings are
//!   always admitted; first sightings only slip through on a bloom
//!   collision, which must stay rare);
//! * CoinFlip's empirical admit rate converges on its configured `p` for
//!   every seed.

use otae_core::{CoinFlipAdmission, CountMinSketch, TinyLfuAdmission};
use otae_fxhash::{FxHashMap, FxHashSet};
use otae_trace::ObjectId;
use proptest::prelude::*;

proptest! {
    /// Count-min is one-sided: collisions can inflate an estimate, never
    /// deflate it below the true number of increments.
    #[test]
    fn count_min_never_underestimates(
        stream in proptest::collection::vec(0u32..2_000, 1..2_000),
        expected in 64usize..4_096,
        seed in any::<u64>(),
    ) {
        let mut sketch = CountMinSketch::new(expected, seed);
        let mut truth: FxHashMap<u32, u32> = FxHashMap::default();
        for &key in &stream {
            sketch.increment(ObjectId(key));
            *truth.entry(key).or_insert(0) += 1;
        }
        for (&key, &count) in &truth {
            prop_assert!(
                sketch.estimate(ObjectId(key)) >= count,
                "estimate {} < true count {count} for key {key}",
                sketch.estimate(ObjectId(key)),
            );
        }
    }

    /// Floor-halving every counter commutes with the row-wise minimum, so
    /// aging never swaps the order of two keys' estimates: a strictly
    /// colder key can never come out of the reset looking strictly hotter.
    #[test]
    fn halving_reset_preserves_relative_order(
        stream in proptest::collection::vec(0u32..512, 1..2_000),
        seed in any::<u64>(),
        halvings in 1usize..4,
    ) {
        let mut sketch = CountMinSketch::new(1_024, seed);
        for &key in &stream {
            sketch.increment(ObjectId(key));
        }
        let keys: FxHashSet<u32> = stream.iter().copied().collect();
        let before: FxHashMap<u32, u32> =
            keys.iter().map(|&k| (k, sketch.estimate(ObjectId(k)))).collect();
        for _ in 0..halvings {
            sketch.halve();
        }
        for &a in &keys {
            for &b in &keys {
                if before[&a] < before[&b] {
                    prop_assert!(
                        sketch.estimate(ObjectId(a)) <= sketch.estimate(ObjectId(b)),
                        "halving made key {a} ({} -> {}) overtake key {b} ({} -> {})",
                        before[&a], sketch.estimate(ObjectId(a)),
                        before[&b], sketch.estimate(ObjectId(b)),
                    );
                }
            }
        }
    }

    /// The doorkeeper absorbs first sightings. Re-sightings are always
    /// admitted (bloom filters have no false negatives); first sightings
    /// are bypassed except for the rare bloom collision, whose rate is
    /// bounded well below what any of the zoo benchmarks would notice.
    #[test]
    fn doorkeeper_admits_only_on_second_sighting(
        stream in proptest::collection::vec(0u32..64, 1..512),
        seed in any::<u64>(),
    ) {
        // sample_period = 0: no aging, so "seen before" is exact history.
        let mut tiny = TinyLfuAdmission::new(65_536, 0, seed);
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut first_sightings = 0u32;
        let mut first_admits = 0u32;
        for &key in &stream {
            let admit = tiny.decide(ObjectId(key));
            if seen.insert(key) {
                first_sightings += 1;
                first_admits += u32::from(admit);
            } else {
                prop_assert!(admit, "re-sighting of key {key} must be admitted");
            }
        }
        // ≤64 keys in a doorkeeper sized for 65 536: collisions admitting a
        // cold key must stay (far) under 2% of first sightings.
        prop_assert!(
            u64::from(first_admits) * 50 <= u64::from(first_sightings),
            "{first_admits}/{first_sightings} first sightings admitted",
        );
    }

    /// The coin is fair to its parameter: over n draws the admit rate lands
    /// within ±0.04 of `p` (> 7 sigma at n = 8192), for every seed.
    #[test]
    fn coinflip_admit_rate_tracks_p(
        p in 0.05f32..0.95,
        seed in any::<u64>(),
    ) {
        let n = 8_192u32;
        let mut coin = CoinFlipAdmission::new(p, seed);
        let admitted = (0..n).filter(|_| coin.decide()).count() as f64;
        let rate = admitted / f64::from(n);
        prop_assert!(
            (rate - f64::from(p)).abs() < 0.04,
            "admit rate {rate:.4} strays from p = {p}",
        );
        prop_assert_eq!(coin.admitted() + coin.bypassed(), u64::from(n));
    }
}

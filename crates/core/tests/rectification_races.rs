//! §4.4.2 invariant under retrain races: the history table's verdict
//! memory must survive model swaps.
//!
//! An object judged one-time and bypassed, then reappearing within `M`
//! accesses, must be force-admitted — *even when the daily retrain swapped
//! in a different model between the two misses*. The rectification is keyed
//! on the object and the miss clock, not on which model produced the first
//! judgement; a swap that reset (or shadowed) the table would silently
//! re-bypass hot objects every training day.

use otae_core::{classifier_decide, HistoryTable};
use otae_ml::{Classifier, ConfusionMatrix, Dataset, DecisionTree, TreeParams};
use otae_trace::ObjectId;
use proptest::prelude::*;

/// A model that judges `x > threshold` one-time — different thresholds
/// yield genuinely different trees (distinct split points), simulating the
/// daily retrain producing a new model.
fn tree(threshold: f32) -> DecisionTree {
    let mut d = Dataset::new(1);
    for i in 0..200 {
        let x = i as f32 / 200.0;
        d.push(&[x], x > threshold);
    }
    let mut t = DecisionTree::new(TreeParams::default());
    t.fit(&d);
    t
}

/// Drive two misses of `obj` `gap` accesses apart, swapping models between
/// them, with `noise` other one-time objects in between (they stress the
/// table without evicting `obj` — capacity is sized for all of them).
/// Returns (first admitted?, second admitted?, rectifications).
fn two_misses_across_swap(obj: ObjectId, gap: u64, m: u64, noise: u32) -> (bool, bool, u64) {
    let model_a = tree(0.4);
    let model_b = tree(0.6);
    // Both models must judge x=0.95 one-time, or the scenario is vacuous.
    assert!(model_a.predict(&[0.95]));
    assert!(model_b.predict(&[0.95]));

    let mut history = HistoryTable::new((noise as usize + 2).next_power_of_two().max(16));
    let mut confusion = ConfusionMatrix::default();
    let mut decide = |model: &DecisionTree, obj, now| {
        classifier_decide(
            Some(model),
            &mut history,
            &mut confusion,
            true,
            m,
            obj,
            &[0.95],
            now,
            true,
        )
    };

    let first = decide(&model_a, obj, 0);
    // Other objects miss in between — under model A or B, mimicking traffic
    // spanning the swap.
    for i in 0..noise {
        let model = if i % 2 == 0 { &model_a } else { &model_b };
        let now = 1 + (u64::from(i) * gap.max(2)) / u64::from(noise.max(1)).max(1);
        decide(model, ObjectId(1_000_000 + i), now);
    }
    // The retrain race: model B is now installed when obj returns.
    let second = decide(&model_b, obj, gap);
    (first, second, history.rectifications())
}

proptest! {
    /// Reappearance within `M` across a swap ⇒ force-admitted (rectified).
    #[test]
    fn reappearance_within_m_is_rectified_across_model_swap(
        obj in 0u32..10_000,
        m in 2u64..5_000,
        gap_frac in 0.01f64..1.0,
        noise in 0u32..40,
    ) {
        let gap = ((m as f64 * gap_frac) as u64).clamp(1, m);
        let (first, second, rect) = two_misses_across_swap(ObjectId(obj), gap, m, noise);
        prop_assert!(!first, "first miss is judged one-time and bypassed");
        prop_assert!(second, "return at gap {gap} <= M {m} must be force-admitted");
        prop_assert!(rect >= 1, "the admission must be a rectification");
    }

    /// Reappearance beyond `M` ⇒ the (new) model's judgement stands.
    #[test]
    fn reappearance_beyond_m_is_still_bypassed_across_model_swap(
        obj in 0u32..10_000,
        m in 2u64..5_000,
        extra in 1u64..10_000,
    ) {
        let (first, second, rect) = two_misses_across_swap(ObjectId(obj), m + extra, m, 0);
        prop_assert!(!first);
        prop_assert!(!second, "return at M + {extra} must stay bypassed");
        prop_assert_eq!(rect, 0);
    }
}

/// The named regression shape from the serve layer: one-time verdict under
/// model A, swap, return within M under model B — pinned here at the
/// classifier-state level with exact counters.
#[test]
fn rectification_survives_swap_exact_counters() {
    let (first, second, rect) = two_misses_across_swap(ObjectId(7), 50, 100, 4);
    assert!(!first);
    assert!(second);
    assert_eq!(rect, 1);
}

//! Deterministic corruption generator for codec robustness testing.
//!
//! Produces scripted damage to a serialised trace — truncations, single
//! bit-flips, byte scrambles, header surgery — as pure functions of a seed,
//! so a failing corruption case replays exactly from `(seed, label)`.
//! The contract under test: [`codec::from_bytes`](crate::codec::from_bytes)
//! either returns a structurally valid [`Trace`](crate::Trace) or a typed
//! [`CodecError`](crate::codec::CodecError) — it must never panic, hang, or
//! misparse, whatever the damage.

/// One corrupted buffer, labeled for replayable failure reports.
#[derive(Debug, Clone)]
pub struct Corruption {
    /// What was done to the buffer (e.g. `truncate[117]`, `bitflip[33.5]`).
    pub label: String,
    /// The damaged bytes.
    pub bytes: Vec<u8>,
}

/// SplitMix64: tiny, seedable, and good enough to scatter damage sites.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `n` truncations of `bytes` at seed-chosen cut points, always including
/// the structurally interesting ones: empty, mid-header, one-short.
pub fn truncations(bytes: &[u8], seed: u64, n: usize) -> Vec<Corruption> {
    let mut state = seed ^ 0x7472_756e_6361_7465; // "truncate"
    let mut out = Vec::new();
    let mut cuts: Vec<usize> = vec![0, 1, 4, 17];
    if bytes.len() > 1 {
        cuts.push(bytes.len() / 2);
        cuts.push(bytes.len() - 1);
    }
    while cuts.len() < n + 6 {
        cuts.push(splitmix64(&mut state) as usize % bytes.len().max(1));
    }
    for cut in cuts {
        let cut = cut.min(bytes.len().saturating_sub(1));
        out.push(Corruption { label: format!("truncate[{cut}]"), bytes: bytes[..cut].to_vec() });
    }
    out
}

/// `n` single-bit flips of `bytes` at seed-chosen positions. Flips landing
/// in count fields exercise the overflow/allocation guards; flips in the
/// body exercise range and ordering validation.
pub fn bit_flips(bytes: &[u8], seed: u64, n: usize) -> Vec<Corruption> {
    let mut state = seed ^ 0x6269_7466_6c69_7073; // "bitflips"
    let mut out = Vec::new();
    if bytes.is_empty() {
        return out;
    }
    for _ in 0..n {
        let r = splitmix64(&mut state);
        let pos = (r >> 3) as usize % bytes.len();
        let bit = (r & 7) as u8;
        let mut damaged = bytes.to_vec();
        damaged[pos] ^= 1 << bit;
        out.push(Corruption { label: format!("bitflip[{pos}.{bit}]"), bytes: damaged });
    }
    out
}

/// `n` runs of seed-chosen garbage bytes overwriting a random window.
pub fn scrambles(bytes: &[u8], seed: u64, n: usize) -> Vec<Corruption> {
    let mut state = seed ^ 0x7363_7261_6d62_6c65; // "scramble"
    let mut out = Vec::new();
    if bytes.is_empty() {
        return out;
    }
    for _ in 0..n {
        let start = splitmix64(&mut state) as usize % bytes.len();
        let len = (splitmix64(&mut state) as usize % 64).min(bytes.len() - start).max(1);
        let mut damaged = bytes.to_vec();
        for b in &mut damaged[start..start + len] {
            *b = splitmix64(&mut state) as u8;
        }
        out.push(Corruption { label: format!("scramble[{start}+{len}]"), bytes: damaged });
    }
    out
}

/// Targeted header surgery: oversized count fields (allocation-bomb
/// attempts), trailing garbage, and version/magic damage.
pub fn header_attacks(bytes: &[u8], seed: u64) -> Vec<Corruption> {
    let mut state = seed ^ 0x6865_6164_6572_7321; // "headers!"
    let mut out = Vec::new();
    if bytes.len() < 18 {
        return out;
    }
    // Count fields live at [6,10) (owners), [10,14) (meta), [14,22) (requests).
    for (label, range, value) in [
        ("owners=max", 6..10, u64::from(u32::MAX)),
        ("meta=max", 10..14, u64::from(u32::MAX)),
        ("requests=max", 14..22, u64::MAX),
        ("requests=huge", 14..22, u64::MAX / 13),
    ] {
        if bytes.len() < range.end {
            continue;
        }
        let mut damaged = bytes.to_vec();
        let le = value.to_le_bytes();
        damaged[range.clone()].copy_from_slice(&le[..range.len()]);
        out.push(Corruption { label: format!("header[{label}]"), bytes: damaged });
    }
    let mut damaged = bytes.to_vec();
    damaged.extend((0..7).map(|_| splitmix64(&mut state) as u8));
    out.push(Corruption { label: "trailing[7]".into(), bytes: damaged });
    let mut damaged = bytes.to_vec();
    damaged[4] ^= 0xFF; // version low byte
    out.push(Corruption { label: "header[version]".into(), bytes: damaged });
    out
}

/// The full labeled suite for one seed: truncations, bit-flips, scrambles
/// and header attacks over `bytes`.
pub fn corruption_suite(bytes: &[u8], seed: u64) -> Vec<Corruption> {
    let mut out = truncations(bytes, seed, 10);
    out.extend(bit_flips(bytes, seed, 40));
    out.extend(scrambles(bytes, seed, 10));
    out.extend(header_attacks(bytes, seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_in_the_seed() {
        let bytes: Vec<u8> = (0..200u8).collect();
        let a = corruption_suite(&bytes, 9);
        let b = corruption_suite(&bytes, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.bytes, y.bytes);
        }
        let c = corruption_suite(&bytes, 10);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes),
            "different seeds must damage differently"
        );
    }

    #[test]
    fn bit_flips_change_exactly_one_bit() {
        let bytes = vec![0u8; 64];
        for c in bit_flips(&bytes, 3, 20) {
            let ones: u32 = c.bytes.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 1, "{}: exactly one bit flipped", c.label);
        }
    }

    #[test]
    fn truncations_shrink_and_include_edges() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let cuts = truncations(&bytes, 1, 8);
        assert!(cuts.iter().all(|c| c.bytes.len() < bytes.len()));
        assert!(cuts.iter().any(|c| c.bytes.is_empty()), "empty cut included");
        assert!(cuts.iter().any(|c| c.bytes.len() == bytes.len() - 1), "one-short cut included");
    }

    #[test]
    fn degenerate_inputs_do_not_panic_the_generator() {
        assert!(bit_flips(&[], 1, 5).is_empty());
        assert!(scrambles(&[], 1, 5).is_empty());
        assert!(header_attacks(&[1, 2, 3], 1).is_empty());
        let t = truncations(&[7], 1, 3);
        assert!(t.iter().all(|c| c.bytes.is_empty()));
    }
}
